#include "special/gamma.hpp"

#include <cmath>
#include <stdexcept>

#include "special/constants.hpp"

#include "core/error.hpp"

namespace rrs {

namespace {

// Lanczos (g = 7, n = 9) coefficients; the classic set giving ~1e-13
// relative accuracy for double.
constexpr double kLanczosG = 7.0;
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
    771.32342877765313,   -176.61502916214059,   12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7,
};

double lanczos_log_gamma(double x) {
    // Valid for x > 0.5; caller handles reflection.
    const double z = x - 1.0;
    double a = kLanczos[0];
    for (int i = 1; i < 9; ++i) {
        a += kLanczos[i] / (z + static_cast<double>(i));
    }
    const double t = z + kLanczosG + 0.5;
    return 0.5 * std::log(kTwoPi) + (z + 0.5) * std::log(t) - t + std::log(a);
}

}  // namespace

double log_gamma(double x) {
    if (!(x > 0.0)) {
        throw DomainError{"log_gamma: requires x > 0"};
    }
    if (x < 0.5) {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        return std::log(kPi / std::sin(kPi * x)) - lanczos_log_gamma(1.0 - x);
    }
    return lanczos_log_gamma(x);
}

double gamma_fn(double x) {
    if (x > 0.0) {
        if (x > 171.6) {
            throw NumericError{"gamma_fn: overflow"};
        }
        return std::exp(log_gamma(x));
    }
    if (x == std::floor(x)) {
        throw DomainError{"gamma_fn: pole at non-positive integer"};
    }
    return kPi / (std::sin(kPi * x) * std::exp(log_gamma(1.0 - x)));
}

namespace {

constexpr int kMaxIter = 500;
constexpr double kEps = 3.0e-16;
constexpr double kFpMin = 1.0e-300;

// Series representation of P(a, x); converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < kMaxIter; ++n) {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if (std::abs(del) < std::abs(sum) * kEps) {
            return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
        }
    }
    throw NumericError{"gamma_p: series failed to converge"};
}

// Lentz continued fraction for Q(a, x); converges fast for x >= a + 1.
double gamma_q_cf(double a, double x) {
    double b = x + 1.0 - a;
    double c = 1.0 / kFpMin;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= kMaxIter; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < kFpMin) {
            d = kFpMin;
        }
        c = b + an / c;
        if (std::abs(c) < kFpMin) {
            c = kFpMin;
        }
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < kEps) {
            return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
        }
    }
    throw NumericError{"gamma_q: continued fraction failed to converge"};
}

}  // namespace

double gamma_p(double a, double x) {
    if (!(a > 0.0) || x < 0.0) {
        throw DomainError{"gamma_p: requires a > 0, x >= 0"};
    }
    if (x == 0.0) {
        return 0.0;
    }
    return x < a + 1.0 ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
    if (!(a > 0.0) || x < 0.0) {
        throw DomainError{"gamma_q: requires a > 0, x >= 0"};
    }
    if (x == 0.0) {
        return 1.0;
    }
    return x < a + 1.0 ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

}  // namespace rrs
