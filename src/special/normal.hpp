#pragma once

/// \file normal.hpp
/// Error function, normal CDF and its inverse, from scratch.
///
/// The inverse CDF powers the counter-based Gaussian lattice (one uniform
/// draw per lattice point mapped through Φ⁻¹ — the deterministic analogue of
/// the paper's Box–Muller construction, eq. 18), and Φ powers the KS / χ²
/// normality checks in the stats module.

namespace rrs {

/// erf(x) via the regularised incomplete gamma (accuracy ~1e-14).
double erf_fn(double x);

/// erfc(x) = 1 - erf(x), accurate in the tail.
double erfc_fn(double x);

/// Standard normal CDF Φ(x).
double norm_cdf(double x);

/// Standard normal density φ(x).
double norm_pdf(double x);

/// Inverse standard normal CDF Φ⁻¹(p), p in (0, 1).
/// Hastings initial guess (A&S 26.2.23) polished by Newton iterations on the
/// accurate Φ; full double precision in [1e-300, 1-1e-16].
double norm_ppf(double p);

}  // namespace rrs
