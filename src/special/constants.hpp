#pragma once

/// \file constants.hpp
/// Mathematical constants used across librrs, to full double precision.

namespace rrs {

inline constexpr double kPi = 3.14159265358979323846264338327950288;
inline constexpr double kTwoPi = 2.0 * kPi;
inline constexpr double kSqrt2 = 1.41421356237309504880168872420969808;
inline constexpr double kSqrtPi = 1.77245385090551602729816748334114518;
inline constexpr double kEulerGamma = 0.57721566490153286060651209008240243;
inline constexpr double kZeta3 = 1.20205690315959428539973816151144999;

}  // namespace rrs
