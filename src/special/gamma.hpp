#pragma once

/// \file gamma.hpp
/// Gamma function family, implemented from scratch (Lanczos approximation
/// with reflection).  The Power-Law spectrum's normalisation and its Matérn
/// autocorrelation (paper eqs. 7–8) need Γ(N) and Γ(N−1); the stats module
/// needs the regularised incomplete gamma for χ² p-values.

namespace rrs {

/// Natural log of |Γ(x)| for x > 0 (throws std::domain_error otherwise).
/// Lanczos g=7, 9-term fit; relative error < 1e-13 over the domain.
double log_gamma(double x);

/// Γ(x) for non-pole x (reflection handles x < 0).
double gamma_fn(double x);

/// Regularised lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
/// Series for x < a+1, continued fraction otherwise.
double gamma_p(double a, double x);

/// Regularised upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

}  // namespace rrs
