#include "special/bessel.hpp"

#include <cmath>
#include <stdexcept>

#include "special/constants.hpp"
#include "special/gamma.hpp"

#include "core/error.hpp"

namespace rrs {

namespace {

constexpr double kEps = 1.0e-16;
constexpr int kMaxIter = 10000;

// gam1(μ) = [1/Γ(1−μ) − 1/Γ(1+μ)] / (2μ), continuous at μ = 0 where it
// equals −γ (Euler's constant).  gam2(μ) = [1/Γ(1−μ) + 1/Γ(1+μ)] / 2.
// Also returns the reciprocals gampl = 1/Γ(1+μ), gammi = 1/Γ(1−μ).
void temme_gammas(double mu, double& gam1, double& gam2, double& gampl, double& gammi) {
    gampl = 1.0 / gamma_fn(1.0 + mu);
    gammi = 1.0 / gamma_fn(1.0 - mu);
    if (std::abs(mu) < 1.0e-8) {
        // Taylor expansion of (1/Γ(1−μ) − 1/Γ(1+μ))/(2μ) about μ = 0:
        // −γ − c3·μ² with c3 = γ³/6 − γπ²/12 + ζ(3)/3.
        const double c3 =
            kEulerGamma * kEulerGamma * kEulerGamma / 6.0 -
            kEulerGamma * kPi * kPi / 12.0 + kZeta3 / 3.0;
        gam1 = -kEulerGamma - c3 * mu * mu;
    } else {
        gam1 = (gammi - gampl) / (2.0 * mu);
    }
    gam2 = 0.5 * (gammi + gampl);
}

// Temme's series: computes K_μ(x) and K_{μ+1}(x) for x <= 2, |μ| <= 1/2.
void bessel_k_temme(double mu, double x, double& kmu, double& kmu1) {
    const double x2 = 0.5 * x;
    const double pimu = kPi * mu;
    const double fact = (std::abs(pimu) < kEps) ? 1.0 : pimu / std::sin(pimu);
    double d = -std::log(x2);
    double e = mu * d;
    const double fact2 = (std::abs(e) < kEps) ? 1.0 : std::sinh(e) / e;
    double gam1 = 0.0, gam2 = 0.0, gampl = 0.0, gammi = 0.0;
    temme_gammas(mu, gam1, gam2, gampl, gammi);
    double ff = fact * (gam1 * std::cosh(e) + gam2 * fact2 * d);
    double sum = ff;
    e = std::exp(e);
    double p = 0.5 * e / gampl;
    double q = 0.5 / (e * gammi);
    double c = 1.0;
    d = x2 * x2;
    double sum1 = p;
    for (int i = 1; i <= kMaxIter; ++i) {
        const double di = static_cast<double>(i);
        ff = (di * ff + p + q) / (di * di - mu * mu);
        c *= d / di;
        p /= (di - mu);
        q /= (di + mu);
        const double del = c * ff;
        sum += del;
        const double del1 = c * (p - di * ff);
        sum1 += del1;
        if (std::abs(del) < std::abs(sum) * kEps) {
            kmu = sum;
            kmu1 = sum1 * (2.0 / x);
            return;
        }
    }
    throw NumericError{"bessel_k: Temme series failed to converge"};
}

// Steed's continued fraction CF2: computes K_μ(x) and K_{μ+1}(x) for x >= 2.
void bessel_k_cf2(double mu, double x, double& kmu, double& kmu1) {
    double b = 2.0 * (1.0 + x);
    double d = 1.0 / b;
    double h = d;
    double delh = d;
    double q1 = 0.0;
    double q2 = 1.0;
    const double a1 = 0.25 - mu * mu;
    double q = a1;
    double c = a1;
    double a = -a1;
    double s = 1.0 + q * delh;
    for (int i = 2; i <= kMaxIter; ++i) {
        const double di = static_cast<double>(i);
        a -= 2.0 * (di - 1.0);
        c = -a * c / di;
        const double qnew = (q1 - b * q2) / a;
        q1 = q2;
        q2 = qnew;
        q += c * qnew;
        b += 2.0;
        d = 1.0 / (b + a * d);
        delh = (b * d - 1.0) * delh;
        h += delh;
        const double dels = q * delh;
        s += dels;
        if (std::abs(dels / s) < kEps) {
            h = a1 * h;
            kmu = std::sqrt(kPi / (2.0 * x)) * std::exp(-x) / s;
            kmu1 = kmu * (mu + x + 0.5 - h) / x;
            return;
        }
    }
    throw NumericError{"bessel_k: CF2 failed to converge"};
}

}  // namespace

double bessel_k(double nu, double x) {
    if (!(x > 0.0) || nu < 0.0) {
        throw DomainError{"bessel_k: requires x > 0, nu >= 0"};
    }
    // Split ν = μ + n with |μ| <= 1/2 and n = round(ν).
    const int n = static_cast<int>(nu + 0.5);
    const double mu = nu - static_cast<double>(n);
    double kmu = 0.0;
    double kmu1 = 0.0;
    if (x < 2.0) {
        bessel_k_temme(mu, x, kmu, kmu1);
    } else {
        bessel_k_cf2(mu, x, kmu, kmu1);
    }
    // Upward recurrence in order (stable for K).
    for (int i = 0; i < n; ++i) {
        const double knext = kmu + (2.0 * (mu + static_cast<double>(i) + 1.0) / x) * kmu1;
        kmu = kmu1;
        kmu1 = knext;
    }
    return kmu;
}

double bessel_k0(double x) { return bessel_k(0.0, x); }
double bessel_k1(double x) { return bessel_k(1.0, x); }

}  // namespace rrs
