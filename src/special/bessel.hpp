#pragma once

/// \file bessel.hpp
/// Modified Bessel function of the second kind K_ν, from scratch.
///
/// The N-th order Power-Law spectrum's autocorrelation (paper eq. 8) is the
/// Matérn covariance ρ(r) = (2h²/Γ(N−1))·(r̃/2)^{N−1}·K_{N−1}(r̃), so the
/// library needs K_ν for real ν ≥ 0 (ν = 1/2 reproduces the Exponential
/// spectrum's ρ = h²e^{−r̃} — a cross-check the tests exploit).
///
/// Algorithm (Temme / Numerical-Recipes style):
///  * x < 2 : Temme's series for K_μ, K_{μ+1} with |μ| <= 1/2;
///  * x >= 2: Steed's continued fraction CF2;
///  * upward recurrence K_{μ+n+1} = K_{μ+n−1} + (2(μ+n)/x)·K_{μ+n}.

namespace rrs {

/// K_ν(x) for real order ν >= 0 and x > 0.  Accuracy ~1e-12 relative.
double bessel_k(double nu, double x);

/// K_0(x), x > 0.
double bessel_k0(double x);

/// K_1(x), x > 0.
double bessel_k1(double x);

}  // namespace rrs
