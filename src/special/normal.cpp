#include "special/normal.hpp"

#include <cmath>
#include <stdexcept>

#include "special/constants.hpp"
#include "special/gamma.hpp"

#include "core/error.hpp"

namespace rrs {

double erf_fn(double x) {
    if (x == 0.0) {
        return 0.0;
    }
    const double p = gamma_p(0.5, x * x);
    return x > 0.0 ? p : -p;
}

double erfc_fn(double x) {
    if (x >= 0.0) {
        return gamma_q(0.5, x * x);
    }
    return 2.0 - gamma_q(0.5, x * x);
}

double norm_cdf(double x) { return 0.5 * erfc_fn(-x / kSqrt2); }

double norm_pdf(double x) {
    return std::exp(-0.5 * x * x) / (kSqrt2 * kSqrtPi);
}

double norm_ppf(double p) {
    if (!(p > 0.0) || !(p < 1.0)) {
        throw DomainError{"norm_ppf: requires p in (0,1)"};
    }
    // Work with the lower tail; exploit Φ⁻¹(1−p) = −Φ⁻¹(p).
    const bool upper = p > 0.5;
    const double pl = upper ? 1.0 - p : p;

    // Hastings rational approximation (A&S 26.2.23), |error| < 4.5e-4.
    const double t = std::sqrt(-2.0 * std::log(pl));
    double z = t - (2.515517 + t * (0.802853 + t * 0.010328)) /
                       (1.0 + t * (1.432788 + t * (0.189269 + t * 0.001308)));
    z = -z;  // lower-tail quantile is negative

    // Newton polish on Φ(z) = pl.  In the far tail work in log space to
    // dodge underflow of Φ; three steps reach machine precision.
    for (int i = 0; i < 4; ++i) {
        const double cdf = norm_cdf(z);
        const double pdf = norm_pdf(z);
        if (pdf <= 0.0) {
            break;
        }
        double step;
        if (cdf > 0.0) {
            // Newton on log Φ is better conditioned in the deep tail.
            step = (std::log(cdf) - std::log(pl)) * cdf / pdf;
        } else {
            break;
        }
        z -= step;
        if (std::abs(step) < 1.0e-15 * (1.0 + std::abs(z))) {
            break;
        }
    }
    return upper ? -z : z;
}

}  // namespace rrs
