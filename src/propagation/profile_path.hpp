#pragma once

/// \file profile_path.hpp
/// Terrain-profile extraction along arbitrary transects of a generated
/// surface.  The paper's motivation (§1) is EM propagation along rough
/// surfaces for wireless sensor networks; propagation models consume 1-D
/// terrain profiles between a transmitter and a receiver, which this
/// module samples (bilinearly) from the 2-D height fields.

#include <cstddef>
#include <vector>

#include "grid/array2d.hpp"

namespace rrs {

/// Heights sampled at uniform steps along a straight transect.
struct TerrainProfile {
    std::vector<double> height;  ///< terrain height at each sample
    double step = 0.0;           ///< physical distance between samples

    double length() const noexcept {
        return height.empty() ? 0.0
                              : step * static_cast<double>(height.size() - 1);
    }
};

/// Bilinear height lookup at fractional lattice coordinates (clamped to
/// the array edge).
double bilinear_height(const Array2D<double>& f, double x, double y);

/// Sample `samples` points (>= 2) along the segment from (x0, y0) to
/// (x1, y1), given in lattice coordinates; `spacing` converts lattice
/// units to physical distance.
TerrainProfile extract_profile(const Array2D<double>& f, double x0, double y0, double x1,
                               double y1, std::size_t samples, double spacing = 1.0);

}  // namespace rrs
