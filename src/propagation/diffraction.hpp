#pragma once

/// \file diffraction.hpp
/// Knife-edge diffraction machinery for terrain-profile path loss:
/// free-space loss, Fresnel-zone geometry, the single-knife-edge loss
/// J(ν) (ITU-R P.526 approximation), and the Epstein–Peterson and Deygout
/// multiple-edge constructions.  This is the discrete-ray-tracing style
/// analysis of the paper's companion work (its refs. [11]-[12]) built on
/// the surfaces this library generates.

#include <cstddef>
#include <vector>

#include "propagation/profile_path.hpp"

namespace rrs {

/// Free-space path loss in dB at distance d (same unit as wavelength).
double free_space_loss_db(double distance, double wavelength);

/// First-Fresnel-zone radius at a point d1 from one terminal and d2 from
/// the other.
double fresnel_radius(double d1, double d2, double wavelength);

/// Fresnel–Kirchhoff diffraction parameter ν for an obstruction with
/// excess height h (above the terminal-to-terminal line) at distances
/// d1, d2 from the terminals.
double fresnel_parameter(double excess_height, double d1, double d2, double wavelength);

/// Single knife-edge loss J(ν) in dB (0 for ν <= −0.78; ITU-R P.526-style
/// approximation otherwise).
double knife_edge_loss_db(double nu);

/// Per-obstacle summary of a profile's clearance analysis.
struct Obstruction {
    std::size_t index = 0;        ///< profile sample index
    double excess_height = 0.0;   ///< height above the LOS line
    double nu = 0.0;              ///< Fresnel-Kirchhoff parameter
};

/// Link geometry over a terrain profile: antennas `tx_height`/`rx_height`
/// above the terrain at the endpoints.
struct LinkGeometry {
    double tx_height = 1.0;
    double rx_height = 1.0;
    double wavelength = 0.125;  ///< 2.4 GHz in metres by default
};

/// The worst obstruction (max ν) of the interior samples; nu is negative
/// when the path is clear.
Obstruction worst_obstruction(const TerrainProfile& profile, const LinkGeometry& link);

/// True when every interior sample clears `clearance_fraction` of the
/// first Fresnel zone (0.6 is the usual engineering rule).
bool line_of_sight_clear(const TerrainProfile& profile, const LinkGeometry& link,
                         double clearance_fraction = 0.6);

/// Total diffraction loss (dB) by the Epstein–Peterson construction:
/// each local-maximum edge evaluated between its neighbouring edges.
double epstein_peterson_loss_db(const TerrainProfile& profile, const LinkGeometry& link);

/// Total diffraction loss (dB) by the Deygout construction: the dominant
/// edge first, then recursive sub-paths (depth-limited).
double deygout_loss_db(const TerrainProfile& profile, const LinkGeometry& link,
                       int max_depth = 3);

/// End-to-end path loss over the profile: free-space plus Deygout
/// diffraction.
double path_loss_db(const TerrainProfile& profile, const LinkGeometry& link);

}  // namespace rrs
