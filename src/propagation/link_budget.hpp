#pragma once

/// \file link_budget.hpp
/// Communication-distance estimation along rough surfaces — the study the
/// paper's companion work (ref. [12], "Estimation of radio communication
/// distance along random rough surface") performs, built here on the
/// surfaces this library generates.  Sensors sit on the terrain; a link
/// closes when free-space-plus-diffraction loss stays within the budget.

#include <cstdint>
#include <vector>

#include "grid/array2d.hpp"
#include "propagation/diffraction.hpp"

namespace rrs {

/// Per-distance ensemble result of the range study.
struct RangeSample {
    double distance = 0.0;      ///< terminal separation
    double mean_loss_db = 0.0;  ///< ensemble mean path loss
    double p_los = 0.0;         ///< fraction of links with a clear 0.6-zone
    double p_link = 0.0;        ///< fraction of links within the budget
};

/// Study configuration: link geometry, loss budget, and sampling density.
struct RangeStudyConfig {
    LinkGeometry link;
    double budget_db = 100.0;          ///< maximum tolerable path loss
    std::size_t paths_per_distance = 32;
    std::size_t profile_samples = 257;
};

/// Sweep terminal separations over transects of `surface` (spacing
/// `spacing`), drawing paths at rotating offsets/orientations, and report
/// loss/los/link statistics per distance.
std::vector<RangeSample> communication_range_study(const Array2D<double>& surface,
                                                   double spacing,
                                                   const std::vector<double>& distances,
                                                   const RangeStudyConfig& config);

/// Largest swept distance with p_link >= `reliability`; −1 if none.
double estimated_range(const std::vector<RangeSample>& samples, double reliability = 0.9);

}  // namespace rrs
