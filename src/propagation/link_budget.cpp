#include "propagation/link_budget.hpp"

#include <cmath>
#include <stdexcept>

#include "rng/engines.hpp"
#include "special/constants.hpp"

#include "core/error.hpp"

namespace rrs {

std::vector<RangeSample> communication_range_study(const Array2D<double>& surface,
                                                   double spacing,
                                                   const std::vector<double>& distances,
                                                   const RangeStudyConfig& config) {
    if (!(spacing > 0.0)) {
        throw ConfigError{"communication_range_study: spacing must be positive"};
    }
    if (config.paths_per_distance == 0 || config.profile_samples < 3) {
        throw ConfigError{"communication_range_study: bad sampling config"};
    }
    const double nx = static_cast<double>(surface.nx() - 1);
    const double ny = static_cast<double>(surface.ny() - 1);

    std::vector<RangeSample> out;
    out.reserve(distances.size());
    SplitMix64 engine{0x9e3779b97f4a7c15ULL};

    for (const double d : distances) {
        const double lattice_len = d / spacing;
        if (lattice_len >= std::min(nx, ny)) {
            throw ConfigError{
                "communication_range_study: distance exceeds the surface extent"};
        }
        RangeSample sample;
        sample.distance = d;
        double loss_sum = 0.0;
        std::size_t los_count = 0;
        std::size_t link_count = 0;
        for (std::size_t k = 0; k < config.paths_per_distance; ++k) {
            // Random start + orientation keeping the segment inside the grid:
            // x0 uniform over [max(0, −dx), nx − max(0, dx)] and same for y.
            const double ang = kTwoPi * to_unit_halfopen(engine());
            const double dx = std::cos(ang) * lattice_len;
            const double dy = std::sin(ang) * lattice_len;
            const double x_lo = std::max(0.0, -dx);
            const double x_hi = nx - std::max(0.0, dx);
            const double y_lo = std::max(0.0, -dy);
            const double y_hi = ny - std::max(0.0, dy);
            const double x0 = x_lo + to_unit_halfopen(engine()) * (x_hi - x_lo);
            const double y0 = y_lo + to_unit_halfopen(engine()) * (y_hi - y_lo);
            const double x1 = x0 + dx;
            const double y1 = y0 + dy;

            const TerrainProfile profile = extract_profile(
                surface, x0, y0, x1, y1, config.profile_samples, spacing);
            const double loss = path_loss_db(profile, config.link);
            loss_sum += loss;
            los_count += line_of_sight_clear(profile, config.link) ? 1u : 0u;
            link_count += loss <= config.budget_db ? 1u : 0u;
        }
        const double n = static_cast<double>(config.paths_per_distance);
        sample.mean_loss_db = loss_sum / n;
        sample.p_los = static_cast<double>(los_count) / n;
        sample.p_link = static_cast<double>(link_count) / n;
        out.push_back(sample);
    }
    return out;
}

double estimated_range(const std::vector<RangeSample>& samples, double reliability) {
    double best = -1.0;
    for (const RangeSample& s : samples) {
        if (s.p_link >= reliability) {
            best = std::max(best, s.distance);
        }
    }
    return best;
}

}  // namespace rrs
