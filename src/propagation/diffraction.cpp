#include "propagation/diffraction.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "special/constants.hpp"

#include "core/error.hpp"

namespace rrs {

double free_space_loss_db(double distance, double wavelength) {
    if (!(distance > 0.0) || !(wavelength > 0.0)) {
        throw ConfigError{"free_space_loss_db: positive arguments required"};
    }
    return 20.0 * std::log10(4.0 * kPi * distance / wavelength);
}

double fresnel_radius(double d1, double d2, double wavelength) {
    if (!(d1 > 0.0) || !(d2 > 0.0) || !(wavelength > 0.0)) {
        throw ConfigError{"fresnel_radius: positive arguments required"};
    }
    return std::sqrt(wavelength * d1 * d2 / (d1 + d2));
}

double fresnel_parameter(double excess_height, double d1, double d2, double wavelength) {
    if (!(d1 > 0.0) || !(d2 > 0.0) || !(wavelength > 0.0)) {
        throw ConfigError{"fresnel_parameter: positive distances required"};
    }
    return excess_height * std::sqrt(2.0 * (d1 + d2) / (wavelength * d1 * d2));
}

double knife_edge_loss_db(double nu) {
    if (nu <= -0.78) {
        return 0.0;
    }
    const double t = std::sqrt((nu - 0.1) * (nu - 0.1) + 1.0) + nu - 0.1;
    return 6.9 + 20.0 * std::log10(t);
}

namespace {

/// Excess height of interior sample i above the terminal-to-terminal line.
double excess_at(const TerrainProfile& p, const LinkGeometry& link, std::size_t i) {
    const std::size_t last = p.height.size() - 1;
    const double za = p.height.front() + link.tx_height;
    const double zb = p.height.back() + link.rx_height;
    const double t = static_cast<double>(i) / static_cast<double>(last);
    const double line = za + t * (zb - za);
    return p.height[i] - line;
}

/// ν of interior sample i of the sub-path [a, b].
double nu_at(const TerrainProfile& p, const LinkGeometry& link, std::size_t a,
             std::size_t b, std::size_t i) {
    // Sub-path endpoints use the terrain height itself (for a = 0 / b =
    // last the antenna heights apply).
    const std::size_t last = p.height.size() - 1;
    const double za = p.height[a] + (a == 0 ? link.tx_height : 0.0);
    const double zb = p.height[b] + (b == last ? link.rx_height : 0.0);
    const double t =
        static_cast<double>(i - a) / static_cast<double>(b - a);
    const double line = za + t * (zb - za);
    const double d1 = p.step * static_cast<double>(i - a);
    const double d2 = p.step * static_cast<double>(b - i);
    return fresnel_parameter(p.height[i] - line, d1, d2, link.wavelength);
}

/// Interior sample of (a, b) with the largest ν; returns false if none.
bool max_nu_edge(const TerrainProfile& p, const LinkGeometry& link, std::size_t a,
                 std::size_t b, std::size_t& edge, double& nu) {
    if (b <= a + 1) {
        return false;
    }
    nu = -1e300;
    for (std::size_t i = a + 1; i < b; ++i) {
        const double v = nu_at(p, link, a, b, i);
        if (v > nu) {
            nu = v;
            edge = i;
        }
    }
    return true;
}

double deygout_recurse(const TerrainProfile& p, const LinkGeometry& link, std::size_t a,
                       std::size_t b, int depth) {
    std::size_t edge = 0;
    double nu = 0.0;
    if (depth <= 0 || !max_nu_edge(p, link, a, b, edge, nu) || nu <= -0.78) {
        return 0.0;
    }
    double loss = knife_edge_loss_db(nu);
    loss += deygout_recurse(p, link, a, edge, depth - 1);
    loss += deygout_recurse(p, link, edge, b, depth - 1);
    return loss;
}

}  // namespace

Obstruction worst_obstruction(const TerrainProfile& profile, const LinkGeometry& link) {
    if (profile.height.size() < 3 || !(profile.step > 0.0)) {
        throw ConfigError{"worst_obstruction: profile too short"};
    }
    const std::size_t last = profile.height.size() - 1;
    Obstruction worst;
    worst.nu = -1e300;
    for (std::size_t i = 1; i < last; ++i) {
        const double nu = nu_at(profile, link, 0, last, i);
        if (nu > worst.nu) {
            worst = Obstruction{i, excess_at(profile, link, i), nu};
        }
    }
    return worst;
}

bool line_of_sight_clear(const TerrainProfile& profile, const LinkGeometry& link,
                         double clearance_fraction) {
    const std::size_t last = profile.height.size() - 1;
    for (std::size_t i = 1; i < last; ++i) {
        const double d1 = profile.step * static_cast<double>(i);
        const double d2 = profile.step * static_cast<double>(last - i);
        const double required = clearance_fraction * fresnel_radius(d1, d2, link.wavelength);
        if (excess_at(profile, link, i) > -required) {
            return false;
        }
    }
    return true;
}

double epstein_peterson_loss_db(const TerrainProfile& profile, const LinkGeometry& link) {
    if (profile.height.size() < 3 || !(profile.step > 0.0)) {
        throw ConfigError{"epstein_peterson_loss_db: profile too short"};
    }
    const std::size_t last = profile.height.size() - 1;
    // Edges: contiguous runs of samples that block the direct line, each
    // contributing its maximum-ν sample as one knife edge.
    std::vector<std::size_t> edges;
    std::size_t run_edge = 0;
    double run_nu = 0.0;
    bool in_run = false;
    for (std::size_t i = 1; i < last; ++i) {
        if (excess_at(profile, link, i) > 0.0) {
            const double nu = nu_at(profile, link, 0, last, i);
            if (!in_run || nu > run_nu) {
                run_edge = i;
                run_nu = nu;
            }
            in_run = true;
        } else if (in_run) {
            edges.push_back(run_edge);
            in_run = false;
        }
    }
    if (in_run) {
        edges.push_back(run_edge);
    }
    if (edges.empty()) {
        return 0.0;
    }
    // Each edge evaluated between its neighbouring edges (terminals at the
    // ends), losses summed.
    double total = 0.0;
    for (std::size_t k = 0; k < edges.size(); ++k) {
        const std::size_t a = k == 0 ? 0 : edges[k - 1];
        const std::size_t b = k + 1 == edges.size() ? last : edges[k + 1];
        total += knife_edge_loss_db(nu_at(profile, link, a, b, edges[k]));
    }
    return total;
}

double deygout_loss_db(const TerrainProfile& profile, const LinkGeometry& link,
                       int max_depth) {
    if (profile.height.size() < 3 || !(profile.step > 0.0)) {
        throw ConfigError{"deygout_loss_db: profile too short"};
    }
    return deygout_recurse(profile, link, 0, profile.height.size() - 1, max_depth);
}

double path_loss_db(const TerrainProfile& profile, const LinkGeometry& link) {
    return free_space_loss_db(profile.length(), link.wavelength) +
           deygout_loss_db(profile, link);
}

}  // namespace rrs
