#pragma once

/// \file hata.hpp
/// Hata's empirical propagation-loss formula (the paper's ref. [7]:
/// M. Hata, IEEE Trans. Veh. Technol. 1980) — the baseline the paper says
/// "seems difficult to apply ... to wireless sensor networks", which the
/// surface-based analysis replaces.  Implemented for comparison in the
/// communication-distance bench.

#include <stdexcept>

namespace rrs {

enum class HataEnvironment {
    kUrbanLarge,   ///< large city
    kUrbanMedium,  ///< medium/small city
    kSuburban,
    kOpen,
};

/// Validity ranges of the original model.
struct HataParams {
    double frequency_mhz = 900.0;   ///< 150–1500 MHz
    double base_height_m = 30.0;    ///< 30–200 m
    double mobile_height_m = 1.5;   ///< 1–10 m
    HataEnvironment environment = HataEnvironment::kUrbanMedium;

    void validate() const;
};

/// Median path loss in dB at distance `distance_km` (1–20 km).
double hata_loss_db(const HataParams& p, double distance_km);

/// Distance (km) at which hata_loss_db reaches `budget_db` (bisection on
/// the monotone loss curve); clamps into the model's [1, 20] km validity.
double hata_range_km(const HataParams& p, double budget_db);

}  // namespace rrs
