#include "propagation/profile_path.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/error.hpp"

namespace rrs {

double bilinear_height(const Array2D<double>& f, double x, double y) {
    if (f.nx() < 2 || f.ny() < 2) {
        throw ConfigError{"bilinear_height: array too small"};
    }
    const double cx = std::clamp(x, 0.0, static_cast<double>(f.nx() - 1));
    const double cy = std::clamp(y, 0.0, static_cast<double>(f.ny() - 1));
    const auto ix = std::min(static_cast<std::size_t>(cx), f.nx() - 2);
    const auto iy = std::min(static_cast<std::size_t>(cy), f.ny() - 2);
    const double tx = cx - static_cast<double>(ix);
    const double ty = cy - static_cast<double>(iy);
    const double a = f(ix, iy) * (1.0 - tx) + f(ix + 1, iy) * tx;
    const double b = f(ix, iy + 1) * (1.0 - tx) + f(ix + 1, iy + 1) * tx;
    return a * (1.0 - ty) + b * ty;
}

TerrainProfile extract_profile(const Array2D<double>& f, double x0, double y0, double x1,
                               double y1, std::size_t samples, double spacing) {
    if (samples < 2) {
        throw ConfigError{"extract_profile: need at least 2 samples"};
    }
    if (!(spacing > 0.0)) {
        throw ConfigError{"extract_profile: spacing must be positive"};
    }
    TerrainProfile p;
    p.height.resize(samples);
    const double n1 = static_cast<double>(samples - 1);
    for (std::size_t i = 0; i < samples; ++i) {
        const double t = static_cast<double>(i) / n1;
        p.height[i] = bilinear_height(f, x0 + t * (x1 - x0), y0 + t * (y1 - y0));
    }
    p.step = spacing * std::hypot(x1 - x0, y1 - y0) / n1;
    return p;
}

}  // namespace rrs
