#include "propagation/hata.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace rrs {

void HataParams::validate() const {
    if (frequency_mhz < 150.0 || frequency_mhz > 1500.0) {
        throw ConfigError{"HataParams: frequency must be in [150, 1500] MHz"};
    }
    if (base_height_m < 30.0 || base_height_m > 200.0) {
        throw ConfigError{"HataParams: base height must be in [30, 200] m"};
    }
    if (mobile_height_m < 1.0 || mobile_height_m > 10.0) {
        throw ConfigError{"HataParams: mobile height must be in [1, 10] m"};
    }
}

namespace {

/// Mobile-antenna correction a(hm) in dB.
double mobile_correction(const HataParams& p) {
    const double f = p.frequency_mhz;
    const double hm = p.mobile_height_m;
    if (p.environment == HataEnvironment::kUrbanLarge) {
        if (f >= 300.0) {
            const double t = std::log10(11.75 * hm);
            return 3.2 * t * t - 4.97;
        }
        const double t = std::log10(1.54 * hm);
        return 8.29 * t * t - 1.1;
    }
    return (1.1 * std::log10(f) - 0.7) * hm - (1.56 * std::log10(f) - 0.8);
}

}  // namespace

double hata_loss_db(const HataParams& p, double distance_km) {
    p.validate();
    if (!(distance_km > 0.0)) {
        throw ConfigError{"hata_loss_db: distance must be positive"};
    }
    const double f = p.frequency_mhz;
    const double hb = p.base_height_m;
    const double urban = 69.55 + 26.16 * std::log10(f) - 13.82 * std::log10(hb) -
                         mobile_correction(p) +
                         (44.9 - 6.55 * std::log10(hb)) * std::log10(distance_km);
    switch (p.environment) {
        case HataEnvironment::kUrbanLarge:
        case HataEnvironment::kUrbanMedium:
            return urban;
        case HataEnvironment::kSuburban: {
            const double t = std::log10(f / 28.0);
            return urban - 2.0 * t * t - 5.4;
        }
        case HataEnvironment::kOpen: {
            const double lf = std::log10(f);
            return urban - 4.78 * lf * lf + 18.33 * lf - 40.94;
        }
    }
    return urban;  // unreachable
}

double hata_range_km(const HataParams& p, double budget_db) {
    p.validate();
    double lo = 1.0;
    double hi = 20.0;
    if (hata_loss_db(p, lo) >= budget_db) {
        return lo;
    }
    if (hata_loss_db(p, hi) <= budget_db) {
        return hi;
    }
    for (int i = 0; i < 100; ++i) {
        const double mid = 0.5 * (lo + hi);
        (hata_loss_db(p, mid) < budget_db ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
}

}  // namespace rrs
