#pragma once

/// \file rrs.hpp
/// Umbrella header: the full public API of librrs, the random-rough-surface
/// generation library reproducing Uchida, Honda & Yoon, "An Algorithm for
/// Rough Surface Generation with Inhomogeneous Parameters".
///
/// Quick tour:
///   make_gaussian / make_power_law / make_exponential   — spectra (§2.1)
///   DirectDftGenerator                                  — baseline (§2.4 eq. 30)
///   ConvolutionKernel + ConvolutionGenerator            — convolution method (§2.4)
///   PlateMap / CircleMap / PointMap                     — inhomogeneity (§3)
///   InhomogeneousGenerator                              — blended surfaces (§3)
///   StripStreamer                                       — successive computation
///   stats/*                                             — validation estimators
///   io/*                                                — plot-ready output

#include "core/convolution.hpp"
#include "core/direct_dft.hpp"
#include "core/discrete_spectrum.hpp"
#include "core/grid_spec.hpp"
#include "core/hermitian_noise.hpp"
#include "core/inhomogeneous.hpp"
#include "core/kernel.hpp"
#include "core/gradient.hpp"
#include "core/polygon_map.hpp"
#include "core/profile1d.hpp"
#include "core/region_map.hpp"
#include "core/segment_map.hpp"
#include "core/spectrum.hpp"
#include "core/spectrum1d.hpp"
#include "core/spectrum_ops.hpp"
#include "core/streaming.hpp"
#include "core/surface.hpp"
#include "fdtd/fdtd2d.hpp"
#include "grid/array2d.hpp"
#include "grid/permute.hpp"
#include "grid/rect.hpp"
#include "io/table.hpp"
#include "io/writers.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "propagation/diffraction.hpp"
#include "propagation/hata.hpp"
#include "propagation/link_budget.hpp"
#include "propagation/profile_path.hpp"
#include "rng/engines.hpp"
#include "rng/gaussian.hpp"
#include "rng/hash.hpp"
#include "service/metrics.hpp"
#include "service/tile_cache.hpp"
#include "service/tile_key.hpp"
#include "service/tile_service.hpp"
#include "stats/autocorr.hpp"
#include "stats/gof.hpp"
#include "stats/moments.hpp"
#include "stats/periodogram.hpp"
#include "stats/ensemble.hpp"
#include "stats/variogram.hpp"
