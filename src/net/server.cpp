#include "net/server.hpp"

#include <chrono>

#include "core/error.hpp"
#include "core/validate.hpp"
#include "obs/trace.hpp"

namespace rrs::net {

namespace {

std::uint64_t now_us() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

HttpServer::HttpServer(Router router, Options opt)
    : router_(std::move(router)),
      opt_(std::move(opt)),
      registry_(opt_.registry != nullptr ? *opt_.registry
                                         : obs::MetricsRegistry::global()),
      m_accepted_(registry_.counter("net.accepted")),
      m_requests_(registry_.counter("net.requests")),
      m_shed_(registry_.counter("net.shed")),
      m_2xx_(registry_.counter("net.status_2xx")),
      m_4xx_(registry_.counter("net.status_4xx")),
      m_5xx_(registry_.counter("net.status_5xx")),
      m_bytes_out_(registry_.counter("net.bytes_out")),
      m_active_(registry_.gauge("net.active")),
      m_ready_(registry_.gauge("net.ready")),
      m_latency_(registry_.histogram("net.latency")) {
    check_positive_count(static_cast<std::int64_t>(opt_.workers), "workers",
                         {"net", "HttpServer"});
    check_positive_count(opt_.read_timeout_ms, "read_timeout_ms",
                         {"net", "HttpServer"});
    check_positive_count(opt_.write_timeout_ms, "write_timeout_ms",
                         {"net", "HttpServer"});
    check_positive_count(static_cast<std::int64_t>(opt_.max_header_bytes),
                         "max_header_bytes", {"net", "HttpServer"});
    if (opt_.max_connections == 0) {
        opt_.max_connections = opt_.workers;
    }
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
    if (started_.exchange(true, std::memory_order_acq_rel)) {
        throw StateError{"HttpServer::start on an already-started server",
                         {"net", "HttpServer"}};
    }
    try {
        listener_ = listen_tcp(opt_.host, opt_.port, opt_.listen_backlog);
        port_.store(local_port(listener_), std::memory_order_release);
        pool_ = std::make_unique<ThreadPool>(opt_.workers);
        acceptor_ = std::thread([this] { accept_loop(); });
        m_ready_.set(1);  // accepting traffic: /readyz may say yes
    } catch (...) {
        listener_.close();
        pool_.reset();
        started_.store(false, std::memory_order_release);
        throw;
    }
}

void HttpServer::stop() {
    const std::lock_guard stop_lock(stop_mutex_);
    if (!started_.load(std::memory_order_acquire) ||
        stopped_.load(std::memory_order_acquire)) {
        stopped_.store(true, std::memory_order_release);
        return;
    }
    stopping_.store(true, std::memory_order_release);
    m_ready_.set(0);  // draining: readiness drops before the drain begins
    if (acceptor_.joinable()) {
        acceptor_.join();  // no further admissions once joined
    }
    {
        // Nudge every connection that is NOT mid-request: a blocked reader
        // wakes immediately with EOF instead of waiting out its deadline.
        // Requests already being handled are left to finish and be answered.
        const std::lock_guard lock(conns_mutex_);
        for (const std::shared_ptr<ConnSlot>& slot : conns_) {
            if (!slot->handling) {
                shutdown_both(slot->fd);
            }
        }
    }
    {
        std::unique_lock lock(conns_mutex_);
        drained_cv_.wait(lock, [this] { return conns_.empty(); });
    }
    pool_.reset();  // joins the (now idle) workers
    listener_.close();
    stopped_.store(true, std::memory_order_release);
}

void HttpServer::accept_loop() {
    try {
        while (!stopping_.load(std::memory_order_acquire)) {
            Socket conn = accept_with_timeout(listener_, /*timeout_ms=*/50);
            if (!conn.valid()) {
                continue;
            }
            RRS_TRACE_SPAN("net.accept");
            m_accepted_.add();
            if (active_.load(std::memory_order_acquire) >=
                static_cast<std::int64_t>(opt_.max_connections)) {
                shed_connection(std::move(conn));
                continue;
            }
            active_.fetch_add(1, std::memory_order_acq_rel);
            m_active_.add(1);
            auto slot = std::make_shared<ConnSlot>(conn.release());
            {
                const std::lock_guard lock(conns_mutex_);
                conns_.push_back(slot);
            }
            try {
                pool_->submit([this, slot] { serve_connection(slot); });
            } catch (const StateError&) {
                // Pool refused (we are stopping): undo the admission.
                unregister(slot);
                Socket closer{slot->fd};
                closer.close();
                active_.fetch_sub(1, std::memory_order_acq_rel);
                m_active_.add(-1);
            }
        }
    } catch (const Error&) {
        // Listener breakage: the server can no longer accept; in-flight
        // connections keep being served and stop() still drains cleanly.
        m_ready_.set(0);
    }
}

void HttpServer::shed_connection(Socket conn) {
    try {
        set_send_timeout(conn, opt_.write_timeout_ms);
    } catch (const Error&) {
        return;  // connection already dead — nothing to shed a response to
    }
    HttpResponse resp =
        error_response(503, "server at connection capacity — retry shortly");
    resp.close = true;
    resp.extra_headers.emplace_back("Retry-After", "1");
    m_requests_.add();
    m_shed_.add();
    const std::string wire = serialize_response(resp, /*keep_alive=*/false);
    if (send_all(conn, wire.data(), wire.size())) {
        m_bytes_out_.add(wire.size());
    }
    // `conn` closes on return.
}

void HttpServer::count_response(int status) noexcept {
    m_requests_.add();
    if (status < 400) {
        m_2xx_.add();
    } else if (status < 500) {
        m_4xx_.add();
    } else {
        m_5xx_.add();
    }
}

void HttpServer::set_handling(const std::shared_ptr<ConnSlot>& slot, bool handling) {
    const std::lock_guard lock(conns_mutex_);
    slot->handling = handling;
}

void HttpServer::unregister(const std::shared_ptr<ConnSlot>& slot) {
    const std::lock_guard lock(conns_mutex_);
    conns_.remove(slot);
    if (conns_.empty()) {
        drained_cv_.notify_all();
    }
}

void HttpServer::serve_connection(const std::shared_ptr<ConnSlot>& slot) {
    Socket sock{slot->fd};
    try {
        set_recv_timeout(sock, opt_.read_timeout_ms);
        set_send_timeout(sock, opt_.write_timeout_ms);
        std::string carry;
        bool close_now = false;
        while (!close_now) {
            std::string head;
            const HeadResult hr =
                read_head(sock, carry, opt_.max_header_bytes, head);

            if (hr.status != HeadStatus::kOk) {
                // A peer that never sent a byte of this request is owed
                // nothing (idle keep-alive close / idle timeout / drain
                // nudge); a peer caught mid-head gets the matching 4xx.
                if (hr.got_bytes) {
                    int status = 400;
                    const char* message = "truncated request";
                    if (hr.status == HeadStatus::kTimedOut) {
                        status = 408;
                        message = "timed out waiting for the request head";
                    } else if (hr.status == HeadStatus::kTooLarge) {
                        status = 431;
                        message = "request head too large";
                    }
                    HttpResponse resp = error_response(status, message);
                    count_response(status);
                    const std::string wire =
                        serialize_response(resp, /*keep_alive=*/false);
                    if (send_all(sock, wire.data(), wire.size())) {
                        m_bytes_out_.add(wire.size());
                    }
                }
                break;
            }

            // Full head received: this request is now in-flight — the drain
            // sweep will let it finish.
            set_handling(slot, true);
            const std::uint64_t t0 = now_us();
            HttpResponse resp;
            bool request_keep_alive = false;
            bool aborted = false;
            try {
                HttpRequest req;
                {
                    RRS_TRACE_SPAN("net.parse");
                    req = parse_request_head(
                        head, RequestLimits{opt_.max_header_bytes, 100});
                    request_keep_alive = req.keep_alive;
                    const std::size_t body_len = req.content_length();
                    if (body_len > opt_.max_body_bytes) {
                        throw HttpError{413, "request body exceeds " +
                                                 std::to_string(opt_.max_body_bytes) +
                                                 " bytes"};
                    }
                    if (body_len > 0 &&
                        !read_exact(sock, carry, body_len, nullptr)) {
                        aborted = true;  // body never arrived — owe nothing
                    }
                }
                if (!aborted) {
                    RRS_TRACE_SPAN("net.handle");
                    if (req.method != "GET") {
                        resp = error_response(
                            405, "method " + req.method + " not supported");
                        resp.extra_headers.emplace_back("Allow", "GET");
                    } else {
                        resp = router_.dispatch(req);
                    }
                }
            } catch (const HttpError& e) {
                resp = error_response(e.status(), e.what());
            } catch (const ConfigError& e) {
                resp = error_response(400, e.what());
            } catch (const BoundsError& e) {
                resp = error_response(400, e.what());
            } catch (const Error& e) {
                resp = error_response(500, e.what());
            } catch (const std::exception& e) {
                resp = error_response(500, e.what());
            }
            if (aborted) {
                set_handling(slot, false);
                break;
            }

            const bool keep_alive =
                request_keep_alive && !resp.close &&
                !stopping_.load(std::memory_order_acquire);
            // Count BEFORE writing: once the peer can observe the response,
            // the accounting identity must already include it.
            count_response(resp.status);
            {
                RRS_TRACE_SPAN("net.write");
                const std::string wire = serialize_response(resp, keep_alive);
                if (send_all(sock, wire.data(), wire.size())) {
                    m_bytes_out_.add(wire.size());
                } else {
                    close_now = true;  // peer gone or write deadline expired
                }
            }
            m_latency_.record(now_us() - t0);
            set_handling(slot, false);
            if (!keep_alive) {
                close_now = true;
            }
        }
    } catch (...) {
        // Connection-local failure (e.g. setsockopt on a dead socket):
        // abandon this connection; the accounting below still runs.
    }
    unregister(slot);
    sock.close();  // after unregister, so the drain sweep never sees a stale fd
    active_.fetch_sub(1, std::memory_order_acq_rel);
    m_active_.add(-1);
}

}  // namespace rrs::net
