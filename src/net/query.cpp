#include "net/query.hpp"

#include <charconv>
#include <string>

namespace rrs::net {

std::int64_t int_param(const HttpRequest& req, const char* name) {
    const std::string* raw = req.query_param(name);
    if (raw == nullptr) {
        throw HttpError{400, std::string("missing query parameter '") + name + "'"};
    }
    std::int64_t value = 0;
    const char* first = raw->data();
    const char* last = first + raw->size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) {
        throw HttpError{400, std::string("query parameter '") + name +
                                 "' is not an integer: '" + *raw + "'"};
    }
    return value;
}

std::int64_t int_param_or(const HttpRequest& req, const char* name,
                          std::int64_t fallback) {
    return req.query_param(name) == nullptr ? fallback : int_param(req, name);
}

std::int32_t zoom_param(const HttpRequest& req, const char* name) {
    const std::int64_t z = int_param_or(req, name, 0);
    if (z < 0 || z > kMaxZoom) {
        throw HttpError{400, std::string("query parameter '") + name +
                                 "' must be in [0, " + std::to_string(kMaxZoom) +
                                 "]"};
    }
    return static_cast<std::int32_t>(z);
}

const char* encoding_name(WireEncoding enc) noexcept {
    switch (enc) {
        case WireEncoding::kI16:
            return "i16";
        case WireEncoding::kF64:
            return "f64";
        case WireEncoding::kF32:
            break;
    }
    return "f32";
}

WireEncoding encoding_param(const HttpRequest& req) {
    const std::string* raw = req.query_param("q");
    if (raw == nullptr || *raw == "f32") {
        return WireEncoding::kF32;
    }
    if (*raw == "i16") {
        return WireEncoding::kI16;
    }
    if (*raw == "f64") {
        return WireEncoding::kF64;
    }
    throw HttpError{400, "query parameter 'q' must be f32, i16, or f64 (got '" +
                             *raw + "')"};
}

bool etag_matches(std::string_view header_value, std::string_view etag) {
    std::size_t pos = 0;
    while (pos < header_value.size()) {
        std::size_t comma = header_value.find(',', pos);
        if (comma == std::string_view::npos) {
            comma = header_value.size();
        }
        std::string_view item = header_value.substr(pos, comma - pos);
        while (!item.empty() && (item.front() == ' ' || item.front() == '\t')) {
            item.remove_prefix(1);
        }
        while (!item.empty() && (item.back() == ' ' || item.back() == '\t')) {
            item.remove_suffix(1);
        }
        if (item == "*" || item == etag) {
            return true;
        }
        pos = comma + 1;
    }
    return false;
}

TileQuery parse_tile_query(const HttpRequest& req) {
    TileQuery q;
    q.key = TileKey{int_param(req, "tx"), int_param(req, "ty"),
                    zoom_param(req, "z")};
    q.encoding = encoding_param(req);
    if (const std::string* cached = req.query_param("cached"); cached != nullptr) {
        if (*cached == "1") {
            q.cached_only = true;
        } else if (*cached == "0") {
            q.cached_only = false;
        } else {
            throw HttpError{400, "query parameter 'cached' must be 0 or 1 (got '" +
                                     *cached + "')"};
        }
    }
    return q;
}

WindowQuery parse_window_query(const HttpRequest& req) {
    WindowQuery q;
    q.region = Rect{int_param(req, "x0"), int_param(req, "y0"),
                    int_param(req, "nx"), int_param(req, "ny")};
    if (q.region.nx < 0 || q.region.ny < 0) {
        throw HttpError{400, "window extents must be non-negative"};
    }
    q.encoding = encoding_param(req);
    return q;
}

PyramidQuery parse_pyramid_query(const HttpRequest& req) {
    PyramidQuery q;
    const std::int32_t z = zoom_param(req, "z");
    q.min_z = zoom_param(req, "min_z");
    if (q.min_z > z) {
        throw HttpError{400, "min_z must not exceed z"};
    }
    q.top = TileKey{int_param(req, "tx"), int_param(req, "ty"), z};
    q.encoding = encoding_param(req);
    if (q.encoding == WireEncoding::kI16) {
        throw HttpError{400,
                        "q=i16 is per-tile quantized and not available for "
                        "pyramids; use f32 or f64"};
    }
    return q;
}

}  // namespace rrs::net
