#pragma once

/// \file client.hpp
/// Small blocking HTTP/1.1 GET client over the same socket layer the
/// server uses.  Exists for the repo's own closed loop — tests drive the
/// server end-to-end with it, bench/net_load.cpp generates load with it,
/// and tools/rrsquery wraps it for the command line.  It is intentionally
/// not a general user agent: GET only, numeric IPv4, `Content-Length`
/// bodies only (which is everything HttpServer emits).
///
/// Connections are kept alive across `get()` calls; a stale keep-alive
/// connection (server closed it between requests) is transparently
/// reconnected once.  All failures throw IoError — a non-2xx *response* is
/// not a failure, callers inspect `ClientResponse::status`.
///
/// Resilience (DESIGN.md §13): an optional RetryPolicy makes `get()` retry
/// transport failures (IoError, including ConnectError) and 503 responses
/// with capped exponential backoff + decorrelated jitter, under an overall
/// deadline budget.  Retrying is safe precisely because this client is
/// GET-only — every request is idempotent by construction.  A 503 with a
/// `Retry-After: N` header waits N seconds instead of the backoff draw.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/socket.hpp"

namespace rrs::obs {
class MetricsRegistry;
class Counter;
}  // namespace rrs::obs

namespace rrs::net {

/// The retry deadline budget ran out before a response was obtained.
/// IS-A IoError (catch it *before* IoError to tell the cases apart);
/// rrsquery maps it to its own exit code.
class DeadlineError : public IoError {
public:
    explicit DeadlineError(std::string message, ErrorContext context = {"net"})
        : IoError(std::move(message), std::move(context)) {}
};

/// Retry schedule for HttpClient::get().  The default policy (one attempt,
/// no deadline) reproduces the historical fail-fast behaviour.
struct RetryPolicy {
    int max_attempts = 1;      ///< total tries, >= 1 (1 = no retries)
    int base_backoff_ms = 10;  ///< first backoff delay
    int max_backoff_ms = 2000; ///< backoff cap
    int deadline_ms = 0;       ///< overall budget across attempts (0 = none)
    std::uint64_t jitter_seed = 1;  ///< drives the deterministic jitter
};

/// One parsed response (header names lower-cased).
struct ClientResponse {
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    const std::string* header(std::string_view name) const noexcept;
    bool ok() const noexcept { return status >= 200 && status < 300; }
};

/// Parse "HTTP/1.x STATUS reason" + header lines into a ClientResponse
/// (body left empty — the caller reads it from the socket).  Pure parse
/// over untrusted server bytes (fuzz surface, DESIGN.md §16): throws
/// IoError on a malformed status line, malformed header, or any embedded
/// control byte (NUL, lone CR/LF) — never anything outside the taxonomy.
ClientResponse parse_response_head(std::string_view head);

/// See file comment.
class HttpClient {
public:
    struct Options {
        int timeout_ms = 5000;  ///< connect + per-recv + per-send deadline
        std::size_t max_response_bytes = std::size_t{256} << 20;
        RetryPolicy retry;  ///< see file comment; default = fail fast
        /// When set, retry traffic is counted here: `net.client.retries`
        /// and `net.client.deadline_exhausted`.
        obs::MetricsRegistry* registry = nullptr;
    };

    /// Lazily connecting: the first get() dials `host:port`.
    HttpClient(std::string host, std::uint16_t port);
    HttpClient(std::string host, std::uint16_t port, Options opt);

    HttpClient(HttpClient&&) = default;
    HttpClient& operator=(HttpClient&&) = default;

    /// Extra request headers, sent verbatim after Host/Connection (e.g.
    /// {"If-None-Match", "\"...\""} for conditional tile GETs).
    using HeaderList = std::vector<std::pair<std::string, std::string>>;

    /// Issue one GET for `target` (e.g. "/v1/tile?tx=0&ty=1") and read the
    /// full response.  Reconnects a stale keep-alive connection once.
    /// Under a RetryPolicy, additionally retries IoError failures and 503
    /// responses with backoff until the attempts or the deadline budget run
    /// out — then rethrows the last IoError (or returns the last 503).
    /// Throws DeadlineError when the budget expires first.
    ClientResponse get(const std::string& target, const HeaderList& headers = {});

    /// Drop the connection (the next get() reconnects).
    void close() noexcept;

    bool connected() const noexcept { return sock_.valid(); }

    const std::string& host() const noexcept { return host_; }
    std::uint16_t port() const noexcept { return port_; }

private:
    ClientResponse get_once(const std::string& target, const HeaderList& headers);
    ClientResponse roundtrip(const std::string& target, const HeaderList& headers);
    [[noreturn]] void exhaust_deadline(const std::string& target);

    std::string host_;
    std::uint16_t port_;
    Options opt_;
    Socket sock_;
    std::string carry_;
    obs::Counter* retries_ = nullptr;             ///< net.client.retries
    obs::Counter* deadline_exhausted_ = nullptr;  ///< net.client.deadline_exhausted
};

}  // namespace rrs::net
