#pragma once

/// \file client.hpp
/// Small blocking HTTP/1.1 GET client over the same socket layer the
/// server uses.  Exists for the repo's own closed loop — tests drive the
/// server end-to-end with it, bench/net_load.cpp generates load with it,
/// and tools/rrsquery wraps it for the command line.  It is intentionally
/// not a general user agent: GET only, numeric IPv4, `Content-Length`
/// bodies only (which is everything HttpServer emits).
///
/// Connections are kept alive across `get()` calls; a stale keep-alive
/// connection (server closed it between requests) is transparently
/// reconnected once.  All failures throw IoError — a non-2xx *response* is
/// not a failure, callers inspect `ClientResponse::status`.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/socket.hpp"

namespace rrs::net {

/// One parsed response (header names lower-cased).
struct ClientResponse {
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    const std::string* header(std::string_view name) const noexcept;
    bool ok() const noexcept { return status >= 200 && status < 300; }
};

/// See file comment.
class HttpClient {
public:
    struct Options {
        int timeout_ms = 5000;  ///< connect + per-recv + per-send deadline
        std::size_t max_response_bytes = std::size_t{256} << 20;
    };

    /// Lazily connecting: the first get() dials `host:port`.
    HttpClient(std::string host, std::uint16_t port);
    HttpClient(std::string host, std::uint16_t port, Options opt);

    HttpClient(HttpClient&&) = default;
    HttpClient& operator=(HttpClient&&) = default;

    /// Issue one GET for `target` (e.g. "/v1/tile?tx=0&ty=1") and read the
    /// full response.  Reconnects a stale keep-alive connection once.
    ClientResponse get(const std::string& target);

    /// Drop the connection (the next get() reconnects).
    void close() noexcept;

    bool connected() const noexcept { return sock_.valid(); }

    const std::string& host() const noexcept { return host_; }
    std::uint16_t port() const noexcept { return port_; }

private:
    ClientResponse roundtrip(const std::string& target);

    std::string host_;
    std::uint16_t port_;
    Options opt_;
    Socket sock_;
    std::string carry_;
};

}  // namespace rrs::net
