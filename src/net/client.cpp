#include "net/client.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <thread>

#include "core/error.hpp"
#include "fault/backoff.hpp"
#include "net/http.hpp"
#include "obs/metrics.hpp"

namespace rrs::net {

namespace {

[[noreturn]] void fail(const std::string& message) {
    throw IoError{message, {"net", "HttpClient"}};
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

std::string_view trim(std::string_view s) noexcept {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
        s.remove_suffix(1);
    }
    return s;
}

/// A byte that must never appear inside a status or header line: any
/// control byte other than horizontal tab.  Catches embedded NUL and lone
/// CR/LF (the split below consumes well-formed "\r\n" pairs, so any CR or
/// LF still inside a line is a smuggling attempt or corruption).
bool forbidden_in_line(char ch) noexcept {
    const auto c = static_cast<unsigned char>(ch);
    return (c < 0x20 && c != '\t') || c == 0x7f;
}

/// A `Retry-After: N` value in whole seconds, as milliseconds; -1 when the
/// header is absent, non-numeric (HTTP-date form unsupported), or absurd.
int retry_after_ms(const ClientResponse& resp) {
    const std::string* value = resp.header("retry-after");
    if (value == nullptr || value->empty() || value->size() > 4 ||
        !std::all_of(value->begin(), value->end(), [](unsigned char c) {
            return std::isdigit(c) != 0;
        })) {
        return -1;
    }
    return static_cast<int>(std::stoul(*value)) * 1000;
}

}  // namespace

ClientResponse parse_response_head(std::string_view head) {
    ClientResponse resp;
    std::size_t eol = head.find("\r\n");
    const std::string_view line =
        eol == std::string_view::npos ? head : head.substr(0, eol);
    if (std::any_of(line.begin(), line.end(), forbidden_in_line)) {
        fail("control byte in status line");
    }
    if (line.substr(0, 5) != "HTTP/") {
        fail("malformed status line '" + std::string(line) + "'");
    }
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos || sp1 + 4 > line.size()) {
        fail("malformed status line '" + std::string(line) + "'");
    }
    const std::string_view code = line.substr(sp1 + 1, 3);
    if (code.size() != 3 ||
        !std::all_of(code.begin(), code.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; })) {
        fail("malformed status code in '" + std::string(line) + "'");
    }
    resp.status = (code[0] - '0') * 100 + (code[1] - '0') * 10 + (code[2] - '0');

    std::size_t pos = eol == std::string_view::npos ? head.size() : eol + 2;
    while (pos < head.size()) {
        eol = head.find("\r\n", pos);
        if (eol == std::string_view::npos) {
            eol = head.size();
        }
        const std::string_view raw = head.substr(pos, eol - pos);
        pos = eol + 2;
        if (raw.empty()) {
            continue;
        }
        if (std::any_of(raw.begin(), raw.end(), forbidden_in_line)) {
            fail("control byte in response header '" + std::string(raw) + "'");
        }
        const std::size_t colon = raw.find(':');
        if (colon == std::string_view::npos || colon == 0) {
            fail("malformed response header '" + std::string(raw) + "'");
        }
        resp.headers.emplace_back(to_lower(raw.substr(0, colon)),
                                  std::string(trim(raw.substr(colon + 1))));
    }
    return resp;
}

const std::string* ClientResponse::header(std::string_view name) const noexcept {
    for (const auto& [key, value] : headers) {
        if (key == name) {
            return &value;
        }
    }
    return nullptr;
}

HttpClient::HttpClient(std::string host, std::uint16_t port)
    : HttpClient(std::move(host), port, Options{}) {}

HttpClient::HttpClient(std::string host, std::uint16_t port, Options opt)
    : host_(std::move(host)), port_(port), opt_(opt) {
    if (opt_.timeout_ms <= 0) {
        throw ConfigError{"timeout_ms must be positive", {"net", "HttpClient"}};
    }
    if (opt_.retry.max_attempts < 1) {
        throw ConfigError{"retry.max_attempts must be >= 1", {"net", "HttpClient"}};
    }
    if (opt_.retry.deadline_ms < 0) {
        throw ConfigError{"retry.deadline_ms must be >= 0", {"net", "HttpClient"}};
    }
    if (opt_.retry.base_backoff_ms <= 0 ||
        opt_.retry.max_backoff_ms < opt_.retry.base_backoff_ms) {
        throw ConfigError{"retry backoff bounds must satisfy 0 < base <= max",
                          {"net", "HttpClient"}};
    }
    if (opt_.registry != nullptr) {
        retries_ = &opt_.registry->counter("net.client.retries");
        deadline_exhausted_ =
            &opt_.registry->counter("net.client.deadline_exhausted");
    }
}

void HttpClient::close() noexcept {
    sock_.close();
    carry_.clear();
}

void HttpClient::exhaust_deadline(const std::string& target) {
    if (deadline_exhausted_ != nullptr) {
        deadline_exhausted_->add();
    }
    throw DeadlineError{"deadline of " + std::to_string(opt_.retry.deadline_ms) +
                            " ms exhausted for '" + target + "'",
                        {"net", "HttpClient"}};
}

ClientResponse HttpClient::get(const std::string& target,
                               const HeaderList& headers) {
    using SteadyClock = std::chrono::steady_clock;
    const RetryPolicy& rp = opt_.retry;
    if (rp.max_attempts == 1 && rp.deadline_ms == 0) {
        return get_once(target, headers);  // historical fail-fast path
    }
    const bool budgeted = rp.deadline_ms > 0;
    const SteadyClock::time_point deadline =
        SteadyClock::now() + std::chrono::milliseconds(rp.deadline_ms);
    fault::Backoff backoff{
        fault::BackoffPolicy{rp.base_backoff_ms, rp.max_backoff_ms},
        rp.jitter_seed};
    for (int attempt = 1;; ++attempt) {
        const bool last = attempt >= rp.max_attempts;
        int wait_ms = 0;
        try {
            ClientResponse resp = get_once(target, headers);
            if (resp.status != 503 || last) {
                return resp;  // non-503 responses (incl. 4xx/5xx) are final
            }
            const int hinted = retry_after_ms(resp);
            wait_ms = hinted >= 0 ? hinted : backoff.next_ms();
        } catch (const DeadlineError&) {
            throw;  // IS-A IoError: must not be swallowed into a retry
        } catch (const IoError&) {
            if (last) {
                throw;
            }
            wait_ms = backoff.next_ms();
        }
        if (budgeted) {
            const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                                  deadline - SteadyClock::now())
                                  .count();
            if (left <= 0 || wait_ms > left) {
                exhaust_deadline(target);  // the wait would overrun the budget
            }
        }
        if (retries_ != nullptr) {
            retries_->add();
        }
        if (wait_ms > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
        }
    }
}

ClientResponse HttpClient::get_once(const std::string& target,
                                    const HeaderList& headers) {
    const bool reused = sock_.valid();
    if (!reused) {
        sock_ = connect_tcp(host_, port_, opt_.timeout_ms);
        carry_.clear();
    }
    try {
        return roundtrip(target, headers);
    } catch (const IoError&) {
        if (!reused) {
            throw;
        }
        // Stale keep-alive connection: the server closed it between
        // requests.  Reconnect once and retry on a fresh socket.
        close();
        sock_ = connect_tcp(host_, port_, opt_.timeout_ms);
        return roundtrip(target, headers);
    }
}

ClientResponse HttpClient::roundtrip(const std::string& target,
                                     const HeaderList& headers) {
    if (target.empty() || target.front() != '/') {
        throw ConfigError{"request target must start with '/'",
                          {"net", "HttpClient"}};
    }
    std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host_ + ":" +
                          std::to_string(port_) + "\r\nConnection: keep-alive\r\n";
    for (const auto& [name, value] : headers) {
        request += name + ": " + value + "\r\n";
    }
    request += "\r\n";
    if (!send_all(sock_, request.data(), request.size())) {
        close();
        fail("send failed for '" + target + "'");
    }
    std::string head;
    const HeadResult hr =
        read_head(sock_, carry_, /*max_bytes=*/std::size_t{64} << 10, head);
    if (hr.status != HeadStatus::kOk) {
        close();
        fail(hr.status == HeadStatus::kTimedOut
                 ? "timed out waiting for the response head"
                 : "connection closed before a response arrived");
    }
    ClientResponse resp = parse_response_head(head);

    std::size_t body_len = 0;
    if (const std::string* cl = resp.header("content-length")) {
        // 18 digits cap: anything longer would overflow (or absurdly exceed
        // any response cap) — reject before std::stoull can throw a
        // non-taxonomy std::out_of_range.
        if (cl->empty() || cl->size() > 18 ||
            !std::all_of(cl->begin(), cl->end(), [](unsigned char c) {
                return std::isdigit(c) != 0;
            })) {
            close();
            fail("malformed Content-Length '" + *cl + "'");
        }
        body_len = std::stoull(*cl);
    }
    if (body_len > opt_.max_response_bytes) {
        close();
        fail("response of " + std::to_string(body_len) +
             " bytes exceeds the client cap");
    }
    resp.body.reserve(body_len);
    if (!read_exact(sock_, carry_, body_len, &resp.body)) {
        close();
        fail("connection lost mid-body");
    }
    const std::string* connection = resp.header("connection");
    if (connection != nullptr && to_lower(*connection) == "close") {
        close();
    }
    return resp;
}

}  // namespace rrs::net
