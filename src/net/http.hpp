#pragma once

/// \file http.hpp
/// HTTP/1.1-subset messages: request parsing, response serialization, and
/// the HttpError taxonomy type that carries a status code.
///
/// The subset is deliberately small but strict — exactly what a read-only
/// tile API needs (DESIGN.md §12):
///  * Requests: `GET <target> HTTP/1.0|1.1` + headers.  Other methods parse
///    fine (the server answers 405); malformed grammar is a 400, an
///    unsupported HTTP major version a 505, an oversized head a 431.
///  * Targets: absolute paths with an optional query string; `%XX` and `+`
///    decoding in both path and query values.
///  * Responses: status line + `Content-Length` + `Connection` (+ caller
///    headers), then the body.  No chunked encoding, no trailers.
///
/// Parsing is pure (bytes in, struct out) so every negative path is
/// unit-testable without a socket; the wire loops live in server.cpp /
/// client.cpp.  All parse failures throw HttpError — an rrs::ConfigError
/// (client-fault) carrying the HTTP status the server should answer with,
/// following the SceneError precedent of a subsystem-specific ConfigError
/// subclass.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/error.hpp"

namespace rrs::net {

/// Protocol-level failure with the HTTP status code the peer should see.
/// IS-A ConfigError (and therefore rrs::Error / std::invalid_argument).
class HttpError : public ConfigError {
public:
    HttpError(int status, std::string message, ErrorContext context = {"http"})
        : ConfigError(std::move(message), std::move(context)), status_(status) {}

    int status() const noexcept { return status_; }

private:
    int status_;
};

/// One parsed request head.  Header names are lower-cased at parse time;
/// values keep their case with surrounding whitespace trimmed.
struct HttpRequest {
    std::string method;  ///< verbatim token, e.g. "GET"
    std::string target;  ///< raw request target, e.g. "/v1/tile?tx=0&ty=1"
    std::string path;    ///< decoded path component, e.g. "/v1/tile"
    int version_minor = 1;  ///< 0 or 1 (HTTP/1.x)
    std::map<std::string, std::string> query;  ///< decoded query parameters
    std::vector<std::pair<std::string, std::string>> headers;
    bool keep_alive = true;  ///< per Connection header / version default

    /// First header with this (lower-case) name, or nullptr.
    const std::string* header(std::string_view name) const noexcept;

    /// Query parameter by name, or nullptr.
    const std::string* query_param(std::string_view name) const noexcept;

    /// Content-Length (0 when absent); throws HttpError(400) on garbage.
    std::size_t content_length() const;
};

/// One response to serialize.  `Content-Length` and `Connection` are
/// emitted by serialize_response; everything else goes through
/// `extra_headers`.
struct HttpResponse {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
    std::vector<std::pair<std::string, std::string>> extra_headers;
    bool close = false;  ///< force `Connection: close` regardless of request

    static HttpResponse text(int status, std::string body);
    static HttpResponse json(int status, std::string body);
    static HttpResponse octets(std::string body);
};

/// Canonical reason phrase ("OK", "Not Found", ...; "Unknown" otherwise).
const char* status_reason(int status) noexcept;

/// Parse limits a server imposes on one request head.
struct RequestLimits {
    std::size_t max_header_bytes = 8192;
    std::size_t max_headers = 100;
};

/// Parse one request head (everything before the blank line, CRLF-separated).
/// Throws HttpError(400 | 431 | 505) on violations; does not enforce any
/// method policy — that is the server's call.
HttpRequest parse_request_head(std::string_view head, const RequestLimits& limits = {});

/// Decode `%XX` escapes and `+` (as space); throws HttpError(400) on
/// malformed escapes.
std::string url_decode(std::string_view s);

/// Serialize a response head + body.  `keep_alive` is the connection
/// decision already made by the server (request wish && !r.close && !drain).
std::string serialize_response(const HttpResponse& r, bool keep_alive);

/// Minimal JSON string escaping (backslash, quote, control characters).
std::string json_escape(std::string_view s);

/// The canonical error payload: {"error":<status>,"message":"..."}.
HttpResponse error_response(int status, std::string_view message);

}  // namespace rrs::net
