#include "net/tile_routes.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/error.hpp"
#include "fault/circuit_breaker.hpp"
#include "net/http.hpp"
#include "net/query.hpp"
#include "obs/trace.hpp"
#include "service/tile_cache.hpp"
#include "service/tile_key.hpp"

namespace rrs::net {

namespace {

/// Shared routing state, captured by every handler.  Structurally immutable
/// after make_tile_router; the breakers and the stale store are internally
/// synchronized, so concurrent handlers share them freely.
struct RouteState {
    SceneServices scenes;
    obs::MetricsRegistry* registry = nullptr;
    TileRoutesOptions opt;
    /// Per-scene generation breakers (empty when breaker_failures == 0).
    std::map<std::string, std::unique_ptr<fault::CircuitBreaker>> breakers;
    /// Last-known-good tiles for degradation (null when stale_bytes == 0).
    std::shared_ptr<TileCache> stale;
    obs::Counter* short_circuited = nullptr;  ///< net.breaker.short_circuited
    obs::Counter* stale_served = nullptr;     ///< net.stale_served
    obs::Counter* not_modified = nullptr;     ///< net.not_modified (304 answers)
    obs::Gauge* ready = nullptr;              ///< net.ready (set by HttpServer)

    fault::CircuitBreaker* breaker_for(const std::string& scene) const {
        const auto it = breakers.find(scene);
        return it == breakers.end() ? nullptr : it->second.get();
    }

    /// Resolve the scene a request addresses: explicit `scene=` parameter,
    /// or the sole registered scene when there is exactly one.
    std::pair<const std::string*, TileService*> resolve(const HttpRequest& req) const {
        const std::string* name = req.query_param("scene");
        if (name == nullptr) {
            if (scenes.size() == 1) {
                const auto& [only_name, only_service] = *scenes.begin();
                return {&only_name, only_service.get()};
            }
            throw HttpError{400,
                            "query parameter 'scene' is required when more "
                            "than one scene is served"};
        }
        const auto it = scenes.find(*name);
        if (it == scenes.end()) {
            throw HttpError{404, "unknown scene '" + *name + "'"};
        }
        return {&it->first, it->second.get()};
    }
};

/// A breaker-denied 503: tells the client when the next probe will run.
HttpResponse short_circuit_response(const fault::CircuitBreaker& breaker) {
    HttpResponse resp = error_response(503, "circuit breaker open");
    const int secs = (breaker.open_remaining_ms() + 999) / 1000;
    resp.extra_headers.emplace_back("Retry-After",
                                    std::to_string(secs > 0 ? secs : 1));
    return resp;
}

/// Serve the last known good tile, if the stale store holds one.
/// Returns an empty optional-like pair (bool found, response).
bool try_stale(const RouteState& state, const TileAddress& address,
               const TileKey& key, const std::string& scene,
               const TileService& service, WireEncoding enc, HttpResponse& out) {
    if (state.stale == nullptr) {
        return false;
    }
    const TilePtr tile = state.stale->find(address);
    if (tile == nullptr) {
        return false;
    }
    if (state.stale_served != nullptr) {
        state.stale_served->add();
    }
    out = surface_response(*tile, tile_rect(service.shape(), key), scene,
                           service.fingerprint(), enc);
    out.extra_headers.emplace_back("X-RRS-Stale", "1");
    return true;
}

/// 413 unless the base-lattice footprint behind `points` zoom-z samples
/// fits the window cap — a cold zoom tile costs its whole footprint to
/// derive, so it is admission-checked like the equivalent window.
void check_footprint(std::uint64_t points, std::int32_t z, std::uint64_t cap) {
    std::uint64_t footprint = points;
    for (std::int32_t i = 0; i < z && footprint <= cap; ++i) {
        footprint *= 4;
    }
    if (footprint > cap) {
        throw HttpError{413, "zoom-" + std::to_string(z) +
                                 " request covers more than the cap of " +
                                 std::to_string(cap) + " base-lattice points"};
    }
}

HttpResponse handle_tile(const RouteState& state, const HttpRequest& req) {
    const auto [scene, service] = state.resolve(req);
    const TileQuery query = parse_tile_query(req);
    const TileKey& key = query.key;
    const std::int32_t z = key.z;
    const WireEncoding enc = query.encoding;
    const auto tile_points =
        static_cast<std::uint64_t>(service->shape().nx * service->shape().ny);
    check_footprint(tile_points, z, state.opt.max_window_points);
    const TileAddress address{service->fingerprint(), key};
    // Conditional GET first: the ETag is a pure function of the address, so
    // a match answers 304 without touching cache, store, or generator.
    const std::string etag =
        tile_etag(service->fingerprint(), key, encoding_name(enc));
    if (const std::string* inm = req.header("if-none-match");
        inm != nullptr && etag_matches(*inm, etag)) {
        if (state.not_modified != nullptr) {
            state.not_modified->add();
        }
        HttpResponse resp;
        resp.status = 304;  // empty body; the validator rides in ETag
        resp.extra_headers.emplace_back("ETag", etag);
        return resp;
    }
    if (query.cached_only) {
        // Only-if-cached (`cached=1`, DESIGN.md §17): answer from the RAM
        // cache or the L2 store, 404 otherwise — never generate.  Cluster
        // peer fill relies on this to terminate (a peek can never recurse
        // into another peer), so the breaker/stale machinery is bypassed:
        // a peek cannot fail the way a generation can.
        const TilePtr tile = service->peek(key);
        if (tile == nullptr) {
            throw HttpError{404, "tile not cached"};
        }
        HttpResponse resp = surface_response(*tile, tile_rect(service->shape(), key),
                                             *scene, service->fingerprint(), enc);
        resp.extra_headers.emplace_back("ETag", etag);
        return resp;
    }
    fault::CircuitBreaker* breaker = state.breaker_for(*scene);
    HttpResponse stale;
    if (breaker != nullptr && !breaker->allow()) {
        if (state.short_circuited != nullptr) {
            state.short_circuited->add();
        }
        if (try_stale(state, address, key, *scene, *service, enc, stale)) {
            stale.extra_headers.emplace_back("ETag", etag);
            return stale;
        }
        return short_circuit_response(*breaker);
    }
    try {
        const TilePtr tile = service->get(key);
        if (breaker != nullptr) {
            breaker->record_success();
        }
        if (state.stale != nullptr) {
            state.stale->insert(address, tile);  // shares the payload, no copy
        }
        HttpResponse resp = surface_response(*tile, tile_rect(service->shape(), key),
                                             *scene, service->fingerprint(), enc);
        resp.extra_headers.emplace_back("ETag", etag);
        return resp;
    } catch (const HttpError&) {
        // Request-shaped failure (bad key, ...): the generator is fine —
        // release the breaker slot as a success and let the 4xx through.
        if (breaker != nullptr) {
            breaker->record_success();
        }
        throw;
    } catch (const Error&) {
        if (breaker != nullptr) {
            breaker->record_failure();
        }
        if (try_stale(state, address, key, *scene, *service, enc, stale)) {
            // Degrade: stale beats a 500.  Stale bytes for an address are
            // the same bytes (tiles are pure), so the ETag still holds.
            stale.extra_headers.emplace_back("ETag", etag);
            return stale;
        }
        throw;
    }
}

HttpResponse handle_pyramid(const RouteState& state, const HttpRequest& req) {
    const auto [scene, service] = state.resolve(req);
    const PyramidQuery query = parse_pyramid_query(req);
    const TileKey& top = query.top;
    const std::int32_t z = top.z;
    const std::int32_t min_z = query.min_z;
    const WireEncoding enc = query.encoding;
    // Admission: total response points across all levels (which also bounds
    // the base-footprint generation cost from above).
    const auto tile_points =
        static_cast<std::uint64_t>(service->shape().nx * service->shape().ny);
    const auto cap = static_cast<std::uint64_t>(state.opt.max_window_points);
    std::uint64_t total_points = 0;
    std::uint64_t level_tiles = 1;
    for (std::int32_t lvl = z; lvl >= min_z; --lvl) {
        total_points += level_tiles * tile_points;
        if (total_points > cap) {
            throw HttpError{413, "pyramid of " + std::to_string(total_points) +
                                     "+ points exceeds the cap of " +
                                     std::to_string(cap) + " points"};
        }
        level_tiles *= 4;
    }
    fault::CircuitBreaker* breaker = state.breaker_for(*scene);
    if (breaker != nullptr && !breaker->allow()) {
        if (state.short_circuited != nullptr) {
            state.short_circuited->add();
        }
        // No stale fallback — like windows, pyramids have no single
        // last-known-good body.
        return short_circuit_response(*breaker);
    }
    try {
        const auto tiles = service->pyramid(top, min_z);
        if (breaker != nullptr) {
            breaker->record_success();
        }
        std::string body;
        body.reserve(total_points * (enc == WireEncoding::kF64 ? 8 : 4));
        for (const auto& [key, tile] : tiles) {
            body += enc == WireEncoding::kF64 ? encode_tile_f64(*tile)
                                              : encode_tile_f32(*tile);
        }
        HttpResponse resp = HttpResponse::octets(std::move(body));
        resp.extra_headers.emplace_back("X-RRS-Encoding", encoding_name(enc));
        resp.extra_headers.emplace_back("X-RRS-Nx",
                                        std::to_string(service->shape().nx));
        resp.extra_headers.emplace_back("X-RRS-Ny",
                                        std::to_string(service->shape().ny));
        resp.extra_headers.emplace_back("X-RRS-Zoom", std::to_string(z));
        resp.extra_headers.emplace_back("X-RRS-MinZoom", std::to_string(min_z));
        resp.extra_headers.emplace_back("X-RRS-Tiles", std::to_string(tiles.size()));
        resp.extra_headers.emplace_back("X-RRS-Scene", *scene);
        resp.extra_headers.emplace_back("X-RRS-Fingerprint",
                                        std::to_string(service->fingerprint()));
        return resp;
    } catch (const HttpError&) {
        if (breaker != nullptr) {
            breaker->record_success();
        }
        throw;
    } catch (const Error&) {
        if (breaker != nullptr) {
            breaker->record_failure();
        }
        throw;
    }
}

HttpResponse handle_window(const RouteState& state, const HttpRequest& req) {
    const auto [scene, service] = state.resolve(req);
    const WindowQuery query = parse_window_query(req);
    const Rect& region = query.region;
    const auto cap = static_cast<std::uint64_t>(state.opt.max_window_points);
    if (region.nx > 0 && region.ny > 0) {
        const auto nx = static_cast<std::uint64_t>(region.nx);
        const auto ny = static_cast<std::uint64_t>(region.ny);
        if (nx > cap || ny > cap / nx) {
            throw HttpError{413, "window of " + std::to_string(region.nx) + "x" +
                                     std::to_string(region.ny) +
                                     " points exceeds the cap of " +
                                     std::to_string(cap) + " points"};
        }
    }
    fault::CircuitBreaker* breaker = state.breaker_for(*scene);
    if (breaker != nullptr && !breaker->allow()) {
        if (state.short_circuited != nullptr) {
            state.short_circuited->add();
        }
        // No stale fallback: windows are arbitrary shapes with no
        // last-known-good body (file comment in tile_routes.hpp).
        return short_circuit_response(*breaker);
    }
    try {
        const Array2D<double> window = service->window(region);
        if (breaker != nullptr) {
            breaker->record_success();
        }
        return surface_response(window, region, *scene, service->fingerprint(),
                                query.encoding);
    } catch (const HttpError&) {
        if (breaker != nullptr) {
            breaker->record_success();
        }
        throw;
    } catch (const Error&) {
        if (breaker != nullptr) {
            breaker->record_failure();
        }
        throw;
    }
}

HttpResponse handle_index(const RouteState& state) {
    std::string body = "{\"scenes\":[";
    bool first = true;
    for (const auto& [name, service] : state.scenes) {
        if (!first) {
            body += ',';
        }
        first = false;
        body += "{\"name\":\"" + json_escape(name) +
                "\",\"tile_nx\":" + std::to_string(service->shape().nx) +
                ",\"tile_ny\":" + std::to_string(service->shape().ny) +
                ",\"fingerprint\":" + std::to_string(service->fingerprint()) + "}";
    }
    body +=
        "],\"endpoints\":[\"/\",\"/healthz\",\"/readyz\",\"/metrics\","
        "\"/tracez\",\"/v1/tile\",\"/v1/window\",\"/v1/pyramid\"]}";
    return HttpResponse::json(200, std::move(body));
}

/// Readiness: serving traffic AND no scene breaker open.  Distinct from
/// /healthz (liveness): a draining or breaker-open process is still alive —
/// take it out of rotation, don't restart it.
HttpResponse handle_readyz(const RouteState& state) {
    if (state.ready != nullptr && state.ready->value() != 1) {
        HttpResponse resp =
            HttpResponse::json(503, "{\"ready\":false,\"reason\":\"draining\"}");
        resp.extra_headers.emplace_back("Retry-After", "1");
        return resp;
    }
    for (const auto& [name, breaker] : state.breakers) {
        if (breaker->state() == fault::CircuitBreaker::State::kOpen) {
            HttpResponse resp = HttpResponse::json(
                503, "{\"ready\":false,\"reason\":\"breaker open: " +
                         json_escape(name) + "\"}");
            const int secs = (breaker->open_remaining_ms() + 999) / 1000;
            resp.extra_headers.emplace_back("Retry-After",
                                            std::to_string(secs > 0 ? secs : 1));
            return resp;
        }
    }
    return HttpResponse::json(200, "{\"ready\":true}");
}

}  // namespace

HttpResponse surface_response(const Array2D<double>& a, const Rect& r,
                              const std::string& scene, std::uint64_t fingerprint,
                              WireEncoding enc) {
    HttpResponse resp;
    switch (enc) {
        case WireEncoding::kI16: {
            QuantizedTile q = encode_tile_i16(a);
            resp = HttpResponse::octets(std::move(q.body));
            // Shortest round-trippable decimal (max_digits10) so decoding
            // reproduces the server's doubles exactly.
            char num[64];
            std::snprintf(num, sizeof(num), "%.17g", q.scale);
            resp.extra_headers.emplace_back("X-RRS-Scale", num);
            std::snprintf(num, sizeof(num), "%.17g", q.offset);
            resp.extra_headers.emplace_back("X-RRS-Offset", num);
            break;
        }
        case WireEncoding::kF64:
            resp = HttpResponse::octets(encode_tile_f64(a));
            break;
        case WireEncoding::kF32:
            resp = HttpResponse::octets(encode_tile_f32(a));
            break;
    }
    resp.extra_headers.emplace_back("X-RRS-Encoding", encoding_name(enc));
    resp.extra_headers.emplace_back("X-RRS-Nx", std::to_string(r.nx));
    resp.extra_headers.emplace_back("X-RRS-Ny", std::to_string(r.ny));
    resp.extra_headers.emplace_back("X-RRS-X0", std::to_string(r.x0));
    resp.extra_headers.emplace_back("X-RRS-Y0", std::to_string(r.y0));
    resp.extra_headers.emplace_back("X-RRS-Scene", scene);
    resp.extra_headers.emplace_back("X-RRS-Fingerprint", std::to_string(fingerprint));
    return resp;
}

std::string encode_tile_f32(const Array2D<double>& a) {
    std::string out;
    out.resize(a.size() * 4);
    const double* src = a.data();
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto f = static_cast<float>(src[i]);
        std::uint32_t bits = 0;
        static_assert(sizeof(bits) == sizeof(f));
        std::memcpy(&bits, &f, sizeof(bits));
        // Explicit little-endian byte order, independent of the host.
        out[i * 4 + 0] = static_cast<char>(bits & 0xffu);
        out[i * 4 + 1] = static_cast<char>((bits >> 8) & 0xffu);
        out[i * 4 + 2] = static_cast<char>((bits >> 16) & 0xffu);
        out[i * 4 + 3] = static_cast<char>((bits >> 24) & 0xffu);
    }
    return out;
}

std::string encode_tile_f64(const Array2D<double>& a) {
    std::string out;
    out.resize(a.size() * 8);
    const double* src = a.data();
    for (std::size_t i = 0; i < a.size(); ++i) {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(double));
        std::memcpy(&bits, &src[i], sizeof(bits));
        for (std::size_t b = 0; b < 8; ++b) {
            out[i * 8 + b] = static_cast<char>((bits >> (8 * b)) & 0xffu);
        }
    }
    return out;
}

QuantizedTile encode_tile_i16(const Array2D<double>& a) {
    QuantizedTile out;
    double lo = 0.0;
    double hi = 0.0;
    if (!a.empty()) {
        lo = hi = a.data()[0];
        for (std::size_t i = 1; i < a.size(); ++i) {
            const double v = a.data()[i];
            lo = v < lo ? v : lo;
            hi = v > hi ? v : hi;
        }
    }
    out.offset = 0.5 * (lo + hi);
    const double half_range = 0.5 * (hi - lo);
    out.scale = half_range > 0.0 ? half_range / 32767.0 : 1.0;
    out.body.resize(a.size() * 2);
    const double inv_scale = 1.0 / out.scale;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double q = (a.data()[i] - out.offset) * inv_scale;
        q = q < -32767.0 ? -32767.0 : (q > 32767.0 ? 32767.0 : q);
        const auto s = static_cast<std::int16_t>(q < 0.0 ? q - 0.5 : q + 0.5);
        const auto bits = static_cast<std::uint16_t>(s);
        out.body[i * 2 + 0] = static_cast<char>(bits & 0xffu);
        out.body[i * 2 + 1] = static_cast<char>((bits >> 8) & 0xffu);
    }
    return out;
}

std::string tile_etag(std::uint64_t fingerprint, const TileKey& key,
                      std::string_view encoding) {
    // Fold the encoding name and zoom into the salt: same tile, different
    // body bytes ⇒ different ETag, as HTTP strong validators require.
    std::uint64_t salt = 0xE7A6u ^ (static_cast<std::uint64_t>(
                                        static_cast<std::uint32_t>(key.z))
                                    << 16);
    for (const char c : encoding) {
        salt = (salt << 8) ^ static_cast<unsigned char>(c);
    }
    const std::uint64_t h = hash_coords(fingerprint, key.tx, key.ty, salt);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "\"%016llx\"",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
}

Router make_tile_router(SceneServices scenes, obs::MetricsRegistry* registry,
                        TileRoutesOptions opt) {
    if (scenes.empty()) {
        throw ConfigError{"make_tile_router requires at least one scene",
                          {"net", "tile_routes"}};
    }
    for (const auto& [name, service] : scenes) {
        if (service == nullptr) {
            throw ConfigError{"scene '" + name + "' has a null service",
                              {"net", "tile_routes"}};
        }
    }
    if (opt.breaker_failures < 0 || opt.breaker_open_ms <= 0 ||
        opt.breaker_half_open_successes <= 0) {
        throw ConfigError{"invalid circuit breaker configuration",
                          {"net", "tile_routes"}};
    }
    RouteState st;
    st.scenes = std::move(scenes);
    st.registry = registry != nullptr ? registry : &obs::MetricsRegistry::global();
    st.opt = opt;
    st.short_circuited = &st.registry->counter("net.breaker.short_circuited");
    st.stale_served = &st.registry->counter("net.stale_served");
    st.not_modified = &st.registry->counter("net.not_modified");
    st.ready = &st.registry->gauge("net.ready");
    if (opt.breaker_failures > 0) {
        obs::Counter& opened = st.registry->counter("net.breaker.opened");
        for (const auto& [name, service] : st.scenes) {
            fault::CircuitBreaker::Options bopt;
            bopt.failure_threshold = opt.breaker_failures;
            bopt.open_ms = opt.breaker_open_ms;
            bopt.half_open_successes = opt.breaker_half_open_successes;
            bopt.state_gauge = &st.registry->gauge("net.breaker.state." + name);
            bopt.opened = &opened;
            st.breakers.emplace(name,
                                std::make_unique<fault::CircuitBreaker>(bopt));
        }
    }
    if (opt.stale_bytes > 0) {
        st.stale = std::make_shared<TileCache>(opt.stale_bytes);
    }
    auto state = std::make_shared<const RouteState>(std::move(st));

    Router router;
    router.add("/healthz",
               [](const HttpRequest&) { return HttpResponse::text(200, "ok\n"); });
    router.add("/readyz",
               [state](const HttpRequest&) { return handle_readyz(*state); });
    router.add("/metrics", [state](const HttpRequest&) {
        return HttpResponse::json(200, state->registry->to_json());
    });
    router.add("/tracez", [](const HttpRequest&) {
        if (!obs::trace_enabled()) {
            throw HttpError{404, "tracing disabled — start the server with tracing on"};
        }
        return HttpResponse::json(200, obs::chrome_trace_json());
    });
    router.add("/", [state](const HttpRequest&) { return handle_index(*state); });
    router.add("/v1/tile", [state](const HttpRequest& req) {
        return handle_tile(*state, req);
    });
    router.add("/v1/window", [state](const HttpRequest& req) {
        return handle_window(*state, req);
    });
    router.add("/v1/pyramid", [state](const HttpRequest& req) {
        return handle_pyramid(*state, req);
    });
    return router;
}

}  // namespace rrs::net
