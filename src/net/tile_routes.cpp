#include "net/tile_routes.hpp"

#include <charconv>
#include <cstdint>
#include <cstring>
#include <utility>

#include "core/error.hpp"
#include "net/http.hpp"
#include "obs/trace.hpp"
#include "service/tile_key.hpp"

namespace rrs::net {

namespace {

/// Strict signed integer query parameter; HttpError(400) when missing or
/// not a plain base-10 integer.
std::int64_t int_param(const HttpRequest& req, const char* name) {
    const std::string* raw = req.query_param(name);
    if (raw == nullptr) {
        throw HttpError{400, std::string("missing query parameter '") + name + "'"};
    }
    std::int64_t value = 0;
    const char* first = raw->data();
    const char* last = first + raw->size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) {
        throw HttpError{400, std::string("query parameter '") + name +
                                 "' is not an integer: '" + *raw + "'"};
    }
    return value;
}

/// Shared immutable routing state, captured by every handler.
struct RouteState {
    SceneServices scenes;
    obs::MetricsRegistry* registry = nullptr;
    TileRoutesOptions opt;

    /// Resolve the scene a request addresses: explicit `scene=` parameter,
    /// or the sole registered scene when there is exactly one.
    std::pair<const std::string*, TileService*> resolve(const HttpRequest& req) const {
        const std::string* name = req.query_param("scene");
        if (name == nullptr) {
            if (scenes.size() == 1) {
                const auto& [only_name, only_service] = *scenes.begin();
                return {&only_name, only_service.get()};
            }
            throw HttpError{400,
                            "query parameter 'scene' is required when more "
                            "than one scene is served"};
        }
        const auto it = scenes.find(*name);
        if (it == scenes.end()) {
            throw HttpError{404, "unknown scene '" + *name + "'"};
        }
        return {&it->first, it->second.get()};
    }
};

/// Wrap an encoded surface window into the binary wire response.
HttpResponse surface_response(const Array2D<double>& a, const Rect& r,
                              const std::string& scene, std::uint64_t fingerprint) {
    HttpResponse resp = HttpResponse::octets(encode_tile_f32(a));
    resp.extra_headers.emplace_back("X-RRS-Nx", std::to_string(r.nx));
    resp.extra_headers.emplace_back("X-RRS-Ny", std::to_string(r.ny));
    resp.extra_headers.emplace_back("X-RRS-X0", std::to_string(r.x0));
    resp.extra_headers.emplace_back("X-RRS-Y0", std::to_string(r.y0));
    resp.extra_headers.emplace_back("X-RRS-Scene", scene);
    resp.extra_headers.emplace_back("X-RRS-Fingerprint", std::to_string(fingerprint));
    return resp;
}

HttpResponse handle_tile(const RouteState& state, const HttpRequest& req) {
    const auto [scene, service] = state.resolve(req);
    const TileKey key{int_param(req, "tx"), int_param(req, "ty")};
    const TilePtr tile = service->get(key);
    return surface_response(*tile, tile_rect(service->shape(), key), *scene,
                            service->fingerprint());
}

HttpResponse handle_window(const RouteState& state, const HttpRequest& req) {
    const auto [scene, service] = state.resolve(req);
    const Rect region{int_param(req, "x0"), int_param(req, "y0"),
                      int_param(req, "nx"), int_param(req, "ny")};
    if (region.nx < 0 || region.ny < 0) {
        throw HttpError{400, "window extents must be non-negative"};
    }
    const auto cap = static_cast<std::uint64_t>(state.opt.max_window_points);
    if (region.nx > 0 && region.ny > 0) {
        const auto nx = static_cast<std::uint64_t>(region.nx);
        const auto ny = static_cast<std::uint64_t>(region.ny);
        if (nx > cap || ny > cap / nx) {
            throw HttpError{413, "window of " + std::to_string(region.nx) + "x" +
                                     std::to_string(region.ny) +
                                     " points exceeds the cap of " +
                                     std::to_string(cap) + " points"};
        }
    }
    const Array2D<double> window = service->window(region);
    return surface_response(window, region, *scene, service->fingerprint());
}

HttpResponse handle_index(const RouteState& state) {
    std::string body = "{\"scenes\":[";
    bool first = true;
    for (const auto& [name, service] : state.scenes) {
        if (!first) {
            body += ',';
        }
        first = false;
        body += "{\"name\":\"" + json_escape(name) +
                "\",\"tile_nx\":" + std::to_string(service->shape().nx) +
                ",\"tile_ny\":" + std::to_string(service->shape().ny) +
                ",\"fingerprint\":" + std::to_string(service->fingerprint()) + "}";
    }
    body +=
        "],\"endpoints\":[\"/\",\"/healthz\",\"/metrics\",\"/tracez\","
        "\"/v1/tile\",\"/v1/window\"]}";
    return HttpResponse::json(200, std::move(body));
}

}  // namespace

std::string encode_tile_f32(const Array2D<double>& a) {
    std::string out;
    out.resize(a.size() * 4);
    const double* src = a.data();
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto f = static_cast<float>(src[i]);
        std::uint32_t bits = 0;
        static_assert(sizeof(bits) == sizeof(f));
        std::memcpy(&bits, &f, sizeof(bits));
        // Explicit little-endian byte order, independent of the host.
        out[i * 4 + 0] = static_cast<char>(bits & 0xffu);
        out[i * 4 + 1] = static_cast<char>((bits >> 8) & 0xffu);
        out[i * 4 + 2] = static_cast<char>((bits >> 16) & 0xffu);
        out[i * 4 + 3] = static_cast<char>((bits >> 24) & 0xffu);
    }
    return out;
}

Router make_tile_router(SceneServices scenes, obs::MetricsRegistry* registry,
                        TileRoutesOptions opt) {
    if (scenes.empty()) {
        throw ConfigError{"make_tile_router requires at least one scene",
                          {"net", "tile_routes"}};
    }
    for (const auto& [name, service] : scenes) {
        if (service == nullptr) {
            throw ConfigError{"scene '" + name + "' has a null service",
                              {"net", "tile_routes"}};
        }
    }
    auto state = std::make_shared<const RouteState>(RouteState{
        std::move(scenes),
        registry != nullptr ? registry : &obs::MetricsRegistry::global(), opt});

    Router router;
    router.add("/healthz",
               [](const HttpRequest&) { return HttpResponse::text(200, "ok\n"); });
    router.add("/metrics", [state](const HttpRequest&) {
        return HttpResponse::json(200, state->registry->to_json());
    });
    router.add("/tracez", [](const HttpRequest&) {
        if (!obs::trace_enabled()) {
            throw HttpError{404, "tracing disabled — start the server with tracing on"};
        }
        return HttpResponse::json(200, obs::chrome_trace_json());
    });
    router.add("/", [state](const HttpRequest&) { return handle_index(*state); });
    router.add("/v1/tile", [state](const HttpRequest& req) {
        return handle_tile(*state, req);
    });
    router.add("/v1/window", [state](const HttpRequest& req) {
        return handle_window(*state, req);
    });
    return router;
}

}  // namespace rrs::net
