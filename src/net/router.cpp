#include "net/router.hpp"

#include "core/error.hpp"

namespace rrs::net {

void Router::add(std::string path, Handler handler) {
    if (path.empty() || path.front() != '/') {
        throw ConfigError{"route path must start with '/'", {"net", "router"}};
    }
    if (handler == nullptr) {
        throw ConfigError{"route handler must not be null", {"net", "router", path}};
    }
    const auto [it, inserted] = routes_.emplace(std::move(path), std::move(handler));
    if (!inserted) {
        throw StateError{"route '" + it->first + "' registered twice",
                         {"net", "router"}};
    }
}

HttpResponse Router::dispatch(const HttpRequest& req) const {
    const auto it = routes_.find(req.path);
    if (it == routes_.end()) {
        throw HttpError{404, "no route for '" + req.path + "'"};
    }
    return it->second(req);
}

std::vector<std::string> Router::paths() const {
    std::vector<std::string> out;
    out.reserve(routes_.size());
    for (const auto& [path, handler] : routes_) {
        out.push_back(path);
    }
    return out;
}

}  // namespace rrs::net
