#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace rrs::net {

namespace {

bool is_token_char(char c) noexcept {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
        return true;
    }
    constexpr std::string_view kExtra = "!#$%&'*+-.^_`|~";
    return kExtra.find(c) != std::string_view::npos;
}

bool is_token(std::string_view s) noexcept {
    return !s.empty() && std::all_of(s.begin(), s.end(), is_token_char);
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

std::string_view trim(std::string_view s) noexcept {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
        s.remove_suffix(1);
    }
    return s;
}

/// A byte that must never appear inside a request or header line: any
/// control byte other than horizontal tab.  Catches embedded NUL and lone
/// CR/LF (the head splitter consumes well-formed "\r\n" pairs, so any CR
/// or LF still inside a line is a smuggling attempt or corruption).
bool forbidden_in_line(char ch) noexcept {
    const auto c = static_cast<unsigned char>(ch);
    return (c < 0x20 && c != '\t') || c == 0x7f;
}

int hex_digit(char c) noexcept {
    if (c >= '0' && c <= '9') {
        return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
        return c - 'a' + 10;
    }
    if (c >= 'A' && c <= 'F') {
        return c - 'A' + 10;
    }
    return -1;
}

/// Split the decoded query string into the request's parameter map.
void parse_query(std::string_view raw, std::map<std::string, std::string>& out) {
    std::size_t pos = 0;
    while (pos <= raw.size()) {
        std::size_t amp = raw.find('&', pos);
        if (amp == std::string_view::npos) {
            amp = raw.size();
        }
        const std::string_view item = raw.substr(pos, amp - pos);
        if (!item.empty()) {
            const std::size_t eq = item.find('=');
            if (eq == std::string_view::npos) {
                out[url_decode(item)] = "";
            } else {
                out[url_decode(item.substr(0, eq))] = url_decode(item.substr(eq + 1));
            }
        }
        pos = amp + 1;
    }
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const noexcept {
    for (const auto& [key, value] : headers) {
        if (key == name) {
            return &value;
        }
    }
    return nullptr;
}

const std::string* HttpRequest::query_param(std::string_view name) const noexcept {
    const auto it = query.find(std::string(name));
    return it == query.end() ? nullptr : &it->second;
}

std::size_t HttpRequest::content_length() const {
    const std::string* raw = header("content-length");
    if (raw == nullptr) {
        return 0;
    }
    if (raw->empty() ||
        !std::all_of(raw->begin(), raw->end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; })) {
        throw HttpError{400, "malformed Content-Length '" + *raw + "'"};
    }
    // 18 digits cap: longer values would overflow 64 bits (or absurdly
    // exceed any body limit) — reject before std::stoull can overflow.
    if (raw->size() > 18) {
        throw HttpError{413, "Content-Length overflows"};
    }
    return std::stoull(*raw);
}

HttpResponse HttpResponse::text(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
}

HttpResponse HttpResponse::json(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.content_type = "application/json";
    r.body = std::move(body);
    return r;
}

HttpResponse HttpResponse::octets(std::string body) {
    HttpResponse r;
    r.content_type = "application/octet-stream";
    r.body = std::move(body);
    return r;
}

const char* status_reason(int status) noexcept {
    switch (status) {
        case 200: return "OK";
        case 204: return "No Content";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 408: return "Request Timeout";
        case 413: return "Content Too Large";
        case 414: return "URI Too Long";
        case 431: return "Request Header Fields Too Large";
        case 500: return "Internal Server Error";
        case 503: return "Service Unavailable";
        case 505: return "HTTP Version Not Supported";
        default: return "Unknown";
    }
}

std::string url_decode(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '+') {
            out += ' ';
        } else if (c == '%') {
            if (i + 2 >= s.size()) {
                throw HttpError{400, "truncated percent escape"};
            }
            const int hi = hex_digit(s[i + 1]);
            const int lo = hex_digit(s[i + 2]);
            if (hi < 0 || lo < 0) {
                throw HttpError{400, "malformed percent escape '%" +
                                         std::string(s.substr(i + 1, 2)) + "'"};
            }
            out += static_cast<char>(hi * 16 + lo);
            i += 2;
        } else {
            out += c;
        }
    }
    return out;
}

HttpRequest parse_request_head(std::string_view head, const RequestLimits& limits) {
    if (head.size() > limits.max_header_bytes) {
        throw HttpError{431, "request head exceeds " +
                                 std::to_string(limits.max_header_bytes) + " bytes"};
    }
    // --- request line ---------------------------------------------------
    std::size_t eol = head.find("\r\n");
    const std::string_view line =
        eol == std::string_view::npos ? head : head.substr(0, eol);
    if (std::any_of(line.begin(), line.end(), forbidden_in_line)) {
        throw HttpError{400, "control byte in request line"};
    }
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string_view::npos
                                ? std::string_view::npos
                                : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
        throw HttpError{400, "malformed request line '" + std::string(line) + "'"};
    }
    HttpRequest req;
    req.method = std::string(line.substr(0, sp1));
    req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    const std::string_view version = line.substr(sp2 + 1);
    if (!is_token(req.method)) {
        throw HttpError{400, "malformed method token"};
    }
    if (req.target.empty() || req.target.front() != '/') {
        throw HttpError{400, "request target must be an absolute path"};
    }
    if (version == "HTTP/1.1") {
        req.version_minor = 1;
    } else if (version == "HTTP/1.0") {
        req.version_minor = 0;
    } else if (version.substr(0, 5) == "HTTP/") {
        throw HttpError{505, "unsupported version '" + std::string(version) + "'"};
    } else {
        throw HttpError{400, "malformed request line '" + std::string(line) + "'"};
    }

    // --- target: path + query -------------------------------------------
    const std::string_view target = req.target;
    const std::size_t qmark = target.find('?');
    req.path = url_decode(target.substr(0, qmark));
    if (qmark != std::string_view::npos) {
        parse_query(target.substr(qmark + 1), req.query);
    }

    // --- headers ---------------------------------------------------------
    std::size_t pos = eol == std::string_view::npos ? head.size() : eol + 2;
    while (pos < head.size()) {
        eol = head.find("\r\n", pos);
        if (eol == std::string_view::npos) {
            eol = head.size();
        }
        const std::string_view raw = head.substr(pos, eol - pos);
        pos = eol + 2;
        if (raw.empty()) {
            continue;
        }
        if (std::any_of(raw.begin(), raw.end(), forbidden_in_line)) {
            throw HttpError{400, "control byte in header line"};
        }
        const std::size_t colon = raw.find(':');
        if (colon == std::string_view::npos || colon == 0 ||
            !is_token(raw.substr(0, colon))) {
            throw HttpError{400, "malformed header line '" + std::string(raw) + "'"};
        }
        if (req.headers.size() >= limits.max_headers) {
            throw HttpError{431, "more than " + std::to_string(limits.max_headers) +
                                     " header fields"};
        }
        req.headers.emplace_back(to_lower(raw.substr(0, colon)),
                                 std::string(trim(raw.substr(colon + 1))));
    }

    // --- connection semantics --------------------------------------------
    req.keep_alive = req.version_minor >= 1;
    if (const std::string* connection = req.header("connection")) {
        const std::string value = to_lower(*connection);
        if (value.find("close") != std::string::npos) {
            req.keep_alive = false;
        } else if (value.find("keep-alive") != std::string::npos) {
            req.keep_alive = true;
        }
    }
    return req;
}

std::string serialize_response(const HttpResponse& r, bool keep_alive) {
    std::ostringstream out;
    out << "HTTP/1.1 " << r.status << ' ' << status_reason(r.status) << "\r\n"
        << "Content-Type: " << r.content_type << "\r\n"
        << "Content-Length: " << r.body.size() << "\r\n"
        << "Connection: " << (keep_alive && !r.close ? "keep-alive" : "close")
        << "\r\n";
    for (const auto& [name, value] : r.extra_headers) {
        out << name << ": " << value << "\r\n";
    }
    out << "\r\n" << r.body;
    return out.str();
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    constexpr const char* kHex = "0123456789abcdef";
                    out += "\\u00";
                    out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
                    out += kHex[static_cast<unsigned char>(c) & 0xF];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

HttpResponse error_response(int status, std::string_view message) {
    HttpResponse r = HttpResponse::json(
        status, "{\"error\":" + std::to_string(status) + ",\"message\":\"" +
                    json_escape(message) + "\"}\n");
    return r;
}

}  // namespace rrs::net
