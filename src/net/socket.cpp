#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>

#include "core/error.hpp"
#include "fault/inject.hpp"

namespace rrs::net {

namespace {

using Clock = std::chrono::steady_clock;

/// errno rendered the std way ("Connection refused"), no strerror races.
std::string errno_text(int err) { return std::system_category().message(err); }

[[noreturn]] void fail(const std::string& what, int err) {
    throw IoError{what + ": " + errno_text(err), {"net"}};
}

[[noreturn]] void fail_connect(const std::string& what, int err) {
    throw ConnectError{what + ": " + errno_text(err), {"net"}};
}

/// Whole milliseconds left until `deadline`, clamped at zero.
int remaining_ms(Clock::time_point deadline) noexcept {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw IoError{"not a numeric IPv4 address: '" + host + "'", {"net"}};
    }
    return addr;
}

void set_timeout(const Socket& s, int ms, int option, const char* what) {
    if (ms <= 0) {
        throw ConfigError{"socket timeout must be positive", {"net"}};
    }
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    if (::setsockopt(s.fd(), SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
        fail(what, errno);
    }
}

}  // namespace

void Socket::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
    Socket s{::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0)};
    if (!s.valid()) {
        fail("socket", errno);
    }
    const int one = 1;
    if (::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
        fail("setsockopt(SO_REUSEADDR)", errno);
    }
    const sockaddr_in addr = make_addr(host, port);
    if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        fail("bind " + host + ":" + std::to_string(port), errno);
    }
    if (::listen(s.fd(), backlog) != 0) {
        fail("listen", errno);
    }
    return s;
}

std::uint16_t local_port(const Socket& listener) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        fail("getsockname", errno);
    }
    return ntohs(addr.sin_port);
}

Socket accept_with_timeout(const Socket& listener, int timeout_ms) {
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        pollfd pfd{};
        pfd.fd = listener.fd();
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, remaining_ms(deadline));
        if (ready < 0) {
            if (errno == EINTR) {
                continue;  // signal delivery is not a timeout; re-poll the budget
            }
            fail("poll(listener)", errno);
        }
        if (ready == 0) {
            return Socket{};
        }
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd < 0) {
            // The connection can evaporate between poll and accept; that (or
            // a signal) is not a listener fault — retry within the budget.
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
                errno == ECONNABORTED) {
                continue;
            }
            fail("accept", errno);
        }
        if (fault::inject("net.accept")) {
            ::close(fd);  // injected: the connection dies at the threshold
            return Socket{};
        }
        return Socket{fd};
    }
}

Socket connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms) {
    if (timeout_ms <= 0) {
        throw ConfigError{"socket timeout must be positive", {"net"}};
    }
    const std::string peer = host + ":" + std::to_string(port);
    if (fault::inject("net.connect")) {
        throw ConnectError{"connect " + peer + ": injected fault", {"net"}};
    }
    Socket s{::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0)};
    if (!s.valid()) {
        fail_connect("socket", errno);
    }
    const sockaddr_in addr = make_addr(host, port);
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        // EINTR on a non-blocking connect means the attempt continues
        // asynchronously (retrying would yield EALREADY) — await it like
        // EINPROGRESS.
        if (errno != EINPROGRESS && errno != EINTR) {
            fail_connect("connect " + peer, errno);
        }
        for (;;) {
            const int wait_ms = remaining_ms(deadline);
            if (wait_ms == 0) {
                throw ConnectError{"connect " + peer + ": timed out after " +
                                       std::to_string(timeout_ms) + " ms",
                                   {"net"}};
            }
            pollfd pfd{};
            pfd.fd = s.fd();
            pfd.events = POLLOUT;
            const int ready = ::poll(&pfd, 1, wait_ms);
            if (ready < 0) {
                if (errno == EINTR) {
                    continue;
                }
                fail_connect("poll(connect " + peer + ")", errno);
            }
            if (ready > 0) {
                break;
            }
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
            fail_connect("getsockopt(SO_ERROR)", errno);
        }
        if (err != 0) {
            fail_connect("connect " + peer, err);
        }
    }
    // Connected: back to blocking mode with recv/send deadlines for traffic.
    const int flags = ::fcntl(s.fd(), F_GETFL, 0);
    if (flags < 0 || ::fcntl(s.fd(), F_SETFL, flags & ~O_NONBLOCK) != 0) {
        fail_connect("fcntl(clear O_NONBLOCK)", errno);
    }
    set_timeout(s, timeout_ms, SO_RCVTIMEO, "setsockopt(SO_RCVTIMEO)");
    set_timeout(s, timeout_ms, SO_SNDTIMEO, "setsockopt(SO_SNDTIMEO)");
    return s;
}

void set_recv_timeout(const Socket& s, int ms) {
    set_timeout(s, ms, SO_RCVTIMEO, "setsockopt(SO_RCVTIMEO)");
}

void set_send_timeout(const Socket& s, int ms) {
    set_timeout(s, ms, SO_SNDTIMEO, "setsockopt(SO_SNDTIMEO)");
}

RecvResult recv_some(const Socket& s, char* buf, std::size_t max) noexcept {
    if (fault::inject("net.recv")) {
        return RecvResult{0, true, false};  // injected: connection lost
    }
    for (;;) {
        const ssize_t n = ::recv(s.fd(), buf, max, 0);
        if (n > 0) {
            return RecvResult{static_cast<std::size_t>(n), false, false};
        }
        if (n == 0) {
            return RecvResult{0, true, false};
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return RecvResult{0, false, true};
        }
        // ECONNRESET and everything else: the connection is unusable.
        return RecvResult{0, true, false};
    }
}

bool send_all(const Socket& s, const char* data, std::size_t n) noexcept {
    if (fault::inject("net.send")) {
        return false;  // injected: peer gone mid-write
    }
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t w = ::send(s.fd(), data + sent, n - sent, MSG_NOSIGNAL);
        if (w > 0) {
            sent += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR) {
            continue;
        }
        return false;  // peer gone, or SO_SNDTIMEO expired (EAGAIN)
    }
    return true;
}

void shutdown_both(int fd) noexcept { ::shutdown(fd, SHUT_RDWR); }

HeadResult read_head(const Socket& s, std::string& carry, std::size_t max_bytes,
                     std::string& head) {
    char buf[4096];
    for (;;) {
        const std::size_t pos = carry.find("\r\n\r\n");
        if (pos != std::string::npos) {
            head.assign(carry, 0, pos);
            carry.erase(0, pos + 4);
            return HeadResult{HeadStatus::kOk, true};
        }
        if (carry.size() > max_bytes) {
            return HeadResult{HeadStatus::kTooLarge, true};
        }
        const RecvResult r = recv_some(s, buf, sizeof(buf));
        if (r.closed) {
            return HeadResult{HeadStatus::kPeerClosed, !carry.empty()};
        }
        if (r.timed_out) {
            return HeadResult{HeadStatus::kTimedOut, !carry.empty()};
        }
        carry.append(buf, r.n);
    }
}

bool read_exact(const Socket& s, std::string& carry, std::size_t n, std::string* out) {
    const std::size_t from_carry = std::min(n, carry.size());
    if (out != nullptr) {
        out->append(carry, 0, from_carry);
    }
    carry.erase(0, from_carry);
    std::size_t remaining = n - from_carry;
    char buf[4096];
    while (remaining > 0) {
        const RecvResult r = recv_some(s, buf, std::min(remaining, sizeof(buf)));
        if (r.closed || r.timed_out) {
            return false;
        }
        if (out != nullptr) {
            out->append(buf, r.n);
        }
        remaining -= r.n;
    }
    return true;
}

}  // namespace rrs::net
