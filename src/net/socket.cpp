#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "core/error.hpp"

namespace rrs::net {

namespace {

/// errno rendered the std way ("Connection refused"), no strerror races.
std::string errno_text(int err) { return std::system_category().message(err); }

[[noreturn]] void fail(const std::string& what, int err) {
    throw IoError{what + ": " + errno_text(err), {"net"}};
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw IoError{"not a numeric IPv4 address: '" + host + "'", {"net"}};
    }
    return addr;
}

void set_timeout(const Socket& s, int ms, int option, const char* what) {
    if (ms <= 0) {
        throw ConfigError{"socket timeout must be positive", {"net"}};
    }
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    if (::setsockopt(s.fd(), SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
        fail(what, errno);
    }
}

}  // namespace

void Socket::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
    Socket s{::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0)};
    if (!s.valid()) {
        fail("socket", errno);
    }
    const int one = 1;
    if (::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
        fail("setsockopt(SO_REUSEADDR)", errno);
    }
    const sockaddr_in addr = make_addr(host, port);
    if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        fail("bind " + host + ":" + std::to_string(port), errno);
    }
    if (::listen(s.fd(), backlog) != 0) {
        fail("listen", errno);
    }
    return s;
}

std::uint16_t local_port(const Socket& listener) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        fail("getsockname", errno);
    }
    return ntohs(addr.sin_port);
}

Socket accept_with_timeout(const Socket& listener, int timeout_ms) {
    pollfd pfd{};
    pfd.fd = listener.fd();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
        if (errno == EINTR) {
            return Socket{};
        }
        fail("poll(listener)", errno);
    }
    if (ready == 0) {
        return Socket{};
    }
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) {
        // The connection can evaporate between poll and accept; that (or a
        // signal) is not a listener fault.
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
            errno == ECONNABORTED) {
            return Socket{};
        }
        fail("accept", errno);
    }
    return Socket{fd};
}

Socket connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms) {
    Socket s{::socket(AF_INET, SOCK_STREAM, 0)};
    if (!s.valid()) {
        fail("socket", errno);
    }
    // SO_SNDTIMEO bounds a blocking connect() as well as later sends.
    set_timeout(s, timeout_ms, SO_SNDTIMEO, "setsockopt(SO_SNDTIMEO)");
    set_timeout(s, timeout_ms, SO_RCVTIMEO, "setsockopt(SO_RCVTIMEO)");
    const sockaddr_in addr = make_addr(host, port);
    if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int err = (errno == EINPROGRESS || errno == EAGAIN ||
                         errno == EWOULDBLOCK)
                            ? ETIMEDOUT
                            : errno;
        fail("connect " + host + ":" + std::to_string(port), err);
    }
    return s;
}

void set_recv_timeout(const Socket& s, int ms) {
    set_timeout(s, ms, SO_RCVTIMEO, "setsockopt(SO_RCVTIMEO)");
}

void set_send_timeout(const Socket& s, int ms) {
    set_timeout(s, ms, SO_SNDTIMEO, "setsockopt(SO_SNDTIMEO)");
}

RecvResult recv_some(const Socket& s, char* buf, std::size_t max) noexcept {
    for (;;) {
        const ssize_t n = ::recv(s.fd(), buf, max, 0);
        if (n > 0) {
            return RecvResult{static_cast<std::size_t>(n), false, false};
        }
        if (n == 0) {
            return RecvResult{0, true, false};
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return RecvResult{0, false, true};
        }
        // ECONNRESET and everything else: the connection is unusable.
        return RecvResult{0, true, false};
    }
}

bool send_all(const Socket& s, const char* data, std::size_t n) noexcept {
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t w = ::send(s.fd(), data + sent, n - sent, MSG_NOSIGNAL);
        if (w > 0) {
            sent += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR) {
            continue;
        }
        return false;  // peer gone, or SO_SNDTIMEO expired (EAGAIN)
    }
    return true;
}

void shutdown_both(int fd) noexcept { ::shutdown(fd, SHUT_RDWR); }

HeadResult read_head(const Socket& s, std::string& carry, std::size_t max_bytes,
                     std::string& head) {
    char buf[4096];
    for (;;) {
        const std::size_t pos = carry.find("\r\n\r\n");
        if (pos != std::string::npos) {
            head.assign(carry, 0, pos);
            carry.erase(0, pos + 4);
            return HeadResult{HeadStatus::kOk, true};
        }
        if (carry.size() > max_bytes) {
            return HeadResult{HeadStatus::kTooLarge, true};
        }
        const RecvResult r = recv_some(s, buf, sizeof(buf));
        if (r.closed) {
            return HeadResult{HeadStatus::kPeerClosed, !carry.empty()};
        }
        if (r.timed_out) {
            return HeadResult{HeadStatus::kTimedOut, !carry.empty()};
        }
        carry.append(buf, r.n);
    }
}

bool read_exact(const Socket& s, std::string& carry, std::size_t n, std::string* out) {
    const std::size_t from_carry = std::min(n, carry.size());
    if (out != nullptr) {
        out->append(carry, 0, from_carry);
    }
    carry.erase(0, from_carry);
    std::size_t remaining = n - from_carry;
    char buf[4096];
    while (remaining > 0) {
        const RecvResult r = recv_some(s, buf, std::min(remaining, sizeof(buf)));
        if (r.closed || r.timed_out) {
            return false;
        }
        if (out != nullptr) {
            out->append(buf, r.n);
        }
        remaining -= r.n;
    }
    return true;
}

}  // namespace rrs::net
