#pragma once

/// \file query.hpp
/// Pure query-parameter parsers for the `/v1/*` routes (DESIGN.md §16).
///
/// Everything here maps an already-parsed HttpRequest to a validated,
/// plain-value query struct — no service registry, no metrics, no I/O — so
/// the whole untrusted query surface can be driven by a fuzzer (harness
/// fuzz_query) and unit-tested without standing up a router.  The contract
/// is the taxonomy contract: a malformed parameter throws HttpError(400)
/// (or 413 for cap-shaped complaints raised by the route layer); these
/// functions never crash and never return an out-of-range value.
///
/// Scene resolution (`scene=` → TileService) intentionally stays in
/// tile_routes.cpp: it needs the registry of live services and is therefore
/// not a pure parse.

#include <cstdint>
#include <string_view>

#include "grid/rect.hpp"
#include "net/http.hpp"
#include "service/tile_key.hpp"

namespace rrs::net {

/// Wire body encodings (`q=` query parameter).
enum class WireEncoding { kF32, kI16, kF64 };

/// Canonical wire name of an encoding ("f32" / "i16" / "f64").
const char* encoding_name(WireEncoding enc) noexcept;

/// Strict signed integer query parameter; HttpError(400) when missing or
/// not a plain base-10 integer.
std::int64_t int_param(const HttpRequest& req, const char* name);

/// Like int_param, but absent means `fallback`.
std::int64_t int_param_or(const HttpRequest& req, const char* name,
                          std::int64_t fallback);

/// Zoom query parameter: optional (absent = 0), bounded to [0, kMaxZoom].
std::int32_t zoom_param(const HttpRequest& req, const char* name);

/// `q=` encoding parameter: optional (absent = f32); HttpError(400) on an
/// unknown encoding.
WireEncoding encoding_param(const HttpRequest& req);

/// Does an If-None-Match header value cover `etag`?  Handles `*` and
/// comma-separated lists; weak validators (W/ prefix) never match — tile
/// ETags are strong, byte-exact promises.
bool etag_matches(std::string_view header_value, std::string_view etag);

/// Validated /v1/tile query: tx, ty required; z, q, cached optional.
/// `cached=1` is the only-if-cached protocol (cluster peer fill,
/// DESIGN.md §17): the server may answer from RAM cache or L2 store but
/// must 404 instead of generating.
struct TileQuery {
    TileKey key;
    WireEncoding encoding = WireEncoding::kF32;
    bool cached_only = false;
};
TileQuery parse_tile_query(const HttpRequest& req);

/// Validated /v1/window query: x0, y0, nx, ny required (extents
/// non-negative); q optional.
struct WindowQuery {
    Rect region;
    WireEncoding encoding = WireEncoding::kF32;
};
WindowQuery parse_window_query(const HttpRequest& req);

/// Validated /v1/pyramid query: tx, ty required; z, min_z, q optional;
/// min_z ≤ z and q=i16 rejected (per-tile quantization has no
/// multi-level body).
struct PyramidQuery {
    TileKey top;
    std::int32_t min_z = 0;
    WireEncoding encoding = WireEncoding::kF32;
};
PyramidQuery parse_pyramid_query(const HttpRequest& req);

}  // namespace rrs::net
