#pragma once

/// \file router.hpp
/// Exact-path route table: `GET <path>` → handler.  The server owns method
/// policy (everything but GET answers 405) and error→status mapping; the
/// router only resolves paths.  Handlers run on server worker threads and
/// must therefore be thread-safe and re-entrant — the tile handlers are,
/// because TileService is.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/http.hpp"

namespace rrs::net {

/// Copyable route table (copying shares the handlers' captured state).
class Router {
public:
    using Handler = std::function<HttpResponse(const HttpRequest&)>;

    /// Register `path` (exact match on the decoded path).  Re-registering a
    /// path is a StateError — routes are wired once at startup.
    void add(std::string path, Handler handler);

    /// Resolve and invoke; throws HttpError(404) for unknown paths.
    HttpResponse dispatch(const HttpRequest& req) const;

    /// Registered paths, sorted (for index/debug endpoints).
    std::vector<std::string> paths() const;

    std::size_t size() const noexcept { return routes_.size(); }

private:
    std::map<std::string, Handler> routes_;
};

}  // namespace rrs::net
