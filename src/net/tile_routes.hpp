#pragma once

/// \file tile_routes.hpp
/// The tile API: a Router wiring TileService instances (one per named
/// scene) plus the operational endpoints every deployment of the daemon
/// needs.  Route table (DESIGN.md §12):
///
///   GET /            JSON index: scenes, tile shape, endpoint list
///   GET /healthz     liveness probe — "ok" once routable
///   GET /metrics     MetricsRegistry snapshot as JSON
///   GET /tracez      Chrome trace JSON (404 while tracing is disabled)
///   GET /v1/tile?scene=NAME&tx=I&ty=J
///                    one tile as little-endian float32, row-major;
///                    dimensions ride in X-RRS-* response headers
///   GET /v1/window?scene=NAME&x0=I&y0=J&nx=W&ny=H
///                    arbitrary lattice window, same wire format
///
/// `scene` may be omitted when exactly one scene is registered.  Parameter
/// errors are HttpError(400), unknown scenes HttpError(404), and windows
/// larger than `TileRoutesOptions::max_window_points` HttpError(413) — the
/// window cap is the router-level admission control that keeps one request
/// from monopolizing the generation pool.

#include <cstddef>
#include <map>
#include <memory>
#include <string>

#include "grid/array2d.hpp"
#include "net/router.hpp"
#include "obs/metrics.hpp"
#include "service/tile_service.hpp"

namespace rrs::net {

/// Limits the tile router imposes beyond the server's own.
struct TileRoutesOptions {
    /// Maximum nx*ny lattice points one /v1/window request may ask for
    /// (default 16 Mi points = 64 MiB on the wire).
    std::size_t max_window_points = std::size_t{16} << 20;
};

/// Map of scene name -> the service answering for it.  Services are shared
/// because handlers run concurrently on server workers.
using SceneServices = std::map<std::string, std::shared_ptr<TileService>>;

/// Build the full route table over `scenes`.  `registry` backs /metrics
/// (nullptr = the global registry — pass the server's registry so one JSON
/// document carries both service and transport counters).  Throws
/// ConfigError when `scenes` is empty or any service is null.
Router make_tile_router(SceneServices scenes,
                        obs::MetricsRegistry* registry = nullptr,
                        TileRoutesOptions opt = {});

/// Encode an array as the wire format served by /v1/tile and /v1/window:
/// row-major float32, little-endian, no header (dimensions travel in HTTP
/// headers).  Doubles are narrowed to float — the wire format trades
/// precision for half the bytes, which tests account for when comparing.
std::string encode_tile_f32(const Array2D<double>& a);

}  // namespace rrs::net
