#pragma once

/// \file tile_routes.hpp
/// The tile API: a Router wiring TileService instances (one per named
/// scene) plus the operational endpoints every deployment of the daemon
/// needs.  Route table (DESIGN.md §12):
///
///   GET /            JSON index: scenes, tile shape, endpoint list
///   GET /healthz     liveness probe — "ok" once routable (never degrades:
///                    a live-but-not-ready process must not be restarted)
///   GET /readyz      readiness probe — 200 while the server accepts
///                    traffic (net.ready gauge) and no scene breaker is
///                    open; 503 + Retry-After otherwise
///   GET /metrics     MetricsRegistry snapshot as JSON
///   GET /tracez      Chrome trace JSON (404 while tracing is disabled)
///   GET /v1/tile?scene=NAME&tx=I&ty=J[&z=Z][&q=f32|i16|f64]
///                    one tile, row-major little-endian; dimensions ride in
///                    X-RRS-* response headers.  `z` selects a zoom-pyramid
///                    level (default 0 = base lattice); `q` the body
///                    encoding — f32 (default), i16 (int16 quantized, the
///                    dequantization scale/offset ride in X-RRS-Scale /
///                    X-RRS-Offset), or f64 (bit-exact escape hatch)
///   GET /v1/window?scene=NAME&x0=I&y0=J&nx=W&ny=H[&q=...]
///                    arbitrary lattice window, same wire format
///   GET /v1/pyramid?scene=NAME&tx=I&ty=J&z=Z[&min_z=M][&q=f32|f64]
///                    tile (tx,ty,z) plus every descendant down to zoom
///                    `min_z` (default 0): concatenated tile bodies in
///                    level order, top tile first, each parent's four
///                    children row-major (i16 is rejected — quantization
///                    parameters are per-tile).  X-RRS-Tiles counts them.
///
/// Conditional GETs (DESIGN.md §14): /v1/tile responses carry a strong ETag
/// that is a pure function of (generator fingerprint, tile key, zoom,
/// encoding) — tiles are deterministic, so the ETag never has to see the
/// body.  A request whose If-None-Match matches is answered 304 (counted in
/// `net.not_modified`) *before* any cache/store/generator work.
///
/// `scene` may be omitted when exactly one scene is registered.  Parameter
/// errors are HttpError(400), unknown scenes HttpError(404), and windows
/// larger than `TileRoutesOptions::max_window_points` HttpError(413) — the
/// window cap is the router-level admission control that keeps one request
/// from monopolizing the generation pool.  Zoomed tiles are admission-
/// checked against the same cap on their *base-lattice footprint*
/// (nx·ny·4^z points is what a cold zoom-z tile costs to derive), and
/// pyramids against their total response points.
///
/// Resilience (DESIGN.md §13): each scene's /v1/tile generation sits behind
/// a fault::CircuitBreaker (gauge `net.breaker.state.<scene>`, trip counter
/// `net.breaker.opened`, denial counter `net.breaker.short_circuited`), and
/// every successfully served tile is remembered in a small *stale store*.
/// On a generation failure or an open breaker the route degrades: the last
/// known good tile is served with `X-RRS-Stale: 1` instead of a 500/503
/// (counted in `net.stale_served`).  /v1/window shares the breaker but not
/// the stale store — windows are unbounded in shape, so there is no "last
/// known" body to fall back to.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "grid/array2d.hpp"
#include "grid/rect.hpp"
#include "net/http.hpp"
#include "net/query.hpp"
#include "net/router.hpp"
#include "obs/metrics.hpp"
#include "service/tile_service.hpp"

namespace rrs::net {

/// Limits the tile router imposes beyond the server's own.
struct TileRoutesOptions {
    /// Maximum nx*ny lattice points one /v1/window request may ask for
    /// (default 16 Mi points = 64 MiB on the wire).
    std::size_t max_window_points = std::size_t{16} << 20;
    /// Consecutive generation failures that open a scene's circuit breaker
    /// (0 disables the breakers entirely).
    int breaker_failures = 5;
    /// How long an open breaker denies before half-open probing.
    int breaker_open_ms = 1000;
    /// Successful half-open probes required to re-close.
    int breaker_half_open_successes = 1;
    /// Byte budget of the stale-tile store backing graceful degradation
    /// (0 disables stale serving).
    std::size_t stale_bytes = std::size_t{32} << 20;
};

/// Map of scene name -> the service answering for it.  Services are shared
/// because handlers run concurrently on server workers.
using SceneServices = std::map<std::string, std::shared_ptr<TileService>>;

/// Build the full route table over `scenes`.  `registry` backs /metrics
/// (nullptr = the global registry — pass the server's registry so one JSON
/// document carries both service and transport counters).  Throws
/// ConfigError when `scenes` is empty or any service is null.
Router make_tile_router(SceneServices scenes,
                        obs::MetricsRegistry* registry = nullptr,
                        TileRoutesOptions opt = {});

/// Encode an array as the wire format served by /v1/tile and /v1/window:
/// row-major float32, little-endian, no header (dimensions travel in HTTP
/// headers).  Doubles are narrowed to float — the wire format trades
/// precision for half the bytes, which tests account for when comparing.
std::string encode_tile_f32(const Array2D<double>& a);

/// Bit-exact escape hatch (`?q=f64`): row-major float64, little-endian —
/// the full double lattice, byte-for-byte reproducible across restarts.
std::string encode_tile_f64(const Array2D<double>& a);

/// Quantized body (`?q=i16`) plus the affine decode parameters:
/// value ≈ offset + scale·q with q the little-endian int16 samples.
struct QuantizedTile {
    std::string body;
    double scale = 1.0;
    double offset = 0.0;
};

/// Encode as int16 + scale/offset: offset = midrange, scale sized so the
/// extremes land on ±32767 (scale 1, all-zero body for a constant tile).
/// Quarter the bytes of f64 at ~4.6 digits of dynamic range — plenty for
/// display pipelines, not for resuming computation (use f64 for that).
QuantizedTile encode_tile_i16(const Array2D<double>& a);

/// Strong ETag for a tile body: pure function of (generator fingerprint,
/// key, zoom, encoding name) — quoted, as it appears on the wire.
std::string tile_etag(std::uint64_t fingerprint, const TileKey& key,
                      std::string_view encoding);

/// Wrap an encoded surface window into the binary wire response served by
/// /v1/tile and /v1/window — body per `enc`, dimensions/scene/fingerprint
/// in X-RRS-* headers.  Exposed so the cluster proxy (cluster/proxy.hpp)
/// re-encodes stitched windows with byte-identical framing.
HttpResponse surface_response(const Array2D<double>& a, const Rect& r,
                              const std::string& scene, std::uint64_t fingerprint,
                              WireEncoding enc = WireEncoding::kF32);

}  // namespace rrs::net
