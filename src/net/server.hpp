#pragma once

/// \file server.hpp
/// HttpServer — a production-shaped HTTP/1.1-subset server over POSIX
/// sockets: one acceptor thread, a fixed ThreadPool of connection workers,
/// per-connection read/write deadlines, a hard connection cap with 503
/// shedding, and graceful drain.  DESIGN.md §12 documents the concurrency
/// model; the `race` test tier exercises it under ThreadSanitizer.
///
/// Lifecycle: construct with a Router, `start()`, serve, `stop()` (also run
/// by the destructor).  `stop()` is the graceful drain: stop accepting,
/// nudge idle keep-alive connections closed, let every request already
/// being handled finish and be answered (with `Connection: close`), then
/// join all threads.  A server is one-shot — `start()` after `stop()` is a
/// StateError.
///
/// Admission control: at most `max_connections` connections are admitted
/// concurrently (default: one per worker, so admitted connections never
/// queue behind each other).  Excess connections receive an immediate
/// `503 Service Unavailable` + `Retry-After` and are closed — load is shed
/// at the door within one write deadline instead of queueing unboundedly.
///
/// Metrics (recorded into `Options::registry`, default the global one):
///   net.accepted       connections accepted (admitted or shed)
///   net.active         gauge: connections currently admitted
///   net.requests       responses produced == net.status_2xx + net.status_4xx
///                      + net.status_5xx + net.shed (the accounting identity
///                      tests assert)
///   net.status_2xx/4xx/5xx  responses by status class
///   net.shed           connections answered 503 at the admission gate
///   net.ready          gauge: 1 while accepting traffic, 0 once draining
///                      or after listener breakage (feeds /readyz)
///   net.bytes_out      response bytes actually written
///   net.latency        µs from complete request head to response written
/// Spans: net.accept, net.parse, net.handle, net.write.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/router.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace rrs::net {

/// See file comment.
class HttpServer {
public:
    struct Options {
        std::string host = "127.0.0.1";
        std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
        std::size_t workers = 4;
        /// Connection cap for admission control; 0 = `workers` (admitted
        /// connections then never wait for a worker).  Values above
        /// `workers` allow up to cap-workers connections to queue.
        std::size_t max_connections = 0;
        int read_timeout_ms = 5000;   ///< per-recv deadline (slow-loris bound)
        int write_timeout_ms = 5000;  ///< per-send deadline
        std::size_t max_header_bytes = 8192;
        std::size_t max_body_bytes = 65536;  ///< GET bodies are drained, capped
        int listen_backlog = 64;
        /// Metrics sink; nullptr = obs::MetricsRegistry::global().
        obs::MetricsRegistry* registry = nullptr;
    };

    HttpServer(Router router, Options opt);
    ~HttpServer();

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Bind, listen, and start the acceptor + worker pool.  Throws IoError
    /// when the address cannot be bound, StateError on reuse.
    void start();

    /// Graceful drain; idempotent, safe to call concurrently with serving.
    void stop();

    /// The bound port (valid after start(); resolves ephemeral port 0).
    std::uint16_t port() const noexcept {
        return port_.load(std::memory_order_acquire);
    }

    bool running() const noexcept {
        return started_.load(std::memory_order_acquire) &&
               !stopping_.load(std::memory_order_acquire);
    }

    /// Connections currently admitted (gauge; for tests and admin).
    std::size_t active_connections() const noexcept {
        return static_cast<std::size_t>(active_.load(std::memory_order_acquire));
    }

    const Options& options() const noexcept { return opt_; }

private:
    /// One admitted connection, shared between its worker and the drain
    /// sweep.  `fd` is immutable until the worker unregisters the slot and
    /// closes it, so stop() can safely shutdown() registered fds.
    struct ConnSlot {
        explicit ConnSlot(int descriptor) noexcept : fd(descriptor) {}
        const int fd;
        /// Guarded by conns_mutex_: true while a fully-received request is
        /// being handled (drain must let it finish), false while waiting
        /// for (more of) a request head (drain may shut the socket down).
        bool handling = false;
    };

    void accept_loop();
    void serve_connection(const std::shared_ptr<ConnSlot>& slot);
    void shed_connection(Socket conn);
    void unregister(const std::shared_ptr<ConnSlot>& slot);
    void set_handling(const std::shared_ptr<ConnSlot>& slot, bool handling);

    /// Count one produced response into the requests/status identity.
    void count_response(int status) noexcept;

    Router router_;
    Options opt_;

    Socket listener_;
    std::atomic<std::uint16_t> port_{0};
    std::thread acceptor_;
    std::unique_ptr<ThreadPool> pool_;

    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<std::int64_t> active_{0};
    std::mutex stop_mutex_;  ///< serializes stop() callers (incl. the destructor)

    std::mutex conns_mutex_;
    std::list<std::shared_ptr<ConnSlot>> conns_;
    std::condition_variable drained_cv_;

    // Metric references resolve once; recording is then wait-free.
    obs::MetricsRegistry& registry_;
    obs::Counter& m_accepted_;
    obs::Counter& m_requests_;
    obs::Counter& m_shed_;
    obs::Counter& m_2xx_;
    obs::Counter& m_4xx_;
    obs::Counter& m_5xx_;
    obs::Counter& m_bytes_out_;
    obs::Gauge& m_active_;
    obs::Gauge& m_ready_;  ///< net.ready: 1 while accepting, 0 once draining
    obs::Log2Histogram& m_latency_;
};

}  // namespace rrs::net
