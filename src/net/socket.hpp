#pragma once

/// \file socket.hpp
/// Thin RAII layer over POSIX TCP sockets — the only system dependency of
/// the net subsystem (DESIGN.md §12).  Everything above this file speaks in
/// terms of `Socket` values and byte buffers; everything below is
/// `<sys/socket.h>`.
///
/// Conventions:
///  * Failures that prevent an operation from starting at all (bad address,
///    bind/listen/connect errors) throw IoError with a {"net"} context
///    frame.  Failures *during* traffic (peer reset, timeout) are reported
///    through return values — a serving loop must distinguish them without
///    exception overhead and without treating a rude client as a server
///    fault.
///  * Receive/send deadlines use SO_RCVTIMEO / SO_SNDTIMEO: a blocked
///    recv/send returns after at most the configured interval, which is
///    what bounds slow-loris clients and drain time.  The *connect*
///    deadline is enforced by a non-blocking connect + poll loop, which is
///    the portable mechanism (SO_SNDTIMEO bounding a blocking connect() is
///    a Linux-ism).
///  * EINTR never surfaces: connect/accept/recv/send all resume after
///    signal delivery (rrsd's SIGTERM handler must not masquerade as a
///    peer failure), with deadlines re-computed against steady_clock.
///  * Only numeric IPv4 addresses are accepted ("127.0.0.1", "0.0.0.0") —
///    the library does no DNS, so serving never blocks on a resolver.
///  * Fault-injection sites (DESIGN.md §13): net.connect, net.accept,
///    net.recv, net.send.  Dormant cost per call: one relaxed-acquire load.

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/error.hpp"

namespace rrs::net {

/// Failure to *establish* a connection (refusal, unreachable host, connect
/// deadline expiry) as opposed to failure on an established one.  IS-A
/// IoError, so existing `catch (const IoError&)` sites keep working;
/// rrsquery maps it to its own exit code.
class ConnectError : public IoError {
public:
    explicit ConnectError(std::string message, ErrorContext context = {"net"})
        : IoError(std::move(message), std::move(context)) {}
};

/// Move-only owner of one socket file descriptor (-1 = empty).
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) noexcept : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket&& other) noexcept : fd_(other.release()) {}
    Socket& operator=(Socket&& other) noexcept {
        if (this != &other) {
            close();
            fd_ = other.release();
        }
        return *this;
    }
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    int fd() const noexcept { return fd_; }
    bool valid() const noexcept { return fd_ >= 0; }

    /// Give up ownership without closing.
    int release() noexcept {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void close() noexcept;

private:
    int fd_ = -1;
};

/// Bind + listen on `host:port` (port 0 picks an ephemeral port; read it
/// back with local_port()).  The listener is non-blocking — pair it with
/// accept_with_timeout().  Throws IoError on any setup failure.
Socket listen_tcp(const std::string& host, std::uint16_t port, int backlog = 64);

/// The port a bound socket actually listens on (resolves port 0).
std::uint16_t local_port(const Socket& listener);

/// Wait up to `timeout_ms` for a pending connection, then accept it.
/// Returns an empty Socket when nothing arrived (the accept loop's chance
/// to notice a stop flag).  Signal interruptions and connections that
/// evaporate between poll and accept are retried within the same deadline.
/// Throws IoError only on listener breakage.
Socket accept_with_timeout(const Socket& listener, int timeout_ms);

/// Connect with a deadline (numeric IPv4 host only): non-blocking connect,
/// then poll(POLLOUT) against a steady_clock budget, then SO_ERROR.  The
/// returned socket is blocking with recv/send deadlines of `timeout_ms`.
/// Throws ConnectError on failure — refused, unreachable, or timed out.
Socket connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms);

/// Deadline for blocked recv() / send() on `s` (milliseconds, > 0).
void set_recv_timeout(const Socket& s, int ms);
void set_send_timeout(const Socket& s, int ms);

/// Outcome of one recv() against a deadline socket.  Exactly one of
/// `n > 0`, `closed`, `timed_out` describes the event.
struct RecvResult {
    std::size_t n = 0;       ///< bytes read into the buffer
    bool closed = false;     ///< orderly EOF or connection reset
    bool timed_out = false;  ///< SO_RCVTIMEO expired with nothing to read
};

/// One receive of at most `max` bytes.
RecvResult recv_some(const Socket& s, char* buf, std::size_t max) noexcept;

/// Write all `n` bytes (looping over short writes, SIGPIPE suppressed).
/// Returns false when the peer went away or the send deadline expired.
bool send_all(const Socket& s, const char* data, std::size_t n) noexcept;

/// shutdown(SHUT_RDWR) on a raw fd: wakes a thread blocked in recv() on the
/// same descriptor without closing it — the graceful-drain nudge.  Safe on
/// already-shut-down descriptors (errors ignored).
void shutdown_both(int fd) noexcept;

/// Outcome of reading one HTTP head (request or status line + headers).
enum class HeadStatus {
    kOk,         ///< complete head in `head`, remainder kept in `carry`
    kPeerClosed, ///< EOF / reset before the blank line
    kTimedOut,   ///< read deadline expired before the blank line
    kTooLarge,   ///< more than `max_bytes` arrived without a blank line
};

struct HeadResult {
    HeadStatus status = HeadStatus::kOk;
    /// Had any bytes of this head already arrived?  Distinguishes an idle
    /// keep-alive close / idle timeout (no response owed) from a truncated
    /// or slow-loris request (the peer is owed a 400 / 408).
    bool got_bytes = false;
};

/// Accumulate bytes from `s` into `carry` until a blank line ("\r\n\r\n")
/// completes one head.  On kOk, `head` holds everything before the blank
/// line and `carry` keeps any bytes read beyond it (pipelined next request
/// or message body).  `carry` may already contain buffered bytes on entry.
HeadResult read_head(const Socket& s, std::string& carry, std::size_t max_bytes,
                     std::string& head);

/// Consume exactly `n` message-body bytes (from `carry` first, then the
/// socket), appending them to `out` when non-null.  False when the peer
/// closed or the deadline expired first.
bool read_exact(const Socket& s, std::string& carry, std::size_t n, std::string* out);

}  // namespace rrs::net
