#pragma once

/// \file region_map.hpp
/// Spatial blending maps for inhomogeneous RRS generation — paper §3.
///
/// A RegionMap owns M spectra and, at any physical point, yields blending
/// weights g_m ≥ 0 with Σg_m = 1.  The inhomogeneous weighting array of
/// eqs. (37) and (46) is then w̄_k(n) = Σ_m g_m(n)·w̄_k(m).
///
/// Implementations:
///  * PlateMap  — §3.1 rectangular plates with linear transition ramps
///                (eqs. 37–39); QuadrantMap is the Figs. 1–2 special case.
///  * CircleMap — §3.1 "other cases such as a circular region" (Fig. 3).
///  * PointMap  — §3.2 representative points with bisector-distance
///                transitions (eqs. 40–46; Fig. 4).

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/spectrum.hpp"

namespace rrs {

/// Pointwise blend of M homogeneous statistics into one inhomogeneous RRS.
class RegionMap {
public:
    virtual ~RegionMap() = default;

    std::size_t region_count() const noexcept { return spectra_.size(); }
    const SpectrumPtr& spectrum(std::size_t m) const { return spectra_.at(m); }
    const std::vector<SpectrumPtr>& spectra() const noexcept { return spectra_; }

    /// Write the M blending weights at physical point (x, y) into `g`
    /// (g.size() must equal region_count()).  Weights are non-negative and
    /// sum to 1.
    virtual void weights_at(double x, double y, std::span<double> g) const = 0;

protected:
    explicit RegionMap(std::vector<SpectrumPtr> spectra);

    std::vector<SpectrumPtr> spectra_;
};

using RegionMapPtr = std::shared_ptr<const RegionMap>;

/// Axis-aligned plate with its own statistics (paper §3.1).
struct Plate {
    double x0 = 0.0;
    double x1 = 0.0;
    double y0 = 0.0;
    double y1 = 0.0;
    SpectrumPtr spectrum;
};

/// §3.1 plate-oriented map: each plate contributes a separable linear hat
/// that is 1 in its interior and falls to 0 across a band of half-width T
/// around its boundary (eqs. 38–39); weights are the normalised hats, so
/// adjacent plates blend linearly over a 2T-wide transition strip.
class PlateMap final : public RegionMap {
public:
    PlateMap(std::vector<Plate> plates, double transition_half_width);

    void weights_at(double x, double y, std::span<double> g) const override;

    const std::vector<Plate>& plates() const noexcept { return plates_; }
    double transition_half_width() const noexcept { return T_; }

private:
    std::vector<Plate> plates_;
    double T_;
};

/// Figs. 1–2 geometry: four plates meeting at (cx, cy); spectra ordered by
/// mathematical quadrant (1st = +x+y, 2nd = −x+y, 3rd = −x−y, 4th = +x−y),
/// each plate extending `extent` from the centre.
std::shared_ptr<const PlateMap> make_quadrant_map(double cx, double cy, double extent,
                                                  SpectrumPtr q1, SpectrumPtr q2,
                                                  SpectrumPtr q3, SpectrumPtr q4,
                                                  double transition_half_width);

/// §3.1 circular region (Fig. 3): `inside` statistics within radius R of
/// (cx, cy), `outside` beyond, blended linearly over the annulus
/// [R − T, R + T].
class CircleMap final : public RegionMap {
public:
    CircleMap(double cx, double cy, double radius, SpectrumPtr inside, SpectrumPtr outside,
              double transition_half_width);

    void weights_at(double x, double y, std::span<double> g) const override;

    double radius() const noexcept { return R_; }

private:
    double cx_;
    double cy_;
    double R_;
    double T_;
};

/// Representative point of the point-oriented method (§3.2).
struct RepresentativePoint {
    double x = 0.0;
    double y = 0.0;
    SpectrumPtr spectrum;
};

/// §3.2 point-oriented map (eqs. 40–46): the nearest representative point
/// m* owns each location; within perpendicular-bisector distance τ ≤ T of a
/// competitor m, weights interpolate linearly:
///   g(m)  = ½·(1 − τ_m/T)          for each competitor with τ_m ≤ T,
///   g(m*) = 1 − Σ g(m)             (clamped at 0, then renormalised).
/// On a bisector g(m) = g(m*) = ½; with two regions this reduces exactly to
/// the plate method's linear ramp.  (The paper's eqs. 44–45 are damaged in
/// the source scan; this reconstruction satisfies every property §3.2
/// states — see DESIGN.md.)
class PointMap final : public RegionMap {
public:
    PointMap(std::vector<RepresentativePoint> points, double transition_half_width);

    void weights_at(double x, double y, std::span<double> g) const override;

    const std::vector<RepresentativePoint>& points() const noexcept { return points_; }

    /// Eq. (42): distance from (x, y) to the perpendicular bisector of the
    /// segment [p_m, p_mstar], signed positive on the p_mstar side.
    static double bisector_distance(double x, double y, double mx, double my, double sx,
                                    double sy);

private:
    std::vector<RepresentativePoint> points_;
    double T_;
};

}  // namespace rrs
