#pragma once

/// \file hermitian_noise.hpp
/// The complex Gaussian random array u of paper §2.3 (eqs. 19–28).
///
/// u is built so that its DFT U is a *real* white Gaussian field with
/// U/√(NxNy) ~ N(0,1) (eq. 33).  The paper spells this out bin by bin
/// (eqs. 21–28); the equivalent invariant-driven construction used here is:
///
///  * self-conjugate bins (mx ∈ {0, Mx} and my ∈ {0, My}): u real ~ N(0,1);
///  * every other bin: u = (a + jb)/√2 with a,b ~ N(0,1) i.i.d., and the
///    conjugate-mirror bin (−m mod N) set to conj(u)  — so E|u|² = 1
///    everywhere and DFT(u) is real.

#include <complex>
#include <cstddef>

#include "grid/array2d.hpp"
#include "obs/trace.hpp"
#include "special/constants.hpp"

namespace rrs {

/// Fill an Nx×Ny complex array with Hermitian-symmetric unit Gaussian
/// noise.  `gauss` is any callable returning independent N(0,1) draws.
template <typename GaussFn>
Array2D<std::complex<double>> hermitian_gaussian_array(std::size_t Nx, std::size_t Ny,
                                                       GaussFn&& gauss) {
    RRS_TRACE_SPAN("noise.hermitian");
    Array2D<std::complex<double>> u(Nx, Ny);
    const double inv_sqrt2 = 1.0 / kSqrt2;
    for (std::size_t my = 0; my < Ny; ++my) {
        const std::size_t cy = (Ny - my) % Ny;
        for (std::size_t mx = 0; mx < Nx; ++mx) {
            const std::size_t cx = (Nx - mx) % Nx;
            if (cx == mx && cy == my) {
                // Self-conjugate: must be real with unit variance.
                u(mx, my) = std::complex<double>{gauss(), 0.0};
            } else if (my < cy || (my == cy && mx < cx)) {
                // Canonical half: draw; mirror gets the conjugate.
                const double a = gauss();
                const double b = gauss();
                u(mx, my) = std::complex<double>{a * inv_sqrt2, b * inv_sqrt2};
                u(cx, cy) = std::conj(u(mx, my));
            }
            // else: already filled by its mirror.
        }
    }
    return u;
}

/// Largest deviation from Hermitian symmetry max |u(m) − conj(u(−m))|;
/// exactly 0 for arrays built by hermitian_gaussian_array.
double hermitian_symmetry_defect(const Array2D<std::complex<double>>& u);

}  // namespace rrs
