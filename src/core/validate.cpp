#include "core/validate.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace rrs {

namespace {

std::string describe(double value) {
    std::ostringstream ss;
    ss << value;
    return ss.str();
}

/// Context with the parameter name appended as the innermost frame.
ErrorContext with_name(ErrorContext context, std::string_view name) {
    context.emplace_back(name);
    return context;
}

}  // namespace

void fail_config(std::string message, ErrorContext context) {
    throw ConfigError(std::move(message), std::move(context));
}

void fail_numeric(std::string message, ErrorContext context) {
    throw NumericError(std::move(message), std::move(context));
}

void fail_io(std::string message, ErrorContext context) {
    throw IoError(std::move(message), std::move(context));
}

void check_finite(double value, std::string_view name, ErrorContext context) {
    if (!std::isfinite(value)) {
        fail_config("must be finite (got " + describe(value) + ")",
                    with_name(std::move(context), name));
    }
}

void check_positive(double value, std::string_view name, ErrorContext context) {
    if (!std::isfinite(value) || !(value > 0.0)) {
        fail_config("must be positive and finite (got " + describe(value) + ")",
                    with_name(std::move(context), name));
    }
}

void check_nonnegative(double value, std::string_view name, ErrorContext context) {
    if (!std::isfinite(value) || value < 0.0) {
        fail_config("must be non-negative and finite (got " + describe(value) + ")",
                    with_name(std::move(context), name));
    }
}

void check_open_unit(double value, std::string_view name, ErrorContext context) {
    if (!std::isfinite(value) || !(value > 0.0) || !(value < 1.0)) {
        fail_config("must lie in (0, 1) (got " + describe(value) + ")",
                    with_name(std::move(context), name));
    }
}

void check_positive_count(std::int64_t value, std::string_view name, ErrorContext context) {
    if (value <= 0) {
        fail_config("must be positive (got " + std::to_string(value) + ")",
                    with_name(std::move(context), name));
    }
}

void check_not_null(const void* ptr, std::string_view name, ErrorContext context) {
    if (ptr == nullptr) {
        fail_config("must not be null", with_name(std::move(context), name));
    }
}

std::int64_t checked_mul(std::int64_t a, std::int64_t b, std::string_view name,
                         ErrorContext context) {
    if (a > 0 && b > 0 && a <= std::numeric_limits<std::int64_t>::max() / b) {
        return a * b;
    }
    fail_config("size " + std::to_string(a) + " * " + std::to_string(b) +
                    " overflows 64-bit arithmetic",
                with_name(std::move(context), name));
}

}  // namespace rrs
