#pragma once

/// \file surface.hpp
/// Value type bundling a generated height field with its lattice placement
/// and physical spacing, plus the sub-region statistics helpers the figure
/// benches report.

#include <cstddef>
#include <vector>

#include "grid/array2d.hpp"
#include "grid/rect.hpp"
#include "stats/moments.hpp"

namespace rrs {

/// A sampled rough surface: heights f(ix, iy) at physical positions
/// (origin + index·spacing).
struct Surface {
    Array2D<double> heights;
    Rect region;      ///< lattice placement on the unbounded output lattice
    double dx = 1.0;  ///< physical spacing along x
    double dy = 1.0;
};

/// Moments of an index-space sub-window [x0, x0+nx) × [y0, y0+ny).
Moments subgrid_moments(const Array2D<double>& f, std::size_t x0, std::size_t y0,
                        std::size_t nx, std::size_t ny);

/// Copy of row iy (an x-profile, e.g. for propagation-path extraction).
std::vector<double> extract_row(const Array2D<double>& f, std::size_t iy);

/// Copy of column ix (a y-profile).
std::vector<double> extract_column(const Array2D<double>& f, std::size_t ix);

/// RMS of the discrete x-slope (f(ix+1)−f(ix))/dx over the whole field —
/// a roughness figure used in the examples.
double rms_slope_x(const Array2D<double>& f, double dx);

}  // namespace rrs
