#include "core/spectrum_ops.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/error.hpp"

namespace rrs {

namespace {

class RotatedSpectrum final : public Spectrum {
public:
    RotatedSpectrum(SpectrumPtr base, double theta)
        : Spectrum(base->params()),
          base_(std::move(base)),
          cos_(std::cos(theta)),
          sin_(std::sin(theta)),
          theta_(theta) {}

    double density(double Kx, double Ky) const override {
        // Evaluate the base spectrum in the rotated frame (R_{−θ}·K).
        return base_->density(cos_ * Kx + sin_ * Ky, -sin_ * Kx + cos_ * Ky);
    }

    double autocorrelation(double x, double y) const override {
        return base_->autocorrelation(cos_ * x + sin_ * y, -sin_ * x + cos_ * y);
    }

    std::string name() const override {
        std::ostringstream ss;
        ss << base_->name() << "@rot(" << theta_ << ")";
        return ss.str();
    }

private:
    SpectrumPtr base_;
    double cos_;
    double sin_;
    double theta_;
};

class MixtureSpectrum final : public Spectrum {
public:
    explicit MixtureSpectrum(std::vector<SpectrumPtr> parts)
        : Spectrum(combined_params(parts)), parts_(std::move(parts)) {}

    double density(double Kx, double Ky) const override {
        double w = 0.0;
        for (const auto& s : parts_) {
            w += s->density(Kx, Ky);
        }
        return w;
    }

    double autocorrelation(double x, double y) const override {
        double r = 0.0;
        for (const auto& s : parts_) {
            r += s->autocorrelation(x, y);
        }
        return r;
    }

    std::string name() const override {
        std::ostringstream ss;
        ss << "mix(";
        for (std::size_t i = 0; i < parts_.size(); ++i) {
            ss << (i ? "+" : "") << parts_[i]->name();
        }
        ss << ")";
        return ss.str();
    }

private:
    static SurfaceParams combined_params(const std::vector<SpectrumPtr>& parts) {
        if (parts.empty()) {
            throw ConfigError{"mix_spectra: needs at least one component"};
        }
        SurfaceParams p{0.0, 0.0, 0.0};
        double h2 = 0.0;
        for (const auto& s : parts) {
            if (!s) {
                throw ConfigError{"mix_spectra: null component"};
            }
            h2 += s->params().h * s->params().h;
            p.clx = std::max(p.clx, s->params().clx);
            p.cly = std::max(p.cly, s->params().cly);
        }
        p.h = std::sqrt(h2);
        return p;
    }

    std::vector<SpectrumPtr> parts_;
};

}  // namespace

SpectrumPtr rotate_spectrum(SpectrumPtr base, double theta_rad) {
    if (!base) {
        throw ConfigError{"rotate_spectrum: null base"};
    }
    return std::make_shared<const RotatedSpectrum>(std::move(base), theta_rad);
}

SpectrumPtr mix_spectra(std::vector<SpectrumPtr> components) {
    return std::make_shared<const MixtureSpectrum>(std::move(components));
}

}  // namespace rrs
