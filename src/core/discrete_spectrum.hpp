#pragma once

/// \file discrete_spectrum.hpp
/// Discretisation of a spectral density onto the DFT grid — paper §2.2.
///
/// The weighting array w (eq. 15) holds the spectral mass per DFT bin,
/// w_{mx,my} = ΔKx·ΔKy·W(K_m̄x, K_m̄y) with the signed-frequency aliasing of
/// eq. (16); its elementwise square root v (eq. 17) is the direct-DFT
/// method's amplitude filter and, transformed, the convolution kernel.

#include "core/grid_spec.hpp"
#include "core/spectrum.hpp"
#include "grid/array2d.hpp"

namespace rrs {

/// Eq. (15): w_{mx,my} = (4π²/LxLy)·W(K_m̄).  Σw ≈ h².
Array2D<double> weight_array(const Spectrum& s, const GridSpec& g);

/// Eq. (17): v = √w, elementwise.
Array2D<double> sqrt_weight_array(const Spectrum& s, const GridSpec& g);

/// §2.2 accuracy check: DFT(w) ≈ ρ(r_n).  Returns the real part of the
/// forward DFT of w; entry (nx, ny) approximates ρ at lag
/// (n̄x·Δx, n̄y·Δy) with the same signed aliasing.  `max_imag`, if non-null,
/// receives the largest |Im| (should be ≈ 0; w is even).
Array2D<double> weight_autocorr_check(const Array2D<double>& w, double* max_imag = nullptr);

/// Analytic ρ evaluated at the same aliased lattice lags, for comparison
/// against weight_autocorr_check.
Array2D<double> analytic_autocorr_grid(const Spectrum& s, const GridSpec& g);

/// Σw over all bins — approximates h² (Riemann sum of eq. 1).
double weight_sum(const Array2D<double>& w);

}  // namespace rrs
