#pragma once

/// \file spectrum1d.hpp
/// One-dimensional spectral families — the profile (transect) counterpart
/// of the paper's 2-D machinery.
///
/// The paper's propagation studies (its refs. [8]-[12]) analyse EM waves
/// along 1-D rough *profiles*; this module provides the same three families
/// with self-consistent 1-D normalisation, ∫W dK = h² and ρ = F[W]:
///
///   Gaussian    : W = (cl·h²/2√π)·e^{−(K·cl/2)²}            ρ = h²e^{−(x/cl)²}
///   PowerLaw(N) : W = (cl·h²·Γ(N)/(√π·Γ(N−½)))(1+(K·cl)²)^{−N}
///                                       ρ = (2h²/Γ(N−½))(|x̃|/2)^{N−½}K_{N−½}(|x̃|)
///   Exponential : W = (cl·h²/π)/(1+(K·cl)²)  (Lorentzian)    ρ = h²e^{−|x|/cl}
///
/// Exponential ≡ PowerLaw(N = 1) (Matérn ν = ½) — mirrored by the tests.
/// 1-D integrability only needs N > ½.

#include <memory>
#include <string>

namespace rrs {

/// Statistical parameters of a 1-D rough profile.
struct ProfileParams {
    double h = 1.0;
    double cl = 1.0;

    void validate() const;
};

/// 1-D spectral density with closed-form autocorrelation.
class Spectrum1D {
public:
    virtual ~Spectrum1D() = default;

    /// W(K), normalised so ∫W dK = h².
    virtual double density(double K) const = 0;

    /// ρ(x) = F[W]; ρ(0) = h².
    virtual double autocorrelation(double x) const = 0;

    virtual std::string name() const = 0;

    const ProfileParams& params() const noexcept { return p_; }

protected:
    explicit Spectrum1D(ProfileParams p);
    ProfileParams p_;
};

using Spectrum1DPtr = std::shared_ptr<const Spectrum1D>;

Spectrum1DPtr make_gaussian_1d(ProfileParams p);

/// Requires N > 1/2.
Spectrum1DPtr make_power_law_1d(ProfileParams p, double N);

Spectrum1DPtr make_exponential_1d(ProfileParams p);

/// Distance d with ρ(d) = level·h² (bisection; cf. correlation_distance).
double correlation_distance_1d(const Spectrum1D& s, double level);

}  // namespace rrs
