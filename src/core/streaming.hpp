#pragma once

/// \file streaming.hpp
/// Successive computation of arbitrarily long surfaces — paper §2.4:
/// "once the weighting array is computed, we can generate any size of
/// continuous RRSs".
///
/// StripStreamer walks a fixed-width strip in y-direction tiles.  Because
/// the underlying generators draw noise as a pure function of lattice
/// coordinates, consecutive tiles join seamlessly: the concatenation is
/// bit-identical to a one-shot generation of the full strip (a test
/// asserts this).  Works with any generator exposing
/// `Array2D<double> generate(const Rect&) const`.

#include <cstdint>
#include <stdexcept>

#include "grid/array2d.hpp"
#include "grid/rect.hpp"

namespace rrs {

template <typename Generator>
class StripStreamer {
public:
    /// Stream rows of the strip x ∈ [x0, x0+nx), starting at y = y0,
    /// `rows_per_tile` lattice rows at a time.
    StripStreamer(const Generator& gen, std::int64_t x0, std::int64_t nx, std::int64_t y0,
                  std::int64_t rows_per_tile)
        : gen_(&gen), x0_(x0), nx_(nx), y_(y0), rows_(rows_per_tile) {
        if (nx <= 0 || rows_per_tile <= 0) {
            throw std::invalid_argument{"StripStreamer: sizes must be positive"};
        }
    }

    /// Lattice row the next tile starts at.
    std::int64_t current_y() const noexcept { return y_; }

    /// Generate the next tile ([x0, x0+nx) × [current_y, current_y+rows))
    /// and advance.
    Array2D<double> next() {
        const Rect tile{x0_, y_, nx_, rows_};
        y_ += rows_;
        return gen_->generate(tile);
    }

    /// Generate `count` tiles concatenated into one array (helper for
    /// continuity checks and the streaming bench).
    Array2D<double> take(std::int64_t count) {
        Array2D<double> out(static_cast<std::size_t>(nx_),
                            static_cast<std::size_t>(rows_ * count));
        for (std::int64_t t = 0; t < count; ++t) {
            const Array2D<double> tile = next();
            for (std::size_t iy = 0; iy < tile.ny(); ++iy) {
                const auto oy = static_cast<std::size_t>(t * rows_) + iy;
                for (std::size_t ix = 0; ix < tile.nx(); ++ix) {
                    out(ix, oy) = tile(ix, iy);
                }
            }
        }
        return out;
    }

private:
    const Generator* gen_;
    std::int64_t x0_;
    std::int64_t nx_;
    std::int64_t y_;
    std::int64_t rows_;
};

}  // namespace rrs
