#pragma once

/// \file streaming.hpp
/// Successive computation of arbitrarily long surfaces — paper §2.4:
/// "once the weighting array is computed, we can generate any size of
/// continuous RRSs".
///
/// StripStreamer walks a fixed-width strip in y-direction tiles.  Because
/// the underlying generators draw noise as a pure function of lattice
/// coordinates, consecutive tiles join seamlessly: the concatenation is
/// bit-identical to a one-shot generation of the full strip (a test
/// asserts this).  Works with any generator exposing
/// `Array2D<double> generate(const Rect&) const`.
///
/// Robustness contract (see DESIGN.md "Error handling & failure contract"):
///  * a tile that throws leaves the cursor unchanged, so the caller can
///    retry the same tile or skip it explicitly;
///  * `checkpoint()` captures the cursor plus a fingerprint of the
///    generator's configuration; `StreamCheckpoint` round-trips through a
///    text serialization, and `resume()` in a fresh process continues the
///    stream bit-identically to an uninterrupted run (the noise lattice is
///    a pure function of (seed, coordinate), so no generator state beyond
///    the fingerprint needs saving);
///  * `resume()` rejects a checkpoint whose fingerprint does not match the
///    generator it is being attached to.

#include <concepts>
#include <cstdint>
#include <sstream>
#include <string>

#include "core/validate.hpp"
#include "grid/array2d.hpp"
#include "grid/rect.hpp"

namespace rrs {

namespace detail {

/// Generator fingerprint when the type provides one; 0 (= "unfingerprinted,
/// skip the compatibility check") otherwise.
template <typename Generator>
std::uint64_t generator_fingerprint(const Generator& gen) {
    if constexpr (requires {
                      { gen.fingerprint() } -> std::convertible_to<std::uint64_t>;
                  }) {
        return gen.fingerprint();
    } else {
        return 0;
    }
}

}  // namespace detail

/// Serializable cursor state of a StripStreamer.  Plain text, versioned,
/// whitespace-separated — diffable and safe to stash next to the output.
struct StreamCheckpoint {
    std::int64_t x0 = 0;    ///< strip origin along x
    std::int64_t nx = 0;    ///< strip width
    std::int64_t y = 0;     ///< lattice row the next tile starts at
    std::int64_t rows = 0;  ///< rows per tile
    std::uint64_t generator_fingerprint = 0;  ///< 0 = unknown generator type

    /// "rrs-checkpoint 1 <x0> <nx> <y> <rows> <fingerprint>".
    std::string serialize() const {
        std::ostringstream ss;
        ss << "rrs-checkpoint 1 " << x0 << ' ' << nx << ' ' << y << ' ' << rows << ' '
           << generator_fingerprint;
        return ss.str();
    }

    /// Inverse of serialize(); throws IoError on malformed or truncated text.
    static StreamCheckpoint deserialize(const std::string& text) {
        std::istringstream ss(text);
        std::string magic;
        int version = 0;
        StreamCheckpoint c;
        if (!(ss >> magic) || magic != "rrs-checkpoint") {
            fail_io("not a checkpoint (missing 'rrs-checkpoint' magic)",
                    {"StreamCheckpoint"});
        }
        if (!(ss >> version) || version != 1) {
            fail_io("unsupported checkpoint version " + std::to_string(version),
                    {"StreamCheckpoint"});
        }
        if (!(ss >> c.x0 >> c.nx >> c.y >> c.rows >> c.generator_fingerprint)) {
            fail_io("truncated or corrupt checkpoint fields", {"StreamCheckpoint"});
        }
        std::string extra;
        if (ss >> extra) {
            // Anything after the fingerprint means the text is not a
            // checkpoint this version wrote — a concatenated/corrupted file,
            // not something to silently accept.
            fail_io("trailing garbage after checkpoint fields ('" + extra + "')",
                    {"StreamCheckpoint"});
        }
        check_positive_count(c.nx, "nx", {"StreamCheckpoint"});
        check_positive_count(c.rows, "rows", {"StreamCheckpoint"});
        return c;
    }

    friend bool operator==(const StreamCheckpoint&, const StreamCheckpoint&) = default;
};

template <typename Generator>
class StripStreamer {
public:
    /// Stream rows of the strip x ∈ [x0, x0+nx), starting at y = y0,
    /// `rows_per_tile` lattice rows at a time.
    StripStreamer(const Generator& gen, std::int64_t x0, std::int64_t nx, std::int64_t y0,
                  std::int64_t rows_per_tile)
        : gen_(&gen), x0_(x0), nx_(nx), y_(y0), rows_(rows_per_tile) {
        check_positive_count(nx, "nx", {"StripStreamer"});
        check_positive_count(rows_per_tile, "rows_per_tile", {"StripStreamer"});
    }

    /// Re-attach a saved checkpoint to `gen` and continue the stream.  The
    /// checkpoint's fingerprint must match the generator's (when both are
    /// known); a mismatch means the checkpoint came from a differently
    /// configured run and resuming would splice incompatible surfaces.
    static StripStreamer resume(const Generator& gen, const StreamCheckpoint& c) {
        const std::uint64_t fp = detail::generator_fingerprint(gen);
        if (c.generator_fingerprint != 0 && fp != 0 && c.generator_fingerprint != fp) {
            fail_config("checkpoint fingerprint " +
                            std::to_string(c.generator_fingerprint) +
                            " does not match generator fingerprint " + std::to_string(fp),
                        {"StripStreamer", "resume"});
        }
        return StripStreamer(gen, c.x0, c.nx, c.y, c.rows);
    }

    /// Lattice row the next tile starts at.
    std::int64_t current_y() const noexcept { return y_; }

    /// Snapshot of the cursor + generator fingerprint.  Saving this after
    /// every delivered tile makes any interruption resumable.
    StreamCheckpoint checkpoint() const {
        return StreamCheckpoint{x0_, nx_, y_, rows_, detail::generator_fingerprint(*gen_)};
    }

    /// Generate the next tile ([x0, x0+nx) × [current_y, current_y+rows))
    /// and advance.  If generation throws, the cursor does NOT advance: the
    /// caller may retry the identical tile or `skip()` it.
    Array2D<double> next() {
        const Rect tile{x0_, y_, nx_, rows_};
        Array2D<double> out = gen_->generate(tile);
        y_ += rows_;  // only after a successful generate
        return out;
    }

    /// Advance past the current tile without generating it (explicit
    /// gap-acceptance after a failed next()).
    void skip() noexcept { y_ += rows_; }

    /// Generate `count` tiles concatenated into one array (helper for
    /// continuity checks and the streaming bench).
    Array2D<double> take(std::int64_t count) {
        check_positive_count(count, "count", {"StripStreamer", "take"});
        const std::int64_t total_rows = checked_mul(rows_, count, "rows_per_tile * count",
                                                    {"StripStreamer", "take"});
        // The output buffer holds nx * total_rows doubles; reject requests
        // that overflow 64-bit element counts before allocating.
        (void)checked_mul(nx_, total_rows, "nx * rows", {"StripStreamer", "take"});
        Array2D<double> out(static_cast<std::size_t>(nx_),
                            static_cast<std::size_t>(total_rows));
        for (std::int64_t t = 0; t < count; ++t) {
            const Array2D<double> tile = next();
            for (std::size_t iy = 0; iy < tile.ny(); ++iy) {
                const auto oy = static_cast<std::size_t>(t * rows_) + iy;
                for (std::size_t ix = 0; ix < tile.nx(); ++ix) {
                    out(ix, oy) = tile(ix, iy);
                }
            }
        }
        return out;
    }

private:
    const Generator* gen_;
    std::int64_t x0_;
    std::int64_t nx_;
    std::int64_t y_;
    std::int64_t rows_;
};

}  // namespace rrs
