#pragma once

/// \file health.hpp
/// Numeric health guards for generated surfaces and convolution kernels.
///
/// FFT-based generators fail *silently*: a mis-discretised spectrum, a
/// negative density, or one NaN in the noise tile propagates into gigabytes
/// of plausible-looking but wrong output (Lang & Potthoff; de Castro et
/// al.).  This module gives the pipeline a specified failure contract:
///
///  * SurfaceHealth — one O(N) scan of a generated tile: NaN/Inf counts,
///    min/max, RMS, and an RMS-vs-target sanity ratio (the target is the
///    kernel's √energy, i.e. the surface's expected standard deviation).
///  * KernelHealth — energy conservation of a (possibly truncated) kernel:
///    Σc² must stay close to the spectrum's h² (Parseval); a large gap
///    means the grid under-resolves the spectrum or truncation ate real
///    energy.
///
/// Both feed a three-way HealthPolicy chosen by the caller:
///  * kThrow  — violations raise NumericError with a context chain;
///  * kReport — violations print one diagnostic line to stderr, output is
///              delivered anyway (for pipelines that tolerate gaps);
///  * kIgnore — guards are skipped entirely (zero overhead; the default,
///              preserving historical behaviour).

#include <cstddef>
#include <string>
#include <string_view>

#include "core/error.hpp"
#include "grid/array2d.hpp"

namespace rrs {

class ConvolutionKernel;

/// What to do when a health guard trips.
enum class HealthPolicy {
    kThrow,   ///< raise NumericError
    kReport,  ///< one line to stderr, keep going
    kIgnore,  ///< skip the guard entirely
};

/// Parse "throw" / "report" / "ignore"; throws ConfigError otherwise.
HealthPolicy parse_health_policy(std::string_view text);

/// The policy's canonical spelling.
std::string_view health_policy_name(HealthPolicy policy) noexcept;

/// Result of one surface scan.  `target_rms` = 0 means "unknown" and
/// disables the plausibility ratio (only NaN/Inf are then checked).
struct SurfaceHealth {
    std::size_t count = 0;      ///< samples scanned
    std::size_t nan_count = 0;  ///< samples that are NaN
    std::size_t inf_count = 0;  ///< samples that are ±Inf
    double min = 0.0;           ///< over finite samples
    double max = 0.0;           ///< over finite samples
    double rms = 0.0;           ///< over finite samples
    double target_rms = 0.0;    ///< expected stddev (√kernel-energy), 0 = unknown

    /// No NaN or Inf anywhere.
    bool finite() const noexcept { return nan_count == 0 && inf_count == 0; }

    /// finite() and, when a target is known and the sample is large enough
    /// to judge, RMS within a (very generous) band of the target.  The band
    /// only trips on catastrophic scaling errors, never on ordinary sample
    /// fluctuation of a correlated field.
    bool plausible() const noexcept;

    /// One-line human-readable digest.
    std::string summary() const;
};

/// Scan a raw buffer (never throws; the policy decides what to do).
SurfaceHealth scan_surface(const double* data, std::size_t n, double target_rms = 0.0);

/// Scan a surface tile.
SurfaceHealth scan_surface(const Array2D<double>& f, double target_rms = 0.0);

/// Apply `policy` to a scan result: throw NumericError / print / no-op.
void apply_policy(const SurfaceHealth& health, HealthPolicy policy, ErrorContext context);

/// Energy-conservation snapshot of a convolution kernel.
struct KernelHealth {
    double energy = 0.0;           ///< Σ taps² of the (truncated) kernel
    double target_variance = 0.0;  ///< h² of the source spectrum

    /// energy / target_variance; 1 means perfect Parseval conservation.
    double ratio() const noexcept;

    /// |ratio − 1| <= tol.
    bool ok(double tol) const noexcept;

    std::string summary() const;
};

/// Read the kernel's energy bookkeeping (cheap; no rescan of taps).
KernelHealth kernel_health(const ConvolutionKernel& kernel);

/// Apply `policy` to a kernel check with relative tolerance `tol`
/// (kDefaultKernelEnergyTol unless the caller knows better).
void apply_policy(const KernelHealth& health, HealthPolicy policy, double tol,
                  ErrorContext context);

/// Default relative tolerance for kernel energy vs h²: generous enough for
/// ordinary spectral-discretisation error, tight enough to catch a spectrum
/// the grid cannot resolve.
inline constexpr double kDefaultKernelEnergyTol = 0.25;

}  // namespace rrs
