#pragma once

/// \file validate.hpp
/// Precondition layer over the error taxonomy (error.hpp).
///
/// Small, uniformly-named helpers that every boundary of the library calls
/// before touching a value: `check_positive(h, "h", {"SurfaceParams"})`
/// throws `ConfigError` with context {"SurfaceParams", "h"} and a message
/// quoting the offending value.  The RRS_CHECK macro covers one-off
/// predicates that do not fit a named helper.
///
/// All helpers are cheap enough for hot constructors; none allocate on the
/// success path.

#include <cstdint>
#include <string>
#include <string_view>

#include "core/error.hpp"

namespace rrs {

/// Throw ConfigError{message, context} (explicit failure entry point).
[[noreturn]] void fail_config(std::string message, ErrorContext context = {});

/// Throw NumericError{message, context}.
[[noreturn]] void fail_numeric(std::string message, ErrorContext context = {});

/// Throw IoError{message, context}.
[[noreturn]] void fail_io(std::string message, ErrorContext context = {});

/// value must be finite (not NaN, not ±Inf).
void check_finite(double value, std::string_view name, ErrorContext context = {});

/// value must be finite and > 0.
void check_positive(double value, std::string_view name, ErrorContext context = {});

/// value must be finite and >= 0.
void check_nonnegative(double value, std::string_view name, ErrorContext context = {});

/// value must be finite and strictly inside (0, 1).
void check_open_unit(double value, std::string_view name, ErrorContext context = {});

/// Integral count must be > 0.
void check_positive_count(std::int64_t value, std::string_view name,
                          ErrorContext context = {});

/// Pointer must be non-null.
void check_not_null(const void* ptr, std::string_view name, ErrorContext context = {});

/// a * b must not overflow int64 (both assumed > 0); returns the product.
std::int64_t checked_mul(std::int64_t a, std::int64_t b, std::string_view name,
                         ErrorContext context = {});

}  // namespace rrs

/// One-off predicate check: RRS_CHECK(rows > 0, "StripStreamer",
/// "rows_per_tile must be positive") throws ConfigError with context
/// {"StripStreamer"} when the condition is false.
#define RRS_CHECK(cond, component, msg)                          \
    do {                                                         \
        if (!(cond)) {                                           \
            ::rrs::fail_config((msg), {std::string{component}}); \
        }                                                        \
    } while (false)
