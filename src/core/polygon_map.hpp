#pragma once

/// \file polygon_map.hpp
/// Polygonal region blending — the paper's §3.1 remark that the plate
/// method "can easily be applied to other cases" made concrete: an
/// arbitrary simple polygon with `inside` statistics in a background of
/// `outside` statistics, blended linearly over a band of half-width T
/// around the boundary (signed-distance ramp, like CircleMap's annulus).

#include <vector>

#include "core/region_map.hpp"

namespace rrs {

/// 2-D point of a polygon outline.
struct PolyVertex {
    double x = 0.0;
    double y = 0.0;
};

/// Region map for one simple (non-self-intersecting) polygon.
class PolygonMap final : public RegionMap {
public:
    /// `outline` lists the vertices in order (closed implicitly); needs at
    /// least 3 vertices.
    PolygonMap(std::vector<PolyVertex> outline, SpectrumPtr inside, SpectrumPtr outside,
               double transition_half_width);

    void weights_at(double x, double y, std::span<double> g) const override;

    /// Signed distance to the outline: negative inside, positive outside.
    double signed_distance(double x, double y) const;

    /// Even-odd point-in-polygon test.
    bool contains(double x, double y) const;

    const std::vector<PolyVertex>& outline() const noexcept { return outline_; }

private:
    std::vector<PolyVertex> outline_;
    double T_;
};

}  // namespace rrs
