#include "core/direct_dft.hpp"

#include "core/hermitian_noise.hpp"
#include "core/validate.hpp"
#include "fft/fft2d.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rng/engines.hpp"
#include "rng/gaussian.hpp"

namespace rrs {

DirectDftGenerator::DirectDftGenerator(SpectrumPtr spectrum, GridSpec grid)
    : spectrum_(std::move(spectrum)), grid_(grid) {
    check_not_null(spectrum_.get(), "spectrum", {"DirectDftGenerator"});
    grid_.validate();
    v_ = sqrt_weight_array(*spectrum_, grid_);
}

Array2D<double> DirectDftGenerator::generate(std::uint64_t seed, double* max_imag) const {
    RRS_TRACE_SPAN("dft.generate");
    static obs::Counter& fields = obs::MetricsRegistry::global().counter("dft.fields");
    fields.add();
    BoxMullerGaussian<Pcg64> gauss{Pcg64{seed}};
    Array2D<cplx> z =
        hermitian_gaussian_array(grid_.Nx, grid_.Ny, [&gauss]() { return gauss(); });
    // Eq. (29): z = v·u, then eq. (30): Z = DFT(z).
    for (std::size_t i = 0; i < z.size(); ++i) {
        z.data()[i] *= v_.data()[i];
    }
    Fft2D plan(grid_.Nx, grid_.Ny);
    plan.forward(z);

    Array2D<double> f(grid_.Nx, grid_.Ny);
    double mi = 0.0;
    for (std::size_t i = 0; i < z.size(); ++i) {
        f.data()[i] = z.data()[i].real();
        mi = std::max(mi, std::abs(z.data()[i].imag()));
    }
    if (max_imag != nullptr) {
        *max_imag = mi;
    }
    return f;
}

}  // namespace rrs
