#include "core/segment_map.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/error.hpp"

namespace rrs {

SegmentMap::SegmentMap(std::vector<Segment> segments, double transition_half_width)
    : segments_(std::move(segments)), T_(transition_half_width) {
    if (segments_.empty()) {
        throw ConfigError{"SegmentMap: needs at least one segment"};
    }
    if (!(T_ > 0.0)) {
        throw ConfigError{"SegmentMap: transition half-width must be positive"};
    }
    for (std::size_t m = 0; m < segments_.size(); ++m) {
        if (!segments_[m].spectrum) {
            throw ConfigError{"SegmentMap: null spectrum"};
        }
        if (m > 0 && !(segments_[m].begin > segments_[m - 1].begin)) {
            throw ConfigError{"SegmentMap: segments must be strictly ordered"};
        }
    }
}

void SegmentMap::weights_at(double x, std::span<double> g) const {
    if (g.size() != segments_.size()) {
        throw ConfigError{"SegmentMap::weights_at: span size mismatch"};
    }
    const std::size_t M = segments_.size();
    double total = 0.0;
    for (std::size_t m = 0; m < M; ++m) {
        // Rise across this segment's left boundary, fall across its right.
        const double rise =
            m == 0 ? 1.0
                   : std::clamp((x - (segments_[m].begin - T_)) / (2.0 * T_), 0.0, 1.0);
        const double fall =
            m + 1 == M
                ? 1.0
                : std::clamp(((segments_[m + 1].begin + T_) - x) / (2.0 * T_), 0.0, 1.0);
        g[m] = rise * fall;
        total += g[m];
    }
    if (total <= 0.0) {
        // Cannot happen for ordered segments (first/last extend to ±inf),
        // but keep the partition-of-unity contract robust.
        std::fill(g.begin(), g.end(), 0.0);
        g[0] = 1.0;
        return;
    }
    for (auto& v : g) {
        v /= total;
    }
}

InhomogeneousProfileGenerator::InhomogeneousProfileGenerator(SegmentMapPtr map,
                                                             LineSpec kernel_line,
                                                             std::uint64_t seed,
                                                             Options opt)
    : map_(std::move(map)), line_(kernel_line), opt_(opt) {
    if (!map_) {
        throw ConfigError{"InhomogeneousProfileGenerator: null map"};
    }
    line_.validate();
    kernels_.reserve(map_->region_count());
    generators_.reserve(map_->region_count());
    for (std::size_t m = 0; m < map_->region_count(); ++m) {
        ProfileKernel k = ProfileKernel::build(*map_->spectrum(m), line_);
        if (opt_.kernel_tail_eps > 0.0) {
            k = k.truncated(opt_.kernel_tail_eps);
        }
        kernels_.push_back(k);
        generators_.emplace_back(std::move(k), seed);
    }
}

std::vector<double> InhomogeneousProfileGenerator::generate(std::int64_t x0,
                                                            std::int64_t n) const {
    if (n <= 0) {
        throw ConfigError{"InhomogeneousProfileGenerator: length must be positive"};
    }
    const std::size_t M = map_->region_count();
    std::vector<double> out(static_cast<std::size_t>(n), 0.0);
    std::vector<double> g(M);
    // Per-segment homogeneous profiles over shared noise, blended pointwise.
    for (std::size_t m = 0; m < M; ++m) {
        // Skip segments with no support in this window.
        bool any = false;
        for (std::int64_t t = 0; t < n && !any; ++t) {
            map_->weights_at(x_of(x0 + t), g);
            any = g[m] > 0.0;
        }
        if (!any) {
            continue;
        }
        const std::vector<double> fm = generators_[m].generate(x0, n);
        for (std::int64_t t = 0; t < n; ++t) {
            map_->weights_at(x_of(x0 + t), g);
            if (g[m] > 0.0) {
                out[static_cast<std::size_t>(t)] += g[m] * fm[static_cast<std::size_t>(t)];
            }
        }
    }
    return out;
}

double InhomogeneousProfileGenerator::expected_variance(double x) const {
    const std::size_t M = map_->region_count();
    std::vector<double> g(M);
    map_->weights_at(x, g);
    std::ptrdiff_t lo = 0, hi = 0;
    for (const auto& k : kernels_) {
        lo = std::min(lo, k.min_dx());
        hi = std::max(hi, k.max_dx());
    }
    double var = 0.0;
    for (std::ptrdiff_t d = lo; d <= hi; ++d) {
        double tap = 0.0;
        for (std::size_t m = 0; m < M; ++m) {
            if (g[m] > 0.0) {
                tap += g[m] * kernels_[m].tap(d);
            }
        }
        var += tap * tap;
    }
    return var;
}

}  // namespace rrs
