#pragma once

/// \file segment_map.hpp
/// Inhomogeneous 1-D profiles — the paper's §3 blending applied to
/// transects: a line partitioned into segments with distinct 1-D spectra,
/// blended linearly over bands of half-width T around each boundary
/// (the 1-D specialisation of the plate-oriented method, eqs. 37-39).
///
/// The same factorisation as the 2-D fast path applies: the blended
/// profile is Σ_m g_m(x)·(c_m ⊛ X)(x) over shared line noise.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/profile1d.hpp"
#include "core/spectrum1d.hpp"

namespace rrs {

/// One segment of an inhomogeneous transect; segments are listed left to
/// right, each owning [begin, next segment's begin).
struct Segment {
    double begin = 0.0;  ///< physical coordinate where this segment starts
    Spectrum1DPtr spectrum;
};

/// Piecewise statistics along a line with linear boundary transitions.
class SegmentMap {
public:
    /// `segments` must be ordered by strictly increasing `begin`; the first
    /// segment also covers everything left of its `begin`, the last extends
    /// to +infinity.
    SegmentMap(std::vector<Segment> segments, double transition_half_width);

    std::size_t region_count() const noexcept { return segments_.size(); }
    const Spectrum1DPtr& spectrum(std::size_t m) const { return segments_.at(m).spectrum; }

    /// Blending weights at physical coordinate x (size = region_count()).
    void weights_at(double x, std::span<double> g) const;

    double transition_half_width() const noexcept { return T_; }

private:
    std::vector<Segment> segments_;
    double T_;
};

using SegmentMapPtr = std::shared_ptr<const SegmentMap>;

/// Tuning knobs for InhomogeneousProfileGenerator (namespace scope so it
/// can serve as a defaulted constructor argument).
struct InhomogeneousProfileOptions {
    double kernel_tail_eps = 1e-8;
    double origin = 0.0;  ///< physical coordinate of lattice point 0
};

/// Generator for inhomogeneous 1-D profiles over an unbounded lattice.
class InhomogeneousProfileGenerator {
public:
    using Options = InhomogeneousProfileOptions;

    InhomogeneousProfileGenerator(SegmentMapPtr map, LineSpec kernel_line,
                                  std::uint64_t seed, Options opt = {});

    /// Heights for lattice points [x0, x0 + n): pointwise blend of the
    /// per-segment homogeneous profiles over shared noise.
    std::vector<double> generate(std::int64_t x0, std::int64_t n) const;

    /// Exact pointwise variance Σ_k (Σ_m g_m c_m(k))².
    double expected_variance(double x) const;

    double x_of(std::int64_t i) const noexcept {
        return opt_.origin + static_cast<double>(i) * line_.dx();
    }

    const SegmentMap& map() const noexcept { return *map_; }

private:
    SegmentMapPtr map_;
    LineSpec line_;
    Options opt_;
    std::vector<ProfileKernel> kernels_;
    std::vector<ProfileGenerator> generators_;
};

}  // namespace rrs
