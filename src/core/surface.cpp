#include "core/surface.hpp"

#include <cmath>
#include <stdexcept>

#include "core/error.hpp"

namespace rrs {

Moments subgrid_moments(const Array2D<double>& f, std::size_t x0, std::size_t y0,
                        std::size_t nx, std::size_t ny) {
    if (x0 + nx > f.nx() || y0 + ny > f.ny()) {
        throw BoundsError{"subgrid_moments: window exceeds array"};
    }
    MomentAccumulator acc;
    for (std::size_t iy = y0; iy < y0 + ny; ++iy) {
        for (std::size_t ix = x0; ix < x0 + nx; ++ix) {
            acc.add(f(ix, iy));
        }
    }
    return snapshot(acc);
}

std::vector<double> extract_row(const Array2D<double>& f, std::size_t iy) {
    const auto row = f.row(iy);
    return {row.begin(), row.end()};
}

std::vector<double> extract_column(const Array2D<double>& f, std::size_t ix) {
    return column_copy(f, ix);
}

double rms_slope_x(const Array2D<double>& f, double dx) {
    if (f.nx() < 2 || !(dx > 0.0)) {
        throw ConfigError{"rms_slope_x: need nx >= 2 and dx > 0"};
    }
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t iy = 0; iy < f.ny(); ++iy) {
        for (std::size_t ix = 0; ix + 1 < f.nx(); ++ix) {
            const double s = (f(ix + 1, iy) - f(ix, iy)) / dx;
            sum += s * s;
            ++count;
        }
    }
    return std::sqrt(sum / static_cast<double>(count));
}

}  // namespace rrs
