#pragma once

/// \file profile1d.hpp
/// One-dimensional rough-profile generation by the convolution method —
/// the transect counterpart of ConvolutionKernel/ConvolutionGenerator.
///
/// A profile kernel is c = fftshift(DFT(√w))/√N on an N-point line grid
/// (w_m = ΔK·W(K_m̄), the 1-D eq. 15); the generator convolves it with a
/// stateless noise line (a row of the 2-D GaussianLattice under its own
/// salt), so arbitrarily long profiles stream seamlessly — exactly the
/// property the paper's §2.4 claims, in one dimension.

#include <cstdint>
#include <vector>

#include "core/spectrum1d.hpp"
#include "rng/gaussian.hpp"

namespace rrs {

/// Sampling line for the 1-D spectral arrays: length L at N (even) points.
struct LineSpec {
    double L = 0.0;
    std::size_t N = 0;

    double dx() const noexcept { return L / static_cast<double>(N); }
    double dK() const noexcept;
    std::size_t M() const noexcept { return N / 2; }
    void validate() const;

    static LineSpec unit_spacing(std::size_t N) {
        return LineSpec{static_cast<double>(N), N};
    }
};

/// 1-D discrete weight array w_m = ΔK·W(K_m̄); Σw ≈ h².
std::vector<double> weight_array_1d(const Spectrum1D& s, const LineSpec& g);

/// Centered 1-D convolution kernel with truncation support.
class ProfileKernel {
public:
    static ProfileKernel build(const Spectrum1D& s, const LineSpec& g);
    static ProfileKernel build_truncated(const Spectrum1D& s, const LineSpec& g,
                                         double tail_eps);

    std::size_t size() const noexcept { return taps_.size(); }
    std::size_t center() const noexcept { return center_; }
    std::ptrdiff_t min_dx() const noexcept { return -static_cast<std::ptrdiff_t>(center_); }
    std::ptrdiff_t max_dx() const noexcept {
        return static_cast<std::ptrdiff_t>(taps_.size() - 1 - center_);
    }

    /// Tap at signed offset; 0 outside support.
    double tap(std::ptrdiff_t dx) const noexcept;

    const std::vector<double>& taps() const noexcept { return taps_; }

    /// Σ taps² ≈ h².
    double energy() const noexcept { return energy_; }
    double target_variance() const noexcept { return target_variance_; }
    double spacing() const noexcept { return dx_; }

    ProfileKernel truncated(double tail_eps) const;

private:
    ProfileKernel(std::vector<double> taps, std::size_t center, double dx,
                  double target_variance);

    std::vector<double> taps_;
    std::size_t center_ = 0;
    double dx_ = 1.0;
    double energy_ = 0.0;
    double target_variance_ = 0.0;
};

/// Profile generator over an unbounded 1-D lattice; any interval can be
/// generated independently and overlapping intervals agree exactly.
class ProfileGenerator {
public:
    ProfileGenerator(ProfileKernel kernel, std::uint64_t seed);

    /// Heights for lattice points [x0, x0 + n).
    std::vector<double> generate(std::int64_t x0, std::int64_t n) const;

    /// The white noise line over [x0, x0 + n) (tests/diagnostics).
    std::vector<double> noise_line(std::int64_t x0, std::int64_t n) const;

    const ProfileKernel& kernel() const noexcept { return kernel_; }
    std::uint64_t seed() const noexcept { return lattice_.seed(); }

private:
    ProfileKernel kernel_;
    GaussianLattice lattice_;  // profiles read row iy = kProfileRow
    static constexpr std::int64_t kProfileRow = -0x5eed;
};

}  // namespace rrs
