#pragma once

/// \file spectrum.hpp
/// The three spectral density families of paper §2.1, each paired with its
/// closed-form autocorrelation.
///
/// Convention (re-derived; the paper's eq. 7 OCR is damaged — see
/// DESIGN.md §2): with K̃ = (Kx·clx, Ky·cly), x̃ = (x/clx, y/cly), r̃ = |x̃|,
///
///   Gaussian    : W = (clx·cly·h²/4π)·e^{−|K̃|²/4}          ρ = h²e^{−r̃²}
///   PowerLaw(N) : W = (clx·cly·h²(N−1)/π)(1+|K̃|²)^{−N}      ρ = (2h²/Γ(N−1))(r̃/2)^{N−1}K_{N−1}(r̃)
///   Exponential : W = (clx·cly·h²/2π)(1+|K̃|²)^{−3/2}        ρ = h²e^{−r̃}
///
/// All satisfy ∬W dK = h² (eq. 1) and ρ = F[W] (eq. 4); Exponential is the
/// PowerLaw N = 3/2 member (K_{1/2} closed form), a cross-check the tests use.

#include <memory>
#include <string>

namespace rrs {

/// Statistical parameters of a homogeneous rough surface: standard
/// deviation of height `h` and correlation lengths `clx`, `cly`.
struct SurfaceParams {
    double h = 1.0;
    double clx = 1.0;
    double cly = 1.0;

    void validate() const;
};

/// A spectral density function W(K) with its analytic autocorrelation ρ(r).
class Spectrum {
public:
    virtual ~Spectrum() = default;

    /// Spectral density W(Kx, Ky) — paper eq. (2) normalisation.
    virtual double density(double Kx, double Ky) const = 0;

    /// Autocorrelation ρ(x, y) = F[W] (eq. 4); ρ(0,0) = h².
    virtual double autocorrelation(double x, double y) const = 0;

    /// Human-readable family name, e.g. "gaussian", "power-law(N=2)".
    virtual std::string name() const = 0;

    const SurfaceParams& params() const noexcept { return p_; }

protected:
    explicit Spectrum(SurfaceParams p);
    SurfaceParams p_;
};

using SpectrumPtr = std::shared_ptr<const Spectrum>;

/// Gaussian spectrum (paper eqs. 5–6).
SpectrumPtr make_gaussian(SurfaceParams p);

/// N-th order Power-Law spectrum (paper eqs. 7–8); requires N > 1.
SpectrumPtr make_power_law(SurfaceParams p, double N);

/// Exponential spectrum (paper eqs. 9–10).
SpectrumPtr make_exponential(SurfaceParams p);

/// Distance d along the x-axis with ρ(d,0) = level·h², found by bisection.
/// With level = 1/e this is the empirical "correlation length" the stats
/// module estimates; it equals clx exactly for Gaussian and Exponential.
double correlation_distance(const Spectrum& s, double level);

}  // namespace rrs
