#include "core/health.hpp"

#include <cmath>
#include <iostream>
#include <limits>
#include <sstream>

#include "core/kernel.hpp"

namespace rrs {

namespace {

/// RMS plausibility band: only trip on catastrophic scaling errors.  A
/// correlated field with few effective degrees of freedom can legitimately
/// sit far from its ensemble RMS, so the band is two orders of magnitude
/// wide and only judged on reasonably large tiles.
constexpr double kRmsRatioLo = 1e-2;
constexpr double kRmsRatioHi = 1e2;
constexpr std::size_t kMinSamplesForRatio = 1024;

}  // namespace

HealthPolicy parse_health_policy(std::string_view text) {
    if (text == "throw") {
        return HealthPolicy::kThrow;
    }
    if (text == "report") {
        return HealthPolicy::kReport;
    }
    if (text == "ignore") {
        return HealthPolicy::kIgnore;
    }
    throw ConfigError("unknown policy '" + std::string(text) +
                          "' (expected throw, report, or ignore)",
                      {"health"});
}

std::string_view health_policy_name(HealthPolicy policy) noexcept {
    switch (policy) {
        case HealthPolicy::kThrow:
            return "throw";
        case HealthPolicy::kReport:
            return "report";
        case HealthPolicy::kIgnore:
            return "ignore";
    }
    return "ignore";
}

bool SurfaceHealth::plausible() const noexcept {
    if (!finite()) {
        return false;
    }
    if (target_rms > 0.0 && count >= kMinSamplesForRatio) {
        const double ratio = rms / target_rms;
        if (!(ratio > kRmsRatioLo) || !(ratio < kRmsRatioHi)) {
            return false;
        }
    }
    return true;
}

std::string SurfaceHealth::summary() const {
    std::ostringstream ss;
    ss << count << " samples";
    if (nan_count != 0 || inf_count != 0) {
        ss << ", " << nan_count << " NaN, " << inf_count << " Inf";
    }
    ss << ", min " << min << ", max " << max << ", rms " << rms;
    if (target_rms > 0.0) {
        ss << " (target " << target_rms << ", ratio " << rms / target_rms << ")";
    }
    return ss.str();
}

SurfaceHealth scan_surface(const double* data, std::size_t n, double target_rms) {
    SurfaceHealth h;
    h.count = n;
    h.target_rms = target_rms;
    h.min = std::numeric_limits<double>::infinity();
    h.max = -std::numeric_limits<double>::infinity();
    double sum_sq = 0.0;
    std::size_t finite_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double v = data[i];
        if (std::isnan(v)) {
            ++h.nan_count;
            continue;
        }
        if (std::isinf(v)) {
            ++h.inf_count;
            continue;
        }
        ++finite_count;
        h.min = std::min(h.min, v);
        h.max = std::max(h.max, v);
        sum_sq += v * v;
    }
    if (finite_count == 0) {
        h.min = 0.0;
        h.max = 0.0;
    } else {
        h.rms = std::sqrt(sum_sq / static_cast<double>(finite_count));
    }
    return h;
}

SurfaceHealth scan_surface(const Array2D<double>& f, double target_rms) {
    return scan_surface(f.data(), f.size(), target_rms);
}

void apply_policy(const SurfaceHealth& health, HealthPolicy policy, ErrorContext context) {
    if (policy == HealthPolicy::kIgnore || health.plausible()) {
        return;
    }
    if (policy == HealthPolicy::kReport) {
        std::cerr << "rrs: health: " << Error::format(health.summary(), context) << "\n";
        return;
    }
    throw NumericError("surface failed health scan: " + health.summary(),
                       std::move(context));
}

double KernelHealth::ratio() const noexcept {
    return target_variance > 0.0 ? energy / target_variance : 0.0;
}

bool KernelHealth::ok(double tol) const noexcept {
    return std::isfinite(energy) && std::abs(ratio() - 1.0) <= tol;
}

std::string KernelHealth::summary() const {
    std::ostringstream ss;
    ss << "kernel energy " << energy << " vs target variance " << target_variance
       << " (ratio " << ratio() << ")";
    return ss.str();
}

KernelHealth kernel_health(const ConvolutionKernel& kernel) {
    return KernelHealth{kernel.energy(), kernel.target_variance()};
}

void apply_policy(const KernelHealth& health, HealthPolicy policy, double tol,
                  ErrorContext context) {
    if (policy == HealthPolicy::kIgnore || health.ok(tol)) {
        return;
    }
    if (policy == HealthPolicy::kReport) {
        std::cerr << "rrs: health: " << Error::format(health.summary(), context) << "\n";
        return;
    }
    throw NumericError("kernel failed energy-conservation check: " + health.summary(),
                       std::move(context));
}

}  // namespace rrs
