#include "core/gradient.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

#include "core/error.hpp"

namespace rrs {

namespace {

void check(const Array2D<double>& f, double dx, double dy) {
    if (f.nx() < 2 || f.ny() < 2) {
        throw ConfigError{"gradient: field must be at least 2x2"};
    }
    if (!(dx > 0.0) || !(dy > 0.0)) {
        throw ConfigError{"gradient: spacings must be positive"};
    }
}

}  // namespace

Array2D<double> slope_x(const Array2D<double>& f, double dx) {
    check(f, dx, 1.0);
    Array2D<double> g(f.nx(), f.ny());
    const double inv2 = 1.0 / (2.0 * dx);
    const double inv1 = 1.0 / dx;
    parallel_for(0, static_cast<std::int64_t>(f.ny()), [&](std::int64_t sy) {
        const auto iy = static_cast<std::size_t>(sy);
        g(0, iy) = (f(1, iy) - f(0, iy)) * inv1;
        for (std::size_t ix = 1; ix + 1 < f.nx(); ++ix) {
            g(ix, iy) = (f(ix + 1, iy) - f(ix - 1, iy)) * inv2;
        }
        g(f.nx() - 1, iy) = (f(f.nx() - 1, iy) - f(f.nx() - 2, iy)) * inv1;
    });
    return g;
}

Array2D<double> slope_y(const Array2D<double>& f, double dy) {
    check(f, 1.0, dy);
    Array2D<double> g(f.nx(), f.ny());
    const double inv2 = 1.0 / (2.0 * dy);
    const double inv1 = 1.0 / dy;
    parallel_for(0, static_cast<std::int64_t>(f.ny()), [&](std::int64_t sy) {
        const auto iy = static_cast<std::size_t>(sy);
        for (std::size_t ix = 0; ix < f.nx(); ++ix) {
            if (iy == 0) {
                g(ix, 0) = (f(ix, 1) - f(ix, 0)) * inv1;
            } else if (iy + 1 == f.ny()) {
                g(ix, iy) = (f(ix, iy) - f(ix, iy - 1)) * inv1;
            } else {
                g(ix, iy) = (f(ix, iy + 1) - f(ix, iy - 1)) * inv2;
            }
        }
    });
    return g;
}

Array2D<double> gradient_magnitude(const Array2D<double>& f, double dx, double dy) {
    const Array2D<double> gx = slope_x(f, dx);
    const Array2D<double> gy = slope_y(f, dy);
    Array2D<double> g(f.nx(), f.ny());
    for (std::size_t i = 0; i < g.size(); ++i) {
        g.data()[i] = std::hypot(gx.data()[i], gy.data()[i]);
    }
    return g;
}

RmsSlopes rms_slopes(const Array2D<double>& f, double dx, double dy) {
    const Array2D<double> gx = slope_x(f, dx);
    const Array2D<double> gy = slope_y(f, dy);
    double sx = 0.0;
    double sy = 0.0;
    for (std::size_t i = 0; i < gx.size(); ++i) {
        sx += gx.data()[i] * gx.data()[i];
        sy += gy.data()[i] * gy.data()[i];
    }
    const double n = static_cast<double>(f.size());
    RmsSlopes out;
    out.x = std::sqrt(sx / n);
    out.y = std::sqrt(sy / n);
    out.total = std::sqrt((sx + sy) / n);
    return out;
}

}  // namespace rrs
