#pragma once

/// \file convolution.hpp
/// The convolution method for homogeneous RRS generation — paper eq. (36):
/// f_{nx,ny} = Σ_k w̄_k · X_{n−k}, with X white N(0,1) lattice noise.
///
/// Because the noise is a pure function of (seed, lattice coordinate) —
/// GaussianLattice — `generate` can be called for *any* rectangle of the
/// unbounded output lattice and overlapping rectangles agree exactly.  This
/// realises the paper's "any size of continuous RRSs ... by successive
/// computations" claim deterministically.
///
/// Three engines compute the same sums (engine.hpp, DESIGN.md §15):
///  * generate_direct()    — the literal tap-sum of eq. (36), O(N²·K²);
///                           the reference every other engine is tested
///                           against.
///  * generate_fft()       — circular convolution on a pow2-padded tile via
///                           the real-input FFT, O(P² log P).
///  * generate_separable() — two SIMD 1-D passes over the noise halo for
///                           rank-1 kernels (the Gaussian family),
///                           O(N²·(Kx+Ky)).
/// `generate()` dispatches on the configured engine (kAuto → separable
/// when the kernel factors, else FFT), overridable per call by the
/// RRS_KERNEL_ENGINE environment variable.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/engine.hpp"
#include "core/health.hpp"
#include "core/kernel.hpp"
#include "grid/array2d.hpp"
#include "grid/rect.hpp"
#include "rng/gaussian.hpp"

namespace rrs {

/// Homogeneous surface generator over an unbounded lattice.
class ConvolutionGenerator {
public:
    /// `health` gates the numeric guards (health.hpp): at construction the
    /// kernel's energy-conservation check runs, and every generated tile is
    /// scanned for NaN/Inf and implausible RMS.  kIgnore (default) skips
    /// both and preserves historical behaviour.  `engine` selects the
    /// generate() fast path; kAuto resolves per call (engine.hpp).
    explicit ConvolutionGenerator(ConvolutionKernel kernel, std::uint64_t seed,
                                  HealthPolicy health = HealthPolicy::kIgnore,
                                  KernelEngine engine = KernelEngine::kAuto);
    ~ConvolutionGenerator();

    ConvolutionGenerator(ConvolutionGenerator&&) noexcept;
    ConvolutionGenerator& operator=(ConvolutionGenerator&&) noexcept;
    ConvolutionGenerator(const ConvolutionGenerator&) = delete;
    ConvolutionGenerator& operator=(const ConvolutionGenerator&) = delete;

    /// Surface heights for lattice points in `region`, via the resolved
    /// engine (see resolved_engine()).  All engines agree to ≤1e-12 and
    /// each engine is individually bit-deterministic (DESIGN.md §15).
    Array2D<double> generate(const Rect& region) const;

    /// Literal eq. (36) tap sums — the reference engine.
    Array2D<double> generate_direct(const Rect& region) const;

    /// Padded circular convolution through the real-input FFT.
    Array2D<double> generate_fft(const Rect& region) const;

    /// Two 1-D passes over the noise halo (horizontal dot products, then a
    /// vertical row accumulation), SIMD inner loops.  Throws ConfigError
    /// when the kernel is not separable (separable_available() is false).
    Array2D<double> generate_separable(const Rect& region) const;

    /// The white-noise field X over `region` (mostly for tests/diagnostics).
    Array2D<double> noise_tile(const Rect& region) const;

    /// Engine configured on this generator (kAuto until set).
    KernelEngine engine() const noexcept { return engine_; }
    void set_engine(KernelEngine engine) noexcept { engine_ = engine; }

    /// The engine generate() will run right now: RRS_KERNEL_ENGINE override
    /// first, then the configured engine, with kAuto resolving to separable
    /// when the kernel factors and FFT otherwise.  Throws ConfigError on a
    /// malformed override; an explicit separable demand on a non-separable
    /// kernel throws from generate_separable() itself.
    KernelEngine resolved_engine() const;

    /// True when the kernel admits the separable engine (rank-1 within
    /// kSeparableTol; the Gaussian family qualifies exactly).
    bool separable_available() const noexcept { return factors_.has_value(); }

    const ConvolutionKernel& kernel() const noexcept { return kernel_; }
    const GaussianLattice& noise() const noexcept { return lattice_; }
    std::uint64_t seed() const noexcept { return lattice_.seed(); }

    HealthPolicy health_policy() const noexcept { return health_; }
    void set_health_policy(HealthPolicy policy) noexcept { health_ = policy; }

    /// Stable hash of (seed, kernel shape, tap spacing, kernel energy) —
    /// identifies the generator's configuration for checkpoint/resume
    /// (streaming.hpp).  Two generators with equal fingerprints produce
    /// bit-identical surfaces on every rectangle.  Deliberately engine-
    /// independent: engines agree to ≤1e-12, and the escape-hatch contract
    /// is that switching engines must not invalidate caches or checkpoints.
    std::uint64_t fingerprint() const noexcept;

private:
    struct CachedKernelFft;

    /// Noise halo the kernel needs on each side of the output rect.
    std::int64_t halo_left_x() const noexcept { return kernel_.max_dx(); }
    std::int64_t halo_right_x() const noexcept { return -kernel_.min_dx(); }
    std::int64_t halo_left_y() const noexcept { return kernel_.max_dy(); }
    std::int64_t halo_right_y() const noexcept { return -kernel_.min_dy(); }

    const CachedKernelFft& kernel_fft(std::size_t Px, std::size_t Py) const;
    void scan_health(const Array2D<double>& f, const char* where) const;

    struct FftCache;

    ConvolutionKernel kernel_;
    GaussianLattice lattice_;
    HealthPolicy health_ = HealthPolicy::kIgnore;
    KernelEngine engine_ = KernelEngine::kAuto;
    /// Rank-1 factors (kernel_.separable()), computed once at construction;
    /// nullopt for non-separable kernels.
    std::optional<SeparableFactors> factors_;
    std::unique_ptr<FftCache> cache_;  // keeps the generator movable
};

}  // namespace rrs
