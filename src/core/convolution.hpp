#pragma once

/// \file convolution.hpp
/// The convolution method for homogeneous RRS generation — paper eq. (36):
/// f_{nx,ny} = Σ_k w̄_k · X_{n−k}, with X white N(0,1) lattice noise.
///
/// Because the noise is a pure function of (seed, lattice coordinate) —
/// GaussianLattice — `generate` can be called for *any* rectangle of the
/// unbounded output lattice and overlapping rectangles agree exactly.  This
/// realises the paper's "any size of continuous RRSs ... by successive
/// computations" claim deterministically.
///
/// Two engines compute the same sums:
///  * generate()        — FFT-based (circular convolution on a padded tile);
///  * generate_direct() — the literal tap-sum of eq. (36), O(N²·K²), kept
///                        as the reference and for small truncated kernels.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/health.hpp"
#include "core/kernel.hpp"
#include "grid/array2d.hpp"
#include "grid/rect.hpp"
#include "rng/gaussian.hpp"

namespace rrs {

/// Homogeneous surface generator over an unbounded lattice.
class ConvolutionGenerator {
public:
    /// `health` gates the numeric guards (health.hpp): at construction the
    /// kernel's energy-conservation check runs, and every generated tile is
    /// scanned for NaN/Inf and implausible RMS.  kIgnore (default) skips
    /// both and preserves historical behaviour.
    explicit ConvolutionGenerator(ConvolutionKernel kernel, std::uint64_t seed,
                                  HealthPolicy health = HealthPolicy::kIgnore);
    ~ConvolutionGenerator();

    ConvolutionGenerator(ConvolutionGenerator&&) noexcept;
    ConvolutionGenerator& operator=(ConvolutionGenerator&&) noexcept;
    ConvolutionGenerator(const ConvolutionGenerator&) = delete;
    ConvolutionGenerator& operator=(const ConvolutionGenerator&) = delete;

    /// Surface heights for lattice points in `region` (FFT engine).
    Array2D<double> generate(const Rect& region) const;

    /// Literal eq. (36) tap sums (direct engine); identical output.
    Array2D<double> generate_direct(const Rect& region) const;

    /// The white-noise field X over `region` (mostly for tests/diagnostics).
    Array2D<double> noise_tile(const Rect& region) const;

    const ConvolutionKernel& kernel() const noexcept { return kernel_; }
    const GaussianLattice& noise() const noexcept { return lattice_; }
    std::uint64_t seed() const noexcept { return lattice_.seed(); }

    HealthPolicy health_policy() const noexcept { return health_; }
    void set_health_policy(HealthPolicy policy) noexcept { health_ = policy; }

    /// Stable hash of (seed, kernel shape, tap spacing, kernel energy) —
    /// identifies the generator's configuration for checkpoint/resume
    /// (streaming.hpp).  Two generators with equal fingerprints produce
    /// bit-identical surfaces on every rectangle.
    std::uint64_t fingerprint() const noexcept;

private:
    struct CachedKernelFft;

    /// Noise halo the kernel needs on each side of the output rect.
    std::int64_t halo_left_x() const noexcept { return kernel_.max_dx(); }
    std::int64_t halo_right_x() const noexcept { return -kernel_.min_dx(); }
    std::int64_t halo_left_y() const noexcept { return kernel_.max_dy(); }
    std::int64_t halo_right_y() const noexcept { return -kernel_.min_dy(); }

    const CachedKernelFft& kernel_fft(std::size_t Px, std::size_t Py) const;

    struct FftCache;

    ConvolutionKernel kernel_;
    GaussianLattice lattice_;
    HealthPolicy health_ = HealthPolicy::kIgnore;
    std::unique_ptr<FftCache> cache_;  // keeps the generator movable
};

}  // namespace rrs
