#pragma once

/// \file grid_spec.hpp
/// Sampling grid for the discrete spectral arrays (paper §2.2): a physical
/// domain Lx×Ly sampled at Nx×Ny points, Nx = 2Mx and Ny = 2My even, with
/// discretised angular frequencies K_m = 2π·m̄/L (eq. 13).

#include <cstddef>

#include "core/error.hpp"
#include "special/constants.hpp"

namespace rrs {

/// Physical sampling grid; lattice spacing dx = Lx/Nx.
struct GridSpec {
    double Lx = 0.0;
    double Ly = 0.0;
    std::size_t Nx = 0;
    std::size_t Ny = 0;

    double dx() const noexcept { return Lx / static_cast<double>(Nx); }
    double dy() const noexcept { return Ly / static_cast<double>(Ny); }

    /// ΔK along x: 2π/Lx (eq. 13).
    double dKx() const noexcept { return kTwoPi / Lx; }
    double dKy() const noexcept { return kTwoPi / Ly; }

    std::size_t Mx() const noexcept { return Nx / 2; }
    std::size_t My() const noexcept { return Ny / 2; }

    /// Throws ConfigError unless the grid satisfies the paper's constraints
    /// (even positive truncation numbers, positive lengths).
    void validate() const {
        if (!(Lx > 0.0) || !(Ly > 0.0)) {
            throw ConfigError{"Lx, Ly must be positive", {"GridSpec"}};
        }
        if (Nx < 2 || Ny < 2 || Nx % 2 != 0 || Ny % 2 != 0) {
            throw ConfigError{"Nx, Ny must be even and >= 2 (got " + std::to_string(Nx) +
                                  " x " + std::to_string(Ny) + ")",
                              {"GridSpec"}};
        }
    }

    /// Unit-spacing grid (Δx = Δy = 1), the convention the paper's
    /// numerical examples use — cl is then measured in lattice points.
    static GridSpec unit_spacing(std::size_t Nx, std::size_t Ny) {
        return GridSpec{static_cast<double>(Nx), static_cast<double>(Ny), Nx, Ny};
    }
};

}  // namespace rrs
