#pragma once

/// \file gradient.hpp
/// Slope fields of generated surfaces.  Scattering and ray-tracing
/// analyses (the paper's application domain, its refs. [5]-[6], [11])
/// consume local surface slopes/normals; these helpers derive them with
/// central differences (one-sided at the edges).

#include "grid/array2d.hpp"

namespace rrs {

/// ∂f/∂x with central differences; spacing `dx`.
Array2D<double> slope_x(const Array2D<double>& f, double dx);

/// ∂f/∂y with central differences; spacing `dy`.
Array2D<double> slope_y(const Array2D<double>& f, double dy);

/// |∇f| from the two central-difference slopes.
Array2D<double> gradient_magnitude(const Array2D<double>& f, double dx, double dy);

/// RMS of the central-difference slope components over the whole field.
struct RmsSlopes {
    double x = 0.0;
    double y = 0.0;
    double total = 0.0;  ///< rms |∇f|
};
RmsSlopes rms_slopes(const Array2D<double>& f, double dx, double dy);

}  // namespace rrs
