#include "core/kernel.hpp"

#include <algorithm>
#include <cmath>

#include "core/discrete_spectrum.hpp"
#include "core/validate.hpp"
#include "fft/real.hpp"
#include "grid/permute.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rrs {

ConvolutionKernel::ConvolutionKernel(Array2D<double> taps, std::size_t cx, std::size_t cy,
                                     double dx, double dy, double target_variance)
    : taps_(std::move(taps)),
      cx_(cx),
      cy_(cy),
      dx_(dx),
      dy_(dy),
      target_variance_(target_variance) {
    for (std::size_t i = 0; i < taps_.size(); ++i) {
        energy_ += taps_.data()[i] * taps_.data()[i];
    }
}

ConvolutionKernel ConvolutionKernel::build(const Spectrum& spectrum, const GridSpec& g) {
    RRS_TRACE_SPAN("kernel.build");
    static obs::Counter& builds = obs::MetricsRegistry::global().counter("kernel.builds");
    builds.add();
    g.validate();
    const Array2D<double> v = sqrt_weight_array(spectrum, g);

    // v is real (and even in both axes), so the DFT comes from the r2c
    // half-spectrum path — half the transform work of the complex plan.
    // Bins above Nx/2 follow from Hermitian symmetry, and since DFT(v) is
    // real the conjugation is a no-op on the value we keep.
    Array2D<cplx> V;  // (Nx/2+1) × Ny
    rfft2d_plan(g.Nx, g.Ny)->forward(v, V);
    const auto spectral_real = [&](std::size_t mx, std::size_t my) {
        if (mx <= g.Nx / 2) {
            return V(mx, my).real();
        }
        return V(g.Nx - mx, (g.Ny - my) % g.Ny).real();
    };

    // Eq. (34): w̄ = DFT(v)/√(NxNy), re-centred per eq. (35).
    const double scale = 1.0 / std::sqrt(static_cast<double>(g.Nx * g.Ny));
    Array2D<double> c(g.Nx, g.Ny);
    for (std::size_t my = 0; my < g.Ny; ++my) {
        const std::size_t oy = fftshift_index(my, g.My());
        for (std::size_t mx = 0; mx < g.Nx; ++mx) {
            // The imaginary residue of DFT(v) is rounding noise; dropped.
            c(fftshift_index(mx, g.Mx()), oy) = spectral_real(mx, my) * scale;
        }
    }
    const double h = spectrum.params().h;
    return ConvolutionKernel{std::move(c), g.Mx(), g.My(), g.dx(), g.dy(), h * h};
}

ConvolutionKernel ConvolutionKernel::build_truncated(const Spectrum& spectrum,
                                                     const GridSpec& g, double tail_eps) {
    return build(spectrum, g).truncated(tail_eps);
}

double ConvolutionKernel::tap(std::ptrdiff_t dx, std::ptrdiff_t dy) const noexcept {
    const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(cx_) + dx;
    const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(cy_) + dy;
    if (ix < 0 || iy < 0 || ix >= static_cast<std::ptrdiff_t>(taps_.nx()) ||
        iy >= static_cast<std::ptrdiff_t>(taps_.ny())) {
        return 0.0;
    }
    return taps_(static_cast<std::size_t>(ix), static_cast<std::size_t>(iy));
}

ConvolutionKernel ConvolutionKernel::truncated(double tail_eps) const {
    RRS_TRACE_SPAN("kernel.truncate");
    static obs::Counter& truncations =
        obs::MetricsRegistry::global().counter("kernel.truncations");
    truncations.add();
    check_open_unit(tail_eps, "tail_eps", {"ConvolutionKernel::truncated"});
    // Energy inside the centered odd window of half-widths (kx, ky), via a
    // prefix-sum table of squared taps.
    Array2D<double> prefix(taps_.nx() + 1, taps_.ny() + 1, 0.0);
    for (std::size_t iy = 0; iy < taps_.ny(); ++iy) {
        for (std::size_t ix = 0; ix < taps_.nx(); ++ix) {
            const double t = taps_(ix, iy);
            prefix(ix + 1, iy + 1) =
                t * t + prefix(ix, iy + 1) + prefix(ix + 1, iy) - prefix(ix, iy);
        }
    }
    auto window_energy = [&](std::size_t kx, std::size_t ky) {
        const std::size_t x0 = cx_ >= kx ? cx_ - kx : 0;
        const std::size_t y0 = cy_ >= ky ? cy_ - ky : 0;
        const std::size_t x1 = std::min(taps_.nx(), cx_ + kx + 1);
        const std::size_t y1 = std::min(taps_.ny(), cy_ + ky + 1);
        return prefix(x1, y1) - prefix(x0, y1) - prefix(x1, y0) + prefix(x0, y0);
    };

    // Per-axis truncation: choose each half-width so that the axis alone
    // discards at most eps/2 of the energy (with the other axis at full
    // width); the combined window then discards at most eps (union bound).
    // This follows the kernel's true anisotropic decay.
    const std::size_t hx = std::max(cx_, taps_.nx() - 1 - cx_);
    const std::size_t hy = std::max(cy_, taps_.ny() - 1 - cy_);
    const double need = (1.0 - 0.5 * tail_eps) * energy_;
    auto shrink_axis = [&](bool along_x) {
        const std::size_t full = along_x ? hx : hy;
        std::size_t lo = 0;
        std::size_t hi = full;
        // Smallest k with window_energy(k, full_other) >= need (monotone).
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            const double e = along_x ? window_energy(mid, hy) : window_energy(hx, mid);
            if (e >= need) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        return lo;
    };
    const std::size_t kx = shrink_axis(true);
    const std::size_t ky = shrink_axis(false);
    Array2D<double> out(2 * kx + 1, 2 * ky + 1, 0.0);
    for (std::size_t iy = 0; iy < out.ny(); ++iy) {
        for (std::size_t ix = 0; ix < out.nx(); ++ix) {
            const auto dx = static_cast<std::ptrdiff_t>(ix) - static_cast<std::ptrdiff_t>(kx);
            const auto dy = static_cast<std::ptrdiff_t>(iy) - static_cast<std::ptrdiff_t>(ky);
            out(ix, iy) = tap(dx, dy);
        }
    }
    return ConvolutionKernel{std::move(out), kx, ky, dx_, dy_, target_variance_};
}

std::optional<SeparableFactors> ConvolutionKernel::separable(double tol) const {
    // Pivot at the largest-magnitude tap: if taps = fx⊗fy at all, then
    // taps(ix, py)·taps(px, iy)/taps(px, py) reconstructs every entry.
    std::size_t px = 0;
    std::size_t py = 0;
    double max_abs = 0.0;
    for (std::size_t iy = 0; iy < taps_.ny(); ++iy) {
        for (std::size_t ix = 0; ix < taps_.nx(); ++ix) {
            const double a = std::abs(taps_(ix, iy));
            if (a > max_abs) {
                max_abs = a;
                px = ix;
                py = iy;
            }
        }
    }
    if (max_abs == 0.0) {
        return std::nullopt;  // all-zero kernel: degenerate, keep dense path
    }

    SeparableFactors f;
    f.fx.resize(taps_.nx());
    f.fy.resize(taps_.ny());
    for (std::size_t ix = 0; ix < taps_.nx(); ++ix) {
        f.fx[ix] = taps_(ix, py);
    }
    const double inv_pivot = 1.0 / taps_(px, py);
    for (std::size_t iy = 0; iy < taps_.ny(); ++iy) {
        f.fy[iy] = taps_(px, iy) * inv_pivot;
    }

    double residual = 0.0;
    for (std::size_t iy = 0; iy < taps_.ny(); ++iy) {
        for (std::size_t ix = 0; ix < taps_.nx(); ++ix) {
            residual = std::max(residual,
                                std::abs(taps_(ix, iy) - f.fx[ix] * f.fy[iy]));
        }
    }
    f.residual = residual / max_abs;
    if (f.residual > tol) {
        return std::nullopt;
    }
    return f;
}

Array2D<double> ConvolutionKernel::wrapped_image(std::size_t Px, std::size_t Py) const {
    RRS_CHECK(Px >= taps_.nx() && Py >= taps_.ny(), "ConvolutionKernel::wrapped_image",
              "padded grid " + std::to_string(Px) + " x " + std::to_string(Py) +
                  " is smaller than the kernel " + std::to_string(taps_.nx()) + " x " +
                  std::to_string(taps_.ny()));
    Array2D<double> img(Px, Py, 0.0);
    for (std::size_t iy = 0; iy < taps_.ny(); ++iy) {
        const auto dy = static_cast<std::ptrdiff_t>(iy) - static_cast<std::ptrdiff_t>(cy_);
        const std::size_t wy =
            static_cast<std::size_t>((dy % static_cast<std::ptrdiff_t>(Py) +
                                      static_cast<std::ptrdiff_t>(Py)) %
                                     static_cast<std::ptrdiff_t>(Py));
        for (std::size_t ix = 0; ix < taps_.nx(); ++ix) {
            const auto dx = static_cast<std::ptrdiff_t>(ix) - static_cast<std::ptrdiff_t>(cx_);
            const std::size_t wx =
                static_cast<std::size_t>((dx % static_cast<std::ptrdiff_t>(Px) +
                                          static_cast<std::ptrdiff_t>(Px)) %
                                         static_cast<std::ptrdiff_t>(Px));
            img(wx, wy) += taps_(ix, iy);
        }
    }
    return img;
}

}  // namespace rrs
