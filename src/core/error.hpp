#pragma once

/// \file error.hpp
/// Unified error taxonomy for librrs.
///
/// Every invalid-input, numeric-health, and I/O failure in the library
/// throws a subclass of rrs::Error carrying a structured *context chain* —
/// an outermost-first list of frames such as {"spectrum 'sea'", "cl_x"} —
/// so callers (and log lines) see *where* a bad value entered the pipeline,
/// not just what it was.  The what() text renders the chain as
/// "spectrum 'sea' → cl_x: must be positive (got -2)".
///
/// The taxonomy deliberately multiply-inherits from the standard exception
/// types the library historically threw (std::invalid_argument for
/// configuration problems, std::runtime_error for numeric/I-O problems,
/// std::domain_error / std::out_of_range / std::logic_error for the
/// mathematical and indexing layers), so existing
/// `catch (const std::invalid_argument&)` call sites — and the seed
/// test-suite — keep working while new code can catch rrs::Error to get the
/// structured chain.
///
///   Error (abstract mixin, not a std::exception)
///   ├── ConfigError  : std::invalid_argument — bad parameters / bad input
///   ├── NumericError : std::runtime_error    — NaN/Inf, energy loss, ...
///   ├── IoError      : std::runtime_error    — files, serialized state
///   ├── DomainError  : std::domain_error     — math argument outside domain
///   ├── BoundsError  : std::out_of_range     — index / window out of range
///   └── StateError   : std::logic_error      — API misuse, invalid state
///
/// This header is intentionally header-only: the leaf libraries (grid, fft,
/// special, stats, ...) sit *below* rrs::core in the link graph but still
/// throw taxonomy types, which must not drag in a link dependency.
/// `tools/rrslint` machine-enforces that every `throw` in src/ uses this
/// taxonomy (DESIGN.md §11).
///
/// See validate.hpp for the RRS_CHECK precondition helpers and health.hpp
/// for the numeric guards that throw NumericError.

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace rrs {

/// Ordered outermost-first context frames, e.g. {"scene:12", "spectrum 'sea'", "h"}.
using ErrorContext = std::vector<std::string>;

/// Abstract mixin root of the taxonomy.  Not itself a std::exception — the
/// concrete subclasses each pick the standard base matching their legacy
/// behaviour — but always catchable as `const rrs::Error&`.
class Error {
public:
    virtual ~Error() = default;

    /// The bare failure description, without the context chain.
    const std::string& message() const noexcept { return message_; }

    /// Outermost-first context frames.
    const ErrorContext& context() const noexcept { return context_; }

    /// The chain joined with " → " (empty string when there is no context).
    std::string context_string() const {
        std::string out;
        for (const std::string& frame : context_) {
            if (!out.empty()) {
                out += " → ";
            }
            out += frame;
        }
        return out;
    }

    /// Full rendered text: "ctx → ctx: message" (what() of the std base).
    virtual const char* what() const noexcept = 0;

    /// "a → b: message", or just "message" when the chain is empty.
    static std::string format(const std::string& message, const ErrorContext& context) {
        std::string chain;
        for (const std::string& frame : context) {
            if (!chain.empty()) {
                chain += " → ";
            }
            chain += frame;
        }
        if (chain.empty()) {
            return message;
        }
        return chain + ": " + message;
    }

protected:
    Error(std::string message, ErrorContext context)
        : message_(std::move(message)), context_(std::move(context)) {}

private:
    std::string message_;
    ErrorContext context_;
};

/// Invalid configuration: bad parameter values, malformed scenes, size and
/// geometry violations.  IS-A std::invalid_argument.
class ConfigError : public Error, public std::invalid_argument {
public:
    explicit ConfigError(std::string message, ErrorContext context = {})
        : Error(std::move(message), std::move(context)),
          std::invalid_argument(format(this->message(), this->context())) {}

    const char* what() const noexcept override { return std::invalid_argument::what(); }
};

/// Numeric-health violation: non-finite samples, implausible variance,
/// kernel energy loss, iteration/convergence failure.  IS-A std::runtime_error.
class NumericError : public Error, public std::runtime_error {
public:
    explicit NumericError(std::string message, ErrorContext context = {})
        : Error(std::move(message), std::move(context)),
          std::runtime_error(format(this->message(), this->context())) {}

    const char* what() const noexcept override { return std::runtime_error::what(); }
};

/// Filesystem / serialization failure: unwritable outputs, corrupt
/// checkpoints.  IS-A std::runtime_error.
class IoError : public Error, public std::runtime_error {
public:
    explicit IoError(std::string message, ErrorContext context = {})
        : Error(std::move(message), std::move(context)),
          std::runtime_error(format(this->message(), this->context())) {}

    const char* what() const noexcept override { return std::runtime_error::what(); }
};

/// Mathematical argument outside a function's domain (special functions,
/// quantile inversions).  IS-A std::domain_error.
class DomainError : public Error, public std::domain_error {
public:
    explicit DomainError(std::string message, ErrorContext context = {})
        : Error(std::move(message), std::move(context)),
          std::domain_error(format(this->message(), this->context())) {}

    const char* what() const noexcept override { return std::domain_error::what(); }
};

/// Index or window outside the addressed object (Array2D::at, probe
/// placement, region lookup).  IS-A std::out_of_range.
class BoundsError : public Error, public std::out_of_range {
public:
    explicit BoundsError(std::string message, ErrorContext context = {})
        : Error(std::move(message), std::move(context)),
          std::out_of_range(format(this->message(), this->context())) {}

    const char* what() const noexcept override { return std::out_of_range::what(); }
};

/// API misuse or an object in the wrong state for the call (submit on a
/// stopped pool, averaging an empty accumulator, metric kind clash).
/// IS-A std::logic_error.
class StateError : public Error, public std::logic_error {
public:
    explicit StateError(std::string message, ErrorContext context = {})
        : Error(std::move(message), std::move(context)),
          std::logic_error(format(this->message(), this->context())) {}

    const char* what() const noexcept override { return std::logic_error::what(); }
};

/// Rebuild `e` with `frame` prepended to its context chain and throw the
/// copy.  Exceptions are immutable once thrown, so enclosing layers use this
/// to extend the chain, e.g. catching "cl_x: must be positive" from a
/// spectrum factory and rethrowing as "spectrum 'sea' → cl_x: ...".
template <typename E>
[[noreturn]] void rethrow_with_context(const E& e, std::string frame) {
    static_assert(std::is_base_of_v<Error, E>, "rethrow_with_context needs an rrs::Error");
    ErrorContext context;
    context.reserve(e.context().size() + 1);
    context.push_back(std::move(frame));
    context.insert(context.end(), e.context().begin(), e.context().end());
    throw E(e.message(), std::move(context));  // rrslint-allow(error-taxonomy): E is static_asserted to be an rrs::Error subclass
}

}  // namespace rrs
