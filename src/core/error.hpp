#pragma once

/// \file error.hpp
/// Unified error taxonomy for librrs.
///
/// Every invalid-input, numeric-health, and I/O failure in the library
/// throws a subclass of rrs::Error carrying a structured *context chain* —
/// an outermost-first list of frames such as {"spectrum 'sea'", "cl_x"} —
/// so callers (and log lines) see *where* a bad value entered the pipeline,
/// not just what it was.  The what() text renders the chain as
/// "spectrum 'sea' → cl_x: must be positive (got -2)".
///
/// The taxonomy deliberately multiply-inherits from the standard exception
/// types the library historically threw (std::invalid_argument for
/// configuration problems, std::runtime_error for numeric/I-O problems), so
/// existing `catch (const std::invalid_argument&)` call sites — and the
/// seed test-suite — keep working while new code can catch rrs::Error to
/// get the structured chain.
///
///   Error (abstract mixin, not a std::exception)
///   ├── ConfigError  : std::invalid_argument — bad parameters / bad input
///   ├── NumericError : std::runtime_error    — NaN/Inf, energy loss, ...
///   └── IoError      : std::runtime_error    — files, serialized state
///
/// See validate.hpp for the RRS_CHECK precondition helpers and health.hpp
/// for the numeric guards that throw NumericError.

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace rrs {

/// Ordered outermost-first context frames, e.g. {"scene:12", "spectrum 'sea'", "h"}.
using ErrorContext = std::vector<std::string>;

/// Abstract mixin root of the taxonomy.  Not itself a std::exception — the
/// concrete subclasses each pick the standard base matching their legacy
/// behaviour — but always catchable as `const rrs::Error&`.
class Error {
public:
    virtual ~Error() = default;

    /// The bare failure description, without the context chain.
    const std::string& message() const noexcept { return message_; }

    /// Outermost-first context frames.
    const ErrorContext& context() const noexcept { return context_; }

    /// The chain joined with " → " (empty string when there is no context).
    std::string context_string() const;

    /// Full rendered text: "ctx → ctx: message" (what() of the std base).
    virtual const char* what() const noexcept = 0;

    /// "a → b: message", or just "message" when the chain is empty.
    static std::string format(const std::string& message, const ErrorContext& context);

protected:
    Error(std::string message, ErrorContext context)
        : message_(std::move(message)), context_(std::move(context)) {}

private:
    std::string message_;
    ErrorContext context_;
};

/// Invalid configuration: bad parameter values, malformed scenes, size and
/// geometry violations.  IS-A std::invalid_argument.
class ConfigError : public Error, public std::invalid_argument {
public:
    explicit ConfigError(std::string message, ErrorContext context = {});

    const char* what() const noexcept override { return std::invalid_argument::what(); }
};

/// Numeric-health violation: non-finite samples, implausible variance,
/// kernel energy loss.  IS-A std::runtime_error.
class NumericError : public Error, public std::runtime_error {
public:
    explicit NumericError(std::string message, ErrorContext context = {});

    const char* what() const noexcept override { return std::runtime_error::what(); }
};

/// Filesystem / serialization failure: unwritable outputs, corrupt
/// checkpoints.  IS-A std::runtime_error.
class IoError : public Error, public std::runtime_error {
public:
    explicit IoError(std::string message, ErrorContext context = {});

    const char* what() const noexcept override { return std::runtime_error::what(); }
};

/// Rebuild `e` with `frame` prepended to its context chain and throw the
/// copy.  Exceptions are immutable once thrown, so enclosing layers use this
/// to extend the chain, e.g. catching "cl_x: must be positive" from a
/// spectrum factory and rethrowing as "spectrum 'sea' → cl_x: ...".
template <typename E>
[[noreturn]] void rethrow_with_context(const E& e, std::string frame) {
    static_assert(std::is_base_of_v<Error, E>, "rethrow_with_context needs an rrs::Error");
    ErrorContext context;
    context.reserve(e.context().size() + 1);
    context.push_back(std::move(frame));
    context.insert(context.end(), e.context().begin(), e.context().end());
    throw E(e.message(), std::move(context));
}

}  // namespace rrs
