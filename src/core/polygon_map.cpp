#include "core/polygon_map.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/error.hpp"

namespace rrs {

PolygonMap::PolygonMap(std::vector<PolyVertex> outline, SpectrumPtr inside,
                       SpectrumPtr outside, double transition_half_width)
    : RegionMap({std::move(inside), std::move(outside)}),
      outline_(std::move(outline)),
      T_(transition_half_width) {
    if (outline_.size() < 3) {
        throw ConfigError{"PolygonMap: needs at least 3 vertices"};
    }
    if (!(T_ > 0.0)) {
        throw ConfigError{"PolygonMap: transition half-width must be positive"};
    }
}

bool PolygonMap::contains(double x, double y) const {
    // Even-odd rule ray cast along +x.
    bool inside = false;
    const std::size_t n = outline_.size();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
        const PolyVertex& a = outline_[i];
        const PolyVertex& b = outline_[j];
        const bool crosses = (a.y > y) != (b.y > y);
        if (crosses) {
            const double x_cross = a.x + (y - a.y) / (b.y - a.y) * (b.x - a.x);
            if (x < x_cross) {
                inside = !inside;
            }
        }
    }
    return inside;
}

double PolygonMap::signed_distance(double x, double y) const {
    double best = std::numeric_limits<double>::infinity();
    const std::size_t n = outline_.size();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
        const PolyVertex& a = outline_[j];
        const PolyVertex& b = outline_[i];
        const double ex = b.x - a.x;
        const double ey = b.y - a.y;
        const double len2 = ex * ex + ey * ey;
        double t = 0.0;
        if (len2 > 0.0) {
            t = std::clamp(((x - a.x) * ex + (y - a.y) * ey) / len2, 0.0, 1.0);
        }
        best = std::min(best, std::hypot(x - (a.x + t * ex), y - (a.y + t * ey)));
    }
    return contains(x, y) ? -best : best;
}

void PolygonMap::weights_at(double x, double y, std::span<double> g) const {
    if (g.size() != 2) {
        throw ConfigError{"PolygonMap::weights_at: span size mismatch"};
    }
    const double d = signed_distance(x, y);
    const double outside = std::clamp((d + T_) / (2.0 * T_), 0.0, 1.0);
    g[0] = 1.0 - outside;
    g[1] = outside;
}

}  // namespace rrs
