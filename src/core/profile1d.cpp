#include "core/profile1d.hpp"

#include <cmath>
#include <stdexcept>

#include "fft/fft1d.hpp"
#include "grid/permute.hpp"
#include "special/constants.hpp"

#include "core/error.hpp"

namespace rrs {

double LineSpec::dK() const noexcept { return kTwoPi / L; }

void LineSpec::validate() const {
    if (!(L > 0.0)) {
        throw ConfigError{"LineSpec: length must be positive"};
    }
    if (N < 2 || N % 2 != 0) {
        throw ConfigError{"LineSpec: N must be even and >= 2"};
    }
}

std::vector<double> weight_array_1d(const Spectrum1D& s, const LineSpec& g) {
    g.validate();
    std::vector<double> w(g.N);
    for (std::size_t m = 0; m < g.N; ++m) {
        const double K = g.dK() * static_cast<double>(signed_freq(m, g.M()));
        w[m] = g.dK() * s.density(K);
    }
    return w;
}

ProfileKernel::ProfileKernel(std::vector<double> taps, std::size_t center, double dx,
                             double target_variance)
    : taps_(std::move(taps)), center_(center), dx_(dx), target_variance_(target_variance) {
    for (const double t : taps_) {
        energy_ += t * t;
    }
}

ProfileKernel ProfileKernel::build(const Spectrum1D& s, const LineSpec& g) {
    const std::vector<double> w = weight_array_1d(s, g);
    std::vector<cplx> V(g.N);
    for (std::size_t m = 0; m < g.N; ++m) {
        V[m] = cplx{std::sqrt(w[m]), 0.0};
    }
    const auto plan = fft_plan(g.N);
    plan->forward(V);

    const double scale = 1.0 / std::sqrt(static_cast<double>(g.N));
    std::vector<double> taps(g.N);
    for (std::size_t m = 0; m < g.N; ++m) {
        taps[fftshift_index(m, g.M())] = V[m].real() * scale;
    }
    const double h = s.params().h;
    return ProfileKernel{std::move(taps), g.M(), g.dx(), h * h};
}

ProfileKernel ProfileKernel::build_truncated(const Spectrum1D& s, const LineSpec& g,
                                             double tail_eps) {
    return build(s, g).truncated(tail_eps);
}

double ProfileKernel::tap(std::ptrdiff_t dx) const noexcept {
    const std::ptrdiff_t i = static_cast<std::ptrdiff_t>(center_) + dx;
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(taps_.size())) {
        return 0.0;
    }
    return taps_[static_cast<std::size_t>(i)];
}

ProfileKernel ProfileKernel::truncated(double tail_eps) const {
    if (!(tail_eps > 0.0) || !(tail_eps < 1.0)) {
        throw ConfigError{"ProfileKernel::truncated: eps in (0,1) required"};
    }
    const double need = (1.0 - tail_eps) * energy_;
    const std::size_t hmax = std::max(center_, taps_.size() - 1 - center_);
    // Smallest half-width keeping `need` energy (monotone → binary search).
    std::size_t lo = 0;
    std::size_t hi = hmax;
    auto window_energy = [&](std::size_t k) {
        double e = 0.0;
        for (std::ptrdiff_t d = -static_cast<std::ptrdiff_t>(k);
             d <= static_cast<std::ptrdiff_t>(k); ++d) {
            const double t = tap(d);
            e += t * t;
        }
        return e;
    };
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (window_energy(mid) >= need) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    std::vector<double> out(2 * lo + 1);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = tap(static_cast<std::ptrdiff_t>(i) - static_cast<std::ptrdiff_t>(lo));
    }
    return ProfileKernel{std::move(out), lo, dx_, target_variance_};
}

ProfileGenerator::ProfileGenerator(ProfileKernel kernel, std::uint64_t seed)
    : kernel_(std::move(kernel)), lattice_(seed) {}

std::vector<double> ProfileGenerator::noise_line(std::int64_t x0, std::int64_t n) const {
    if (n <= 0) {
        throw ConfigError{"ProfileGenerator: length must be positive"};
    }
    std::vector<double> X(static_cast<std::size_t>(n));
    for (std::int64_t t = 0; t < n; ++t) {
        X[static_cast<std::size_t>(t)] = lattice_(x0 + t, kProfileRow);
    }
    return X;
}

std::vector<double> ProfileGenerator::generate(std::int64_t x0, std::int64_t n) const {
    if (n <= 0) {
        throw ConfigError{"ProfileGenerator: length must be positive"};
    }
    const std::int64_t left = kernel_.max_dx();
    const std::int64_t right = -kernel_.min_dx();
    const std::vector<double> X = noise_line(x0 - left, n + left + right);

    const auto K = static_cast<std::int64_t>(kernel_.size());
    const std::vector<double>& taps = kernel_.taps();
    std::vector<double> f(static_cast<std::size_t>(n));
    for (std::int64_t t = 0; t < n; ++t) {
        double acc = 0.0;
        const std::int64_t base = t + K - 1;
        for (std::int64_t j = 0; j < K; ++j) {
            acc += taps[static_cast<std::size_t>(j)] *
                   X[static_cast<std::size_t>(base - j)];
        }
        f[static_cast<std::size_t>(t)] = acc;
    }
    return f;
}

}  // namespace rrs
