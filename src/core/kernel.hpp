#pragma once

/// \file kernel.hpp
/// The convolution method's real-space weighting array — paper eqs. 34–35.
///
/// c = fftshift(DFT(v)) / √(NxNy); c is real, even in each axis, and its
/// energy Σc² equals Σw ≈ h² (Parseval), so convolving it with unit white
/// noise yields a surface of variance h².  The kernel decays like the
/// autocorrelation, so it can be truncated when cl is small — the paper's
/// "reduce the size of the weighting array to save computation time".

#include <cstddef>
#include <optional>
#include <vector>

#include "core/grid_spec.hpp"
#include "core/spectrum.hpp"
#include "grid/array2d.hpp"

namespace rrs {

/// Rank-1 factorisation of a kernel: taps(ix, iy) ≈ fx[ix]·fy[iy].
/// The Gaussian family factors *exactly* (its sqrt-weight array is an
/// outer product, and the DFT of an outer product is the outer product of
/// the 1-D DFTs), so its residual is FFT rounding noise (~1e-16 relative);
/// exponential and power-law kernels do not factor and fail the check.
struct SeparableFactors {
    std::vector<double> fx;  ///< column factor, length nx
    std::vector<double> fy;  ///< row factor, length ny
    /// max |taps − fx⊗fy| / max |taps| over the full support.
    double residual = 0.0;
};

/// Default acceptance tolerance for SeparableFactors::residual — far above
/// the Gaussian family's actual FFT-rounding residual, far below any
/// genuinely non-separable kernel's.
inline constexpr double kSeparableTol = 1e-12;

/// Centered real-space convolution kernel with physical tap spacing.
class ConvolutionKernel {
public:
    /// Eqs. (34)–(35): build the full (Nx × Ny) kernel of `spectrum` on
    /// grid `g`.  Centre lands at (Mx, My).
    static ConvolutionKernel build(const Spectrum& spectrum, const GridSpec& g);

    /// build() followed by truncated(tail_eps).
    static ConvolutionKernel build_truncated(const Spectrum& spectrum, const GridSpec& g,
                                             double tail_eps);

    std::size_t nx() const noexcept { return taps_.nx(); }
    std::size_t ny() const noexcept { return taps_.ny(); }

    /// Centre index along x; valid tap offsets dx ∈ [-center_x, nx-1-center_x].
    std::size_t center_x() const noexcept { return cx_; }
    std::size_t center_y() const noexcept { return cy_; }

    std::ptrdiff_t min_dx() const noexcept { return -static_cast<std::ptrdiff_t>(cx_); }
    std::ptrdiff_t max_dx() const noexcept {
        return static_cast<std::ptrdiff_t>(taps_.nx() - 1 - cx_);
    }
    std::ptrdiff_t min_dy() const noexcept { return -static_cast<std::ptrdiff_t>(cy_); }
    std::ptrdiff_t max_dy() const noexcept {
        return static_cast<std::ptrdiff_t>(taps_.ny() - 1 - cy_);
    }

    /// Tap value at lag offset (dx, dy); 0 outside the stored support.
    double tap(std::ptrdiff_t dx, std::ptrdiff_t dy) const noexcept;

    /// Centered tap array (row-major; centre at (center_x, center_y)).
    const Array2D<double>& taps() const noexcept { return taps_; }

    /// Σ taps² — the variance a convolution with unit white noise produces;
    /// ≈ h² up to spectral discretisation error.
    double energy() const noexcept { return energy_; }

    /// h² of the source spectrum (the target variance).
    double target_variance() const noexcept { return target_variance_; }

    /// Physical spacing between adjacent taps.
    double spacing_x() const noexcept { return dx_; }
    double spacing_y() const noexcept { return dy_; }

    /// Smallest centered odd window, shrinking both axes proportionally,
    /// that keeps at least (1 − tail_eps) of the kernel energy.
    ConvolutionKernel truncated(double tail_eps) const;

    /// Rank-1 factorisation taps ≈ fx⊗fy via the largest-|tap| pivot:
    /// fx[ix] = taps(ix, py), fy[iy] = taps(px, iy)/taps(px, py), verified
    /// against every tap.  Returns nullopt when the relative residual
    /// exceeds `tol` (the kernel is not separable) — the gate for the
    /// separable convolution engine.  Truncation preserves separability
    /// (a window of an outer product is an outer product).
    std::optional<SeparableFactors> separable(double tol = kSeparableTol) const;

    /// Kernel laid out cyclically on a Px×Py grid (tap at offset d lands at
    /// index d mod P) — the image FFT-based convolution transforms.
    /// Requires Px >= nx() and Py >= ny().
    Array2D<double> wrapped_image(std::size_t Px, std::size_t Py) const;

private:
    ConvolutionKernel(Array2D<double> taps, std::size_t cx, std::size_t cy, double dx,
                      double dy, double target_variance);

    Array2D<double> taps_;
    std::size_t cx_ = 0;
    std::size_t cy_ = 0;
    double dx_ = 1.0;
    double dy_ = 1.0;
    double energy_ = 0.0;
    double target_variance_ = 0.0;
};

}  // namespace rrs
