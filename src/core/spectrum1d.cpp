#include "core/spectrum1d.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "special/bessel.hpp"
#include "special/constants.hpp"
#include "special/gamma.hpp"

#include "core/error.hpp"

namespace rrs {

void ProfileParams::validate() const {
    if (!(h > 0.0) || !(cl > 0.0)) {
        throw ConfigError{"ProfileParams: h, cl must be positive"};
    }
}

Spectrum1D::Spectrum1D(ProfileParams p) : p_(p) { p_.validate(); }

namespace {

class Gaussian1D final : public Spectrum1D {
public:
    explicit Gaussian1D(ProfileParams p) : Spectrum1D(p) {}

    double density(double K) const override {
        const double u = 0.5 * K * p_.cl;
        return p_.cl * p_.h * p_.h / (2.0 * kSqrtPi) * std::exp(-u * u);
    }

    double autocorrelation(double x) const override {
        const double u = x / p_.cl;
        return p_.h * p_.h * std::exp(-u * u);
    }

    std::string name() const override { return "gaussian-1d"; }
};

class PowerLaw1D final : public Spectrum1D {
public:
    PowerLaw1D(ProfileParams p, double N) : Spectrum1D(p), N_(N) {
        if (!(N > 0.5)) {
            throw ConfigError{"PowerLaw1D: requires N > 1/2"};
        }
        log_norm_ = log_gamma(N_) - log_gamma(N_ - 0.5) - std::log(kSqrtPi);
        log_gamma_nu_ = log_gamma(N_ - 0.5);
    }

    double density(double K) const override {
        const double u = K * p_.cl;
        return p_.cl * p_.h * p_.h * std::exp(log_norm_) * std::pow(1.0 + u * u, -N_);
    }

    double autocorrelation(double x) const override {
        const double r = std::abs(x) / p_.cl;
        if (r == 0.0) {
            return p_.h * p_.h;
        }
        const double nu = N_ - 0.5;
        const double log_term = std::log(2.0) - log_gamma_nu_ + nu * std::log(0.5 * r);
        return p_.h * p_.h * std::exp(log_term) * bessel_k(nu, r);
    }

    std::string name() const override {
        std::ostringstream ss;
        ss << "power-law-1d(N=" << N_ << ")";
        return ss.str();
    }

private:
    double N_;
    double log_norm_;
    double log_gamma_nu_;
};

class Exponential1D final : public Spectrum1D {
public:
    explicit Exponential1D(ProfileParams p) : Spectrum1D(p) {}

    double density(double K) const override {
        const double u = K * p_.cl;
        return p_.cl * p_.h * p_.h / (kPi * (1.0 + u * u));
    }

    double autocorrelation(double x) const override {
        return p_.h * p_.h * std::exp(-std::abs(x) / p_.cl);
    }

    std::string name() const override { return "exponential-1d"; }
};

}  // namespace

Spectrum1DPtr make_gaussian_1d(ProfileParams p) {
    return std::make_shared<const Gaussian1D>(p);
}

Spectrum1DPtr make_power_law_1d(ProfileParams p, double N) {
    return std::make_shared<const PowerLaw1D>(p, N);
}

Spectrum1DPtr make_exponential_1d(ProfileParams p) {
    return std::make_shared<const Exponential1D>(p);
}

double correlation_distance_1d(const Spectrum1D& s, double level) {
    if (!(level > 0.0) || !(level < 1.0)) {
        throw ConfigError{"correlation_distance_1d: level must be in (0,1)"};
    }
    const double target = level * s.params().h * s.params().h;
    double lo = 0.0;
    double hi = s.params().cl;
    while (s.autocorrelation(hi) > target) {
        lo = hi;
        hi *= 2.0;
        if (hi > 1e6 * s.params().cl) {
            throw NumericError{"correlation_distance_1d: failed to bracket"};
        }
    }
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        (s.autocorrelation(mid) > target ? lo : hi) = mid;
        if (hi - lo < 1e-12 * s.params().cl) {
            break;
        }
    }
    return 0.5 * (lo + hi);
}

}  // namespace rrs
