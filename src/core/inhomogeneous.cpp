#include "core/inhomogeneous.hpp"

#include <algorithm>
#include <bit>

#include "core/validate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/hash.hpp"

namespace rrs {

InhomogeneousGenerator::InhomogeneousGenerator(RegionMapPtr map, GridSpec kernel_grid,
                                               std::uint64_t seed, Options opt)
    : map_(std::move(map)), grid_(kernel_grid), opt_(opt) {
    check_not_null(map_.get(), "region map", {"InhomogeneousGenerator"});
    grid_.validate();
    check_finite(opt_.origin_x, "origin_x", {"InhomogeneousGenerator"});
    check_finite(opt_.origin_y, "origin_y", {"InhomogeneousGenerator"});
    if (opt_.kernel_tail_eps != 0.0) {
        check_open_unit(opt_.kernel_tail_eps, "kernel_tail_eps",
                        {"InhomogeneousGenerator"});
    }
    kernels_.reserve(map_->region_count());
    generators_.reserve(map_->region_count());
    for (std::size_t m = 0; m < map_->region_count(); ++m) {
        ConvolutionKernel k = ConvolutionKernel::build(*map_->spectrum(m), grid_);
        if (opt_.kernel_tail_eps > 0.0) {
            k = k.truncated(opt_.kernel_tail_eps);
        }
        apply_policy(kernel_health(k), opt_.health, kDefaultKernelEnergyTol,
                     {"InhomogeneousGenerator",
                      "region " + std::to_string(m) + " (" + map_->spectrum(m)->name() +
                          ")"});
        kernels_.push_back(k);
        // Sub-generators run with kIgnore: the blended output is scanned
        // once in generate(), and per-region kernels were just checked.
        generators_.emplace_back(std::move(k), seed, HealthPolicy::kIgnore,
                                 opt_.engine);
    }
}

std::uint64_t InhomogeneousGenerator::fingerprint() const noexcept {
    std::uint64_t h = mix64(0x5252535F494E484FULL);  // "RRS_INHO"
    for (const auto& gen : generators_) {
        h = mix64(h ^ gen.fingerprint());
    }
    h = mix64(h ^ std::bit_cast<std::uint64_t>(opt_.origin_x));
    h = mix64(h ^ std::bit_cast<std::uint64_t>(opt_.origin_y));
    return h == 0 ? 1 : h;
}

Array2D<double> InhomogeneousGenerator::blend_weights(const Rect& region,
                                                      std::size_t m) const {
    if (m >= map_->region_count()) {
        throw BoundsError{"blend_weights: region index"};
    }
    RRS_TRACE_SPAN("inhom.weights");
    const std::size_t M = map_->region_count();
    Array2D<double> gm(static_cast<std::size_t>(region.nx),
                       static_cast<std::size_t>(region.ny));
    parallel_for(0, region.ny, [&](std::int64_t ty) {
        std::vector<double> g(M);
        const double y = y_of(region.y0 + ty);
        for (std::int64_t tx = 0; tx < region.nx; ++tx) {
            map_->weights_at(x_of(region.x0 + tx), y, g);
            gm(static_cast<std::size_t>(tx), static_cast<std::size_t>(ty)) = g[m];
        }
    });
    return gm;
}

Array2D<double> InhomogeneousGenerator::generate(const Rect& region) const {
    RRS_CHECK(!region.empty(), "InhomogeneousGenerator::generate",
              "region must be non-empty");
    RRS_TRACE_SPAN("inhom.generate");
    static obs::Counter& tiles = obs::MetricsRegistry::global().counter("inhom.tiles");
    static obs::Counter& points = obs::MetricsRegistry::global().counter("inhom.points");
    tiles.add();
    points.add(static_cast<std::uint64_t>(region.nx * region.ny));
    const std::size_t M = map_->region_count();
    Array2D<double> out(static_cast<std::size_t>(region.nx),
                        static_cast<std::size_t>(region.ny), 0.0);

    for (std::size_t m = 0; m < M; ++m) {
        const Array2D<double> gm = blend_weights(region, m);

        // Bounding box of gm > 0 — the only rows/cols that need field m.
        std::int64_t bx0 = region.nx, bx1 = -1, by0 = region.ny, by1 = -1;
        for (std::int64_t ty = 0; ty < region.ny; ++ty) {
            for (std::int64_t tx = 0; tx < region.nx; ++tx) {
                if (gm(static_cast<std::size_t>(tx), static_cast<std::size_t>(ty)) > 0.0) {
                    bx0 = std::min(bx0, tx);
                    bx1 = std::max(bx1, tx);
                    by0 = std::min(by0, ty);
                    by1 = std::max(by1, ty);
                }
            }
        }
        if (bx1 < bx0) {
            continue;  // region m has no support inside `region`
        }
        const Rect sub{region.x0 + bx0, region.y0 + by0, bx1 - bx0 + 1, by1 - by0 + 1};
        const Array2D<double> fm = generators_[m].generate(sub);

        RRS_TRACE_SPAN("inhom.blend");
        parallel_for(by0, by1 + 1, [&](std::int64_t ty) {
            for (std::int64_t tx = bx0; tx <= bx1; ++tx) {
                const double g =
                    gm(static_cast<std::size_t>(tx), static_cast<std::size_t>(ty));
                if (g > 0.0) {
                    out(static_cast<std::size_t>(tx), static_cast<std::size_t>(ty)) +=
                        g * fm(static_cast<std::size_t>(tx - bx0),
                               static_cast<std::size_t>(ty - by0));
                }
            }
        });
    }
    if (opt_.health != HealthPolicy::kIgnore) {
        // No single target RMS exists for a blended surface; scan for
        // NaN/Inf only (target 0 disables the ratio check).
        apply_policy(scan_surface(out), opt_.health,
                     {"InhomogeneousGenerator", "generate"});
    }
    return out;
}

Array2D<double> InhomogeneousGenerator::generate_reference(const Rect& region) const {
    RRS_CHECK(!region.empty(), "InhomogeneousGenerator::generate_reference",
              "region must be non-empty");
    const std::size_t M = map_->region_count();
    // Common halo covering every kernel's support.
    std::int64_t lx = 0, rx = 0, ly = 0, ry = 0;
    for (const auto& k : kernels_) {
        lx = std::max(lx, static_cast<std::int64_t>(k.max_dx()));
        rx = std::max(rx, -static_cast<std::int64_t>(k.min_dx()));
        ly = std::max(ly, static_cast<std::int64_t>(k.max_dy()));
        ry = std::max(ry, -static_cast<std::int64_t>(k.min_dy()));
    }
    const Rect noise_rect{region.x0 - lx, region.y0 - ly, region.nx + lx + rx,
                          region.ny + ly + ry};
    const Array2D<double> X = generators_.front().noise_tile(noise_rect);

    Array2D<double> out(static_cast<std::size_t>(region.nx),
                        static_cast<std::size_t>(region.ny));
    parallel_for(0, region.ny, [&](std::int64_t ty) {
        std::vector<double> g(M);
        const double y = y_of(region.y0 + ty);
        for (std::int64_t tx = 0; tx < region.nx; ++tx) {
            map_->weights_at(x_of(region.x0 + tx), y, g);
            double acc = 0.0;
            // Literal eq. (46): blended kernel, then eq. (36) tap sums.
            for (std::size_t m = 0; m < M; ++m) {
                if (g[m] <= 0.0) {
                    continue;
                }
                const ConvolutionKernel& k = kernels_[m];
                double fm = 0.0;
                for (std::ptrdiff_t dy = k.min_dy(); dy <= k.max_dy(); ++dy) {
                    for (std::ptrdiff_t dx = k.min_dx(); dx <= k.max_dx(); ++dx) {
                        const std::int64_t sx = tx + lx - dx;
                        const std::int64_t sy = ty + ly - dy;
                        fm += k.tap(dx, dy) * X(static_cast<std::size_t>(sx),
                                                static_cast<std::size_t>(sy));
                    }
                }
                acc += g[m] * fm;
            }
            out(static_cast<std::size_t>(tx), static_cast<std::size_t>(ty)) = acc;
        }
    });
    return out;
}

double InhomogeneousGenerator::expected_variance(double x, double y) const {
    const std::size_t M = map_->region_count();
    std::vector<double> g(M);
    map_->weights_at(x, y, g);
    // Var f = Σ_k (Σ_m g_m c_m(k))² over the union of supports.
    std::ptrdiff_t lo_x = 0, hi_x = 0, lo_y = 0, hi_y = 0;
    for (const auto& k : kernels_) {
        lo_x = std::min(lo_x, k.min_dx());
        hi_x = std::max(hi_x, k.max_dx());
        lo_y = std::min(lo_y, k.min_dy());
        hi_y = std::max(hi_y, k.max_dy());
    }
    double var = 0.0;
    for (std::ptrdiff_t dy = lo_y; dy <= hi_y; ++dy) {
        for (std::ptrdiff_t dx = lo_x; dx <= hi_x; ++dx) {
            double tap = 0.0;
            for (std::size_t m = 0; m < M; ++m) {
                if (g[m] > 0.0) {
                    tap += g[m] * kernels_[m].tap(dx, dy);
                }
            }
            var += tap * tap;
        }
    }
    return var;
}

}  // namespace rrs
