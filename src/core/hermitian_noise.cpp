#include "core/hermitian_noise.hpp"

#include <algorithm>
#include <cmath>

namespace rrs {

double hermitian_symmetry_defect(const Array2D<std::complex<double>>& u) {
    double defect = 0.0;
    for (std::size_t my = 0; my < u.ny(); ++my) {
        const std::size_t cy = (u.ny() - my) % u.ny();
        for (std::size_t mx = 0; mx < u.nx(); ++mx) {
            const std::size_t cx = (u.nx() - mx) % u.nx();
            defect = std::max(defect, std::abs(u(mx, my) - std::conj(u(cx, cy))));
        }
    }
    return defect;
}

}  // namespace rrs
