#include "core/engine.hpp"

#include <cstdlib>

#include "core/error.hpp"

namespace rrs {

const char* kernel_engine_name(KernelEngine engine) noexcept {
    switch (engine) {
        case KernelEngine::kDirect:
            return "direct";
        case KernelEngine::kFft:
            return "fft";
        case KernelEngine::kSeparable:
            return "separable";
        case KernelEngine::kAuto:
            break;
    }
    return "auto";
}

KernelEngine parse_kernel_engine(const std::string& name) {
    if (name == "auto") {
        return KernelEngine::kAuto;
    }
    if (name == "direct") {
        return KernelEngine::kDirect;
    }
    if (name == "fft") {
        return KernelEngine::kFft;
    }
    if (name == "separable") {
        return KernelEngine::kSeparable;
    }
    throw ConfigError{"unknown kernel engine '" + name +
                          "' (expected auto|direct|fft|separable)",
                      {"engine", "parse_kernel_engine"}};
}

std::optional<KernelEngine> kernel_engine_env_override() {
    const char* env = std::getenv("RRS_KERNEL_ENGINE");
    if (env == nullptr || *env == '\0') {
        return std::nullopt;
    }
    try {
        return parse_kernel_engine(env);
    } catch (const ConfigError&) {
        throw ConfigError{"unknown kernel engine '" + std::string(env) +
                              "' (expected auto|direct|fft|separable)",
                          {"engine", "RRS_KERNEL_ENGINE"}};
    }
}

}  // namespace rrs
