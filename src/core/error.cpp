#include "core/error.hpp"

namespace rrs {

std::string Error::context_string() const {
    std::string out;
    for (const std::string& frame : context_) {
        if (!out.empty()) {
            out += " → ";
        }
        out += frame;
    }
    return out;
}

std::string Error::format(const std::string& message, const ErrorContext& context) {
    std::string chain;
    for (const std::string& frame : context) {
        if (!chain.empty()) {
            chain += " → ";
        }
        chain += frame;
    }
    if (chain.empty()) {
        return message;
    }
    return chain + ": " + message;
}

ConfigError::ConfigError(std::string message, ErrorContext context)
    : Error(std::move(message), std::move(context)),
      std::invalid_argument(format(this->message(), this->context())) {}

NumericError::NumericError(std::string message, ErrorContext context)
    : Error(std::move(message), std::move(context)),
      std::runtime_error(format(this->message(), this->context())) {}

IoError::IoError(std::string message, ErrorContext context)
    : Error(std::move(message), std::move(context)),
      std::runtime_error(format(this->message(), this->context())) {}

}  // namespace rrs
