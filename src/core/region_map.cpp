#include "core/region_map.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/validate.hpp"

namespace rrs {

RegionMap::RegionMap(std::vector<SpectrumPtr> spectra) : spectra_(std::move(spectra)) {
    RRS_CHECK(!spectra_.empty(), "RegionMap", "needs at least one spectrum");
    for (std::size_t m = 0; m < spectra_.size(); ++m) {
        check_not_null(spectra_[m].get(), "spectrum " + std::to_string(m), {"RegionMap"});
    }
}

namespace {

/// 1-D hat factor: 1 inside [u0+T, u1−T], linear to 0 at u0−T / u1+T.
double ramp1d(double u, double u0, double u1, double T) {
    const double rise = std::clamp((u - (u0 - T)) / (2.0 * T), 0.0, 1.0);
    const double fall = std::clamp(((u1 + T) - u) / (2.0 * T), 0.0, 1.0);
    return rise * fall;
}

/// Euclidean distance from a point to an axis-aligned rectangle.
double rect_distance(double x, double y, const Plate& p) {
    const double dx = std::max({p.x0 - x, 0.0, x - p.x1});
    const double dy = std::max({p.y0 - y, 0.0, y - p.y1});
    return std::hypot(dx, dy);
}

}  // namespace

PlateMap::PlateMap(std::vector<Plate> plates, double transition_half_width)
    : RegionMap([&plates] {
          std::vector<SpectrumPtr> s;
          s.reserve(plates.size());
          for (const auto& p : plates) {
              s.push_back(p.spectrum);
          }
          return s;
      }()),
      plates_(std::move(plates)),
      T_(transition_half_width) {
    check_positive(T_, "transition_half_width", {"PlateMap"});
    for (std::size_t m = 0; m < plates_.size(); ++m) {
        const Plate& p = plates_[m];
        RRS_CHECK(p.x1 > p.x0 && p.y1 > p.y0, "PlateMap",
                  "plate " + std::to_string(m) + " is degenerate (x0 " +
                      std::to_string(p.x0) + ", x1 " + std::to_string(p.x1) + ", y0 " +
                      std::to_string(p.y0) + ", y1 " + std::to_string(p.y1) + ")");
    }
}

void PlateMap::weights_at(double x, double y, std::span<double> g) const {
    RRS_CHECK(g.size() == plates_.size(), "PlateMap::weights_at",
              "span size mismatch (got " + std::to_string(g.size()) + ", want " +
                  std::to_string(plates_.size()) + ")");
    double total = 0.0;
    for (std::size_t m = 0; m < plates_.size(); ++m) {
        const Plate& p = plates_[m];
        // Eqs. (38)–(39): separable linear transition across each boundary.
        g[m] = ramp1d(x, p.x0, p.x1, T_) * ramp1d(y, p.y0, p.y1, T_);
        total += g[m];
    }
    if (total <= 0.0) {
        // Outside every plate's reach: assign the nearest plate's statistics
        // (keeps the map total and well-defined on the whole plane).
        std::size_t best = 0;
        double best_d = std::numeric_limits<double>::infinity();
        for (std::size_t m = 0; m < plates_.size(); ++m) {
            const double d = rect_distance(x, y, plates_[m]);
            if (d < best_d) {
                best_d = d;
                best = m;
            }
        }
        std::fill(g.begin(), g.end(), 0.0);
        g[best] = 1.0;
        return;
    }
    for (auto& v : g) {
        v /= total;
    }
}

std::shared_ptr<const PlateMap> make_quadrant_map(double cx, double cy, double extent,
                                                  SpectrumPtr q1, SpectrumPtr q2,
                                                  SpectrumPtr q3, SpectrumPtr q4,
                                                  double transition_half_width) {
    check_positive(extent, "extent", {"make_quadrant_map"});
    std::vector<Plate> plates{
        Plate{cx, cx + extent, cy, cy + extent, std::move(q1)},  // 1st: +x +y
        Plate{cx - extent, cx, cy, cy + extent, std::move(q2)},  // 2nd: −x +y
        Plate{cx - extent, cx, cy - extent, cy, std::move(q3)},  // 3rd: −x −y
        Plate{cx, cx + extent, cy - extent, cy, std::move(q4)},  // 4th: +x −y
    };
    return std::make_shared<const PlateMap>(std::move(plates), transition_half_width);
}

CircleMap::CircleMap(double cx, double cy, double radius, SpectrumPtr inside,
                     SpectrumPtr outside, double transition_half_width)
    : RegionMap({std::move(inside), std::move(outside)}),
      cx_(cx),
      cy_(cy),
      R_(radius),
      T_(transition_half_width) {
    check_positive(R_, "radius", {"CircleMap"});
    check_positive(T_, "transition_half_width", {"CircleMap"});
}

void CircleMap::weights_at(double x, double y, std::span<double> g) const {
    RRS_CHECK(g.size() == 2, "CircleMap::weights_at",
              "span size mismatch (got " + std::to_string(g.size()) + ", want 2)");
    const double d = std::hypot(x - cx_, y - cy_) - R_;
    const double outside = std::clamp((d + T_) / (2.0 * T_), 0.0, 1.0);
    g[0] = 1.0 - outside;
    g[1] = outside;
}

PointMap::PointMap(std::vector<RepresentativePoint> points, double transition_half_width)
    : RegionMap([&points] {
          std::vector<SpectrumPtr> s;
          s.reserve(points.size());
          for (const auto& p : points) {
              s.push_back(p.spectrum);
          }
          return s;
      }()),
      points_(std::move(points)),
      T_(transition_half_width) {
    check_positive(T_, "transition_half_width", {"PointMap"});
    RRS_CHECK(points_.size() >= 2, "PointMap", "needs at least two points");
}

double PointMap::bisector_distance(double x, double y, double mx, double my, double sx,
                                   double sy) {
    // Eq. (42): τ = (|n−n_m|² − |n−n_m*|²) / (2·|n_m − n_m*|).
    const double dm2 = (x - mx) * (x - mx) + (y - my) * (y - my);
    const double ds2 = (x - sx) * (x - sx) + (y - sy) * (y - sy);
    const double sep = std::hypot(mx - sx, my - sy);
    return (dm2 - ds2) / (2.0 * sep);
}

void PointMap::weights_at(double x, double y, std::span<double> g) const {
    RRS_CHECK(g.size() == points_.size(), "PointMap::weights_at",
              "span size mismatch (got " + std::to_string(g.size()) + ", want " +
                  std::to_string(points_.size()) + ")");
    // Eq. (40): nearest representative point m*.
    std::size_t mstar = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t m = 0; m < points_.size(); ++m) {
        const double d = std::hypot(x - points_[m].x, y - points_[m].y);
        if (d < best) {
            best = d;
            mstar = m;
        }
    }
    // Eqs. (41)–(44): competitors within bisector distance T contribute a
    // linear share; the owner keeps the remainder (eq. 45).
    std::fill(g.begin(), g.end(), 0.0);
    double others = 0.0;
    for (std::size_t m = 0; m < points_.size(); ++m) {
        if (m == mstar) {
            continue;
        }
        const double tau = bisector_distance(x, y, points_[m].x, points_[m].y,
                                             points_[mstar].x, points_[mstar].y);
        if (tau <= T_) {
            g[m] = 0.5 * (1.0 - tau / T_);
            others += g[m];
        }
    }
    if (others >= 1.0) {
        // Multi-point junction: the owner's remainder hit zero; renormalise
        // the competitor shares (eq. 46 requires Σg = 1).
        for (auto& v : g) {
            v /= others;
        }
        return;
    }
    g[mstar] = 1.0 - others;
}

}  // namespace rrs
