#pragma once

/// \file direct_dft.hpp
/// The direct DFT method for homogeneous RRS generation — paper §2.4,
/// eq. (30): Z = DFT(v·u), with v = √w the amplitude filter and u the
/// Hermitian Gaussian array.  Z is real and realises a surface with
/// spectrum W.  This is the baseline the convolution method improves on:
/// fixed periodic grid, homogeneous parameters only.

#include <cstdint>

#include "core/discrete_spectrum.hpp"
#include "core/grid_spec.hpp"
#include "core/spectrum.hpp"
#include "grid/array2d.hpp"

namespace rrs {

/// Reusable homogeneous generator; precomputes v once per (spectrum, grid).
class DirectDftGenerator {
public:
    DirectDftGenerator(SpectrumPtr spectrum, GridSpec grid);

    /// One realisation.  `max_imag`, if non-null, receives the largest
    /// |Im Z| before it is discarded (≈1e-12·h; a Hermitian-symmetry check).
    Array2D<double> generate(std::uint64_t seed, double* max_imag = nullptr) const;

    const Array2D<double>& sqrt_weights() const noexcept { return v_; }
    const GridSpec& grid() const noexcept { return grid_; }
    const Spectrum& spectrum() const noexcept { return *spectrum_; }

private:
    SpectrumPtr spectrum_;
    GridSpec grid_;
    Array2D<double> v_;
};

}  // namespace rrs
