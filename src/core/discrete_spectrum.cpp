#include "core/discrete_spectrum.hpp"

#include <cmath>

#include "core/validate.hpp"
#include "fft/fft2d.hpp"
#include "grid/permute.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"

namespace rrs {

Array2D<double> weight_array(const Spectrum& s, const GridSpec& g) {
    RRS_TRACE_SPAN("spectrum.weights");
    static obs::Counter& builds =
        obs::MetricsRegistry::global().counter("spectrum.weight_builds");
    builds.add();
    g.validate();
    Array2D<double> w(g.Nx, g.Ny);
    const double scale = g.dKx() * g.dKy();  // = 4π²/(LxLy), eq. (15)
    parallel_for(0, static_cast<std::int64_t>(g.Ny), [&](std::int64_t sy) {
        const auto my = static_cast<std::size_t>(sy);
        const double Ky =
            g.dKy() * static_cast<double>(signed_freq(my, g.My()));
        for (std::size_t mx = 0; mx < g.Nx; ++mx) {
            const double Kx =
                g.dKx() * static_cast<double>(signed_freq(mx, g.Mx()));
            w(mx, my) = scale * s.density(Kx, Ky);
        }
    });
    return w;
}

Array2D<double> sqrt_weight_array(const Spectrum& s, const GridSpec& g) {
    Array2D<double> v = weight_array(s, g);
    for (std::size_t i = 0; i < v.size(); ++i) {
        const double w = v.data()[i];
        // A negative or non-finite density would turn into NaN here and
        // silently corrupt every surface drawn from this spectrum — catch
        // it at the boundary instead (Lang & Potthoff's failure class).
        if (!(w >= 0.0) || !std::isfinite(w)) {
            fail_numeric("spectral density must be finite and non-negative (got " +
                             std::to_string(w) + " at flat index " + std::to_string(i) +
                             ")",
                         {"sqrt_weight_array", "spectrum " + s.name()});
        }
        v.data()[i] = std::sqrt(w);
    }
    return v;
}

Array2D<double> weight_autocorr_check(const Array2D<double>& w, double* max_imag) {
    Array2D<cplx> c(w.nx(), w.ny());
    for (std::size_t i = 0; i < w.size(); ++i) {
        c.data()[i] = cplx{w.data()[i], 0.0};
    }
    Fft2D plan(w.nx(), w.ny());
    plan.forward(c);
    Array2D<double> rho(w.nx(), w.ny());
    double mi = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i) {
        rho.data()[i] = c.data()[i].real();
        mi = std::max(mi, std::abs(c.data()[i].imag()));
    }
    if (max_imag != nullptr) {
        *max_imag = mi;
    }
    return rho;
}

Array2D<double> analytic_autocorr_grid(const Spectrum& s, const GridSpec& g) {
    g.validate();
    Array2D<double> rho(g.Nx, g.Ny);
    for (std::size_t ny = 0; ny < g.Ny; ++ny) {
        const double y = g.dy() * static_cast<double>(signed_freq(ny, g.My()));
        for (std::size_t nx = 0; nx < g.Nx; ++nx) {
            const double x = g.dx() * static_cast<double>(signed_freq(nx, g.Mx()));
            rho(nx, ny) = s.autocorrelation(x, y);
        }
    }
    return rho;
}

double weight_sum(const Array2D<double>& w) {
    double total = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
        total += w.data()[i];
    }
    return total;
}

}  // namespace rrs
