#include "core/spectrum.hpp"

#include <cmath>
#include <sstream>

#include "core/validate.hpp"
#include "special/bessel.hpp"
#include "special/constants.hpp"
#include "special/gamma.hpp"

namespace rrs {

void SurfaceParams::validate() const {
    check_positive(h, "h", {"SurfaceParams"});
    check_positive(clx, "cl_x", {"SurfaceParams"});
    check_positive(cly, "cl_y", {"SurfaceParams"});
}

Spectrum::Spectrum(SurfaceParams p) : p_(p) { p_.validate(); }

namespace {

class GaussianSpectrum final : public Spectrum {
public:
    explicit GaussianSpectrum(SurfaceParams p) : Spectrum(p) {}

    double density(double Kx, double Ky) const override {
        const double kx = Kx * p_.clx;
        const double ky = Ky * p_.cly;
        return p_.clx * p_.cly * p_.h * p_.h / (4.0 * kPi) *
               std::exp(-0.25 * (kx * kx + ky * ky));
    }

    double autocorrelation(double x, double y) const override {
        const double xs = x / p_.clx;
        const double ys = y / p_.cly;
        return p_.h * p_.h * std::exp(-(xs * xs + ys * ys));
    }

    std::string name() const override { return "gaussian"; }
};

class PowerLawSpectrum final : public Spectrum {
public:
    PowerLawSpectrum(SurfaceParams p, double N) : Spectrum(p), N_(N) {
        RRS_CHECK(std::isfinite(N) && N > 1.0, "power-law spectrum",
                  "N must be finite and > 1 (got " + std::to_string(N) + ")");
        log_gamma_nm1_ = log_gamma(N_ - 1.0);
    }

    double density(double Kx, double Ky) const override {
        const double kx = Kx * p_.clx;
        const double ky = Ky * p_.cly;
        return p_.clx * p_.cly * p_.h * p_.h * (N_ - 1.0) / kPi *
               std::pow(1.0 + kx * kx + ky * ky, -N_);
    }

    double autocorrelation(double x, double y) const override {
        const double xs = x / p_.clx;
        const double ys = y / p_.cly;
        const double r = std::hypot(xs, ys);
        if (r == 0.0) {
            return p_.h * p_.h;
        }
        // Matérn form: (2h²/Γ(N−1)) (r/2)^{N−1} K_{N−1}(r), evaluated in
        // log space to stay finite for large N or r.
        const double nu = N_ - 1.0;
        const double log_term = std::log(2.0) - log_gamma_nm1_ + nu * std::log(0.5 * r);
        return p_.h * p_.h * std::exp(log_term) * bessel_k(nu, r);
    }

    std::string name() const override {
        std::ostringstream ss;
        ss << "power-law(N=" << N_ << ")";
        return ss.str();
    }

    double order() const noexcept { return N_; }

private:
    double N_;
    double log_gamma_nm1_;
};

class ExponentialSpectrum final : public Spectrum {
public:
    explicit ExponentialSpectrum(SurfaceParams p) : Spectrum(p) {}

    double density(double Kx, double Ky) const override {
        const double kx = Kx * p_.clx;
        const double ky = Ky * p_.cly;
        return p_.clx * p_.cly * p_.h * p_.h / (2.0 * kPi) *
               std::pow(1.0 + kx * kx + ky * ky, -1.5);
    }

    double autocorrelation(double x, double y) const override {
        const double xs = x / p_.clx;
        const double ys = y / p_.cly;
        return p_.h * p_.h * std::exp(-std::hypot(xs, ys));
    }

    std::string name() const override { return "exponential"; }
};

}  // namespace

SpectrumPtr make_gaussian(SurfaceParams p) {
    return std::make_shared<const GaussianSpectrum>(p);
}

SpectrumPtr make_power_law(SurfaceParams p, double N) {
    return std::make_shared<const PowerLawSpectrum>(p, N);
}

SpectrumPtr make_exponential(SurfaceParams p) {
    return std::make_shared<const ExponentialSpectrum>(p);
}

double correlation_distance(const Spectrum& s, double level) {
    check_open_unit(level, "level", {"correlation_distance"});
    const double h2 = s.params().h * s.params().h;
    const double target = level * h2;
    // Bracket: ρ decreases monotonically along the axis for these families.
    double lo = 0.0;
    double hi = s.params().clx;
    while (s.autocorrelation(hi, 0.0) > target) {
        lo = hi;
        hi *= 2.0;
        if (hi > 1e6 * s.params().clx) {
            fail_numeric("failed to bracket the correlation level (spectrum " + s.name() +
                             ")",
                         {"correlation_distance"});
        }
    }
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (s.autocorrelation(mid, 0.0) > target) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-12 * s.params().clx) {
            break;
        }
    }
    return 0.5 * (lo + hi);
}

}  // namespace rrs
