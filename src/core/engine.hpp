#pragma once

/// \file engine.hpp
/// Kernel-engine selection for the convolution generator.
///
/// Three engines compute the same eq. (36) sums; `kAuto` picks the fastest
/// one the kernel admits.  Selection is resolved per `generate()` call, in
/// priority order:
///
///   1. the `RRS_KERNEL_ENGINE` environment variable (the bit-exactness
///      escape hatch — one env var turns any production run into a
///      reference run, through every layer: scene, tile service, daemon),
///   2. the engine configured on the generator (API enum / scene key),
///   3. `kAuto`: separable when the kernel factors rank-1, else FFT.
///
/// The differential-equivalence suite (tests/test_kernel_equivalence.cpp)
/// bounds every engine against `generate_direct()`; DESIGN.md §15 states
/// the exact bit-exactness contract.

#include <optional>
#include <string>

namespace rrs {

/// Which engine `ConvolutionGenerator::generate` runs.
enum class KernelEngine {
    kAuto,       ///< separable when the kernel factors, else FFT
    kDirect,     ///< literal eq. (36) tap sums — the reference engine
    kFft,        ///< padded circular convolution via the real-input FFT
    kSeparable,  ///< two 1-D passes (requires a rank-1 kernel)
};

/// Canonical lower-case name ("auto", "direct", "fft", "separable").
const char* kernel_engine_name(KernelEngine engine) noexcept;

/// Parse a canonical name; throws ConfigError on anything else.
KernelEngine parse_kernel_engine(const std::string& name);

/// The RRS_KERNEL_ENGINE override, re-read on every call so a long-lived
/// process can be switched between runs.  Unset or empty → nullopt; a
/// malformed value throws ConfigError (typos must not silently fall back
/// to the fast path).
std::optional<KernelEngine> kernel_engine_env_override();

}  // namespace rrs
