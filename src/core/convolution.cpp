#include "core/convolution.hpp"

#include <bit>
#include <cmath>
#include <vector>

#include "core/validate.hpp"
#include "fft/real.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/hash.hpp"

namespace rrs {

namespace {

/// Pipeline counters for both convolution engines (obs registry, cold
/// lookup once, then relaxed atomics — tile granularity, never per-point).
struct ConvCounters {
    obs::Counter& tiles;
    obs::Counter& points;

    static ConvCounters& get() {
        static ConvCounters c{obs::MetricsRegistry::global().counter("conv.tiles"),
                              obs::MetricsRegistry::global().counter("conv.points")};
        return c;
    }
};

std::size_t next_pow2(std::size_t n) {
    std::size_t m = 1;
    while (m < n) {
        m <<= 1;
    }
    return m;
}

}  // namespace

/// Forward r2c FFT of the wrapped kernel image at one padded size, built
/// once per (Px, Py) and shared by all subsequent generate() calls.
struct ConvolutionGenerator::CachedKernelFft {
    std::size_t Px = 0;
    std::size_t Py = 0;
    Array2D<cplx> spectrum;  // half-spectrum: (Px/2+1) x Py
};

/// Cache of kernel FFTs keyed by padded size, behind a unique_ptr so the
/// generator stays movable despite the mutex.
struct ConvolutionGenerator::FftCache {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<const CachedKernelFft>> entries;
};

ConvolutionGenerator::ConvolutionGenerator(ConvolutionKernel kernel, std::uint64_t seed,
                                           HealthPolicy health)
    : kernel_(std::move(kernel)),
      lattice_(seed),
      health_(health),
      cache_(std::make_unique<FftCache>()) {
    apply_policy(kernel_health(kernel_), health_, kDefaultKernelEnergyTol,
                 {"ConvolutionGenerator", "kernel"});
}

std::uint64_t ConvolutionGenerator::fingerprint() const noexcept {
    std::uint64_t h = mix64(0x5252535F434F4E56ULL ^ lattice_.seed());  // "RRS_CONV"
    h = mix64(h ^ static_cast<std::uint64_t>(kernel_.nx()));
    h = mix64(h ^ static_cast<std::uint64_t>(kernel_.ny()));
    h = mix64(h ^ static_cast<std::uint64_t>(kernel_.center_x()));
    h = mix64(h ^ static_cast<std::uint64_t>(kernel_.center_y()));
    h = mix64(h ^ std::bit_cast<std::uint64_t>(kernel_.spacing_x()));
    h = mix64(h ^ std::bit_cast<std::uint64_t>(kernel_.spacing_y()));
    h = mix64(h ^ std::bit_cast<std::uint64_t>(kernel_.energy()));
    // Never return the "unfingerprinted" sentinel.
    return h == 0 ? 1 : h;
}

ConvolutionGenerator::~ConvolutionGenerator() = default;
ConvolutionGenerator::ConvolutionGenerator(ConvolutionGenerator&&) noexcept = default;
ConvolutionGenerator& ConvolutionGenerator::operator=(ConvolutionGenerator&&) noexcept =
    default;

Array2D<double> ConvolutionGenerator::noise_tile(const Rect& region) const {
    RRS_CHECK(!region.empty(), "ConvolutionGenerator::noise_tile",
              "region must be non-empty");
    Array2D<double> X(static_cast<std::size_t>(region.nx),
                      static_cast<std::size_t>(region.ny));
    lattice_.fill(region, X);
    return X;
}

Array2D<double> ConvolutionGenerator::generate_direct(const Rect& region) const {
    RRS_CHECK(!region.empty(), "ConvolutionGenerator::generate_direct",
              "region must be non-empty");
    RRS_TRACE_SPAN("conv.direct");
    ConvCounters::get().tiles.add();
    ConvCounters::get().points.add(static_cast<std::uint64_t>(region.nx * region.ny));
    const std::int64_t lx = halo_left_x();
    const std::int64_t ly = halo_left_y();
    const Rect noise_rect{region.x0 - lx, region.y0 - ly,
                          region.nx + lx + halo_right_x(),
                          region.ny + ly + halo_right_y()};
    const Array2D<double> X = noise_tile(noise_rect);

    const auto knx = static_cast<std::int64_t>(kernel_.nx());
    const auto kny = static_cast<std::int64_t>(kernel_.ny());
    const Array2D<double>& taps = kernel_.taps();

    Array2D<double> f(static_cast<std::size_t>(region.nx),
                      static_cast<std::size_t>(region.ny));
    // f(x0+t) = Σ_j taps[j] · X[t + (K−1) − j]  per axis (see kernel docs);
    // with the halo layout above, noise index (t + K−1 − j) is always valid.
    parallel_for(0, region.ny, [&](std::int64_t ty) {
        for (std::int64_t tx = 0; tx < region.nx; ++tx) {
            double acc = 0.0;
            for (std::int64_t jy = 0; jy < kny; ++jy) {
                const auto ny_idx = static_cast<std::size_t>(ty + kny - 1 - jy);
                const auto krow = taps.row(static_cast<std::size_t>(jy));
                const auto xrow = X.row(ny_idx);
                const std::int64_t base = tx + knx - 1;
                for (std::int64_t jx = 0; jx < knx; ++jx) {
                    acc += krow[static_cast<std::size_t>(jx)] *
                           xrow[static_cast<std::size_t>(base - jx)];
                }
            }
            f(static_cast<std::size_t>(tx), static_cast<std::size_t>(ty)) = acc;
        }
    });
    if (health_ != HealthPolicy::kIgnore) {
        apply_policy(scan_surface(f, std::sqrt(kernel_.energy())), health_,
                     {"ConvolutionGenerator", "generate_direct"});
    }
    return f;
}

const ConvolutionGenerator::CachedKernelFft& ConvolutionGenerator::kernel_fft(
    std::size_t Px, std::size_t Py) const {
    const std::uint64_t key = (static_cast<std::uint64_t>(Px) << 32) | Py;
    std::lock_guard lock(cache_->mutex);
    auto& cache = cache_->entries;
    auto it = cache.find(key);
    if (it == cache.end()) {
        RRS_TRACE_SPAN("conv.kernel_fft");
        auto entry = std::make_shared<CachedKernelFft>();
        entry->Px = Px;
        entry->Py = Py;
        const Array2D<double> img = kernel_.wrapped_image(Px, Py);
        rfft2d_plan(Px, Py)->forward(img, entry->spectrum);
        it = cache.emplace(key, std::move(entry)).first;
    }
    return *it->second;
}

Array2D<double> ConvolutionGenerator::generate(const Rect& region) const {
    RRS_CHECK(!region.empty(), "ConvolutionGenerator::generate",
              "region must be non-empty");
    RRS_TRACE_SPAN("conv.generate");
    ConvCounters::get().tiles.add();
    ConvCounters::get().points.add(static_cast<std::uint64_t>(region.nx * region.ny));
    const std::int64_t lx = halo_left_x();
    const std::int64_t ly = halo_left_y();
    const std::int64_t Sx = region.nx + lx + halo_right_x();
    const std::int64_t Sy = region.ny + ly + halo_right_y();
    const std::size_t Px = next_pow2(static_cast<std::size_t>(Sx));
    const std::size_t Py = next_pow2(static_cast<std::size_t>(Sy));

    const CachedKernelFft& kfft = kernel_fft(Px, Py);
    const auto plan = rfft2d_plan(Px, Py);

    // Real noise image, zero-padded to (Px, Py), through the r2c path.
    Array2D<double> noise(Px, Py, 0.0);
    lattice_.fill(Rect{region.x0 - lx, region.y0 - ly, Sx, Sy}, noise);

    Array2D<cplx> spec;
    plan->forward(noise, spec);
    for (std::size_t i = 0; i < spec.size(); ++i) {
        spec.data()[i] *= kfft.spectrum.data()[i];
    }
    Array2D<double> conv;
    plan->inverse(spec, conv);

    // out[i] = Σ_d tap(d)·noise[i−d]; valid (wrap-free) outputs start at the
    // left halo.  f(x0+t) = out[t + halo_left].
    Array2D<double> f(static_cast<std::size_t>(region.nx),
                      static_cast<std::size_t>(region.ny));
    for (std::int64_t ty = 0; ty < region.ny; ++ty) {
        for (std::int64_t tx = 0; tx < region.nx; ++tx) {
            f(static_cast<std::size_t>(tx), static_cast<std::size_t>(ty)) =
                conv(static_cast<std::size_t>(tx + lx), static_cast<std::size_t>(ty + ly));
        }
    }
    if (health_ != HealthPolicy::kIgnore) {
        apply_policy(scan_surface(f, std::sqrt(kernel_.energy())), health_,
                     {"ConvolutionGenerator", "generate"});
    }
    return f;
}

}  // namespace rrs
