#include "core/convolution.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "core/validate.hpp"
#include "fft/real.hpp"
#include "grid/simd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/hash.hpp"

namespace rrs {

namespace {

/// Pipeline counters for the convolution engines (obs registry, cold
/// lookup once, then relaxed atomics — tile granularity, never per-point).
/// Per-engine tile counters expose where batch traffic actually lands.
struct ConvCounters {
    obs::Counter& tiles;
    obs::Counter& points;
    obs::Counter& direct_tiles;
    obs::Counter& fft_tiles;
    obs::Counter& separable_tiles;

    static ConvCounters& get() {
        auto& reg = obs::MetricsRegistry::global();
        static ConvCounters c{reg.counter("conv.tiles"), reg.counter("conv.points"),
                              reg.counter("conv.engine.direct"),
                              reg.counter("conv.engine.fft"),
                              reg.counter("conv.engine.separable")};
        return c;
    }

    void count_tile(const Rect& region, obs::Counter& engine_tiles) {
        tiles.add();
        engine_tiles.add();
        points.add(static_cast<std::uint64_t>(region.nx * region.ny));
    }
};

std::size_t next_pow2(std::size_t n) {
    std::size_t m = 1;
    while (m < n) {
        m <<= 1;
    }
    return m;
}

}  // namespace

/// Forward r2c FFT of the wrapped kernel image at one padded size, built
/// once per (Px, Py) and shared by all subsequent generate_fft() calls.
struct ConvolutionGenerator::CachedKernelFft {
    std::size_t Px = 0;
    std::size_t Py = 0;
    Array2D<cplx> spectrum;  // half-spectrum: (Px/2+1) x Py
};

/// Cache of kernel FFTs keyed by padded size, behind a unique_ptr so the
/// generator stays movable despite the mutex.  The lock is held only for
/// the map lookup/insert (once per padded size per generator) — it is not
/// on the per-tile path, so batch fan-out does not serialise here.
struct ConvolutionGenerator::FftCache {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<const CachedKernelFft>> entries;
};

ConvolutionGenerator::ConvolutionGenerator(ConvolutionKernel kernel, std::uint64_t seed,
                                           HealthPolicy health, KernelEngine engine)
    : kernel_(std::move(kernel)),
      lattice_(seed),
      health_(health),
      engine_(engine),
      factors_(kernel_.separable()),
      cache_(std::make_unique<FftCache>()) {
    apply_policy(kernel_health(kernel_), health_, kDefaultKernelEnergyTol,
                 {"ConvolutionGenerator", "kernel"});
}

std::uint64_t ConvolutionGenerator::fingerprint() const noexcept {
    std::uint64_t h = mix64(0x5252535F434F4E56ULL ^ lattice_.seed());  // "RRS_CONV"
    h = mix64(h ^ static_cast<std::uint64_t>(kernel_.nx()));
    h = mix64(h ^ static_cast<std::uint64_t>(kernel_.ny()));
    h = mix64(h ^ static_cast<std::uint64_t>(kernel_.center_x()));
    h = mix64(h ^ static_cast<std::uint64_t>(kernel_.center_y()));
    h = mix64(h ^ std::bit_cast<std::uint64_t>(kernel_.spacing_x()));
    h = mix64(h ^ std::bit_cast<std::uint64_t>(kernel_.spacing_y()));
    h = mix64(h ^ std::bit_cast<std::uint64_t>(kernel_.energy()));
    // Never return the "unfingerprinted" sentinel.
    return h == 0 ? 1 : h;
}

ConvolutionGenerator::~ConvolutionGenerator() = default;
ConvolutionGenerator::ConvolutionGenerator(ConvolutionGenerator&&) noexcept = default;
ConvolutionGenerator& ConvolutionGenerator::operator=(ConvolutionGenerator&&) noexcept =
    default;

Array2D<double> ConvolutionGenerator::noise_tile(const Rect& region) const {
    RRS_CHECK(!region.empty(), "ConvolutionGenerator::noise_tile",
              "region must be non-empty");
    Array2D<double> X(static_cast<std::size_t>(region.nx),
                      static_cast<std::size_t>(region.ny));
    lattice_.fill(region, X);
    return X;
}

void ConvolutionGenerator::scan_health(const Array2D<double>& f,
                                       const char* where) const {
    if (health_ != HealthPolicy::kIgnore) {
        apply_policy(scan_surface(f, std::sqrt(kernel_.energy())), health_,
                     {"ConvolutionGenerator", where});
    }
}

KernelEngine ConvolutionGenerator::resolved_engine() const {
    KernelEngine e = kernel_engine_env_override().value_or(engine_);
    if (e == KernelEngine::kAuto) {
        e = factors_.has_value() ? KernelEngine::kSeparable : KernelEngine::kFft;
    }
    return e;
}

Array2D<double> ConvolutionGenerator::generate(const Rect& region) const {
    RRS_TRACE_SPAN("conv.generate");
    switch (resolved_engine()) {
        case KernelEngine::kDirect:
            return generate_direct(region);
        case KernelEngine::kSeparable:
            return generate_separable(region);
        case KernelEngine::kFft:
        case KernelEngine::kAuto:  // unreachable: resolved above
            break;
    }
    return generate_fft(region);
}

Array2D<double> ConvolutionGenerator::generate_direct(const Rect& region) const {
    RRS_CHECK(!region.empty(), "ConvolutionGenerator::generate_direct",
              "region must be non-empty");
    RRS_TRACE_SPAN("conv.direct");
    ConvCounters::get().count_tile(region, ConvCounters::get().direct_tiles);
    const std::int64_t lx = halo_left_x();
    const std::int64_t ly = halo_left_y();
    const Rect noise_rect{region.x0 - lx, region.y0 - ly,
                          region.nx + lx + halo_right_x(),
                          region.ny + ly + halo_right_y()};
    const Array2D<double> X = noise_tile(noise_rect);

    const auto knx = static_cast<std::int64_t>(kernel_.nx());
    const auto kny = static_cast<std::int64_t>(kernel_.ny());
    const Array2D<double>& taps = kernel_.taps();

    Array2D<double> f(static_cast<std::size_t>(region.nx),
                      static_cast<std::size_t>(region.ny));
    // f(x0+t) = Σ_j taps[j] · X[t + (K−1) − j]  per axis (see kernel docs);
    // with the halo layout above, noise index (t + K−1 − j) is always valid.
    parallel_for(0, region.ny, [&](std::int64_t ty) {
        for (std::int64_t tx = 0; tx < region.nx; ++tx) {
            double acc = 0.0;
            for (std::int64_t jy = 0; jy < kny; ++jy) {
                const auto ny_idx = static_cast<std::size_t>(ty + kny - 1 - jy);
                const auto krow = taps.row(static_cast<std::size_t>(jy));
                const auto xrow = X.row(ny_idx);
                const std::int64_t base = tx + knx - 1;
                for (std::int64_t jx = 0; jx < knx; ++jx) {
                    acc += krow[static_cast<std::size_t>(jx)] *
                           xrow[static_cast<std::size_t>(base - jx)];
                }
            }
            f(static_cast<std::size_t>(tx), static_cast<std::size_t>(ty)) = acc;
        }
    });
    scan_health(f, "generate_direct");
    return f;
}

Array2D<double> ConvolutionGenerator::generate_separable(const Rect& region) const {
    RRS_CHECK(!region.empty(), "ConvolutionGenerator::generate_separable",
              "region must be non-empty");
    if (!factors_.has_value()) {
        throw ConfigError{
            "separable engine requested but the kernel does not factor "
            "rank-1 (only the Gaussian family does); use engine=fft or "
            "engine=direct",
            {"ConvolutionGenerator", "generate_separable"}};
    }
    RRS_TRACE_SPAN("conv.separable");
    ConvCounters::get().count_tile(region, ConvCounters::get().separable_tiles);

    const std::int64_t lx = halo_left_x();
    const std::int64_t ly = halo_left_y();
    const std::int64_t Sx = region.nx + lx + halo_right_x();  // = nx + Kx − 1
    const std::int64_t Sy = region.ny + ly + halo_right_y();  // = ny + Ky − 1
    Array2D<double> X(static_cast<std::size_t>(Sx), static_cast<std::size_t>(Sy));
    lattice_.fill(Rect{region.x0 - lx, region.y0 - ly, Sx, Sy}, X);

    // taps = fx⊗fy turns eq. (36) into two 1-D passes:
    //   H(t, s)  = Σ_u fx[Kx−1−u] · X(t+u, s)        (horizontal, dot)
    //   f(t, ty) = Σ_v fy[Ky−1−v] · H(t, ty+v)       (vertical, axpy)
    // Both passes parallelise over independent output rows with a fixed
    // accumulation order, so results are bit-identical at any thread count
    // and overlapping rectangles agree exactly (X is a pure function of
    // absolute lattice coordinates).
    const std::size_t knx = kernel_.nx();
    const std::size_t kny = kernel_.ny();
    std::vector<double> gx(knx);
    std::vector<double> gy(kny);
    for (std::size_t u = 0; u < knx; ++u) {
        gx[u] = factors_->fx[knx - 1 - u];
    }
    for (std::size_t v = 0; v < kny; ++v) {
        gy[v] = factors_->fy[kny - 1 - v];
    }

    Array2D<double> H(static_cast<std::size_t>(region.nx),
                      static_cast<std::size_t>(Sy));
    parallel_for(0, Sy, [&](std::int64_t sy) {
        const double* xrow = X.row(static_cast<std::size_t>(sy)).data();
        double* hrow = H.row(static_cast<std::size_t>(sy)).data();
        for (std::int64_t tx = 0; tx < region.nx; ++tx) {
            hrow[static_cast<std::size_t>(tx)] =
                simd::dot(gx.data(), xrow + tx, knx);
        }
    });

    Array2D<double> f(static_cast<std::size_t>(region.nx),
                      static_cast<std::size_t>(region.ny));
    parallel_for(0, region.ny, [&](std::int64_t ty) {
        double* frow = f.row(static_cast<std::size_t>(ty)).data();
        std::fill(frow, frow + region.nx, 0.0);
        for (std::size_t v = 0; v < kny; ++v) {
            const double* hrow = H.row(static_cast<std::size_t>(ty) + v).data();
            simd::axpy(frow, hrow, gy[v], static_cast<std::size_t>(region.nx));
        }
    });
    scan_health(f, "generate_separable");
    return f;
}

const ConvolutionGenerator::CachedKernelFft& ConvolutionGenerator::kernel_fft(
    std::size_t Px, std::size_t Py) const {
    const std::uint64_t key = (static_cast<std::uint64_t>(Px) << 32) | Py;
    std::lock_guard lock(cache_->mutex);
    auto& cache = cache_->entries;
    auto it = cache.find(key);
    if (it == cache.end()) {
        RRS_TRACE_SPAN("conv.kernel_fft");
        auto entry = std::make_shared<CachedKernelFft>();
        entry->Px = Px;
        entry->Py = Py;
        const Array2D<double> img = kernel_.wrapped_image(Px, Py);
        rfft2d_plan(Px, Py)->forward(img, entry->spectrum);
        it = cache.emplace(key, std::move(entry)).first;
    }
    return *it->second;
}

Array2D<double> ConvolutionGenerator::generate_fft(const Rect& region) const {
    RRS_CHECK(!region.empty(), "ConvolutionGenerator::generate_fft",
              "region must be non-empty");
    RRS_TRACE_SPAN("conv.fft");
    ConvCounters::get().count_tile(region, ConvCounters::get().fft_tiles);
    const std::int64_t lx = halo_left_x();
    const std::int64_t ly = halo_left_y();
    const std::int64_t Sx = region.nx + lx + halo_right_x();
    const std::int64_t Sy = region.ny + ly + halo_right_y();
    const std::size_t Px = next_pow2(static_cast<std::size_t>(Sx));
    const std::size_t Py = next_pow2(static_cast<std::size_t>(Sy));

    const CachedKernelFft& kfft = kernel_fft(Px, Py);
    const auto plan = rfft2d_plan(Px, Py);

    // Real noise image, zero-padded to (Px, Py), through the r2c path.
    Array2D<double> noise(Px, Py, 0.0);
    lattice_.fill(Rect{region.x0 - lx, region.y0 - ly, Sx, Sy}, noise);

    Array2D<cplx> spec;
    plan->forward(noise, spec);
    simd::cmul(spec.data(), kfft.spectrum.data(), spec.size());
    Array2D<double> conv;
    plan->inverse(spec, conv);

    // out[i] = Σ_d tap(d)·noise[i−d]; valid (wrap-free) outputs start at the
    // left halo.  f(x0+t) = out[t + halo_left].
    Array2D<double> f(static_cast<std::size_t>(region.nx),
                      static_cast<std::size_t>(region.ny));
    for (std::int64_t ty = 0; ty < region.ny; ++ty) {
        for (std::int64_t tx = 0; tx < region.nx; ++tx) {
            f(static_cast<std::size_t>(tx), static_cast<std::size_t>(ty)) =
                conv(static_cast<std::size_t>(tx + lx), static_cast<std::size_t>(ty + ly));
        }
    }
    scan_health(f, "generate_fft");
    return f;
}

}  // namespace rrs
