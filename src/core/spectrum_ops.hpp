#pragma once

/// \file spectrum_ops.hpp
/// Spectrum combinators — extensions beyond the paper's three families that
/// its framework supports unchanged ("arbitrary types of spectra", §1):
///
///  * rotate_spectrum — anisotropy along an arbitrary axis (ploughed
///    fields, wind-driven sea swell): W'(K) = W(R_{−θ}K), ρ'(r) = ρ(R_{−θ}r).
///  * mix_spectra — superposition of independent components (swell +
///    ripple): W = ΣW_i, ρ = Σρ_i, h² = Σh_i².
///
/// Both compose with every generator in the library because the kernel
/// builder only consumes W(K).

#include <vector>

#include "core/spectrum.hpp"

namespace rrs {

/// Rotate a spectrum's anisotropy axes by `theta_rad` counter-clockwise.
SpectrumPtr rotate_spectrum(SpectrumPtr base, double theta_rad);

/// Superpose independent spectra.  The combined parameters report
/// h = sqrt(Σh_i²) and the largest component correlation lengths (a
/// conservative scale for kernel sizing).
SpectrumPtr mix_spectra(std::vector<SpectrumPtr> components);

}  // namespace rrs
