#pragma once

/// \file writers.hpp
/// Plot-ready output of surfaces and curves: CSV, gnuplot matrix blocks
/// (for `splot`), 16-bit PGM height maps, and NumPy .npy arrays.  This is
/// the "plotting plumbing" replacing the paper's figure rendering: every
/// figure bench dumps its surface through these writers.

#include <string>
#include <vector>

#include "grid/array2d.hpp"

namespace rrs {

/// Comma-separated matrix, one y-row per line.
void write_csv(const std::string& path, const Array2D<double>& a);

/// Gnuplot `splot` format: "x y z" triples, blank line between y-scans.
/// x/y are physical coordinates (origin + index·spacing).
void write_gnuplot_surface(const std::string& path, const Array2D<double>& a,
                           double x0 = 0.0, double y0 = 0.0, double dx = 1.0,
                           double dy = 1.0);

/// 16-bit binary PGM, heights linearly mapped onto [0, 65535].
void write_pgm16(const std::string& path, const Array2D<double>& a);

/// NumPy .npy (format 1.0), dtype <f8, C order, shape (ny, nx).
void write_npy(const std::string& path, const Array2D<double>& a);

/// Two-column CSV of (x, y) pairs, e.g. correlation curves.
void write_curve_csv(const std::string& path, const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Create a directory (and parents); no error if it already exists.
void ensure_directory(const std::string& path);

}  // namespace rrs
