#pragma once

/// \file table.hpp
/// Fixed-width console tables — the figure benches print paper-vs-measured
/// statistics rows through this.

#include <iosfwd>
#include <string>
#include <vector>

namespace rrs {

/// Column-aligned text table accumulated row by row.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Convenience: formats doubles with fixed precision.
    static std::string num(double v, int precision = 4);

    /// Render with aligned columns, header rule, to `os`.
    void print(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace rrs
