#pragma once

/// \file scene.hpp
/// Text scene descriptions for the `rrsgen` command-line generator: a
/// small INI-style format declaring spectra, a region map, the output
/// lattice window, and output files.  Parsing is separated from rendering
/// so the format is unit-testable without touching the filesystem.
///
/// Example:
///
///     seed = 42
///     kernel_grid = 1024 1024
///     region = -512 -512 1024 1024
///     tail_eps = 1e-6
///     output = surface.pgm surface.npy
///
///     [spectrum field]
///     family = gaussian
///     h = 1.0
///     cl = 50 50
///
///     [spectrum pond]
///     family = exponential
///     h = 0.2
///     cl = 50
///
///     [map]
///     type = circle
///     center = 0 0
///     radius = 500
///     transition = 100
///     inside = pond
///     outside = field
///
/// Map types: homogeneous (spectrum=), circle (center/radius/transition/
/// inside/outside), quadrant (center/extent/transition/q1..q4), plates
/// (transition, repeated `plate = x0 x1 y0 y1 NAME`), points (transition,
/// repeated `point = x y NAME`).  Spectrum families: gaussian,
/// exponential, power-law (with `N = ...`); optional `rotate = radians`.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/grid_spec.hpp"
#include "core/health.hpp"
#include "core/inhomogeneous.hpp"
#include "core/region_map.hpp"
#include "grid/array2d.hpp"
#include "grid/rect.hpp"

namespace rrs {

/// A parsed, fully-built scene ready to render.
struct Scene {
    std::uint64_t seed = 0;
    GridSpec kernel_grid = GridSpec::unit_spacing(512, 512);
    Rect region{0, 0, 512, 512};
    double tail_eps = 1e-6;
    double origin_x = 0.0;
    double origin_y = 0.0;
    /// Numeric health policy for rendering (`health = throw|report|ignore`;
    /// the rrsgen `--health` flag overrides it).
    HealthPolicy health = HealthPolicy::kReport;
    /// Kernel engine (`engine = auto|direct|fft|separable`; the rrsgen
    /// `--engine` flag and RRS_KERNEL_ENGINE env var override it).
    KernelEngine engine = KernelEngine::kAuto;
    RegionMapPtr map;                  ///< built blending map (never null)
    std::vector<std::string> outputs;  ///< format chosen by extension
};

/// Parse a scene description; throws SceneError with a line-numbered
/// message on malformed input.
Scene parse_scene(std::istream& in);

/// Convenience overload for in-memory text.
Scene parse_scene_text(const std::string& text);

/// Parse errors carry the offending 1-based line number.  Part of the
/// library error taxonomy (error.hpp): a SceneError IS-A ConfigError whose
/// outermost context frame is "scene:<line>".
class SceneError : public ConfigError {
public:
    SceneError(std::size_t line, const std::string& message);

    /// Wrap an inner error's context chain under the "scene:<line>" frame.
    SceneError(std::size_t line, const std::string& message, ErrorContext inner);

    std::size_t line() const noexcept { return line_; }

private:
    std::size_t line_;
};

/// Build the scene's generator (inhomogeneous convolution method) without
/// rendering anything — the entry point for random-access serving
/// (service/tile_service.hpp) where the scene's `region` is only a default
/// viewport, not the extent of the surface.
InhomogeneousGenerator make_scene_generator(const Scene& scene);

/// Generate the scene's surface (inhomogeneous convolution method).
Array2D<double> render_scene(const Scene& scene);

/// Write `surface` to every scene output; the extension selects the
/// writer: .pgm, .csv, .npy, or .dat (gnuplot).  Throws on unknown
/// extensions.
void write_scene_outputs(const Scene& scene, const Array2D<double>& surface);

}  // namespace rrs
