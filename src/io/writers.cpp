#include "io/writers.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "core/error.hpp"

namespace rrs {

namespace {

std::ofstream open_or_throw(const std::string& path, std::ios::openmode mode = std::ios::out) {
    std::ofstream out(path, mode);
    if (!out) {
        throw IoError{"cannot open for writing: " + path, {"writers"}};
    }
    return out;
}

}  // namespace

void write_csv(const std::string& path, const Array2D<double>& a) {
    auto out = open_or_throw(path);
    out.precision(10);
    for (std::size_t iy = 0; iy < a.ny(); ++iy) {
        for (std::size_t ix = 0; ix < a.nx(); ++ix) {
            out << a(ix, iy);
            out << (ix + 1 < a.nx() ? ',' : '\n');
        }
    }
}

void write_gnuplot_surface(const std::string& path, const Array2D<double>& a, double x0,
                           double y0, double dx, double dy) {
    auto out = open_or_throw(path);
    out.precision(8);
    for (std::size_t iy = 0; iy < a.ny(); ++iy) {
        const double y = y0 + static_cast<double>(iy) * dy;
        for (std::size_t ix = 0; ix < a.nx(); ++ix) {
            const double x = x0 + static_cast<double>(ix) * dx;
            out << x << ' ' << y << ' ' << a(ix, iy) << '\n';
        }
        out << '\n';
    }
}

void write_pgm16(const std::string& path, const Array2D<double>& a) {
    if (a.empty()) {
        throw ConfigError{"empty array", {"write_pgm16"}};
    }
    const auto [mn_it, mx_it] = std::minmax_element(a.begin(), a.end());
    const double lo = *mn_it;
    const double span = (*mx_it > lo) ? (*mx_it - lo) : 1.0;

    auto out = open_or_throw(path, std::ios::out | std::ios::binary);
    out << "P5\n" << a.nx() << ' ' << a.ny() << "\n65535\n";
    for (std::size_t iy = 0; iy < a.ny(); ++iy) {
        for (std::size_t ix = 0; ix < a.nx(); ++ix) {
            const double t = (a(ix, iy) - lo) / span;
            const auto v = static_cast<std::uint16_t>(t * 65535.0 + 0.5);
            // PGM is big-endian.
            const char bytes[2] = {static_cast<char>(v >> 8), static_cast<char>(v & 0xFF)};
            out.write(bytes, 2);
        }
    }
}

void write_npy(const std::string& path, const Array2D<double>& a) {
    auto out = open_or_throw(path, std::ios::out | std::ios::binary);
    std::string header = "{'descr': '<f8', 'fortran_order': False, 'shape': (" +
                         std::to_string(a.ny()) + ", " + std::to_string(a.nx()) + "), }";
    // Pad with spaces so magic+len+header is a multiple of 64, newline-final.
    const std::size_t base = 10 + header.size() + 1;
    const std::size_t pad = (64 - base % 64) % 64;
    header.append(pad, ' ');
    header.push_back('\n');

    const char magic[8] = {'\x93', 'N', 'U', 'M', 'P', 'Y', '\x01', '\x00'};
    out.write(magic, 8);
    const auto hlen = static_cast<std::uint16_t>(header.size());
    const char lenb[2] = {static_cast<char>(hlen & 0xFF), static_cast<char>(hlen >> 8)};
    out.write(lenb, 2);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(reinterpret_cast<const char*>(a.data()),
              static_cast<std::streamsize>(a.size() * sizeof(double)));
}

void write_curve_csv(const std::string& path, const std::vector<double>& xs,
                     const std::vector<double>& ys) {
    if (xs.size() != ys.size()) {
        throw ConfigError{"xs and ys length mismatch (" + std::to_string(xs.size()) +
                              " vs " + std::to_string(ys.size()) + ")",
                          {"write_curve_csv"}};
    }
    auto out = open_or_throw(path);
    out.precision(10);
    out << "x,y\n";
    for (std::size_t i = 0; i < xs.size(); ++i) {
        out << xs[i] << ',' << ys[i] << '\n';
    }
}

void ensure_directory(const std::string& path) {
    std::filesystem::create_directories(path);
}

}  // namespace rrs
