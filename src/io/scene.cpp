#include "io/scene.hpp"

#include <cmath>
#include <initializer_list>
#include <istream>
#include <iterator>
#include <map>
#include <memory>
#include <sstream>
#include <string_view>

#include "core/inhomogeneous.hpp"
#include "core/polygon_map.hpp"
#include "core/spectrum_ops.hpp"
#include "io/writers.hpp"
#include "obs/trace.hpp"

namespace rrs {

namespace {

ErrorContext scene_context(std::size_t line, ErrorContext inner) {
    ErrorContext context;
    context.reserve(inner.size() + 1);
    context.push_back("scene:" + std::to_string(line));
    context.insert(context.end(), std::make_move_iterator(inner.begin()),
                   std::make_move_iterator(inner.end()));
    return context;
}

}  // namespace

SceneError::SceneError(std::size_t line, const std::string& message)
    : ConfigError(message, scene_context(line, {})), line_(line) {}

SceneError::SceneError(std::size_t line, const std::string& message, ErrorContext inner)
    : ConfigError(message, scene_context(line, std::move(inner))), line_(line) {}

namespace {

/// Raw key/value content of one section, with line numbers for errors.
struct Section {
    std::string kind;  ///< "" (top level), "spectrum", or "map"
    std::string name;  ///< spectrum name
    std::size_t line = 0;
    // Repeated keys are kept in order (plates/points need that).
    std::vector<std::tuple<std::string, std::string, std::size_t>> entries;

    /// Last value for `key`, or empty if absent.
    std::string get(const std::string& key) const {
        std::string out;
        for (const auto& [k, v, l] : entries) {
            if (k == key) {
                out = v;
            }
        }
        return out;
    }

    std::size_t line_of(const std::string& key) const {
        for (const auto& [k, v, l] : entries) {
            if (k == key) {
                return l;
            }
        }
        return line;
    }

    bool has(const std::string& key) const { return !get(key).empty(); }
};

std::string trim(const std::string& s) {
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos) {
        return "";
    }
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::vector<std::string> split_ws(const std::string& s) {
    std::vector<std::string> out;
    std::istringstream ss(s);
    std::string tok;
    while (ss >> tok) {
        out.push_back(tok);
    }
    return out;
}

double parse_number(const std::string& tok, std::size_t line) {
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(tok, &pos);
    } catch (const std::exception&) {
        throw SceneError(line, "expected a number, got '" + tok + "'");
    }
    if (pos != tok.size()) {
        throw SceneError(line, "trailing characters in number '" + tok + "'");
    }
    return v;
}

/// Largest double that is still an exact integer (2^53); integral settings
/// beyond it cannot round-trip through the scene file's decimal grammar.
constexpr double kMaxExactInt = 9007199254740992.0;

/// Checked double → int64 for integral settings (seed, kernel_grid,
/// region).  A nan, ±inf, fractional, or out-of-range value is a scene
/// error — a raw static_cast would be undefined behaviour (UBSan
/// float-cast-overflow; surfaced by the fuzz_scene harness).
std::int64_t checked_int(double v, double lo, double hi, const std::string& what,
                         std::size_t line) {
    if (!(v >= lo && v <= hi) || v != std::floor(v)) {
        throw SceneError(line, "'" + what + "' must be an integer in [" +
                                   std::to_string(static_cast<long long>(lo)) +
                                   ", " +
                                   std::to_string(static_cast<long long>(hi)) +
                                   "]");
    }
    return static_cast<std::int64_t>(v);
}

std::vector<double> parse_numbers(const Section& sec, const std::string& key,
                                  std::size_t want_min, std::size_t want_max) {
    const std::string raw = sec.get(key);
    const std::size_t line = sec.line_of(key);
    if (raw.empty()) {
        throw SceneError(line, "missing required key '" + key + "'");
    }
    const auto toks = split_ws(raw);
    if (toks.size() < want_min || toks.size() > want_max) {
        throw SceneError(line, "key '" + key + "' expects " + std::to_string(want_min) +
                                   (want_max > want_min
                                        ? ".." + std::to_string(want_max)
                                        : "") +
                                   " numbers");
    }
    std::vector<double> out;
    out.reserve(toks.size());
    for (const auto& t : toks) {
        out.push_back(parse_number(t, line));
    }
    return out;
}

/// Reject keys outside `allowed`, naming the offending line.  Unknown keys
/// were historically ignored, which silently hid typos like `clx` vs `cl`.
void reject_unknown_keys(const Section& sec,
                         std::initializer_list<std::string_view> allowed,
                         const std::string& where) {
    for (const auto& [k, v, line] : sec.entries) {
        bool known = false;
        for (const std::string_view a : allowed) {
            if (k == a) {
                known = true;
                break;
            }
        }
        if (!known) {
            std::string list;
            for (const std::string_view a : allowed) {
                if (!list.empty()) {
                    list += ", ";
                }
                list += a;
            }
            throw SceneError(line, "unknown key '" + k + "' in " + where +
                                       " (allowed: " + list + ")");
        }
    }
}

SpectrumPtr build_spectrum(const Section& sec) {
    reject_unknown_keys(sec, {"family", "h", "cl", "N", "rotate"},
                        "[spectrum " + sec.name + "]");
    const std::string family = sec.get("family");
    if (family.empty()) {
        throw SceneError(sec.line, "spectrum '" + sec.name + "' missing 'family'");
    }
    const auto h = parse_numbers(sec, "h", 1, 1)[0];
    const auto cl = parse_numbers(sec, "cl", 1, 2);
    const SurfaceParams p{h, cl[0], cl.size() > 1 ? cl[1] : cl[0]};

    SpectrumPtr s;
    try {
        if (family == "gaussian") {
            s = make_gaussian(p);
        } else if (family == "exponential") {
            s = make_exponential(p);
        } else if (family == "power-law") {
            s = make_power_law(p, parse_numbers(sec, "N", 1, 1)[0]);
        } else {
            throw SceneError(sec.line_of("family"),
                             "unknown spectrum family '" + family + "'");
        }
        if (sec.has("rotate")) {
            s = rotate_spectrum(s, parse_numbers(sec, "rotate", 1, 1)[0]);
        }
    } catch (const SceneError&) {
        throw;  // already line-numbered
    } catch (const ConfigError& e) {
        // Preserve the inner context chain under "spectrum 'NAME'", e.g.
        // scene:4 → spectrum 'sea' → SurfaceParams → cl_x: must be positive.
        ErrorContext inner;
        inner.reserve(e.context().size() + 1);
        inner.push_back("spectrum '" + sec.name + "'");
        inner.insert(inner.end(), e.context().begin(), e.context().end());
        throw SceneError(sec.line, e.message(), std::move(inner));
    } catch (const std::invalid_argument& e) {
        throw SceneError(sec.line, std::string{"spectrum '"} + sec.name + "': " + e.what());
    }
    return s;
}

SpectrumPtr lookup(const std::map<std::string, SpectrumPtr>& spectra,
                   const Section& sec, const std::string& key) {
    const std::string name = trim(sec.get(key));
    if (name.empty()) {
        throw SceneError(sec.line, "map missing required key '" + key + "'");
    }
    const auto it = spectra.find(name);
    if (it == spectra.end()) {
        throw SceneError(sec.line_of(key), "unknown spectrum '" + name + "'");
    }
    return it->second;
}

RegionMapPtr build_map(const Section& sec, const std::map<std::string, SpectrumPtr>& spectra) {
    const std::string type = sec.get("type");
    if (type.empty()) {
        throw SceneError(sec.line, "[map] missing 'type'");
    }
    try {
        if (type == "homogeneous") {
            reject_unknown_keys(sec, {"type", "spectrum"}, "[map] type homogeneous");
            // A single unbounded plate reproduces the homogeneous generator.
            const SpectrumPtr s = lookup(spectra, sec, "spectrum");
            return std::make_shared<const PlateMap>(
                std::vector<Plate>{{-1e18, 1e18, -1e18, 1e18, s}}, 1.0);
        }
        if (type == "circle") {
            reject_unknown_keys(
                sec, {"type", "center", "radius", "transition", "inside", "outside"},
                "[map] type circle");
            const auto c = parse_numbers(sec, "center", 2, 2);
            return std::make_shared<const CircleMap>(
                c[0], c[1], parse_numbers(sec, "radius", 1, 1)[0],
                lookup(spectra, sec, "inside"), lookup(spectra, sec, "outside"),
                parse_numbers(sec, "transition", 1, 1)[0]);
        }
        if (type == "quadrant") {
            reject_unknown_keys(
                sec, {"type", "center", "extent", "transition", "q1", "q2", "q3", "q4"},
                "[map] type quadrant");
            const auto c = parse_numbers(sec, "center", 2, 2);
            return make_quadrant_map(c[0], c[1], parse_numbers(sec, "extent", 1, 1)[0],
                                     lookup(spectra, sec, "q1"), lookup(spectra, sec, "q2"),
                                     lookup(spectra, sec, "q3"), lookup(spectra, sec, "q4"),
                                     parse_numbers(sec, "transition", 1, 1)[0]);
        }
        if (type == "plates") {
            reject_unknown_keys(sec, {"type", "transition", "plate"}, "[map] type plates");
            std::vector<Plate> plates;
            for (const auto& [k, v, line] : sec.entries) {
                if (k != "plate") {
                    continue;
                }
                const auto toks = split_ws(v);
                if (toks.size() != 5) {
                    throw SceneError(line, "'plate' expects: x0 x1 y0 y1 SPECTRUM");
                }
                const auto it = spectra.find(toks[4]);
                if (it == spectra.end()) {
                    throw SceneError(line, "unknown spectrum '" + toks[4] + "'");
                }
                plates.push_back(Plate{parse_number(toks[0], line),
                                       parse_number(toks[1], line),
                                       parse_number(toks[2], line),
                                       parse_number(toks[3], line), it->second});
            }
            if (plates.empty()) {
                throw SceneError(sec.line, "'plates' map needs at least one 'plate ='");
            }
            return std::make_shared<const PlateMap>(
                std::move(plates), parse_numbers(sec, "transition", 1, 1)[0]);
        }
        if (type == "polygon") {
            reject_unknown_keys(sec, {"type", "transition", "inside", "outside", "vertex"},
                                "[map] type polygon");
            std::vector<PolyVertex> verts;
            for (const auto& [k, v, line] : sec.entries) {
                if (k != "vertex") {
                    continue;
                }
                const auto toks = split_ws(v);
                if (toks.size() != 2) {
                    throw SceneError(line, "'vertex' expects: x y");
                }
                verts.push_back(
                    PolyVertex{parse_number(toks[0], line), parse_number(toks[1], line)});
            }
            if (verts.size() < 3) {
                throw SceneError(sec.line, "'polygon' map needs at least three 'vertex ='");
            }
            return std::make_shared<const PolygonMap>(
                std::move(verts), lookup(spectra, sec, "inside"),
                lookup(spectra, sec, "outside"), parse_numbers(sec, "transition", 1, 1)[0]);
        }
        if (type == "points") {
            reject_unknown_keys(sec, {"type", "transition", "point"}, "[map] type points");
            std::vector<RepresentativePoint> pts;
            for (const auto& [k, v, line] : sec.entries) {
                if (k != "point") {
                    continue;
                }
                const auto toks = split_ws(v);
                if (toks.size() != 3) {
                    throw SceneError(line, "'point' expects: x y SPECTRUM");
                }
                const auto it = spectra.find(toks[2]);
                if (it == spectra.end()) {
                    throw SceneError(line, "unknown spectrum '" + toks[2] + "'");
                }
                pts.push_back(RepresentativePoint{parse_number(toks[0], line),
                                                  parse_number(toks[1], line), it->second});
            }
            if (pts.size() < 2) {
                throw SceneError(sec.line, "'points' map needs at least two 'point ='");
            }
            return std::make_shared<const PointMap>(
                std::move(pts), parse_numbers(sec, "transition", 1, 1)[0]);
        }
    } catch (const SceneError&) {
        throw;  // already line-numbered
    } catch (const ConfigError& e) {
        ErrorContext inner;
        inner.reserve(e.context().size() + 1);
        inner.push_back("[map]");
        inner.insert(inner.end(), e.context().begin(), e.context().end());
        throw SceneError(sec.line, e.message(), std::move(inner));
    } catch (const std::invalid_argument& e) {
        throw SceneError(sec.line, std::string{"[map]: "} + e.what());
    }
    throw SceneError(sec.line_of("type"), "unknown map type '" + type + "'");
}

}  // namespace

Scene parse_scene(std::istream& in) {
    std::vector<Section> sections;
    sections.push_back(Section{});  // top level
    std::string raw;
    std::size_t lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        // Strip comments and whitespace.
        const auto hash = raw.find('#');
        std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
        if (line.empty()) {
            continue;
        }
        if (line.front() == '[') {
            if (line.back() != ']') {
                throw SceneError(lineno, "unterminated section header");
            }
            const auto toks = split_ws(line.substr(1, line.size() - 2));
            Section sec;
            sec.line = lineno;
            if (toks.size() == 2 && toks[0] == "spectrum") {
                sec.kind = "spectrum";
                sec.name = toks[1];
            } else if (toks.size() == 1 && toks[0] == "map") {
                sec.kind = "map";
            } else {
                throw SceneError(lineno, "expected [spectrum NAME] or [map]");
            }
            sections.push_back(std::move(sec));
            continue;
        }
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            throw SceneError(lineno, "expected 'key = value'");
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty() || value.empty()) {
            throw SceneError(lineno, "empty key or value");
        }
        sections.back().entries.emplace_back(key, value, lineno);
    }

    // Top-level settings.
    Scene scene;
    const Section& top = sections.front();
    reject_unknown_keys(top,
                        {"seed", "kernel_grid", "region", "tail_eps", "origin",
                         "output", "health", "engine"},
                        "top-level settings");
    if (top.has("seed")) {
        const std::size_t line = top.line_of("seed");
        scene.seed = static_cast<std::uint64_t>(checked_int(
            parse_numbers(top, "seed", 1, 1)[0], 0.0, kMaxExactInt, "seed", line));
    }
    if (top.has("kernel_grid")) {
        const auto g = parse_numbers(top, "kernel_grid", 2, 2);
        const std::size_t line = top.line_of("kernel_grid");
        scene.kernel_grid = GridSpec::unit_spacing(
            static_cast<std::size_t>(
                checked_int(g[0], 0.0, kMaxExactInt, "kernel_grid", line)),
            static_cast<std::size_t>(
                checked_int(g[1], 0.0, kMaxExactInt, "kernel_grid", line)));
    }
    if (top.has("region")) {
        const auto r = parse_numbers(top, "region", 4, 4);
        const std::size_t line = top.line_of("region");
        scene.region = Rect{checked_int(r[0], -kMaxExactInt, kMaxExactInt, "region", line),
                            checked_int(r[1], -kMaxExactInt, kMaxExactInt, "region", line),
                            checked_int(r[2], -kMaxExactInt, kMaxExactInt, "region", line),
                            checked_int(r[3], -kMaxExactInt, kMaxExactInt, "region", line)};
    }
    if (top.has("tail_eps")) {
        scene.tail_eps = parse_numbers(top, "tail_eps", 1, 1)[0];
    }
    if (top.has("origin")) {
        const auto o = parse_numbers(top, "origin", 2, 2);
        scene.origin_x = o[0];
        scene.origin_y = o[1];
    }
    if (top.has("output")) {
        scene.outputs = split_ws(top.get("output"));
    }
    if (top.has("health")) {
        try {
            scene.health = parse_health_policy(top.get("health"));
        } catch (const ConfigError& e) {
            throw SceneError(top.line_of("health"), e.message(), e.context());
        }
    }
    if (top.has("engine")) {
        try {
            scene.engine = parse_kernel_engine(top.get("engine"));
        } catch (const ConfigError& e) {
            throw SceneError(top.line_of("engine"), e.message(), e.context());
        }
    }
    try {
        scene.kernel_grid.validate();
    } catch (const std::invalid_argument& e) {
        throw SceneError(top.line_of("kernel_grid"), e.what());
    }
    if (scene.region.empty()) {
        throw SceneError(top.line_of("region"), "region must be non-empty");
    }

    // Spectra, then the map.
    std::map<std::string, SpectrumPtr> spectra;
    const Section* map_section = nullptr;
    for (std::size_t i = 1; i < sections.size(); ++i) {
        const Section& sec = sections[i];
        if (sec.kind == "spectrum") {
            if (spectra.count(sec.name) != 0) {
                throw SceneError(sec.line, "duplicate spectrum '" + sec.name + "'");
            }
            spectra[sec.name] = build_spectrum(sec);
        } else {
            if (map_section != nullptr) {
                throw SceneError(sec.line, "duplicate [map] section");
            }
            map_section = &sec;
        }
    }
    if (map_section == nullptr) {
        throw SceneError(lineno, "scene has no [map] section");
    }
    scene.map = build_map(*map_section, spectra);
    return scene;
}

Scene parse_scene_text(const std::string& text) {
    std::istringstream in(text);
    return parse_scene(in);
}

InhomogeneousGenerator make_scene_generator(const Scene& scene) {
    RRS_TRACE_SPAN("scene.build");
    InhomogeneousGenerator::Options opt;
    opt.kernel_tail_eps = scene.tail_eps;
    opt.origin_x = scene.origin_x;
    opt.origin_y = scene.origin_y;
    opt.health = scene.health;
    opt.engine = scene.engine;
    return InhomogeneousGenerator(scene.map, scene.kernel_grid, scene.seed, opt);
}

Array2D<double> render_scene(const Scene& scene) {
    RRS_TRACE_SPAN("scene.render");
    return make_scene_generator(scene).generate(scene.region);
}

void write_scene_outputs(const Scene& scene, const Array2D<double>& surface) {
    for (const std::string& path : scene.outputs) {
        const auto dot = path.rfind('.');
        const std::string ext = dot == std::string::npos ? "" : path.substr(dot + 1);
        if (ext == "pgm") {
            write_pgm16(path, surface);
        } else if (ext == "csv") {
            write_csv(path, surface);
        } else if (ext == "npy") {
            write_npy(path, surface);
        } else if (ext == "dat") {
            write_gnuplot_surface(path, surface, static_cast<double>(scene.region.x0),
                                  static_cast<double>(scene.region.y0));
        } else {
            throw ConfigError{"unknown output extension on '" + path +
                                  "' (expected .pgm, .csv, .npy, or .dat)",
                              {"write_scene_outputs"}};
        }
    }
}

}  // namespace rrs
