#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/error.hpp"

namespace rrs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw ConfigError{"Table::add_row: cell count mismatch"};
    }
    rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        width[c] = headers_[c].size();
        for (const auto& row : rows_) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
        }
        os << '\n';
    };
    print_row(headers_);
    std::size_t total = 0;
    for (const std::size_t w : width) {
        total += w + 2;
    }
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) {
        print_row(row);
    }
}

}  // namespace rrs
