#include "fault/circuit_breaker.hpp"

#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace rrs::fault {

CircuitBreaker::CircuitBreaker(Options options) : options_(options) {
    if (options_.failure_threshold <= 0) {
        throw ConfigError{"failure_threshold must be positive",
                          {"fault", "CircuitBreaker"}};
    }
    if (options_.open_ms <= 0) {
        throw ConfigError{"open_ms must be positive", {"fault", "CircuitBreaker"}};
    }
    if (options_.half_open_successes <= 0) {
        throw ConfigError{"half_open_successes must be positive",
                          {"fault", "CircuitBreaker"}};
    }
    if (options_.state_gauge != nullptr) {
        options_.state_gauge->set(static_cast<std::int64_t>(State::kClosed));
    }
}

void CircuitBreaker::transition_locked(State next) {
    if (next == State::kOpen) {
        opened_at_ = Clock::now();
        if (state_ != State::kOpen && options_.opened != nullptr) {
            options_.opened->add();
        }
    }
    state_ = next;
    if (options_.state_gauge != nullptr) {
        options_.state_gauge->set(static_cast<std::int64_t>(next));
    }
}

bool CircuitBreaker::allow() {
    const std::lock_guard lock(mutex_);
    switch (state_) {
        case State::kClosed:
            return true;
        case State::kOpen: {
            const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - opened_at_);
            if (elapsed.count() < options_.open_ms) {
                return false;
            }
            transition_locked(State::kHalfOpen);
            probe_successes_ = 0;
            probe_in_flight_ = true;
            return true;
        }
        case State::kHalfOpen:
            if (probe_in_flight_) {
                return false;  // one probe at a time
            }
            probe_in_flight_ = true;
            return true;
    }
    return false;
}

void CircuitBreaker::record_success() {
    const std::lock_guard lock(mutex_);
    switch (state_) {
        case State::kClosed:
            consecutive_failures_ = 0;
            return;
        case State::kHalfOpen:
            probe_in_flight_ = false;
            if (++probe_successes_ >= options_.half_open_successes) {
                consecutive_failures_ = 0;
                transition_locked(State::kClosed);
            }
            return;
        case State::kOpen:
            return;  // stale result from before the trip; timer governs
    }
}

void CircuitBreaker::record_failure() {
    const std::lock_guard lock(mutex_);
    switch (state_) {
        case State::kClosed:
            if (++consecutive_failures_ >= options_.failure_threshold) {
                transition_locked(State::kOpen);
            }
            return;
        case State::kHalfOpen:
            probe_in_flight_ = false;
            transition_locked(State::kOpen);
            return;
        case State::kOpen:
            return;
    }
}

CircuitBreaker::State CircuitBreaker::state() const {
    const std::lock_guard lock(mutex_);
    return state_;
}

int CircuitBreaker::open_remaining_ms() const {
    const std::lock_guard lock(mutex_);
    if (state_ != State::kOpen) {
        return 0;
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - opened_at_);
    const auto remaining = options_.open_ms - elapsed.count();
    return remaining > 0 ? static_cast<int>(remaining) : 0;
}

}  // namespace rrs::fault
