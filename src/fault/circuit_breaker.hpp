#pragma once

/// \file circuit_breaker.hpp
/// Closed → open → half-open circuit breaker (DESIGN.md §13).
///
/// Wraps a failure-prone operation (tile generation behind `/v1/tile`):
///
///     if (!breaker.allow()) { /* short-circuit: serve stale or 503 */ }
///     try { work(); breaker.record_success(); }
///     catch (...) { breaker.record_failure(); throw; }
///
/// State machine:
///
///   Closed    — all calls allowed.  `failure_threshold` *consecutive*
///               failures trip the breaker to Open (a success resets the
///               streak).
///   Open      — all calls denied for `open_ms`, giving the failing
///               dependency time to recover.
///   Half-open — after `open_ms`, exactly one caller wins the probe slot
///               per `allow()`; others stay denied until the probe
///               resolves.  `half_open_successes` successful probes close
///               the breaker; one failed probe re-opens it (fresh timer).
///
/// Observability: an optional gauge mirrors the state (0 closed, 1 open,
/// 2 half-open) and an optional counter tallies closed→open trips.
/// Thread-safe; all timing from steady_clock.

#include <chrono>
#include <cstdint>
#include <mutex>

namespace rrs::obs {
class Gauge;
class Counter;
}  // namespace rrs::obs

namespace rrs::fault {

class CircuitBreaker {
public:
    enum class State : std::int64_t {
        kClosed = 0,
        kOpen = 1,
        kHalfOpen = 2,
    };

    struct Options {
        int failure_threshold = 5;  ///< consecutive failures that trip Open
        int open_ms = 1000;         ///< how long Open denies before probing
        int half_open_successes = 1;  ///< probe successes needed to close
        obs::Gauge* state_gauge = nullptr;  ///< mirrors State, if set
        obs::Counter* opened = nullptr;     ///< counts closed/half-open → open
    };

    /// Throws ConfigError when a threshold or duration is non-positive.
    explicit CircuitBreaker(Options options);

    /// May the caller proceed?  In Open, flips to Half-open once `open_ms`
    /// has elapsed and grants the probe slot to this caller.  Every allowed
    /// call MUST be matched by record_success() or record_failure().
    bool allow();

    void record_success();
    void record_failure();

    State state() const;

    /// Milliseconds until an Open breaker will probe (0 otherwise) —
    /// drives Retry-After on short-circuited responses.
    int open_remaining_ms() const;

private:
    using Clock = std::chrono::steady_clock;

    void transition_locked(State next);

    Options options_;
    mutable std::mutex mutex_;
    State state_ = State::kClosed;
    int consecutive_failures_ = 0;
    int probe_successes_ = 0;
    bool probe_in_flight_ = false;
    Clock::time_point opened_at_{};
};

}  // namespace rrs::fault
