#pragma once

/// \file backoff.hpp
/// Capped exponential backoff with decorrelated jitter — the retry-delay
/// schedule used by net::HttpClient's RetryPolicy (DESIGN.md §13).
///
/// Decorrelated jitter (the AWS architecture-blog variant): each delay is
/// drawn uniformly from [base, min(cap, prev * 3)].  The upper bound grows
/// roughly exponentially while the jitter keeps a fleet of retrying
/// clients from synchronizing into retry storms.
///
/// Draws come from the repo's deterministic avalanche hash, seeded by the
/// caller — the schedule is a pure function of (seed, draw index), so
/// retry behaviour replays exactly in tests and chaos runs.  No
/// std::random_device, no global state (the rrslint determinism rule).

#include <cstdint>

#include "core/error.hpp"
#include "rng/hash.hpp"

namespace rrs::fault {

/// Delay bounds for one backoff sequence (milliseconds).
struct BackoffPolicy {
    int base_ms = 10;
    int cap_ms = 2000;
};

/// One deterministic decorrelated-jitter delay sequence; see file comment.
class Backoff {
public:
    Backoff(BackoffPolicy policy, std::uint64_t seed)
        : policy_(policy), seed_(seed), prev_ms_(policy.base_ms) {
        if (policy_.base_ms <= 0) {
            throw ConfigError{"base_ms must be positive", {"fault", "Backoff"}};
        }
        if (policy_.cap_ms < policy_.base_ms) {
            throw ConfigError{"cap_ms must be >= base_ms", {"fault", "Backoff"}};
        }
    }

    /// The next delay in the sequence (advances the draw index).
    /// Always in [base_ms, cap_ms].
    int next_ms() noexcept {
        const std::int64_t grown = static_cast<std::int64_t>(prev_ms_) * 3;
        const int hi = grown > policy_.cap_ms ? policy_.cap_ms
                                              : static_cast<int>(grown);
        const std::uint64_t h =
            hash_coords(seed_, static_cast<std::int64_t>(++draws_), 0,
                        /*salt=*/0xBAC0FFu);
        const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        const int delay =
            policy_.base_ms +
            static_cast<int>(u * static_cast<double>(hi - policy_.base_ms));
        prev_ms_ = delay;
        return delay;
    }

private:
    BackoffPolicy policy_;
    std::uint64_t seed_;
    std::uint64_t draws_ = 0;
    int prev_ms_;
};

}  // namespace rrs::fault
