#include "fault/inject.hpp"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "rng/hash.hpp"

namespace rrs::fault {

namespace detail {

/// One armed rule: the parsed clause plus its runtime call counter and the
/// injection counter it reports into.
struct ArmedRule {
    FaultRule rule;
    std::atomic<std::uint64_t> calls{0};
    obs::Counter* injected = nullptr;  ///< fault.injected.<site>, global registry
};

/// The armed schedule.  Immutable after construction except for the atomic
/// per-rule counters, so concurrent `inject` calls need no lock.
struct ArmedPlan {
    std::vector<std::unique_ptr<ArmedRule>> rules;
    std::uint64_t seed = 1;
};

std::atomic<const ArmedPlan*> g_plan{nullptr};

namespace {

/// Plans are never freed while the process lives: a thread inside
/// `inject_armed` may still hold the pointer after a disarm.  Swapped-out
/// plans park here (bounded by the number of arm() calls — test-scale).
std::mutex& retired_mutex() {
    static std::mutex m;
    return m;
}
std::vector<std::unique_ptr<const ArmedPlan>>& retired_plans() {
    static auto* plans = new std::vector<std::unique_ptr<const ArmedPlan>>();
    return *plans;  // leaked, like obs::MetricsRegistry::global()
}

/// Uniform double in [0, 1) from the rule's deterministic draw stream.
double uniform_draw(std::uint64_t seed, std::size_t rule_index, std::uint64_t call) noexcept {
    const std::uint64_t h =
        hash_coords(seed, static_cast<std::int64_t>(rule_index),
                    static_cast<std::int64_t>(call), /*salt=*/0xFA017u);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool rule_fires(const ArmedPlan& plan, std::size_t index, const ArmedRule& armed,
                std::uint64_t call) noexcept {
    switch (armed.rule.trigger) {
        case FaultTrigger::kAlways:
            return true;
        case FaultTrigger::kProbability:
            return uniform_draw(plan.seed, index, call) < armed.rule.probability;
        case FaultTrigger::kEveryNth:
            return call % armed.rule.n == 0;
        case FaultTrigger::kAfterN:
            return call > armed.rule.n;
    }
    return false;
}

}  // namespace

bool inject_armed(const ArmedPlan& plan, const char* site) noexcept {
    bool error = false;
    int latency_ms = 0;
    for (std::size_t i = 0; i < plan.rules.size(); ++i) {
        ArmedRule& armed = *plan.rules[i];
        if (armed.rule.site != site) {
            continue;
        }
        // 1-based call number: every:N first fires on call N, after:N on N+1.
        const std::uint64_t call =
            armed.calls.fetch_add(1, std::memory_order_relaxed) + 1;
        if (!rule_fires(plan, i, armed, call)) {
            continue;
        }
        armed.injected->add();
        if (armed.rule.action == FaultAction::kLatency) {
            latency_ms += armed.rule.latency_ms;
        } else {
            error = true;
        }
    }
    if (latency_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(latency_ms));
    }
    return error;
}

}  // namespace detail

namespace {

[[noreturn]] void parse_fail(std::string_view item, const std::string& why) {
    throw ConfigError{"bad fault clause '" + std::string(item) + "': " + why,
                      {"fault", "FaultPlan"}};
}

std::uint64_t parse_u64(std::string_view item, std::string_view text,
                        const char* what) {
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size() || text.empty()) {
        parse_fail(item, std::string(what) + " is not a non-negative integer: '" +
                             std::string(text) + "'");
    }
    return value;
}

double parse_probability(std::string_view item, std::string_view text) {
    double value = -1.0;
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
        parse_fail(item, "probability is not a number: '" + std::string(text) + "'");
    }
    if (!(value >= 0.0 && value <= 1.0)) {
        parse_fail(item, "probability must be in [0, 1]");
    }
    return value;
}

void parse_action(std::string_view item, std::string_view text, FaultRule& rule) {
    if (text == "error") {
        rule.action = FaultAction::kError;
        return;
    }
    if (text.rfind("latency:", 0) == 0) {
        rule.action = FaultAction::kLatency;
        const std::uint64_t ms = parse_u64(item, text.substr(8), "latency");
        if (ms == 0 || ms > 60'000) {
            parse_fail(item, "latency must be in [1, 60000] ms");
        }
        rule.latency_ms = static_cast<int>(ms);
        return;
    }
    parse_fail(item, "unknown action '" + std::string(text) +
                         "' (want error | latency:MS)");
}

void parse_trigger(std::string_view item, std::string_view text, FaultRule& rule) {
    if (text.rfind("p:", 0) == 0) {
        rule.trigger = FaultTrigger::kProbability;
        rule.probability = parse_probability(item, text.substr(2));
        return;
    }
    if (text.rfind("every:", 0) == 0) {
        rule.trigger = FaultTrigger::kEveryNth;
        rule.n = parse_u64(item, text.substr(6), "every");
        if (rule.n == 0) {
            parse_fail(item, "every:N requires N >= 1");
        }
        return;
    }
    if (text.rfind("after:", 0) == 0) {
        rule.trigger = FaultTrigger::kAfterN;
        rule.n = parse_u64(item, text.substr(6), "after");
        return;
    }
    parse_fail(item, "unknown trigger '" + std::string(text) +
                         "' (want p:F | every:N | after:N)");
}

FaultRule parse_rule(std::string_view item) {
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= item.size()) {
        parse_fail(item, "want site=action[@trigger]");
    }
    FaultRule rule;
    rule.site = std::string(item.substr(0, eq));
    if (rule.site.find('@') != std::string::npos) {
        parse_fail(item, "site names cannot contain '@'");
    }
    std::string_view rest = item.substr(eq + 1);
    const std::size_t at = rest.find('@');
    parse_action(item, at == std::string_view::npos ? rest : rest.substr(0, at), rule);
    if (at != std::string_view::npos) {
        parse_trigger(item, rest.substr(at + 1), rule);
    }
    return rule;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
    FaultPlan plan;
    std::size_t pos = 0;
    const auto is_sep = [](char c) {
        return c == ' ' || c == '\t' || c == '\n' || c == ';' || c == ',';
    };
    while (pos < spec.size()) {
        while (pos < spec.size() && is_sep(spec[pos])) {
            ++pos;
        }
        std::size_t end = pos;
        while (end < spec.size() && !is_sep(spec[end])) {
            ++end;
        }
        if (end == pos) {
            break;
        }
        const std::string_view item = spec.substr(pos, end - pos);
        pos = end;
        if (item.rfind("seed:", 0) == 0) {
            plan.seed = parse_u64(item, item.substr(5), "seed");
            continue;
        }
        plan.rules.push_back(parse_rule(item));
    }
    return plan;
}

void arm(const FaultPlan& plan) {
    if (plan.empty()) {
        disarm();
        return;
    }
    auto armed = std::make_unique<detail::ArmedPlan>();
    armed->seed = plan.seed;
    armed->rules.reserve(plan.rules.size());
    for (const FaultRule& rule : plan.rules) {
        auto state = std::make_unique<detail::ArmedRule>();
        state->rule = rule;
        state->injected =
            &obs::MetricsRegistry::global().counter("fault.injected." + rule.site);
        armed->rules.push_back(std::move(state));
    }
    const detail::ArmedPlan* next = armed.release();
    const detail::ArmedPlan* prev =
        detail::g_plan.exchange(next, std::memory_order_acq_rel);
    const std::lock_guard lock(detail::retired_mutex());
    if (prev != nullptr) {
        detail::retired_plans().emplace_back(prev);
    }
}

void disarm() noexcept {
    const detail::ArmedPlan* prev =
        detail::g_plan.exchange(nullptr, std::memory_order_acq_rel);
    if (prev != nullptr) {
        const std::lock_guard lock(detail::retired_mutex());
        detail::retired_plans().emplace_back(prev);
    }
}

bool arm_from_env() {
    const char* spec = std::getenv("RRS_FAULTS");
    if (spec == nullptr || *spec == '\0') {
        return false;
    }
    const FaultPlan plan = FaultPlan::parse(spec);
    if (plan.empty()) {
        return false;
    }
    arm(plan);
    return true;
}

}  // namespace rrs::fault
