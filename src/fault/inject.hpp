#pragma once

/// \file inject.hpp
/// Deterministic, seeded fault injection (DESIGN.md §13).
///
/// Library code marks *injection points* — named sites on failure-prone
/// paths (socket reads, tile generation, cache fills) — with one call:
///
///     if (fault::inject("net.recv")) {
///         return RecvResult{0, /*closed=*/true, false};  // injected failure
///     }
///
/// The contract mirrors RRS_TRACE_SPAN's zero-cost rule: with no plan
/// armed, `inject` costs one acquire load and one branch — no clock read,
/// no lock, no allocation — so injection points may sit on hot paths
/// unconditionally (bench/resilience guards the dormant overhead).
///
/// A FaultPlan is parsed from a spec string (the RRS_FAULTS environment
/// variable, a tool flag, or a test literal) and armed process-wide:
///
///     spec    := item ( separator item )*          separator: space ';' ','
///     item    := 'seed:N'  |  site '=' action [ '@' trigger ]
///     action  := 'error'  |  'latency:MS'
///     trigger := 'p:F'  |  'every:N'  |  'after:N'     (default: always)
///
///     RRS_FAULTS="net.recv=error@p:0.2 tile.generate=latency:50@every:3 seed:7"
///
/// Triggers are *deterministic*: every rule keeps a call counter, and the
/// probability trigger draws from mix64(seed, rule, call#) — the same seed
/// and call sequence always injects the same faults, so chaos tests replay
/// bit-for-bit.  `every:N` fires on calls N, 2N, 3N, ...; `after:N` fires
/// on every call past the first N; `p:F` fires each call with probability
/// F.  Several rules may name one site (their effects combine: latencies
/// add, any error wins).
///
/// Injections are counted into the global MetricsRegistry as
/// `fault.injected.<site>` so chaos tests and /metrics can see exactly
/// what fired.  Arm/disarm swaps an atomic plan pointer; retired plans are
/// intentionally retained until process exit (the leaked-global pattern of
/// obs::MetricsRegistry) so a concurrent `inject` can never observe a
/// freed plan.
///
/// Sites wired in this repo: net.connect, net.accept, net.recv, net.send
/// (socket layer), tile.generate, tile.cache_fill (service layer),
/// store.read, store.write (persistent L2 tile store).

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rrs::fault {

enum class FaultAction {
    kError,    ///< the site reports its natural failure mode
    kLatency,  ///< the site stalls for `latency_ms` before proceeding
};

enum class FaultTrigger {
    kAlways,       ///< every call
    kProbability,  ///< each call independently with probability `probability`
    kEveryNth,     ///< calls n, 2n, 3n, ...
    kAfterN,       ///< every call after the first `n`
};

/// One parsed `site=action@trigger` clause.
struct FaultRule {
    std::string site;
    FaultAction action = FaultAction::kError;
    int latency_ms = 0;  ///< for kLatency
    FaultTrigger trigger = FaultTrigger::kAlways;
    double probability = 1.0;  ///< for kProbability
    std::uint64_t n = 0;       ///< for kEveryNth / kAfterN
};

/// A full parsed fault schedule (see the grammar in the file comment).
struct FaultPlan {
    std::vector<FaultRule> rules;
    std::uint64_t seed = 1;  ///< drives the probability trigger draws

    bool empty() const noexcept { return rules.empty(); }

    /// Parse a spec string; throws ConfigError (context {"fault"}) on any
    /// grammar violation.  An all-whitespace spec parses to an empty plan.
    static FaultPlan parse(std::string_view spec);
};

/// Free-function spelling of FaultPlan::parse — the pure untrusted-input
/// entry point the fuzz_fault_plan harness drives (DESIGN.md §16).
inline FaultPlan parse_plan(std::string_view spec) { return FaultPlan::parse(spec); }

namespace detail {
struct ArmedPlan;  // defined in inject.cpp
extern std::atomic<const ArmedPlan*> g_plan;

/// Slow path: match `site` against the armed rules, apply latency, count
/// the injection, and report whether an error fires.
bool inject_armed(const ArmedPlan& plan, const char* site) noexcept;
}  // namespace detail

/// Is any fault plan armed?  (The only cost a dormant site pays.)
inline bool armed() noexcept {
    return detail::g_plan.load(std::memory_order_acquire) != nullptr;
}

/// Arm `plan` process-wide (an empty plan disarms).  Call counters start
/// from zero; re-arming the same plan replays the same schedule.
void arm(const FaultPlan& plan);

/// Remove the armed plan; every site goes back to zero-cost passthrough.
void disarm() noexcept;

/// Arm from the RRS_FAULTS environment variable.  Returns true when a
/// non-empty plan was armed; false (and no state change) when the variable
/// is unset or blank.  Throws ConfigError on a malformed spec.
bool arm_from_env();

/// Fault injection point.  Applies any injected latency in-line (the
/// calling thread sleeps), then returns true when the site should fail.
/// Dormant cost: one acquire load + branch.
inline bool inject(const char* site) noexcept {
    const detail::ArmedPlan* plan = detail::g_plan.load(std::memory_order_acquire);
    return plan != nullptr && detail::inject_armed(*plan, site);
}

}  // namespace rrs::fault
