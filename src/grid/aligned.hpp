#pragma once

/// \file aligned.hpp
/// Cache-line aligned allocator used by the dense array containers.
///
/// FFT butterflies and convolution inner loops stream contiguously through
/// large buffers; 64-byte alignment keeps rows from straddling cache lines
/// and lets the compiler emit aligned vector loads.

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>

namespace rrs {

/// Minimal C++20 allocator returning storage aligned to `Alignment` bytes.
template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
public:
    static_assert(Alignment >= alignof(T), "alignment must satisfy the type");
    static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");

    using value_type = T;
    using size_type = std::size_t;
    using difference_type = std::ptrdiff_t;

    template <typename U>
    struct rebind {
        using other = AlignedAllocator<U, Alignment>;
    };

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

    [[nodiscard]] T* allocate(size_type n) {
        if (n > std::numeric_limits<size_type>::max() / sizeof(T)) {
            throw std::bad_alloc{};  // rrslint-allow(error-taxonomy): allocator contract requires std::bad_alloc
        }
        // operator new with align_val_t is the portable aligned path.
        void* p = ::operator new(n * sizeof(T), std::align_val_t{Alignment});
        return static_cast<T*>(p);
    }

    void deallocate(T* p, size_type) noexcept {
        ::operator delete(p, std::align_val_t{Alignment});
    }

    friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept {
        return true;
    }
};

}  // namespace rrs
