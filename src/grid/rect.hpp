#pragma once

/// \file rect.hpp
/// Integer rectangles on the output lattice.  Used by the streaming
/// convolution generator ("arbitrarily long or wide RRSs by successive
/// computations", paper §2.4) and by the plate-oriented region maps (§3.1).

#include <algorithm>
#include <cstdint>

namespace rrs {

/// Half-open axis-aligned rectangle of lattice points:
/// x in [x0, x0+nx), y in [y0, y0+ny).  Origin may be negative — streamed
/// surfaces extend in any direction from a global origin.
struct Rect {
    std::int64_t x0 = 0;
    std::int64_t y0 = 0;
    std::int64_t nx = 0;
    std::int64_t ny = 0;

    std::int64_t x1() const noexcept { return x0 + nx; }
    std::int64_t y1() const noexcept { return y0 + ny; }
    std::int64_t area() const noexcept { return nx * ny; }
    bool empty() const noexcept { return nx <= 0 || ny <= 0; }

    bool contains(std::int64_t x, std::int64_t y) const noexcept {
        return x >= x0 && x < x1() && y >= y0 && y < y1();
    }

    friend bool operator==(const Rect&, const Rect&) = default;
};

/// Intersection of two rectangles (possibly empty).
inline Rect intersect(const Rect& a, const Rect& b) noexcept {
    const std::int64_t x0 = std::max(a.x0, b.x0);
    const std::int64_t y0 = std::max(a.y0, b.y0);
    const std::int64_t x1 = std::min(a.x1(), b.x1());
    const std::int64_t y1 = std::min(a.y1(), b.y1());
    return Rect{x0, y0, std::max<std::int64_t>(0, x1 - x0), std::max<std::int64_t>(0, y1 - y0)};
}

/// Grow a rectangle by `rx`/`ry` points on every side (the noise halo a
/// convolution tile needs beyond its output extent).
inline Rect dilate(const Rect& r, std::int64_t rx, std::int64_t ry) noexcept {
    return Rect{r.x0 - rx, r.y0 - ry, r.nx + 2 * rx, r.ny + 2 * ry};
}

}  // namespace rrs
