/// \file grid.cpp
/// Explicit instantiations of the container templates used across librrs;
/// keeps one definition in the library and speeds up downstream builds.

#include "grid/array2d.hpp"
#include "grid/permute.hpp"

#include <complex>

namespace rrs {

template class Array2D<double>;
template class Array2D<float>;
template class Array2D<std::complex<double>>;

template Array2D<double> fftshift(const Array2D<double>&);
template Array2D<std::complex<double>> fftshift(const Array2D<std::complex<double>>&);

}  // namespace rrs
