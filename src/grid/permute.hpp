#pragma once

/// \file permute.hpp
/// DFT index bookkeeping: signed-frequency mapping (paper eq. 16) and the
/// kernel-centering permutation (paper eq. 35, i.e. fftshift).

#include <cstddef>

#include "grid/array2d.hpp"

namespace rrs {

/// Paper eq. (16): map DFT bin `m` in [0, 2M) to the signed frequency index
/// `m̄` in [-M, M): bins below M are non-negative frequencies, bins at or
/// above M alias to negative frequencies.
///
/// The paper writes the symmetric fold `m̄ = 2M - m` for m >= M because its
/// spectra are even in K; for even spectra `W(K_{2M-m}) = W(K_{m-2M})`, so we
/// use the conventional signed alias (m - 2M) which is also correct for
/// general spectra.
inline std::ptrdiff_t signed_freq(std::size_t m, std::size_t M) noexcept {
    const auto sm = static_cast<std::ptrdiff_t>(m);
    const auto sM = static_cast<std::ptrdiff_t>(M);
    return sm < sM ? sm : sm - 2 * sM;
}

/// Paper eq. (35): the permutation that moves the zero-lag tap of the
/// convolution kernel to the array centre, `k̄ = k + M (k < M)`,
/// `k̄ = k - M (k >= M)`.  For an array of length 2M this is its own inverse
/// and coincides with the usual fftshift.
inline std::size_t fftshift_index(std::size_t k, std::size_t M) noexcept {
    return k < M ? k + M : k - M;
}

/// Out-of-place 2-D fftshift; both dimensions must be even (the paper's
/// grids are 2Mx by 2My).
template <typename T>
Array2D<T> fftshift(const Array2D<T>& in) {
    const std::size_t Mx = in.nx() / 2;
    const std::size_t My = in.ny() / 2;
    Array2D<T> out(in.nx(), in.ny());
    for (std::size_t iy = 0; iy < in.ny(); ++iy) {
        const std::size_t oy = fftshift_index(iy, My);
        for (std::size_t ix = 0; ix < in.nx(); ++ix) {
            out(fftshift_index(ix, Mx), oy) = in(ix, iy);
        }
    }
    return out;
}

}  // namespace rrs
