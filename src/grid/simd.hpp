#pragma once

/// \file simd.hpp
/// Compile-time-dispatched SIMD primitives for the generation hot loops.
///
/// Three backends, selected by the compiler's target flags at build time
/// (no runtime dispatch — the whole binary is one backend, so results are
/// reproducible for a given build):
///
///   * AVX2 + FMA (x86-64, `-march=native` / `-mavx2 -mfma`),
///   * NEON (aarch64, where float64x2 is baseline),
///   * scalar fallback (always correct, always available).
///
/// Determinism contract: for a fixed (pointer contents, length) each
/// primitive performs a fixed sequence of floating-point operations — the
/// lane decomposition depends only on the length — so results are bitwise
/// reproducible across calls, threads, and processes *of the same build*.
/// Different backends may differ from each other at rounding level
/// (FMA contracts the multiply-add); the differential-equivalence suite
/// (tests/test_kernel_equivalence.cpp) bounds that difference against the
/// scalar reference.
///
/// All loads are unaligned (`loadu`): callers slide windows over rows at
/// arbitrary offsets (the separable-convolution inner loop), so alignment
/// cannot be assumed even though Array2D storage is 64-byte aligned.

#include <complex>
#include <cstddef>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define RRS_SIMD_AVX2 1
#elif defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#define RRS_SIMD_NEON 1
#endif

namespace rrs::simd {

/// Name of the backend this translation unit was compiled against.
constexpr const char* backend() noexcept {
#if defined(RRS_SIMD_AVX2)
    return "avx2";
#elif defined(RRS_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

/// Σ a[i]·b[i] for i in [0, n).  The separable engine's horizontal pass.
inline double dot(const double* a, const double* b, std::size_t n) noexcept {
#if defined(RRS_SIMD_AVX2)
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4),
                               acc1);
    }
    if (i + 4 <= n) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
        i += 4;
    }
    const __m256d acc = _mm256_add_pd(acc0, acc1);
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d pair = _mm_add_pd(lo, hi);
    double total = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
    for (; i < n; ++i) {
        total += a[i] * b[i];
    }
    return total;
#elif defined(RRS_SIMD_NEON)
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
        acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    }
    if (i + 2 <= n) {
        acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
        i += 2;
    }
    double total = vaddvq_f64(vaddq_f64(acc0, acc1));
    for (; i < n; ++i) {
        total += a[i] * b[i];
    }
    return total;
#else
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += a[i] * b[i];
    }
    return total;
#endif
}

/// y[i] += s·x[i] for i in [0, n).  The separable engine's vertical pass
/// accumulates kernel rows into the output row with this.
inline void axpy(double* y, const double* x, double s, std::size_t n) noexcept {
#if defined(RRS_SIMD_AVX2)
    const __m256d vs = _mm256_set1_pd(s);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(y + i,
                         _mm256_fmadd_pd(vs, _mm256_loadu_pd(x + i),
                                         _mm256_loadu_pd(y + i)));
    }
    for (; i < n; ++i) {
        y[i] += s * x[i];
    }
#elif defined(RRS_SIMD_NEON)
    const float64x2_t vs = vdupq_n_f64(s);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        vst1q_f64(y + i, vfmaq_f64(vld1q_f64(y + i), vs, vld1q_f64(x + i)));
    }
    for (; i < n; ++i) {
        y[i] += s * x[i];
    }
#else
    for (std::size_t i = 0; i < n; ++i) {
        y[i] += s * x[i];
    }
#endif
}

/// a[i] *= b[i] over complex arrays — the FFT engine's spectral pointwise
/// multiply.  std::complex<double> is layout-guaranteed {re, im}, so the
/// arrays are reinterpreted as interleaved doubles.
inline void cmul(std::complex<double>* a, const std::complex<double>* b,
                 std::size_t n) noexcept {
#if defined(RRS_SIMD_AVX2)
    auto* ap = reinterpret_cast<double*>(a);
    const auto* bp = reinterpret_cast<const double*>(b);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {  // two complex values per 256-bit vector
        const __m256d va = _mm256_loadu_pd(ap + 2 * i);
        const __m256d vb = _mm256_loadu_pd(bp + 2 * i);
        const __m256d b_re = _mm256_movedup_pd(vb);        // [s0 s0 s1 s1]
        const __m256d b_im = _mm256_permute_pd(vb, 0xF);   // [t0 t0 t1 t1]
        const __m256d a_sw = _mm256_permute_pd(va, 0x5);   // [i0 r0 i1 r1]
        // even lanes: r·s − i·t, odd lanes: i·s + r·t.
        _mm256_storeu_pd(ap + 2 * i,
                         _mm256_fmaddsub_pd(va, b_re, _mm256_mul_pd(a_sw, b_im)));
    }
    for (; i < n; ++i) {
        a[i] *= b[i];
    }
#elif defined(RRS_SIMD_NEON)
    auto* ap = reinterpret_cast<double*>(a);
    const auto* bp = reinterpret_cast<const double*>(b);
    const float64x2_t sign = {-1.0, 1.0};
    for (std::size_t i = 0; i < n; ++i) {
        const float64x2_t va = vld1q_f64(ap + 2 * i);      // [r i]
        const float64x2_t vb = vld1q_f64(bp + 2 * i);      // [s t]
        const float64x2_t b_re = vdupq_laneq_f64(vb, 0);
        const float64x2_t b_im = vdupq_laneq_f64(vb, 1);
        const float64x2_t a_sw = vextq_f64(va, va, 1);     // [i r]
        // lane 0: r·s − i·t, lane 1: i·s + r·t.
        vst1q_f64(ap + 2 * i,
                  vfmaq_f64(vmulq_f64(vmulq_f64(a_sw, b_im), sign), va, b_re));
    }
#else
    for (std::size_t i = 0; i < n; ++i) {
        a[i] *= b[i];
    }
#endif
}

}  // namespace rrs::simd
