#pragma once

/// \file array2d.hpp
/// Dense row-major 2-D array, the workhorse container of librrs.
///
/// Orientation convention (used everywhere in the library): a surface sample
/// is `f(ix, iy)` with `ix` the fast (contiguous) index along the x-axis and
/// `iy` the slow index along the y-axis, i.e. storage offset
/// `iy * nx + ix`.  This matches the paper's `f_{nx,ny}` (eq. 36).

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "grid/aligned.hpp"

#include "core/error.hpp"

namespace rrs {

/// Dense, cache-aligned, row-major 2-D array.
template <typename T>
class Array2D {
public:
    using value_type = T;
    using storage_type = std::vector<T, AlignedAllocator<T, 64>>;

    Array2D() noexcept = default;

    /// Construct an `nx` by `ny` array filled with `init`.
    Array2D(std::size_t nx, std::size_t ny, const T& init = T{})
        : nx_(nx), ny_(ny), data_(nx * ny, init) {}

    std::size_t nx() const noexcept { return nx_; }
    std::size_t ny() const noexcept { return ny_; }
    std::size_t size() const noexcept { return data_.size(); }
    bool empty() const noexcept { return data_.empty(); }

    /// Unchecked element access; offset = iy*nx + ix.
    T& operator()(std::size_t ix, std::size_t iy) noexcept { return data_[iy * nx_ + ix]; }
    const T& operator()(std::size_t ix, std::size_t iy) const noexcept {
        return data_[iy * nx_ + ix];
    }

    /// Bounds-checked element access.
    T& at(std::size_t ix, std::size_t iy) {
        check(ix, iy);
        return data_[iy * nx_ + ix];
    }
    const T& at(std::size_t ix, std::size_t iy) const {
        check(ix, iy);
        return data_[iy * nx_ + ix];
    }

    T* data() noexcept { return data_.data(); }
    const T* data() const noexcept { return data_.data(); }

    auto begin() noexcept { return data_.begin(); }
    auto end() noexcept { return data_.end(); }
    auto begin() const noexcept { return data_.begin(); }
    auto end() const noexcept { return data_.end(); }

    /// Contiguous view of row `iy` (all x at fixed y).
    std::span<T> row(std::size_t iy) noexcept { return {data_.data() + iy * nx_, nx_}; }
    std::span<const T> row(std::size_t iy) const noexcept {
        return {data_.data() + iy * nx_, nx_};
    }

    void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

    /// Discard contents and adopt new dimensions.
    void resize(std::size_t nx, std::size_t ny, const T& init = T{}) {
        nx_ = nx;
        ny_ = ny;
        data_.assign(nx * ny, init);
    }

    void swap(Array2D& other) noexcept {
        std::swap(nx_, other.nx_);
        std::swap(ny_, other.ny_);
        data_.swap(other.data_);
    }

    friend bool operator==(const Array2D& a, const Array2D& b) {
        return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.data_ == b.data_;
    }

private:
    void check(std::size_t ix, std::size_t iy) const {
        if (ix >= nx_ || iy >= ny_) {
            throw BoundsError{"Array2D::at: index out of range"};
        }
    }

    std::size_t nx_ = 0;
    std::size_t ny_ = 0;
    storage_type data_;
};

/// Extract column `ix` into a contiguous vector (columns are strided in
/// storage; used by the 2-D FFT's column passes).
template <typename T>
std::vector<T> column_copy(const Array2D<T>& a, std::size_t ix) {
    std::vector<T> col(a.ny());
    for (std::size_t iy = 0; iy < a.ny(); ++iy) {
        col[iy] = a(ix, iy);
    }
    return col;
}

/// Elementwise maximum absolute difference between two equal-shape arrays.
template <typename T>
double max_abs_diff(const Array2D<T>& a, const Array2D<T>& b) {
    if (a.nx() != b.nx() || a.ny() != b.ny()) {
        throw ConfigError{"max_abs_diff: shape mismatch"};
    }
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        using std::abs;
        const double d = static_cast<double>(abs(a.data()[i] - b.data()[i]));
        m = std::max(m, d);
    }
    return m;
}

}  // namespace rrs
