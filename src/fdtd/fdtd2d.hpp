#pragma once

/// \file fdtd2d.hpp
/// Two-dimensional FDTD (TMz) field solver over rough ground.
///
/// The paper's companion studies (its refs. [8]–[10]: "FVTD analysis of
/// electromagnetic wave propagation along random rough surface") validate
/// generated surfaces by full-wave time-domain simulation; this module is
/// that substrate.  Yee grid, TMz polarisation (Ez out of plane, Hx, Hy in
/// plane), normalised units (c = 1, Z₀ = 1, Δx = Δy = 1), perfect electric
/// conductor (PEC) terrain mask, first-order Mur absorbing boundaries, a
/// soft Gaussian-pulse or CW source, and point probes.
///
/// Update equations (Courant number S = c·Δt/Δx):
///   Hx(i,j) −= S·(Ez(i,j+1) − Ez(i,j))
///   Hy(i,j) += S·(Ez(i+1,j) − Ez(i,j))
///   Ez(i,j) += S·(Hy(i,j) − Hy(i−1,j) − Hx(i,j) + Hx(i,j−1)),  Ez|PEC = 0.

#include <cstddef>
#include <vector>

#include "grid/array2d.hpp"
#include "propagation/profile_path.hpp"

namespace rrs {

/// Solver configuration.
struct FdtdConfig {
    std::size_t nx = 0;
    std::size_t ny = 0;
    double courant = 0.5;  ///< S = c·Δt/Δx, stability requires S ≤ 1/√2
};

/// A recorded Ez time series at one grid point.
struct FdtdProbe {
    std::size_t ix = 0;
    std::size_t iy = 0;
    std::vector<double> samples;

    /// Largest |Ez| seen over the whole run.
    double peak_abs() const;
};

/// TMz FDTD engine.
class Fdtd2D {
public:
    explicit Fdtd2D(const FdtdConfig& config);

    std::size_t nx() const noexcept { return nx_; }
    std::size_t ny() const noexcept { return ny_; }
    double courant() const noexcept { return S_; }

    /// Mark cells as perfect electric conductor (Ez forced to 0).
    void set_pec(std::size_t ix, std::size_t iy, bool pec = true);
    bool is_pec(std::size_t ix, std::size_t iy) const;

    /// Fill every cell with iy <= ground_height(ix) as PEC — terrain from a
    /// 1-D profile (heights in cells, clamped to the grid).
    void set_ground(const std::vector<double>& ground_height);

    /// Register a probe; returns its index.
    std::size_t add_probe(std::size_t ix, std::size_t iy);
    const FdtdProbe& probe(std::size_t idx) const { return probes_.at(idx); }

    /// Advance `steps` half-step pairs, injecting the soft source
    /// `source(step)` into Ez at (src_ix, src_iy) and recording probes at
    /// the source point and recording probes after each step.
    template <typename Source>
    void run(std::size_t steps, std::size_t src_ix, std::size_t src_iy, Source&& source) {
        for (std::size_t n = 0; n < steps; ++n) {
            step_h();
            step_e();
            ez_(src_ix, src_iy) += source(n);
            enforce_pec();
            record_probes();
            ++step_count_;
        }
    }

    const Array2D<double>& ez() const noexcept { return ez_; }
    std::size_t step_count() const noexcept { return step_count_; }

    /// Largest |Ez| currently on the grid (stability diagnostics).
    double max_abs_ez() const;

private:
    void step_h();
    void step_e();
    void enforce_pec();
    void record_probes();

    std::size_t nx_;
    std::size_t ny_;
    double S_;
    double mur_;  ///< (S−1)/(S+1)
    Array2D<double> ez_;
    Array2D<double> hx_;  // Hx(i, j+1/2): size nx × (ny−1)
    Array2D<double> hy_;  // Hy(i+1/2, j): size (nx−1) × ny
    Array2D<unsigned char> pec_;
    std::vector<FdtdProbe> probes_;
    std::size_t step_count_ = 0;
};

/// Gaussian pulse source: exp(−((n−delay)/width)²).
struct GaussianPulse {
    double delay = 40.0;
    double width = 12.0;

    double operator()(std::size_t n) const;
};

/// Continuous-wave source with a smooth turn-on ramp.
struct CwSource {
    double period = 20.0;  ///< steps per cycle (wavelength = period·S cells… see docs)
    double ramp = 60.0;

    double operator()(std::size_t n) const;
};

/// Path-gain experiment over a terrain profile: a CW source above the
/// terrain at the left end; at each horizontal offset a vertical stack of
/// `probe_stack` probes (2-cell spacing, starting `probe_height` above the
/// terrain) whose steady-state amplitudes are RMS-combined — averaging out
/// the direct/ground-reflected interference fringes that make single-point
/// amplitudes oscillate with distance.
struct RoughGroundResult {
    std::vector<double> distance;
    std::vector<double> amplitude;  ///< stack-RMS steady-state |Ez|
};

RoughGroundResult rough_ground_cw_sweep(const std::vector<double>& ground,
                                        double source_height, double probe_height,
                                        const std::vector<std::size_t>& probe_offsets,
                                        double wavelength_cells, std::size_t sky_cells,
                                        std::size_t probe_stack = 8);

}  // namespace rrs
