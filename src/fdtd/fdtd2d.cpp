#include "fdtd/fdtd2d.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "parallel/parallel_for.hpp"
#include "special/constants.hpp"

#include "core/error.hpp"

namespace rrs {

double FdtdProbe::peak_abs() const {
    double m = 0.0;
    for (const double v : samples) {
        m = std::max(m, std::abs(v));
    }
    return m;
}

Fdtd2D::Fdtd2D(const FdtdConfig& config)
    : nx_(config.nx), ny_(config.ny), S_(config.courant) {
    if (nx_ < 8 || ny_ < 8) {
        throw ConfigError{"Fdtd2D: grid must be at least 8x8"};
    }
    if (!(S_ > 0.0) || S_ > 1.0 / kSqrt2 + 1e-12) {
        throw ConfigError{"Fdtd2D: Courant number must be in (0, 1/sqrt(2)]"};
    }
    mur_ = (S_ - 1.0) / (S_ + 1.0);
    ez_.resize(nx_, ny_, 0.0);
    hx_.resize(nx_, ny_ - 1, 0.0);
    hy_.resize(nx_ - 1, ny_, 0.0);
    pec_.resize(nx_, ny_, 0);
}

void Fdtd2D::set_pec(std::size_t ix, std::size_t iy, bool pec) {
    pec_.at(ix, iy) = pec ? 1 : 0;
    if (pec) {
        ez_(ix, iy) = 0.0;
    }
}

bool Fdtd2D::is_pec(std::size_t ix, std::size_t iy) const { return pec_.at(ix, iy) != 0; }

void Fdtd2D::set_ground(const std::vector<double>& ground_height) {
    if (ground_height.size() != nx_) {
        throw ConfigError{"Fdtd2D::set_ground: profile length mismatch"};
    }
    for (std::size_t ix = 0; ix < nx_; ++ix) {
        const auto top = static_cast<std::ptrdiff_t>(std::floor(ground_height[ix]));
        if (top < 0) {
            continue;  // terrain entirely below the grid at this column
        }
        const std::size_t fill =
            std::min(static_cast<std::size_t>(top), ny_ - 1);
        for (std::size_t iy = 0; iy <= fill; ++iy) {
            pec_(ix, iy) = 1;
        }
    }
}

std::size_t Fdtd2D::add_probe(std::size_t ix, std::size_t iy) {
    if (ix >= nx_ || iy >= ny_) {
        throw BoundsError{"Fdtd2D::add_probe: outside grid"};
    }
    probes_.push_back(FdtdProbe{ix, iy, {}});
    return probes_.size() - 1;
}

void Fdtd2D::step_h() {
    parallel_for(0, static_cast<std::int64_t>(ny_ - 1), [&](std::int64_t sy) {
        const auto j = static_cast<std::size_t>(sy);
        for (std::size_t i = 0; i < nx_; ++i) {
            hx_(i, j) -= S_ * (ez_(i, j + 1) - ez_(i, j));
        }
    });
    parallel_for(0, static_cast<std::int64_t>(ny_), [&](std::int64_t sy) {
        const auto j = static_cast<std::size_t>(sy);
        for (std::size_t i = 0; i + 1 < nx_; ++i) {
            hy_(i, j) += S_ * (ez_(i + 1, j) - ez_(i, j));
        }
    });
}

void Fdtd2D::step_e() {
    // Save the pre-update (time n) edge and inner-neighbour values the Mur
    // boundary update needs.
    std::vector<double> old_left(ny_), old_right(ny_), old_bottom(nx_), old_top(nx_);
    std::vector<double> old_in_left(ny_), old_in_right(ny_), old_in_bottom(nx_),
        old_in_top(nx_);
    for (std::size_t j = 0; j < ny_; ++j) {
        old_left[j] = ez_(0, j);
        old_right[j] = ez_(nx_ - 1, j);
        old_in_left[j] = ez_(1, j);
        old_in_right[j] = ez_(nx_ - 2, j);
    }
    for (std::size_t i = 0; i < nx_; ++i) {
        old_bottom[i] = ez_(i, 0);
        old_top[i] = ez_(i, ny_ - 1);
        old_in_bottom[i] = ez_(i, 1);
        old_in_top[i] = ez_(i, ny_ - 2);
    }

    // Interior update.
    parallel_for(1, static_cast<std::int64_t>(ny_ - 1), [&](std::int64_t sy) {
        const auto j = static_cast<std::size_t>(sy);
        for (std::size_t i = 1; i + 1 < nx_; ++i) {
            ez_(i, j) += S_ * (hy_(i, j) - hy_(i - 1, j) - hx_(i, j) + hx_(i, j - 1));
        }
    });

    // First-order Mur ABC on the four open edges:
    // Ez^{n+1}(edge) = Ez^n(inner) + mur·(Ez^{n+1}(inner) − Ez^n(edge)).
    for (std::size_t j = 1; j + 1 < ny_; ++j) {
        ez_(0, j) = old_in_left[j] + mur_ * (ez_(1, j) - old_left[j]);
        ez_(nx_ - 1, j) = old_in_right[j] + mur_ * (ez_(nx_ - 2, j) - old_right[j]);
    }
    for (std::size_t i = 1; i + 1 < nx_; ++i) {
        ez_(i, 0) = old_in_bottom[i] + mur_ * (ez_(i, 1) - old_bottom[i]);
        ez_(i, ny_ - 1) = old_in_top[i] + mur_ * (ez_(i, ny_ - 2) - old_top[i]);
    }
    // Corners: simple copy from the diagonal neighbour (adequate at first order).
    ez_(0, 0) = ez_(1, 1);
    ez_(nx_ - 1, 0) = ez_(nx_ - 2, 1);
    ez_(0, ny_ - 1) = ez_(1, ny_ - 2);
    ez_(nx_ - 1, ny_ - 1) = ez_(nx_ - 2, ny_ - 2);
}

void Fdtd2D::enforce_pec() {
    for (std::size_t j = 0; j < ny_; ++j) {
        for (std::size_t i = 0; i < nx_; ++i) {
            if (pec_(i, j) != 0) {
                ez_(i, j) = 0.0;
            }
        }
    }
}

void Fdtd2D::record_probes() {
    for (auto& p : probes_) {
        p.samples.push_back(ez_(p.ix, p.iy));
    }
}

double Fdtd2D::max_abs_ez() const {
    double m = 0.0;
    for (std::size_t i = 0; i < ez_.size(); ++i) {
        m = std::max(m, std::abs(ez_.data()[i]));
    }
    return m;
}

double GaussianPulse::operator()(std::size_t n) const {
    const double t = (static_cast<double>(n) - delay) / width;
    return std::exp(-t * t);
}

double CwSource::operator()(std::size_t n) const {
    const double t = static_cast<double>(n);
    const double envelope = t < ramp ? 0.5 * (1.0 - std::cos(kPi * t / ramp)) : 1.0;
    return envelope * std::sin(kTwoPi * t / period);
}

RoughGroundResult rough_ground_cw_sweep(const std::vector<double>& ground,
                                        double source_height, double probe_height,
                                        const std::vector<std::size_t>& probe_offsets,
                                        double wavelength_cells, std::size_t sky_cells,
                                        std::size_t probe_stack) {
    if (ground.empty() || probe_offsets.empty() || probe_stack == 0) {
        throw ConfigError{"rough_ground_cw_sweep: empty inputs"};
    }
    const double gmax = *std::max_element(ground.begin(), ground.end());
    const double gmin = *std::min_element(ground.begin(), ground.end());

    FdtdConfig cfg;
    cfg.nx = ground.size();
    cfg.ny = static_cast<std::size_t>(gmax - gmin) +
             static_cast<std::size_t>(source_height + probe_height) + sky_cells +
             2 * probe_stack + 8;
    cfg.courant = 0.5;
    Fdtd2D sim(cfg);

    // Shift terrain so its minimum sits 2 cells above the bottom edge.
    std::vector<double> shifted(ground.size());
    for (std::size_t i = 0; i < ground.size(); ++i) {
        shifted[i] = ground[i] - gmin + 2.0;
    }
    sim.set_ground(shifted);

    const std::size_t src_ix = 4;
    const auto src_iy = static_cast<std::size_t>(shifted[src_ix] + source_height);
    std::vector<std::vector<std::size_t>> probe_idx(probe_offsets.size());
    for (std::size_t k = 0; k < probe_offsets.size(); ++k) {
        const std::size_t off = probe_offsets[k];
        if (off >= ground.size()) {
            throw ConfigError{"rough_ground_cw_sweep: probe beyond profile"};
        }
        for (std::size_t s = 0; s < probe_stack; ++s) {
            probe_idx[k].push_back(sim.add_probe(
                off, static_cast<std::size_t>(shifted[off] + probe_height) + 2 * s));
        }
    }

    // CW period in steps is wavelength (cells) / (c·Δt) = wavelength / S.
    // Run long enough for the wave to cross the grid and settle.
    CwSource src{wavelength_cells / cfg.courant, 3.0 * wavelength_cells / cfg.courant};
    const auto steps = static_cast<std::size_t>(
        static_cast<double>(ground.size()) / cfg.courant + 8.0 * src.period);
    sim.run(steps, src_ix, src_iy, src);

    // Steady-state amplitude: per probe, the peak |Ez| over the last two
    // cycles; per offset, the RMS over the vertical stack.
    RoughGroundResult out;
    const auto tail = static_cast<std::size_t>(2.0 * src.period);
    for (std::size_t k = 0; k < probe_idx.size(); ++k) {
        double sum2 = 0.0;
        for (const std::size_t idx : probe_idx[k]) {
            const auto& samples = sim.probe(idx).samples;
            double amp = 0.0;
            for (std::size_t n = samples.size() > tail ? samples.size() - tail : 0;
                 n < samples.size(); ++n) {
                amp = std::max(amp, std::abs(samples[n]));
            }
            sum2 += amp * amp;
        }
        out.distance.push_back(static_cast<double>(probe_offsets[k] - src_ix));
        out.amplitude.push_back(std::sqrt(sum2 / static_cast<double>(probe_idx[k].size())));
    }
    return out;
}

}  // namespace rrs
