#pragma once

/// \file parallel_for.hpp
/// Shared-memory loop parallelism for the generation kernels.
///
/// OpenMP is used when compiled in (RRS_HAVE_OPENMP); otherwise the loops run
/// serially with identical semantics.  All librrs algorithms are written so
/// that iterations are independent — results are bitwise identical at any
/// thread count (noise is a pure function of lattice coordinates, see
/// rng/gaussian_lattice.hpp).

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#ifdef RRS_HAVE_OPENMP
#include <omp.h>
#endif

namespace rrs {

/// True on a ThreadPool worker thread (defined in thread_pool.cpp, set for
/// the lifetime of each worker).  Data-parallel loops run serially there:
/// the pool already owns one core per worker, and nesting an OpenMP team
/// inside every worker oversubscribes the machine N×M-fold — the batch
/// fan-out serialisation the tile-service bench exposed (each cold tile's
/// inner loops fought every other worker's team for the same cores).
bool in_pool_worker() noexcept;

/// Number of worker threads parallel loops will use.  Honours the
/// RRS_THREADS environment variable, then OpenMP's default; always 1
/// inside a ThreadPool worker (see in_pool_worker).
inline int max_threads() noexcept {
    if (in_pool_worker()) {
        return 1;
    }
#ifdef RRS_HAVE_OPENMP
    if (const char* env = std::getenv("RRS_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0) {
            return n;
        }
    }
    return omp_get_max_threads();
#else
    return 1;
#endif
}

/// Run `body(i)` for i in [begin, end), potentially in parallel.
/// `body` must not throw and iterations must be independent.
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, Body&& body) {
#ifdef RRS_HAVE_OPENMP
    if (max_threads() <= 1) {  // serial fast path: skip the OpenMP region
        for (std::int64_t i = begin; i < end; ++i) {
            body(i);
        }
        return;
    }
#pragma omp parallel for schedule(static) num_threads(max_threads())
    for (std::int64_t i = begin; i < end; ++i) {
        body(i);
    }
#else
    for (std::int64_t i = begin; i < end; ++i) {
        body(i);
    }
#endif
}

/// Run `body(chunk_begin, chunk_end)` over a static partition of
/// [begin, end) into roughly equal contiguous chunks, one per thread.
/// Useful when per-iteration work is tiny and the body wants to hoist setup.
template <typename Body>
void parallel_for_chunks(std::int64_t begin, std::int64_t end, Body&& body) {
    const std::int64_t n = end - begin;
    if (n <= 0) {
        return;
    }
    const std::int64_t nthreads = std::min<std::int64_t>(max_threads(), n);
    parallel_for(0, nthreads, [&](std::int64_t t) {
        const std::int64_t lo = begin + t * n / nthreads;
        const std::int64_t hi = begin + (t + 1) * n / nthreads;
        body(lo, hi);
    });
}

/// Parallel sum-reduction of `value(i)` over [begin, end).
template <typename Value>
double parallel_reduce_sum(std::int64_t begin, std::int64_t end, Value&& value) {
    double total = 0.0;
#ifdef RRS_HAVE_OPENMP
#pragma omp parallel for schedule(static) reduction(+ : total) num_threads(max_threads())
    for (std::int64_t i = begin; i < end; ++i) {
        total += value(i);
    }
#else
    for (std::int64_t i = begin; i < end; ++i) {
        total += value(i);
    }
#endif
    return total;
}

}  // namespace rrs
