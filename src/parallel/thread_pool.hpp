#pragma once

/// \file thread_pool.hpp
/// Small task-based thread pool.
///
/// The OpenMP `parallel_for` covers the regular loops; the pool serves
/// irregular task graphs (e.g. streaming tile generation where tiles become
/// ready at different times) and works when OpenMP is compiled out.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/error.hpp"

namespace rrs {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
public:
    /// Spin up `n` workers (defaults to hardware concurrency, min 1).
    explicit ThreadPool(std::size_t n = 0);

    /// Lazily-constructed process-wide pool (hardware-concurrency workers)
    /// for callers that want task parallelism without owning a pool — e.g.
    /// TileService batch fan-out.  Lives until process exit.
    static ThreadPool& shared();

    /// Drains outstanding tasks, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t thread_count() const noexcept { return workers_.size(); }

    /// Enqueue a callable; returns a future for its result.
    template <typename F>
    auto submit(F&& f) -> std::future<std::invoke_result_t<F&>> {
        using R = std::invoke_result_t<F&>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard lock(mutex_);
            if (stopping_) {
                throw StateError{"ThreadPool::submit on stopped pool"};
            }
            queue_.emplace_back([task]() { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Block until every submitted task has finished executing.
    void wait_idle();

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable idle_cv_;
    std::size_t active_ = 0;
    bool stopping_ = false;
};

}  // namespace rrs
