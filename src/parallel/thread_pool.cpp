#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "parallel/parallel_for.hpp"

namespace rrs {

namespace {
/// Set for the lifetime of each pool worker; read by max_threads() so
/// nested data-parallel loops run serially on pool workers (the batch
/// fan-out de-serialisation — see parallel_for.hpp).
thread_local bool tl_in_pool_worker = false;
}  // namespace

bool in_pool_worker() noexcept { return tl_in_pool_worker; }

ThreadPool::ThreadPool(std::size_t n) {
    if (n == 0) {
        n = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool& ThreadPool::shared() {
    static ThreadPool pool;
    return pool;
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
    tl_in_pool_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping_ and drained
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::lock_guard lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0) {
                idle_cv_.notify_all();
            }
        }
    }
}

}  // namespace rrs
