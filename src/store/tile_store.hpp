#pragma once

/// \file tile_store.hpp
/// Persistent on-disk L2 tile store (DESIGN.md §14).
///
/// One append-only segment file holds generated tiles keyed by
/// TileAddress — (generator fingerprint, tile key, zoom) — so a restarted
/// daemon (`rrsd --store DIR`) serves warm: tiles generated before the
/// restart are promoted from disk instead of regenerated, bit-identically
/// (the payload is the raw double lattice, checksummed end to end).
///
/// Record format (all integers host-endian; the file is a local cache, not
/// an interchange format — checksums, not byte order, provide safety):
///
///   file header   32 B   "RRSSTOR1" magic, format version, reserved
///   record        72 B   magic, fingerprint, tx, ty, z, nx, ny,
///                        payload_bytes, payload_hash, header_hash
///               + payload nx·ny doubles, row-major (8-byte aligned)
///
/// Crash safety: appends write one contiguous record and only then publish
/// it to the in-memory index.  The recovery scan on open walks records from
/// the front and stops at the first invalid header (bad magic, bad header
/// checksum, payload past EOF) — everything after it is unreachable garbage
/// from a torn write and is truncated away (counted).  Payload checksums
/// are verified lazily on every read, so silent corruption degrades to a
/// miss (the service regenerates) — never a crash or a wrong-bytes tile.
/// An unreadable file header (foreign file, future format version) resets
/// the store to empty rather than failing the process: every tile is
/// regenerable by construction, so discarding an untrusted cache is always
/// correct (counted in `resets`).
///
/// Byte budget & compaction: live payload bytes are bounded by the shared
/// ByteBudget policy (byte_budget.hpp) with FIFO victim selection (an
/// on-disk tier has no cheap recency signal; insertion order approximates
/// it).  Evicted records become dead bytes in the segment; when dead bytes
/// dominate (`compact_dead_fraction`) the store compacts — live records are
/// rewritten to a temporary segment which atomically renames over the old
/// one — so disk usage stays proportional to the budget.
///
/// Concurrency: one mutex guards every operation.  Reads memcpy the payload
/// out of the mmap while holding it — this is the disk tier under a sharded
/// in-memory LRU, not a hot path, and a single lock makes the mmap lifetime
/// trivially safe against concurrent remaps.
///
/// Fault sites (DESIGN.md §13): `store.read` makes a lookup degrade to a
/// miss; `store.write` simulates a torn append — a record prefix reaches
/// the disk and the call fails with StoreError, exactly what a crash
/// mid-write leaves behind for the recovery scan.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/error.hpp"
#include "grid/array2d.hpp"
#include "service/tile_key.hpp"
#include "store/byte_budget.hpp"

namespace rrs::obs {
class Counter;
class Gauge;
}  // namespace rrs::obs

namespace rrs::store {

/// Persistent-store failure: unopenable/unwritable segment file, failed
/// compaction rename.  IS-A IoError (and therefore rrs::Error); corruption
/// of stored *records* is never an error — it degrades to a miss.
class StoreError : public IoError {
public:
    explicit StoreError(std::string message, ErrorContext context = {"store"})
        : IoError(std::move(message), std::move(context)) {}
};

/// Tuning knobs for TileStore.
struct TileStoreOptions {
    /// Bound on summed live payload bytes (FIFO eviction past it).
    std::size_t byte_budget = std::size_t{1} << 30;  // 1 GiB
    /// Compact when dead bytes exceed this fraction of the segment file.
    double compact_dead_fraction = 0.5;
    /// ... but never bother compacting a segment smaller than this.
    std::size_t compact_min_bytes = std::size_t{8} << 20;
    /// fsync after every append (durability vs throughput; the recovery
    /// scan makes un-synced tails safe either way, so default off).
    bool fsync_appends = false;
};

/// Append-only, checksummed, mmap-backed tile segment file; see file
/// comment.  Thread-safe.
class TileStore {
public:
    using TilePayload = std::shared_ptr<const Array2D<double>>;

    /// Counter snapshot (monotonic except the live/dead/file gauges).
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t appends = 0;
        std::uint64_t evictions = 0;
        std::uint64_t compactions = 0;
        std::uint64_t corrupt_records = 0;        ///< checksum/shape failures on read
        std::uint64_t read_faults = 0;            ///< injected store.read failures
        std::uint64_t tail_truncated_bytes = 0;   ///< torn-write bytes discarded on open
        std::uint64_t resets = 0;                 ///< unreadable headers discarded on open
        std::uint64_t live_bytes = 0;             ///< indexed payload bytes
        std::uint64_t dead_bytes = 0;             ///< evicted/superseded payload bytes
        std::uint64_t file_bytes = 0;             ///< current segment size
        std::uint64_t tiles = 0;                  ///< indexed record count
    };

    /// Open (or create) the segment file at `path` and recover its index.
    /// Throws StoreError when the file cannot be opened or created; a
    /// corrupt or foreign file is recovered from, not thrown on.
    explicit TileStore(std::string path, TileStoreOptions opt = {});
    ~TileStore();

    TileStore(const TileStore&) = delete;
    TileStore& operator=(const TileStore&) = delete;

    /// Look up a tile.  Returns nullptr on miss, on an injected store.read
    /// fault, and on a corrupt record (which is dropped from the index and
    /// counted) — corruption degrades to cold generation, never throws.
    TilePayload find(const TileAddress& address);

    /// Append a tile record and publish it to the index, evicting FIFO
    /// victims past the byte budget and compacting when dead bytes
    /// dominate.  Throws StoreError on write failure (the store stays
    /// consistent: a partial record past the published end is overwritten
    /// by the next append and discarded by any recovery scan).
    void insert(const TileAddress& address, const Array2D<double>& tile);

    /// Is this address currently indexed?  (No counter side effects.)
    bool contains(const TileAddress& address) const;

    /// Force a compaction pass regardless of the dead-byte fraction.
    void compact();

    /// fsync the segment file.
    void flush();

    Stats stats() const;

    const std::string& path() const noexcept { return path_; }
    std::size_t byte_budget() const noexcept { return opt_.byte_budget; }

private:
    struct IndexEntry {
        std::uint64_t offset = 0;  ///< record start (header) in the file
        std::uint32_t nx = 0;
        std::uint32_t ny = 0;
        std::uint64_t payload_bytes = 0;
    };

    /// Registry mirrors under store.l2.* (obs/metrics.hpp).
    struct Registry {
        obs::Counter* hits = nullptr;
        obs::Counter* misses = nullptr;
        obs::Counter* appends = nullptr;
        obs::Counter* evictions = nullptr;
        obs::Counter* compactions = nullptr;
        obs::Counter* corrupt = nullptr;
        obs::Counter* read_faults = nullptr;
        obs::Counter* tail_truncated = nullptr;
        obs::Counter* resets = nullptr;
        obs::Gauge* bytes = nullptr;
        obs::Gauge* file_bytes = nullptr;
        obs::Gauge* tiles = nullptr;
    };

    void open_or_reset_locked();
    void reset_file_locked();
    void recover_scan_locked();
    void enforce_budget_locked();
    void maybe_compact_locked();
    void compact_locked();
    bool remap_locked(std::uint64_t need) noexcept;
    void update_gauges_locked() noexcept;
    std::uint64_t file_size_locked() const;
    /// Supersede the existing entry for `address` (its bytes become dead).
    void retire_existing_locked(const TileAddress& address);

    mutable std::mutex mutex_;
    std::string path_;
    TileStoreOptions opt_;
    int fd_ = -1;
    char* map_ = nullptr;
    std::size_t map_len_ = 0;
    std::uint64_t end_ = 0;  ///< published append offset (logical file end)
    std::unordered_map<TileAddress, IndexEntry, TileAddressHash> index_;
    /// Insertion order for FIFO eviction/compaction; entries whose offset no
    /// longer matches the index are stale and skipped lazily.
    std::deque<std::pair<TileAddress, std::uint64_t>> fifo_;
    ByteBudget live_;
    std::uint64_t dead_bytes_ = 0;
    Stats counters_;  ///< monotonic counters only; gauges derived on stats()
    Registry reg_;
};

}  // namespace rrs::store
