#include "store/segment_scan.hpp"

#include <cstring>

namespace rrs::store {

namespace {

template <typename T>
void put(unsigned char* buf, std::size_t off, T v) noexcept {
    std::memcpy(buf + off, &v, sizeof(T));
}

template <typename T>
T get(const unsigned char* buf, std::size_t off) noexcept {
    T v;
    std::memcpy(&v, buf + off, sizeof(T));
    return v;
}

/// Record header byte layout (offsets within the 72-byte header).
/// Header hash covers bytes [0, 64).
enum RecordOffset : std::size_t {
    kOffMagic = 0,          // u32
    kOffReserved = 4,       // u32, zero
    kOffFingerprint = 8,    // u64
    kOffTx = 16,            // i64
    kOffTy = 24,            // i64
    kOffZ = 32,             // i32
    kOffNx = 36,            // u32
    kOffNy = 40,            // u32
    kOffReserved2 = 44,     // u32, zero
    kOffPayloadBytes = 48,  // u64
    kOffPayloadHash = 56,   // u64
    kOffHeaderHash = 64,    // u64
};

}  // namespace

std::uint64_t segment_hash(const unsigned char* p, std::size_t n,
                           std::uint64_t h) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

void fill_file_header(unsigned char* h) noexcept {
    std::memset(h, 0, kSegmentFileHeaderSize);
    std::memcpy(h, kSegmentFileMagic, sizeof(kSegmentFileMagic));
    put<std::uint32_t>(h, 8, kSegmentFileVersion);
}

bool valid_file_header(const unsigned char* h) noexcept {
    return std::memcmp(h, kSegmentFileMagic, sizeof(kSegmentFileMagic)) == 0 &&
           get<std::uint32_t>(h, 8) == kSegmentFileVersion;
}

SegmentRecordHeader parse_record_header(const unsigned char* h) noexcept {
    SegmentRecordHeader r;
    if (get<std::uint32_t>(h, kOffMagic) != kSegmentRecordMagic) {
        return r;
    }
    if (get<std::uint64_t>(h, kOffHeaderHash) != segment_hash(h, kOffHeaderHash)) {
        return r;
    }
    r.address.fingerprint = get<std::uint64_t>(h, kOffFingerprint);
    r.address.key.tx = get<std::int64_t>(h, kOffTx);
    r.address.key.ty = get<std::int64_t>(h, kOffTy);
    r.address.key.z = get<std::int32_t>(h, kOffZ);
    r.nx = get<std::uint32_t>(h, kOffNx);
    r.ny = get<std::uint32_t>(h, kOffNy);
    r.payload_bytes = get<std::uint64_t>(h, kOffPayloadBytes);
    r.payload_hash = get<std::uint64_t>(h, kOffPayloadHash);
    if (r.address.key.z < 0 || r.address.key.z > kMaxZoom) {
        return r;
    }
    if (r.nx == 0 || r.ny == 0 || r.nx > kMaxRecordExtent || r.ny > kMaxRecordExtent) {
        return r;
    }
    if (r.payload_bytes !=
        std::uint64_t{r.nx} * std::uint64_t{r.ny} * sizeof(double)) {
        return r;
    }
    r.valid = true;
    return r;
}

void fill_record_header(unsigned char* h, const TileAddress& a, std::uint32_t nx,
                        std::uint32_t ny, std::uint64_t payload_bytes,
                        std::uint64_t payload_hash) noexcept {
    put<std::uint32_t>(h, kOffMagic, kSegmentRecordMagic);
    put<std::uint32_t>(h, kOffReserved, 0);
    put<std::uint64_t>(h, kOffFingerprint, a.fingerprint);
    put<std::int64_t>(h, kOffTx, a.key.tx);
    put<std::int64_t>(h, kOffTy, a.key.ty);
    put<std::int32_t>(h, kOffZ, a.key.z);
    put<std::uint32_t>(h, kOffNx, nx);
    put<std::uint32_t>(h, kOffNy, ny);
    put<std::uint32_t>(h, kOffReserved2, 0);
    put<std::uint64_t>(h, kOffPayloadBytes, payload_bytes);
    put<std::uint64_t>(h, kOffPayloadHash, payload_hash);
    put<std::uint64_t>(h, kOffHeaderHash, segment_hash(h, kOffHeaderHash));
}

SegmentScan scan_segment(const unsigned char* data, std::size_t size) noexcept {
    SegmentScan scan;
    if (size < kSegmentFileHeaderSize || !valid_file_header(data)) {
        // Foreign/torn/future file: nothing is trustworthy, including `end`.
        scan.truncated_bytes = size;
        return scan;
    }
    scan.header_ok = true;
    std::uint64_t off = kSegmentFileHeaderSize;
    while (off + kSegmentRecordHeaderSize <= size) {
        const SegmentRecordHeader r = parse_record_header(data + off);
        if (!r.valid ||
            r.payload_bytes > size - off - kSegmentRecordHeaderSize) {
            break;  // torn tail starts here
        }
        scan.records.push_back(
            SegmentRecord{r.address, off, r.nx, r.ny, r.payload_bytes});
        off += kSegmentRecordHeaderSize + r.payload_bytes;
    }
    scan.end = off;
    scan.truncated_bytes = size - off;
    return scan;
}

}  // namespace rrs::store
