#pragma once

/// \file segment_scan.hpp
/// Pure parsing layer of the persistent tile store (DESIGN.md §14, §16):
/// the segment-file byte format (header + record layout + checksums) and
/// the recovery scan, factored out of TileStore so they operate on an
/// in-memory byte image with no filesystem, locking, or metrics coupling.
///
/// This is an untrusted-input surface: a segment file can be torn by a
/// crash, bit-flipped by the disk, or be a foreign file entirely.  The
/// contract — relied on by TileStore and machine-checked by the
/// fuzz_segment_scan harness — is:
///
///  * scan_segment NEVER throws and NEVER reads outside [data, data+size);
///  * a malformed image degrades: bad file header ⇒ `header_ok == false`
///    (caller resets the store), bad record ⇒ the scan stops there and the
///    remainder is reported as `truncated_bytes` (caller truncates);
///  * every returned record lies entirely inside [header_size, end], and
///    `end <= size` always holds.
///
/// Payload *checksums* are deliberately not verified here: the scan trusts
/// record headers only (shape + header hash), exactly like TileStore's
/// recovery, which defers payload verification to first read so opening a
/// large store stays O(records), not O(bytes).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "service/tile_key.hpp"

namespace rrs::store {

/// "RRSSTOR1" — first 8 bytes of a segment file.
inline constexpr char kSegmentFileMagic[8] = {'R', 'R', 'S', 'S', 'T', 'O', 'R', '1'};
inline constexpr std::uint32_t kSegmentFileVersion = 1;
inline constexpr std::uint64_t kSegmentFileHeaderSize = 32;

inline constexpr std::uint32_t kSegmentRecordMagic = 0x31545252u;  // "RRT1" LE
inline constexpr std::uint64_t kSegmentRecordHeaderSize = 72;

/// Sanity bound on per-axis tile extent in a record header; anything larger
/// is treated as corruption rather than trusted as an allocation size.
inline constexpr std::uint32_t kMaxRecordExtent = 1u << 20;

/// FNV-1a over `n` bytes (the segment format's checksum primitive).
std::uint64_t segment_hash(const unsigned char* p, std::size_t n,
                           std::uint64_t h = 0xcbf29ce484222325ull) noexcept;

/// Write the 32-byte segment file header into `h`.
void fill_file_header(unsigned char* h) noexcept;

/// Does `h` (32 readable bytes) carry this format's magic and version?
bool valid_file_header(const unsigned char* h) noexcept;

/// Parsed view of one 72-byte record header; `valid` covers everything the
/// recovery scan and the read path must agree on before trusting the
/// payload bounds: magic, header hash, zoom range, extent sanity, and
/// payload_bytes == nx*ny*sizeof(double).
struct SegmentRecordHeader {
    TileAddress address;
    std::uint32_t nx = 0;
    std::uint32_t ny = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t payload_hash = 0;
    bool valid = false;
};

/// Parse one record header from `h` (72 readable bytes).  Never throws.
SegmentRecordHeader parse_record_header(const unsigned char* h) noexcept;

/// Write one record header into `h` (72 bytes).
void fill_record_header(unsigned char* h, const TileAddress& a, std::uint32_t nx,
                        std::uint32_t ny, std::uint64_t payload_bytes,
                        std::uint64_t payload_hash) noexcept;

/// One record the scan accepted, in file order (duplicates possible when a
/// record was superseded by a later append — the caller keeps the last).
struct SegmentRecord {
    TileAddress address;
    std::uint64_t offset = 0;  ///< record start (header) within the image
    std::uint32_t nx = 0;
    std::uint32_t ny = 0;
    std::uint64_t payload_bytes = 0;
};

/// Result of scanning one segment image.
struct SegmentScan {
    /// File header carried this format's magic+version.  False means a
    /// foreign/torn/future file: `records` is empty and the caller should
    /// reset the store (every tile is regenerable by construction).
    bool header_ok = false;
    std::vector<SegmentRecord> records;  ///< accepted records, file order
    std::uint64_t end = 0;               ///< first byte past the last valid record
    std::uint64_t truncated_bytes = 0;   ///< torn-tail bytes past `end`
};

/// Recovery-scan a segment image.  Walks records from the front and stops
/// at the first invalid header (bad magic, bad checksum, payload past the
/// end of the image) — everything after it is unreachable torn-write
/// garbage, reported in `truncated_bytes`.  See the file comment for the
/// full never-throws / in-bounds contract.
SegmentScan scan_segment(const unsigned char* data, std::size_t size) noexcept;

}  // namespace rrs::store
