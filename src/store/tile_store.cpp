#include "store/tile_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "fault/inject.hpp"
#include "obs/metrics.hpp"
#include "store/segment_scan.hpp"

namespace rrs::store {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
    throw StoreError{what + " '" + path + "': " + std::strerror(errno),
                     {"store", "tile_store"}};
}

/// pwrite the whole buffer, retrying partial writes and EINTR.
void write_all(int fd, const unsigned char* buf, std::size_t len, std::uint64_t off,
               const std::string& path) {
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n =
            ::pwrite(fd, buf + done, len - done, static_cast<off_t>(off + done));
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw_errno("pwrite failed on", path);
        }
        done += static_cast<std::size_t>(n);
    }
}

/// pread exactly `len` bytes; returns false on EOF-short reads (treated as
/// corruption by callers, not as an error).
bool read_exact(int fd, unsigned char* buf, std::size_t len, std::uint64_t off) {
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n =
            ::pread(fd, buf + done, len - done, static_cast<off_t>(off + done));
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        if (n == 0) {
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

TileStore::TileStore(std::string path, TileStoreOptions opt)
    : path_(std::move(path)), opt_(opt), live_(opt.byte_budget) {
    if (opt_.byte_budget == 0) {
        throw ConfigError{"TileStore byte_budget must be positive", {"store"}};
    }
    if (opt_.compact_dead_fraction < 0.0 || opt_.compact_dead_fraction > 1.0) {
        throw ConfigError{"TileStore compact_dead_fraction must be in [0, 1]",
                          {"store"}};
    }
    auto& reg = obs::MetricsRegistry::global();
    reg_.hits = &reg.counter("store.l2.hits");
    reg_.misses = &reg.counter("store.l2.misses");
    reg_.appends = &reg.counter("store.l2.appends");
    reg_.evictions = &reg.counter("store.l2.evictions");
    reg_.compactions = &reg.counter("store.l2.compactions");
    reg_.corrupt = &reg.counter("store.l2.corrupt");
    reg_.read_faults = &reg.counter("store.l2.read_faults");
    reg_.tail_truncated = &reg.counter("store.l2.tail_truncated_bytes");
    reg_.resets = &reg.counter("store.l2.resets");
    reg_.bytes = &reg.gauge("store.l2.bytes");
    reg_.file_bytes = &reg.gauge("store.l2.file_bytes");
    reg_.tiles = &reg.gauge("store.l2.tiles");

    std::lock_guard<std::mutex> lock(mutex_);
    open_or_reset_locked();
    recover_scan_locked();
    enforce_budget_locked();
    maybe_compact_locked();
    update_gauges_locked();
}

TileStore::~TileStore() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (map_ != nullptr) {
        ::munmap(map_, map_len_);
        map_ = nullptr;
    }
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void TileStore::open_or_reset_locked() {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        throw_errno("cannot open tile store", path_);
    }
    const std::uint64_t size = file_size_locked();
    if (size == 0) {
        reset_file_locked();  // fresh store, not a reset event
        return;
    }
    unsigned char header[kSegmentFileHeaderSize] = {};
    const bool ok = size >= kSegmentFileHeaderSize &&
                    read_exact(fd_, header, kSegmentFileHeaderSize, 0) &&
                    valid_file_header(header);
    if (!ok) {
        // Foreign file, torn header, or a future format: the contents are a
        // regenerable cache, so discard rather than fail (file comment).
        ++counters_.resets;
        reg_.resets->add();
        reset_file_locked();
    }
}

void TileStore::reset_file_locked() {
    if (::ftruncate(fd_, 0) != 0) {
        throw_errno("cannot truncate tile store", path_);
    }
    unsigned char header[kSegmentFileHeaderSize] = {};
    fill_file_header(header);
    write_all(fd_, header, kSegmentFileHeaderSize, 0, path_);
    end_ = kSegmentFileHeaderSize;
    index_.clear();
    fifo_.clear();
    live_.reset();
    dead_bytes_ = 0;
}

void TileStore::recover_scan_locked() {
    const std::uint64_t size = file_size_locked();
    std::uint64_t off = kSegmentFileHeaderSize;
    if (size > kSegmentFileHeaderSize && remap_locked(size)) {
        const SegmentScan scan =
            scan_segment(reinterpret_cast<const unsigned char*>(map_),
                         static_cast<std::size_t>(size));
        // open_or_reset_locked already validated the file header, so
        // header_ok holds; guard anyway so a racing overwrite degrades to a
        // full torn-tail truncation instead of trusting a bogus scan.end.
        if (scan.header_ok) {
            for (const SegmentRecord& r : scan.records) {
                retire_existing_locked(r.address);
                index_[r.address] = IndexEntry{r.offset, r.nx, r.ny, r.payload_bytes};
                fifo_.emplace_back(r.address, r.offset);
                live_.charge(static_cast<std::size_t>(r.payload_bytes));
            }
            off = scan.end;
        }
    }
    if (off != size) {
        const std::uint64_t torn = size - off;
        counters_.tail_truncated_bytes += torn;
        reg_.tail_truncated->add(torn);
        if (::ftruncate(fd_, static_cast<off_t>(off)) != 0) {
            throw_errno("cannot truncate torn tail of", path_);
        }
    }
    end_ = off;
}

TileStore::TilePayload TileStore::find(const TileAddress& address) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(address);
    if (it == index_.end()) {
        ++counters_.misses;
        reg_.misses->add();
        return nullptr;
    }
    if (fault::inject("store.read")) {
        // Injected read failure: degrade to a miss, keep the record.
        ++counters_.read_faults;
        reg_.read_faults->add();
        ++counters_.misses;
        reg_.misses->add();
        return nullptr;
    }
    const IndexEntry entry = it->second;
    const std::uint64_t record_end =
        entry.offset + kSegmentRecordHeaderSize + entry.payload_bytes;
    bool ok = remap_locked(record_end);
    SegmentRecordHeader r;
    if (ok) {
        const auto* base =
            reinterpret_cast<const unsigned char*>(map_) + entry.offset;
        r = parse_record_header(base);
        ok = r.valid && r.address == address &&
             r.payload_bytes == entry.payload_bytes &&
             r.payload_hash == segment_hash(base + kSegmentRecordHeaderSize,
                                     static_cast<std::size_t>(r.payload_bytes));
    }
    if (!ok) {
        // Corrupt record (or unmappable file): drop it and report a miss so
        // the caller regenerates; never surface wrong bytes.
        ++counters_.corrupt_records;
        reg_.corrupt->add();
        ++counters_.misses;
        reg_.misses->add();
        live_.release(static_cast<std::size_t>(entry.payload_bytes));
        dead_bytes_ += entry.payload_bytes;
        index_.erase(it);
        update_gauges_locked();
        return nullptr;
    }
    auto tile = std::make_shared<Array2D<double>>(r.nx, r.ny);
    std::memcpy(tile->data(), map_ + entry.offset + kSegmentRecordHeaderSize,
                static_cast<std::size_t>(r.payload_bytes));
    ++counters_.hits;
    reg_.hits->add();
    return tile;
}

void TileStore::insert(const TileAddress& address, const Array2D<double>& tile) {
    if (tile.empty()) {
        return;
    }
    check_zoom(address.key.z);
    std::lock_guard<std::mutex> lock(mutex_);
    const auto nx = static_cast<std::uint32_t>(tile.nx());
    const auto ny = static_cast<std::uint32_t>(tile.ny());
    if (tile.nx() > kMaxRecordExtent || tile.ny() > kMaxRecordExtent) {
        throw ConfigError{"tile too large for a store record",
                          {"store", "tile_store"}};
    }
    const std::size_t payload_size =
        static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
        sizeof(double);
    const std::uint64_t payload_bytes = payload_size;
    const std::size_t total =
        static_cast<std::size_t>(kSegmentRecordHeaderSize) + payload_size;
    std::vector<unsigned char> buf(total);
    std::memcpy(buf.data() + kSegmentRecordHeaderSize, tile.data(), payload_size);
    const std::uint64_t payload_hash =
        segment_hash(buf.data() + kSegmentRecordHeaderSize, payload_size);
    fill_record_header(buf.data(), address, nx, ny, payload_bytes, payload_hash);

    if (fault::inject("store.write")) {
        // Simulate a crash mid-append: a record prefix reaches the disk,
        // the index is NOT updated, and the caller sees a StoreError.  The
        // torn bytes sit past end_, so the next successful append overwrites
        // them and a recovery scan truncates them.
        write_all(fd_, buf.data(), total / 2, end_, path_);
        throw StoreError{"injected store.write fault", {"store", "tile_store"}};
    }

    write_all(fd_, buf.data(), total, end_, path_);
    if (opt_.fsync_appends) {
        ::fsync(fd_);
    }
    retire_existing_locked(address);
    index_[address] = IndexEntry{end_, nx, ny, payload_bytes};
    fifo_.emplace_back(address, end_);
    end_ += total;
    live_.charge(static_cast<std::size_t>(payload_bytes));
    ++counters_.appends;
    reg_.appends->add();
    enforce_budget_locked();
    maybe_compact_locked();
    update_gauges_locked();
}

bool TileStore::contains(const TileAddress& address) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.find(address) != index_.end();
}

void TileStore::compact() {
    std::lock_guard<std::mutex> lock(mutex_);
    compact_locked();
    update_gauges_locked();
}

void TileStore::flush() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::fsync(fd_);
    }
}

TileStore::Stats TileStore::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s = counters_;
    s.live_bytes = live_.used();
    s.dead_bytes = dead_bytes_;
    s.file_bytes = end_;
    s.tiles = index_.size();
    return s;
}

void TileStore::retire_existing_locked(const TileAddress& address) {
    const auto it = index_.find(address);
    if (it == index_.end()) {
        return;
    }
    live_.release(static_cast<std::size_t>(it->second.payload_bytes));
    dead_bytes_ += it->second.payload_bytes;
    index_.erase(it);
    // The fifo entry pointing at the old offset goes stale and is skipped
    // lazily by eviction/compaction.
}

void TileStore::enforce_budget_locked() {
    const std::uint64_t evicted = live_.evict_until_fit([&]() -> std::size_t {
        while (!fifo_.empty()) {
            const auto [addr, off] = fifo_.front();
            fifo_.pop_front();
            const auto it = index_.find(addr);
            if (it == index_.end() || it->second.offset != off) {
                continue;  // superseded or already evicted
            }
            const auto freed = static_cast<std::size_t>(it->second.payload_bytes);
            dead_bytes_ += it->second.payload_bytes;
            index_.erase(it);
            return freed;
        }
        return 0;
    });
    counters_.evictions += evicted;
    reg_.evictions->add(evicted);
}

void TileStore::maybe_compact_locked() {
    if (end_ < opt_.compact_min_bytes) {
        return;
    }
    if (static_cast<double>(dead_bytes_) >
        opt_.compact_dead_fraction * static_cast<double>(end_)) {
        compact_locked();
    }
}

void TileStore::compact_locked() {
    const std::string tmp = path_ + ".compact";
    const int tfd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (tfd < 0) {
        throw_errno("cannot open compaction file", tmp);
    }
    std::unordered_map<TileAddress, IndexEntry, TileAddressHash> new_index;
    std::deque<std::pair<TileAddress, std::uint64_t>> new_fifo;
    std::uint64_t new_end = kSegmentFileHeaderSize;
    try {
        unsigned char header[kSegmentFileHeaderSize] = {};
        fill_file_header(header);
        write_all(tfd, header, kSegmentFileHeaderSize, 0, tmp);
        std::vector<unsigned char> buf;
        for (const auto& [addr, off] : fifo_) {
            const auto it = index_.find(addr);
            if (it == index_.end() || it->second.offset != off) {
                continue;  // stale entry: superseded or evicted
            }
            const std::size_t total = static_cast<std::size_t>(
                kSegmentRecordHeaderSize + it->second.payload_bytes);
            buf.resize(total);
            if (!read_exact(fd_, buf.data(), total, off)) {
                throw_errno("cannot read record during compaction of", path_);
            }
            write_all(tfd, buf.data(), total, new_end, tmp);
            new_index[addr] = IndexEntry{new_end, it->second.nx, it->second.ny,
                                         it->second.payload_bytes};
            new_fifo.emplace_back(addr, new_end);
            new_end += total;
        }
        ::fsync(tfd);
    } catch (...) {
        ::close(tfd);
        ::unlink(tmp.c_str());
        throw;
    }
    ::close(tfd);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
        ::unlink(tmp.c_str());
        throw_errno("cannot rename compacted store over", path_);
    }
    if (map_ != nullptr) {
        ::munmap(map_, map_len_);
        map_ = nullptr;
        map_len_ = 0;
    }
    ::close(fd_);
    fd_ = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
    if (fd_ < 0) {
        throw_errno("cannot reopen compacted store", path_);
    }
    index_ = std::move(new_index);
    fifo_ = std::move(new_fifo);
    end_ = new_end;
    dead_bytes_ = 0;
    ++counters_.compactions;
    reg_.compactions->add();
}

bool TileStore::remap_locked(std::uint64_t need) noexcept {
    if (map_ != nullptr && need <= map_len_) {
        return true;
    }
    const std::uint64_t size = file_size_locked();
    if (size < need) {
        return false;  // index points past EOF — treated as corruption
    }
    if (map_ != nullptr) {
        ::munmap(map_, map_len_);
        map_ = nullptr;
        map_len_ = 0;
    }
    void* m = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ, MAP_SHARED,
                     fd_, 0);
    if (m == MAP_FAILED) {
        return false;
    }
    map_ = static_cast<char*>(m);
    map_len_ = static_cast<std::size_t>(size);
    return true;
}

void TileStore::update_gauges_locked() noexcept {
    reg_.bytes->set(static_cast<std::int64_t>(live_.used()));
    reg_.file_bytes->set(static_cast<std::int64_t>(end_));
    reg_.tiles->set(static_cast<std::int64_t>(index_.size()));
}

std::uint64_t TileStore::file_size_locked() const {
    struct stat st = {};
    if (::fstat(fd_, &st) != 0) {
        return 0;
    }
    return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace rrs::store
