#include "store/tile_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "fault/inject.hpp"
#include "obs/metrics.hpp"

namespace rrs::store {

namespace {

constexpr char kFileMagic[8] = {'R', 'R', 'S', 'S', 'T', 'O', 'R', '1'};
constexpr std::uint32_t kFileVersion = 1;
constexpr std::uint64_t kFileHeaderSize = 32;

constexpr std::uint32_t kRecordMagic = 0x31545252u;  // "RRT1" little-endian
constexpr std::uint64_t kRecordHeaderSize = 72;

// Sanity bound on per-axis tile extent in a record header; anything larger
// is treated as corruption rather than trusted as an allocation size.
constexpr std::uint32_t kMaxRecordExtent = 1u << 20;

std::uint64_t fnv1a(const unsigned char* p, std::size_t n,
                    std::uint64_t h = 0xcbf29ce484222325ull) {
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

template <typename T>
void put(unsigned char* buf, std::size_t off, T v) noexcept {
    std::memcpy(buf + off, &v, sizeof(T));
}

template <typename T>
T get(const unsigned char* buf, std::size_t off) noexcept {
    T v;
    std::memcpy(&v, buf + off, sizeof(T));
    return v;
}

/// Record header byte layout (offsets within the 72-byte header).
/// Header hash covers bytes [0, 64).
enum RecordOffset : std::size_t {
    kOffMagic = 0,          // u32
    kOffReserved = 4,       // u32, zero
    kOffFingerprint = 8,    // u64
    kOffTx = 16,            // i64
    kOffTy = 24,            // i64
    kOffZ = 32,             // i32
    kOffNx = 36,            // u32
    kOffNy = 40,            // u32
    kOffReserved2 = 44,     // u32, zero
    kOffPayloadBytes = 48,  // u64
    kOffPayloadHash = 56,   // u64
    kOffHeaderHash = 64,    // u64
};

void fill_record_header(unsigned char* h, const TileAddress& a, std::uint32_t nx,
                        std::uint32_t ny, std::uint64_t payload_bytes,
                        std::uint64_t payload_hash) noexcept {
    put<std::uint32_t>(h, kOffMagic, kRecordMagic);
    put<std::uint32_t>(h, kOffReserved, 0);
    put<std::uint64_t>(h, kOffFingerprint, a.fingerprint);
    put<std::int64_t>(h, kOffTx, a.key.tx);
    put<std::int64_t>(h, kOffTy, a.key.ty);
    put<std::int32_t>(h, kOffZ, a.key.z);
    put<std::uint32_t>(h, kOffNx, nx);
    put<std::uint32_t>(h, kOffNy, ny);
    put<std::uint32_t>(h, kOffReserved2, 0);
    put<std::uint64_t>(h, kOffPayloadBytes, payload_bytes);
    put<std::uint64_t>(h, kOffPayloadHash, payload_hash);
    put<std::uint64_t>(h, kOffHeaderHash, fnv1a(h, kOffHeaderHash));
}

/// Parsed view of one record header; valid() covers everything the recovery
/// scan and the read path must agree on before trusting the payload bounds.
struct RecordHeader {
    TileAddress address;
    std::uint32_t nx = 0;
    std::uint32_t ny = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t payload_hash = 0;
    bool valid = false;
};

RecordHeader parse_record_header(const unsigned char* h) noexcept {
    RecordHeader r;
    if (get<std::uint32_t>(h, kOffMagic) != kRecordMagic) {
        return r;
    }
    if (get<std::uint64_t>(h, kOffHeaderHash) != fnv1a(h, kOffHeaderHash)) {
        return r;
    }
    r.address.fingerprint = get<std::uint64_t>(h, kOffFingerprint);
    r.address.key.tx = get<std::int64_t>(h, kOffTx);
    r.address.key.ty = get<std::int64_t>(h, kOffTy);
    r.address.key.z = get<std::int32_t>(h, kOffZ);
    r.nx = get<std::uint32_t>(h, kOffNx);
    r.ny = get<std::uint32_t>(h, kOffNy);
    r.payload_bytes = get<std::uint64_t>(h, kOffPayloadBytes);
    r.payload_hash = get<std::uint64_t>(h, kOffPayloadHash);
    if (r.address.key.z < 0 || r.address.key.z > kMaxZoom) {
        return r;
    }
    if (r.nx == 0 || r.ny == 0 || r.nx > kMaxRecordExtent || r.ny > kMaxRecordExtent) {
        return r;
    }
    if (r.payload_bytes !=
        std::uint64_t{r.nx} * std::uint64_t{r.ny} * sizeof(double)) {
        return r;
    }
    r.valid = true;
    return r;
}

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
    throw StoreError{what + " '" + path + "': " + std::strerror(errno),
                     {"store", "tile_store"}};
}

/// pwrite the whole buffer, retrying partial writes and EINTR.
void write_all(int fd, const unsigned char* buf, std::size_t len, std::uint64_t off,
               const std::string& path) {
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n =
            ::pwrite(fd, buf + done, len - done, static_cast<off_t>(off + done));
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw_errno("pwrite failed on", path);
        }
        done += static_cast<std::size_t>(n);
    }
}

/// pread exactly `len` bytes; returns false on EOF-short reads (treated as
/// corruption by callers, not as an error).
bool read_exact(int fd, unsigned char* buf, std::size_t len, std::uint64_t off) {
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n =
            ::pread(fd, buf + done, len - done, static_cast<off_t>(off + done));
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        if (n == 0) {
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

TileStore::TileStore(std::string path, TileStoreOptions opt)
    : path_(std::move(path)), opt_(opt), live_(opt.byte_budget) {
    if (opt_.byte_budget == 0) {
        throw ConfigError{"TileStore byte_budget must be positive", {"store"}};
    }
    if (opt_.compact_dead_fraction < 0.0 || opt_.compact_dead_fraction > 1.0) {
        throw ConfigError{"TileStore compact_dead_fraction must be in [0, 1]",
                          {"store"}};
    }
    auto& reg = obs::MetricsRegistry::global();
    reg_.hits = &reg.counter("store.l2.hits");
    reg_.misses = &reg.counter("store.l2.misses");
    reg_.appends = &reg.counter("store.l2.appends");
    reg_.evictions = &reg.counter("store.l2.evictions");
    reg_.compactions = &reg.counter("store.l2.compactions");
    reg_.corrupt = &reg.counter("store.l2.corrupt");
    reg_.read_faults = &reg.counter("store.l2.read_faults");
    reg_.tail_truncated = &reg.counter("store.l2.tail_truncated_bytes");
    reg_.resets = &reg.counter("store.l2.resets");
    reg_.bytes = &reg.gauge("store.l2.bytes");
    reg_.file_bytes = &reg.gauge("store.l2.file_bytes");
    reg_.tiles = &reg.gauge("store.l2.tiles");

    std::lock_guard<std::mutex> lock(mutex_);
    open_or_reset_locked();
    recover_scan_locked();
    enforce_budget_locked();
    maybe_compact_locked();
    update_gauges_locked();
}

TileStore::~TileStore() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (map_ != nullptr) {
        ::munmap(map_, map_len_);
        map_ = nullptr;
    }
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void TileStore::open_or_reset_locked() {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        throw_errno("cannot open tile store", path_);
    }
    const std::uint64_t size = file_size_locked();
    if (size == 0) {
        reset_file_locked();  // fresh store, not a reset event
        return;
    }
    unsigned char header[kFileHeaderSize] = {};
    bool ok = size >= kFileHeaderSize && read_exact(fd_, header, kFileHeaderSize, 0);
    ok = ok && std::memcmp(header, kFileMagic, sizeof(kFileMagic)) == 0 &&
         get<std::uint32_t>(header, 8) == kFileVersion;
    if (!ok) {
        // Foreign file, torn header, or a future format: the contents are a
        // regenerable cache, so discard rather than fail (file comment).
        ++counters_.resets;
        reg_.resets->add();
        reset_file_locked();
    }
}

void TileStore::reset_file_locked() {
    if (::ftruncate(fd_, 0) != 0) {
        throw_errno("cannot truncate tile store", path_);
    }
    unsigned char header[kFileHeaderSize] = {};
    std::memcpy(header, kFileMagic, sizeof(kFileMagic));
    put<std::uint32_t>(header, 8, kFileVersion);
    write_all(fd_, header, kFileHeaderSize, 0, path_);
    end_ = kFileHeaderSize;
    index_.clear();
    fifo_.clear();
    live_.reset();
    dead_bytes_ = 0;
}

void TileStore::recover_scan_locked() {
    const std::uint64_t size = file_size_locked();
    if (end_ == 0) {
        end_ = kFileHeaderSize;
    }
    std::uint64_t off = kFileHeaderSize;
    unsigned char hbuf[kRecordHeaderSize];
    while (off + kRecordHeaderSize <= size) {
        if (!read_exact(fd_, hbuf, kRecordHeaderSize, off)) {
            break;
        }
        const RecordHeader r = parse_record_header(hbuf);
        if (!r.valid || off + kRecordHeaderSize + r.payload_bytes > size) {
            break;  // torn tail starts here
        }
        retire_existing_locked(r.address);
        index_[r.address] =
            IndexEntry{off, r.nx, r.ny, r.payload_bytes};
        fifo_.emplace_back(r.address, off);
        live_.charge(static_cast<std::size_t>(r.payload_bytes));
        off += kRecordHeaderSize + r.payload_bytes;
    }
    if (off != size) {
        const std::uint64_t torn = size - off;
        counters_.tail_truncated_bytes += torn;
        reg_.tail_truncated->add(torn);
        if (::ftruncate(fd_, static_cast<off_t>(off)) != 0) {
            throw_errno("cannot truncate torn tail of", path_);
        }
    }
    end_ = off;
}

TileStore::TilePayload TileStore::find(const TileAddress& address) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(address);
    if (it == index_.end()) {
        ++counters_.misses;
        reg_.misses->add();
        return nullptr;
    }
    if (fault::inject("store.read")) {
        // Injected read failure: degrade to a miss, keep the record.
        ++counters_.read_faults;
        reg_.read_faults->add();
        ++counters_.misses;
        reg_.misses->add();
        return nullptr;
    }
    const IndexEntry entry = it->second;
    const std::uint64_t record_end =
        entry.offset + kRecordHeaderSize + entry.payload_bytes;
    bool ok = remap_locked(record_end);
    RecordHeader r;
    if (ok) {
        const auto* base =
            reinterpret_cast<const unsigned char*>(map_) + entry.offset;
        r = parse_record_header(base);
        ok = r.valid && r.address == address &&
             r.payload_bytes == entry.payload_bytes &&
             r.payload_hash == fnv1a(base + kRecordHeaderSize,
                                     static_cast<std::size_t>(r.payload_bytes));
    }
    if (!ok) {
        // Corrupt record (or unmappable file): drop it and report a miss so
        // the caller regenerates; never surface wrong bytes.
        ++counters_.corrupt_records;
        reg_.corrupt->add();
        ++counters_.misses;
        reg_.misses->add();
        live_.release(static_cast<std::size_t>(entry.payload_bytes));
        dead_bytes_ += entry.payload_bytes;
        index_.erase(it);
        update_gauges_locked();
        return nullptr;
    }
    auto tile = std::make_shared<Array2D<double>>(r.nx, r.ny);
    std::memcpy(tile->data(), map_ + entry.offset + kRecordHeaderSize,
                static_cast<std::size_t>(r.payload_bytes));
    ++counters_.hits;
    reg_.hits->add();
    return tile;
}

void TileStore::insert(const TileAddress& address, const Array2D<double>& tile) {
    if (tile.empty()) {
        return;
    }
    check_zoom(address.key.z);
    std::lock_guard<std::mutex> lock(mutex_);
    const auto nx = static_cast<std::uint32_t>(tile.nx());
    const auto ny = static_cast<std::uint32_t>(tile.ny());
    if (tile.nx() > kMaxRecordExtent || tile.ny() > kMaxRecordExtent) {
        throw ConfigError{"tile too large for a store record",
                          {"store", "tile_store"}};
    }
    const std::size_t payload_size =
        static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
        sizeof(double);
    const std::uint64_t payload_bytes = payload_size;
    const std::size_t total =
        static_cast<std::size_t>(kRecordHeaderSize) + payload_size;
    std::vector<unsigned char> buf(total);
    std::memcpy(buf.data() + kRecordHeaderSize, tile.data(), payload_size);
    const std::uint64_t payload_hash =
        fnv1a(buf.data() + kRecordHeaderSize, payload_size);
    fill_record_header(buf.data(), address, nx, ny, payload_bytes, payload_hash);

    if (fault::inject("store.write")) {
        // Simulate a crash mid-append: a record prefix reaches the disk,
        // the index is NOT updated, and the caller sees a StoreError.  The
        // torn bytes sit past end_, so the next successful append overwrites
        // them and a recovery scan truncates them.
        write_all(fd_, buf.data(), total / 2, end_, path_);
        throw StoreError{"injected store.write fault", {"store", "tile_store"}};
    }

    write_all(fd_, buf.data(), total, end_, path_);
    if (opt_.fsync_appends) {
        ::fsync(fd_);
    }
    retire_existing_locked(address);
    index_[address] = IndexEntry{end_, nx, ny, payload_bytes};
    fifo_.emplace_back(address, end_);
    end_ += total;
    live_.charge(static_cast<std::size_t>(payload_bytes));
    ++counters_.appends;
    reg_.appends->add();
    enforce_budget_locked();
    maybe_compact_locked();
    update_gauges_locked();
}

bool TileStore::contains(const TileAddress& address) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.find(address) != index_.end();
}

void TileStore::compact() {
    std::lock_guard<std::mutex> lock(mutex_);
    compact_locked();
    update_gauges_locked();
}

void TileStore::flush() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::fsync(fd_);
    }
}

TileStore::Stats TileStore::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s = counters_;
    s.live_bytes = live_.used();
    s.dead_bytes = dead_bytes_;
    s.file_bytes = end_;
    s.tiles = index_.size();
    return s;
}

void TileStore::retire_existing_locked(const TileAddress& address) {
    const auto it = index_.find(address);
    if (it == index_.end()) {
        return;
    }
    live_.release(static_cast<std::size_t>(it->second.payload_bytes));
    dead_bytes_ += it->second.payload_bytes;
    index_.erase(it);
    // The fifo entry pointing at the old offset goes stale and is skipped
    // lazily by eviction/compaction.
}

void TileStore::enforce_budget_locked() {
    const std::uint64_t evicted = live_.evict_until_fit([&]() -> std::size_t {
        while (!fifo_.empty()) {
            const auto [addr, off] = fifo_.front();
            fifo_.pop_front();
            const auto it = index_.find(addr);
            if (it == index_.end() || it->second.offset != off) {
                continue;  // superseded or already evicted
            }
            const auto freed = static_cast<std::size_t>(it->second.payload_bytes);
            dead_bytes_ += it->second.payload_bytes;
            index_.erase(it);
            return freed;
        }
        return 0;
    });
    counters_.evictions += evicted;
    reg_.evictions->add(evicted);
}

void TileStore::maybe_compact_locked() {
    if (end_ < opt_.compact_min_bytes) {
        return;
    }
    if (static_cast<double>(dead_bytes_) >
        opt_.compact_dead_fraction * static_cast<double>(end_)) {
        compact_locked();
    }
}

void TileStore::compact_locked() {
    const std::string tmp = path_ + ".compact";
    const int tfd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (tfd < 0) {
        throw_errno("cannot open compaction file", tmp);
    }
    std::unordered_map<TileAddress, IndexEntry, TileAddressHash> new_index;
    std::deque<std::pair<TileAddress, std::uint64_t>> new_fifo;
    std::uint64_t new_end = kFileHeaderSize;
    try {
        unsigned char header[kFileHeaderSize] = {};
        std::memcpy(header, kFileMagic, sizeof(kFileMagic));
        put<std::uint32_t>(header, 8, kFileVersion);
        write_all(tfd, header, kFileHeaderSize, 0, tmp);
        std::vector<unsigned char> buf;
        for (const auto& [addr, off] : fifo_) {
            const auto it = index_.find(addr);
            if (it == index_.end() || it->second.offset != off) {
                continue;  // stale entry: superseded or evicted
            }
            const std::size_t total = static_cast<std::size_t>(
                kRecordHeaderSize + it->second.payload_bytes);
            buf.resize(total);
            if (!read_exact(fd_, buf.data(), total, off)) {
                throw_errno("cannot read record during compaction of", path_);
            }
            write_all(tfd, buf.data(), total, new_end, tmp);
            new_index[addr] = IndexEntry{new_end, it->second.nx, it->second.ny,
                                         it->second.payload_bytes};
            new_fifo.emplace_back(addr, new_end);
            new_end += total;
        }
        ::fsync(tfd);
    } catch (...) {
        ::close(tfd);
        ::unlink(tmp.c_str());
        throw;
    }
    ::close(tfd);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
        ::unlink(tmp.c_str());
        throw_errno("cannot rename compacted store over", path_);
    }
    if (map_ != nullptr) {
        ::munmap(map_, map_len_);
        map_ = nullptr;
        map_len_ = 0;
    }
    ::close(fd_);
    fd_ = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
    if (fd_ < 0) {
        throw_errno("cannot reopen compacted store", path_);
    }
    index_ = std::move(new_index);
    fifo_ = std::move(new_fifo);
    end_ = new_end;
    dead_bytes_ = 0;
    ++counters_.compactions;
    reg_.compactions->add();
}

bool TileStore::remap_locked(std::uint64_t need) noexcept {
    if (map_ != nullptr && need <= map_len_) {
        return true;
    }
    const std::uint64_t size = file_size_locked();
    if (size < need) {
        return false;  // index points past EOF — treated as corruption
    }
    if (map_ != nullptr) {
        ::munmap(map_, map_len_);
        map_ = nullptr;
        map_len_ = 0;
    }
    void* m = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ, MAP_SHARED,
                     fd_, 0);
    if (m == MAP_FAILED) {
        return false;
    }
    map_ = static_cast<char*>(m);
    map_len_ = static_cast<std::size_t>(size);
    return true;
}

void TileStore::update_gauges_locked() noexcept {
    reg_.bytes->set(static_cast<std::int64_t>(live_.used()));
    reg_.file_bytes->set(static_cast<std::int64_t>(end_));
    reg_.tiles->set(static_cast<std::int64_t>(index_.size()));
}

std::uint64_t TileStore::file_size_locked() const {
    struct stat st = {};
    if (::fstat(fd_, &st) != 0) {
        return 0;
    }
    return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace rrs::store
