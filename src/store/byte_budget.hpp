#pragma once

/// \file byte_budget.hpp
/// Shared bounded-byte-budget eviction policy.
///
/// Three tile holders cap their payload bytes the same way — the sharded
/// in-memory LRU (service/tile_cache.cpp), the stale-tile degradation store
/// (net/tile_routes.cpp, via TileCache), and the persistent L2 segment file
/// (store/tile_store.cpp).  This header is the one implementation of the
/// policy they share: charge what you admit, then evict victims until the
/// holder fits the budget again.  The holder supplies victim selection
/// (LRU tail, FIFO head, ...); the budget supplies the stopping rule, so
/// "never exceed the budget after an insert" is enforced in exactly one
/// place.
///
/// Not thread-safe by itself — each holder guards its ByteBudget with the
/// same lock that guards its container (TileCache: the shard mutex;
/// TileStore: the store mutex).

#include <cstddef>
#include <cstdint>
#include <utility>

namespace rrs::store {

/// Byte ledger with a hard upper bound; see file comment.
class ByteBudget {
public:
    explicit ByteBudget(std::size_t budget = 0) noexcept : budget_(budget) {}

    /// Replace the bound (existing charges are kept; call evict_until_fit
    /// afterwards if the bound shrank).
    void set_budget(std::size_t budget) noexcept { budget_ = budget; }

    void charge(std::size_t bytes) noexcept { used_ += bytes; }
    void release(std::size_t bytes) noexcept {
        used_ = bytes > used_ ? 0 : used_ - bytes;
    }
    void reset() noexcept { used_ = 0; }

    bool over() const noexcept { return used_ > budget_; }
    std::size_t used() const noexcept { return used_; }
    std::size_t budget() const noexcept { return budget_; }

    /// Evict until the ledger fits the budget.  `evict_one` removes the
    /// holder's next victim and returns the payload bytes it freed — or 0
    /// when nothing more is evictable, which stops the loop (so a single
    /// oversized entry can still be dropped by its holder afterwards, or
    /// retained deliberately).  Returns the number of victims evicted.
    template <typename EvictOne>
    std::uint64_t evict_until_fit(EvictOne&& evict_one) {
        std::uint64_t evicted = 0;
        while (over()) {
            const std::size_t freed = evict_one();
            if (freed == 0) {
                break;
            }
            release(freed);
            ++evicted;
        }
        return evicted;
    }

private:
    std::size_t budget_ = 0;
    std::size_t used_ = 0;
};

}  // namespace rrs::store
