#pragma once

/// \file topology.hpp
/// Declarative fleet topology for the sharded tile cluster (DESIGN.md §17).
///
/// A topology is a small text document naming every `rrsd` node of a fleet:
///
///     # comments and blank lines are ignored
///     epoch = 3
///     node alpha 10.0.0.1:8801 weight=2
///     node beta  10.0.0.2:8801
///     node gamma 10.0.0.3:8801 weight=0.5
///
/// Grammar (one directive per line):
///
///     line   := '#' comment | ε | epoch | node
///     epoch  := 'epoch' '=' uint64            (at most once; default 0)
///     node   := 'node' NAME HOST ':' PORT [ 'weight=' W ]
///     NAME   := [A-Za-z0-9_.-]{1,64}          (unique per topology)
///     PORT   := 1..65535                      (HOST:PORT unique per topology)
///     W      := finite double > 0             (default 1)
///
/// `weight` is the node's *capacity* share: the ShardMap (shard_map.hpp)
/// assigns each node an expected fraction weight/Σweights of the keyspace,
/// so a box with twice the cores simply declares `weight=2`.  `epoch` is a
/// deployment-managed generation number: a reshard publishes a new file
/// with a bumped epoch, and nodes keep the previous epoch's file around to
/// drive peer cache-fill (peer_fill.hpp).
///
/// `parse_topology` is a *pure* untrusted-input entry point under the
/// fuzzing contract (DESIGN.md §16, harness fuzz_topology): bytes in,
/// struct out, no I/O — every failure is a ConfigError carrying the
/// 1-based line number, never anything outside the taxonomy.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace rrs::cluster {

/// Nodes a topology may declare — a sanity bound, far above any real
/// fleet, that keeps adversarial inputs from ballooning the parse.
inline constexpr std::size_t kMaxNodes = 1024;

/// One declared fleet member.
struct NodeSpec {
    std::string name;
    std::string host;
    std::uint16_t port = 0;
    double weight = 1.0;

    /// "host:port", as it appears in the file — for logs and dedup.
    std::string endpoint() const { return host + ":" + std::to_string(port); }

    friend bool operator==(const NodeSpec&, const NodeSpec&) = default;
};

/// A parsed fleet: the declared nodes (file order) plus the epoch.
struct Topology {
    std::vector<NodeSpec> nodes;
    std::uint64_t epoch = 0;

    /// The node named `name`, or nullptr.
    const NodeSpec* find(std::string_view name) const noexcept;

    friend bool operator==(const Topology&, const Topology&) = default;
};

/// Parse a topology document (see grammar above).  Pure; throws ConfigError
/// (context {"cluster", "topology"}, message prefixed "topology line N")
/// on any violation, including an empty fleet.
Topology parse_topology(std::string_view text);

/// Read `path` and parse it.  Throws IoError when the file cannot be read,
/// ConfigError (with the path in context) on a grammar violation.
Topology load_topology(const std::string& path);

}  // namespace rrs::cluster
