#include "cluster/client.hpp"

#include <condition_variable>
#include <cstring>
#include <future>
#include <utility>

#include "fault/inject.hpp"
#include "parallel/thread_pool.hpp"
#include "net/http.hpp"

namespace rrs::cluster {

namespace {

/// Minimal JSON scanner for the scene index — just enough for the shape
/// handle_index emits, strict about everything else.
struct IndexScanner {
    std::string_view text;
    std::size_t pos = 0;

    [[noreturn]] void fail(const std::string& message) const {
        throw ConfigError{"scene index byte " + std::to_string(pos) + ": " + message,
                          {"cluster", "index"}};
    }

    void skip_ws() noexcept {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                text[pos] == '\r')) {
            ++pos;
        }
    }

    bool peek(char c) {
        skip_ws();
        return pos < text.size() && text[pos] == c;
    }

    void expect(char c) {
        skip_ws();
        if (pos >= text.size() || text[pos] != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos;
    }

    /// Parse a JSON string (pos at the opening quote), decoding the escapes
    /// json_escape produces.
    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size()) {
                fail("unterminated string");
            }
            const char c = text[pos++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size()) {
                fail("unterminated escape");
            }
            const char esc = text[pos++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (pos + 4 > text.size()) {
                        fail("truncated \\u escape");
                    }
                    unsigned value = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[pos++];
                        value <<= 4;
                        if (h >= '0' && h <= '9') {
                            value |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            value |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            value |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            fail("bad \\u escape digit");
                        }
                    }
                    if (value > 0xFF) {
                        fail("non-latin \\u escape unsupported in scene names");
                    }
                    out += static_cast<char>(value);
                    break;
                }
                default:
                    fail("unknown escape");
            }
        }
    }

    std::uint64_t parse_u64() {
        skip_ws();
        const std::size_t start = pos;
        while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
            ++pos;
        }
        if (pos == start || pos - start > 20) {
            fail("expected an unsigned integer");
        }
        std::uint64_t value = 0;
        for (std::size_t i = start; i < pos; ++i) {
            const auto digit = static_cast<std::uint64_t>(text[i] - '0');
            if (value > (UINT64_MAX - digit) / 10) {
                fail("integer overflows 64 bits");
            }
            value = value * 10 + digit;
        }
        return value;
    }

    /// Skip one arbitrary JSON value (for keys we don't consume).
    void skip_value() {
        skip_ws();
        if (pos >= text.size()) {
            fail("expected a value");
        }
        const char c = text[pos];
        if (c == '"') {
            (void)parse_string();
            return;
        }
        if (c == '[' || c == '{') {
            const char open = c;
            const char close = open == '[' ? ']' : '}';
            ++pos;
            int depth = 1;
            while (pos < text.size() && depth > 0) {
                const char d = text[pos];
                if (d == '"') {
                    (void)parse_string();
                    continue;
                }
                if (d == open) {
                    ++depth;
                } else if (d == close) {
                    --depth;
                }
                ++pos;
            }
            if (depth != 0) {
                fail("unterminated value");
            }
            return;
        }
        // number / literal: consume the token.
        while (pos < text.size() && text[pos] != ',' && text[pos] != '}' &&
               text[pos] != ']' && text[pos] != ' ' && text[pos] != '\n' &&
               text[pos] != '\r' && text[pos] != '\t') {
            ++pos;
        }
    }
};

/// Does `status` mean the peer spoke but declined?  (Used by ready().)
bool transport_ok(int status) noexcept { return status > 0; }

}  // namespace

std::map<std::string, SceneInfo> parse_scene_index(std::string_view body) {
    IndexScanner s{body};
    s.expect('{');
    std::map<std::string, SceneInfo> out;
    bool saw_scenes = false;
    if (!s.peek('}')) {
        while (true) {
            const std::string key = s.parse_string();
            s.expect(':');
            if (key == "scenes") {
                if (saw_scenes) {
                    s.fail("duplicate scenes array");
                }
                saw_scenes = true;
                s.expect('[');
                if (!s.peek(']')) {
                    while (true) {
                        s.expect('{');
                        std::string name;
                        bool have_name = false;
                        bool have_nx = false;
                        bool have_ny = false;
                        bool have_fp = false;
                        SceneInfo info;
                        if (!s.peek('}')) {
                            while (true) {
                                const std::string field = s.parse_string();
                                s.expect(':');
                                if (field == "name") {
                                    name = s.parse_string();
                                    have_name = true;
                                } else if (field == "tile_nx") {
                                    info.shape.nx =
                                        static_cast<std::int64_t>(s.parse_u64());
                                    have_nx = true;
                                } else if (field == "tile_ny") {
                                    info.shape.ny =
                                        static_cast<std::int64_t>(s.parse_u64());
                                    have_ny = true;
                                } else if (field == "fingerprint") {
                                    info.fingerprint = s.parse_u64();
                                    have_fp = true;
                                } else {
                                    s.skip_value();
                                }
                                if (s.peek(',')) {
                                    s.expect(',');
                                    continue;
                                }
                                break;
                            }
                        }
                        s.expect('}');
                        if (!have_name || !have_nx || !have_ny || !have_fp) {
                            s.fail("scene entry missing "
                                   "name/tile_nx/tile_ny/fingerprint");
                        }
                        if (info.shape.nx <= 0 || info.shape.ny <= 0) {
                            s.fail("scene tile shape must be positive");
                        }
                        if (out.count(name) != 0) {
                            s.fail("duplicate scene '" + name + "'");
                        }
                        out.emplace(std::move(name), info);
                        if (s.peek(',')) {
                            s.expect(',');
                            continue;
                        }
                        break;
                    }
                }
                s.expect(']');
            } else {
                s.skip_value();
            }
            if (s.peek(',')) {
                s.expect(',');
                continue;
            }
            break;
        }
    }
    s.expect('}');
    if (!saw_scenes) {
        s.fail("no scenes array");
    }
    return out;
}

Array2D<double> decode_tile_f64(std::string_view body, std::int64_t nx,
                                std::int64_t ny) {
    if (nx <= 0 || ny <= 0) {
        throw ConfigError{"decode_tile_f64 requires positive extents",
                          {"cluster", "client"}};
    }
    const auto expected = static_cast<std::size_t>(nx) *
                          static_cast<std::size_t>(ny) * sizeof(double);
    if (body.size() != expected) {
        throw IoError{"f64 tile body is " + std::to_string(body.size()) +
                          " bytes, expected " + std::to_string(expected),
                      {"cluster", "client"}};
    }
    Array2D<double> out(static_cast<std::size_t>(nx), static_cast<std::size_t>(ny));
    double* dst = out.data();
    const auto* src = reinterpret_cast<const unsigned char*>(body.data());
    for (std::size_t i = 0; i < out.size(); ++i) {
        std::uint64_t bits = 0;
        for (std::size_t b = 0; b < 8; ++b) {
            bits |= static_cast<std::uint64_t>(src[i * 8 + b]) << (8 * b);
        }
        static_assert(sizeof(bits) == sizeof(double));
        std::memcpy(&dst[i], &bits, sizeof(bits));
    }
    return out;
}

std::string url_encode(std::string_view s) {
    static constexpr char kHex[] = "0123456789ABCDEF";
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const bool plain = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                           c == '~' || c == '-';
        if (plain) {
            out += c;
        } else {
            const auto u = static_cast<unsigned char>(c);
            out += '%';
            out += kHex[u >> 4];
            out += kHex[u & 0xF];
        }
    }
    return out;
}

/// Per-node connection pool + breaker + counters.  The pool is hard-capped:
/// borrowers beyond `connections_per_node` block on the condition variable
/// until a connection frees (never a new socket — HttpServer workers are
/// sticky per connection).
struct ClusterClient::NodeState {
    NodeState(const NodeSpec& node_spec, const ClusterOptions& opt,
              obs::MetricsRegistry& registry)
        : spec(node_spec),
          fault_site("cluster.forward." + node_spec.name),
          breaker(fault::CircuitBreaker::Options{
              opt.breaker_failures, opt.breaker_open_ms,
              opt.breaker_half_open_successes,
              &registry.gauge("cluster.breaker.state." + node_spec.name),
              &registry.counter("cluster.breaker.opened")}),
          requests(registry.counter("cluster.node." + node_spec.name +
                                    ".requests")),
          failures(registry.counter("cluster.node." + node_spec.name +
                                    ".failures")) {}

    NodeSpec spec;
    std::string fault_site;
    fault::CircuitBreaker breaker;
    obs::Counter& requests;
    obs::Counter& failures;

    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::unique_ptr<net::HttpClient>> idle;
    std::size_t total = 0;
};

ClusterClient::ClusterClient(Topology topology, ClusterOptions opt)
    : map_(std::move(topology)),
      opt_(opt),
      registry_(opt.registry != nullptr ? opt.registry
                                        : &obs::MetricsRegistry::global()) {
    if (opt_.timeout_ms <= 0 || opt_.ready_timeout_ms <= 0) {
        throw ConfigError{"cluster timeouts must be positive",
                          {"cluster", "client"}};
    }
    if (opt_.connections_per_node == 0 || opt_.fanout_threads == 0) {
        throw ConfigError{"connections_per_node and fanout_threads must be > 0",
                          {"cluster", "client"}};
    }
    nodes_.reserve(map_.size());
    for (std::size_t i = 0; i < map_.size(); ++i) {
        nodes_.push_back(std::make_unique<NodeState>(map_.node(i), opt_, *registry_));
    }
    fanout_ = std::make_unique<ThreadPool>(opt_.fanout_threads);
    forwards_ = &registry_->counter("cluster.forwards");
    windows_ = &registry_->counter("cluster.windows");
    short_circuited_ = &registry_->counter("cluster.short_circuited");
    registry_->gauge("cluster.nodes").set(static_cast<std::int64_t>(map_.size()));
}

ClusterClient::~ClusterClient() = default;

ClusterClient::Borrowed ClusterClient::borrow(NodeState& node) {
    std::unique_lock lock(node.mutex);
    node.cv.wait(lock, [&] {
        return !node.idle.empty() || node.total < opt_.connections_per_node;
    });
    if (!node.idle.empty()) {
        Borrowed out{std::move(node.idle.back())};
        node.idle.pop_back();
        return out;
    }
    ++node.total;
    lock.unlock();
    net::HttpClient::Options copt;
    copt.timeout_ms = opt_.timeout_ms;
    copt.retry = opt_.retry;
    copt.registry = registry_;
    return Borrowed{std::make_unique<net::HttpClient>(node.spec.host,
                                                      node.spec.port, copt)};
}

void ClusterClient::give_back(NodeState& node, Borrowed conn) noexcept {
    std::lock_guard lock(node.mutex);
    node.idle.push_back(std::move(conn.client));
    node.cv.notify_one();
}

void ClusterClient::drop(NodeState& node) noexcept {
    std::lock_guard lock(node.mutex);
    --node.total;
    node.cv.notify_one();
}

net::ClientResponse ClusterClient::forward(
    std::size_t node, const std::string& target,
    const net::HttpClient::HeaderList& headers) {
    if (node >= nodes_.size()) {
        throw ConfigError{"forward to out-of-range node index",
                          {"cluster", "client"}};
    }
    NodeState& st = *nodes_[node];
    if (!st.breaker.allow()) {
        short_circuited_->add();
        throw NodeUnavailableError{
            st.spec.name,
            "node '" + st.spec.name + "' circuit breaker open",
            st.breaker.open_remaining_ms()};
    }
    st.requests.add();
    forwards_->add();
    Borrowed conn = borrow(st);
    try {
        if (fault::inject(st.fault_site.c_str())) {
            throw IoError{"injected cluster.forward fault",
                          {"cluster", st.spec.name}};
        }
        net::ClientResponse resp = conn.client->get(target, headers);
        // Any response — 2xx or not — means the node is alive and speaking;
        // only transport failures count against the breaker.
        st.breaker.record_success();
        give_back(st, std::move(conn));
        return resp;
    } catch (const IoError& e) {
        drop(st);
        st.breaker.record_failure();
        st.failures.add();
        throw NodeUnavailableError{
            st.spec.name,
            "node '" + st.spec.name + "' (" + st.spec.endpoint() +
                ") unreachable: " + e.what()};
    } catch (...) {
        // Non-transport escape (allocation, programming error): release the
        // pool slot but leave the breaker alone — the node did nothing wrong.
        drop(st);
        st.breaker.record_success();
        throw;
    }
}

void ClusterClient::discover_locked() {
    std::map<std::string, SceneInfo> agreed;
    std::string agreed_node;
    bool have = false;
    std::string errors;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        net::ClientResponse resp;
        try {
            resp = forward(i, "/");
        } catch (const IoError& e) {
            errors += std::string(errors.empty() ? "" : "; ") + e.what();
            continue;
        }
        if (resp.status != 200) {
            errors += std::string(errors.empty() ? "" : "; ") + "node '" +
                      map_.node(i).name + "' answered " +
                      std::to_string(resp.status) + " for /";
            continue;
        }
        std::map<std::string, SceneInfo> scenes = parse_scene_index(resp.body);
        if (!have) {
            agreed = std::move(scenes);
            agreed_node = map_.node(i).name;
            have = true;
        } else if (scenes != agreed) {
            throw ConfigError{"scene index disagreement between nodes '" +
                                  agreed_node + "' and '" + map_.node(i).name +
                                  "' — the fleet must serve identical scenes",
                              {"cluster", "client"}};
        }
    }
    if (!have) {
        throw IoError{"no cluster node reachable for scene discovery: " + errors,
                      {"cluster", "client"}};
    }
    scenes_ = std::move(agreed);
    discovered_.store(true, std::memory_order_release);
}

const std::map<std::string, SceneInfo>& ClusterClient::scenes() {
    if (!discovered_.load(std::memory_order_acquire)) {
        std::lock_guard lock(discovery_mutex_);
        if (!discovered_.load(std::memory_order_acquire)) {
            discover_locked();
        }
    }
    return scenes_;
}

std::pair<std::string, SceneInfo> ClusterClient::resolve_scene(
    const std::string* name) {
    const std::map<std::string, SceneInfo>& all = scenes();
    if (name == nullptr) {
        if (all.size() == 1) {
            return *all.begin();
        }
        throw net::HttpError{400,
                             "query parameter 'scene' is required when more "
                             "than one scene is served"};
    }
    const auto it = all.find(*name);
    if (it == all.end()) {
        throw net::HttpError{404, "unknown scene '" + *name + "'"};
    }
    return *it;
}

std::size_t ClusterClient::owner_of(const std::string& scene, const TileKey& key) {
    const std::map<std::string, SceneInfo>& all = scenes();
    const auto it = all.find(scene);
    if (it == all.end()) {
        throw net::HttpError{404, "unknown scene '" + scene + "'"};
    }
    return map_.owner(it->second.fingerprint, key);
}

TilePtr ClusterClient::fetch_tile_f64(std::size_t node, const std::string& scene,
                                      std::uint64_t expected_fingerprint,
                                      const TileShape& shape, const TileKey& key,
                                      bool cached_only) {
    std::string target = "/v1/tile?scene=" + url_encode(scene) +
                         "&tx=" + std::to_string(key.tx) +
                         "&ty=" + std::to_string(key.ty) +
                         "&z=" + std::to_string(key.z) + "&q=f64";
    if (cached_only) {
        target += "&cached=1";
    }
    const net::ClientResponse resp = forward(node, target);
    if (cached_only && resp.status == 404) {
        return nullptr;  // the peer-fill miss: the peer simply has no copy
    }
    if (!resp.ok()) {
        throw net::HttpError{resp.status >= 400 ? resp.status : 502,
                             "node '" + map_.node(node).name + "' answered " +
                                 std::to_string(resp.status) + " for " + target};
    }
    if (const std::string* fp = resp.header("x-rrs-fingerprint");
        fp == nullptr || *fp != std::to_string(expected_fingerprint)) {
        throw IoError{"node '" + map_.node(node).name +
                          "' served a different fingerprint for scene '" + scene +
                          "' — fleet scene files disagree",
                      {"cluster", "client"}};
    }
    return std::make_shared<const Array2D<double>>(
        decode_tile_f64(resp.body, shape.nx, shape.ny));
}

Array2D<double> ClusterClient::window(const std::string& scene, const Rect& region) {
    windows_->add();
    if (region.nx < 0 || region.ny < 0) {
        throw ConfigError{"window extents must be non-negative",
                          {"cluster", "client"}};
    }
    if (region.nx == 0 || region.ny == 0) {
        return Array2D<double>(static_cast<std::size_t>(region.nx),
                               static_cast<std::size_t>(region.ny));
    }
    const std::map<std::string, SceneInfo>& all = scenes();
    const auto it = all.find(scene);
    if (it == all.end()) {
        throw net::HttpError{404, "unknown scene '" + scene + "'"};
    }
    const SceneInfo info = it->second;
    const std::vector<TileKey> keys = covering_tiles(info.shape, region);
    std::vector<std::future<TilePtr>> futures;
    futures.reserve(keys.size());
    for (const TileKey& key : keys) {
        futures.push_back(fanout_->submit([this, &scene, info, key] {
            return fetch_tile_f64(map_.owner(info.fingerprint, key), scene,
                                  info.fingerprint, info.shape, key);
        }));
    }
    // Settle everything before reporting the first failure (get_many's
    // contract): no fetch is left running against an abandoned window.
    std::vector<TilePtr> tiles(keys.size());
    std::exception_ptr first_failure;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
            tiles[i] = futures[i].get();
        } catch (...) {
            if (!first_failure) {
                first_failure = std::current_exception();
            }
        }
    }
    if (first_failure) {
        std::rethrow_exception(first_failure);
    }
    // Stitch exactly like TileService::window — same overlap arithmetic,
    // same doubles, so re-encoding reproduces single-node bytes.
    Array2D<double> out(static_cast<std::size_t>(region.nx),
                        static_cast<std::size_t>(region.ny));
    for (std::size_t t = 0; t < keys.size(); ++t) {
        const Rect tile = tile_rect(info.shape, keys[t]);
        const Rect overlap = intersect(tile, region);
        const Array2D<double>& data = *tiles[t];
        for (std::int64_t y = overlap.y0; y < overlap.y1(); ++y) {
            for (std::int64_t x = overlap.x0; x < overlap.x1(); ++x) {
                out(static_cast<std::size_t>(x - region.x0),
                    static_cast<std::size_t>(y - region.y0)) =
                    data(static_cast<std::size_t>(x - tile.x0),
                         static_cast<std::size_t>(y - tile.y0));
            }
        }
    }
    return out;
}

ClusterClient::FleetReady ClusterClient::ready() {
    FleetReady out;
    out.nodes.resize(nodes_.size());
    std::vector<std::future<void>> probes;
    probes.reserve(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        probes.push_back(fanout_->submit([this, i, &out] {
            NodeHealth& health = out.nodes[i];
            health.name = map_.node(i).name;
            try {
                // Fresh connection, short deadline, no retries: a probe
                // must answer quickly even when the node is wedged, and
                // must not consume (or poison) the pooled connections.
                net::HttpClient::Options copt;
                copt.timeout_ms = opt_.ready_timeout_ms;
                net::HttpClient probe(map_.node(i).host, map_.node(i).port, copt);
                const net::ClientResponse resp = probe.get("/readyz");
                health.status = resp.status;
                health.detail = resp.body;
                health.ready = resp.status == 200 && transport_ok(resp.status);
            } catch (const IoError& e) {
                health.status = 0;
                health.detail = e.what();
                health.ready = false;
            }
        }));
    }
    for (auto& probe : probes) {
        probe.get();
    }
    out.ready = true;
    for (const NodeHealth& health : out.nodes) {
        out.ready = out.ready && health.ready;
    }
    return out;
}

fault::CircuitBreaker::State ClusterClient::breaker_state(std::size_t node) const {
    if (node >= nodes_.size()) {
        throw ConfigError{"breaker_state of out-of-range node index",
                          {"cluster", "client"}};
    }
    return nodes_[node]->breaker.state();
}

}  // namespace rrs::cluster
