#include "cluster/peer_fill.hpp"

#include <memory>
#include <utility>

#include "cluster/client.hpp"

namespace rrs::cluster {

RemoteFill make_peer_filler(const Topology& previous, std::string self,
                            std::string scene, std::uint64_t fingerprint,
                            TileShape shape, PeerFillOptions opt) {
    if (scene.empty()) {
        throw ConfigError{"peer filler requires a scene name",
                          {"cluster", "peer_fill"}};
    }
    if (fingerprint == 0) {
        throw ConfigError{"peer filler requires a nonzero fingerprint",
                          {"cluster", "peer_fill"}};
    }
    check_tile_shape(shape);
    ClusterOptions copt;
    copt.timeout_ms = opt.timeout_ms;
    copt.connections_per_node = opt.connections_per_node;
    copt.breaker_failures = opt.breaker_failures;
    copt.breaker_open_ms = opt.breaker_open_ms;
    copt.fanout_threads = 1;  // fills are per-miss; no window fan-out here
    copt.registry = opt.registry;
    obs::MetricsRegistry& registry =
        opt.registry != nullptr ? *opt.registry : obs::MetricsRegistry::global();
    obs::Counter& fills = registry.counter("cluster.peer_fills");
    obs::Counter& misses = registry.counter("cluster.peer_fill_misses");
    obs::Counter& errors = registry.counter("cluster.peer_fill_errors");
    // The client owns the previous-epoch ShardMap, the per-peer connection
    // pools, and the per-peer breakers; shared by copy into the closure.
    auto client = std::make_shared<ClusterClient>(previous, copt);
    const std::size_t self_index = client->map().index_of(self);
    return [client, self_index, scene = std::move(scene), fingerprint, shape,
            &fills, &misses, &errors](const TileKey& key) -> TilePtr {
        const std::size_t prev_owner = client->map().owner(fingerprint, key);
        if (prev_owner == self_index) {
            // This node already owned the key last epoch: if it isn't in
            // our own RAM/L2 (the caller just checked), nobody has it.
            return nullptr;
        }
        try {
            TilePtr tile = client->fetch_tile_f64(prev_owner, scene, fingerprint,
                                                  shape, key, /*cached_only=*/true);
            if (tile != nullptr) {
                fills.add();
            } else {
                misses.add();
            }
            return tile;
        } catch (const Error&) {
            // Any failure — peer down, breaker open, protocol mismatch —
            // degrades to local generation; the hook must never throw.
            errors.add();
            return nullptr;
        }
    };
}

}  // namespace rrs::cluster
