#pragma once

/// \file shard_map.hpp
/// Weighted rendezvous (highest-random-weight) partitioning of the tile
/// keyspace across a fleet topology (DESIGN.md §17).
///
/// Every `(fingerprint, TileKey)` pair is owned by exactly one node.  The
/// map scores each node with the weighted-rendezvous formula
///
///     u_i     = uniform(0,1) drawn from hash_coords(fp ^ salt_i, tx, ty, z-salt)
///     score_i = -weight_i / log(u_i)
///
/// and the highest score wins.  The draw reuses the repo's deterministic
/// lattice hash (rng/hash.hpp) — pure 64-bit integer arithmetic, no byte
/// serialization — so ownership is identical across processes, platforms,
/// and endiannesses.  `salt_i` derives from the node's *name* (never its
/// list position), which yields the two properties the cluster leans on:
///
///  * Balance: each node owns an expected weight_i/Σweights share of any
///    large keyspace (chi-square-tested in tests/test_cluster.cpp).
///  * Minimal disruption: adding or removing a node only moves keys
///    to/from that node — a key's scores against the surviving nodes are
///    unchanged, so no key ever moves between survivors.  Removing one of
///    N equal-weight nodes re-homes ≈1/N of the keyspace.
///
/// Work-aware weighting: per-tile cost is *not* uniform when correlation
/// lengths vary (the paper's inhomogeneous parameters — a heavy-cl region
/// costs a larger kernel halo per tile).  Because rendezvous hashing
/// scatters adjacent tiles across nodes, a contiguous heavy region spreads
/// evenly; `tile_work` / `work_shares` quantify the expected per-node work
/// so operators can verify weights against measured capacity.

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "cluster/topology.hpp"
#include "service/tile_key.hpp"

namespace rrs::cluster {

/// Per-node salt: a pure function of the node *name*, so a node's draws —
/// and therefore every surviving node's scores — are stable across
/// topology edits.  Exposed for tests.
std::uint64_t node_salt(std::string_view name) noexcept;

/// See file comment.  Immutable after construction; safe to share across
/// threads by const reference.
class ShardMap {
public:
    /// Throws ConfigError when the topology has no nodes (parse_topology
    /// already guarantees non-empty fleets and positive finite weights).
    explicit ShardMap(Topology topology);

    /// Index (into `topology().nodes`) of the node owning this key.
    std::size_t owner(std::uint64_t fingerprint, const TileKey& key) const noexcept;

    /// The owning node itself.
    const NodeSpec& owner_node(std::uint64_t fingerprint,
                               const TileKey& key) const noexcept {
        return topology_.nodes[owner(fingerprint, key)];
    }

    std::size_t size() const noexcept { return topology_.nodes.size(); }
    std::uint64_t epoch() const noexcept { return topology_.epoch; }
    const NodeSpec& node(std::size_t i) const noexcept {
        return topology_.nodes[i];
    }
    const Topology& topology() const noexcept { return topology_; }

    /// Index of the node named `name`, or `size()` when absent.
    std::size_t index_of(std::string_view name) const noexcept;

private:
    Topology topology_;
    std::vector<std::uint64_t> salts_;
};

/// Relative generation cost of one tile whose kernel halo is
/// (halo_x, halo_y) lattice points per side: the input-noise footprint
/// (nx + 2·halo_x)·(ny + 2·halo_y) the convolution engines read — the
/// dominant per-tile term for both the separable and FFT paths.  Throws
/// ConfigError on a negative halo or non-positive shape.
double tile_work(const TileShape& shape, std::int64_t halo_x, std::int64_t halo_y);

/// Expected per-node share (fractions summing to 1) of the total work over
/// `keys`, where each tile's cost comes from `cost` (empty = every tile
/// costs 1).  This is the planning/verification tool for work-aware
/// weights: with weights proportional to node capacity, shares should
/// track weight_i/Σweights even when `cost` concentrates heavy tiles in
/// one region — rendezvous scatter is what spreads them.  Throws
/// ConfigError when `keys` is empty or total cost is not positive.
std::vector<double> work_shares(const ShardMap& map, std::uint64_t fingerprint,
                                const std::vector<TileKey>& keys,
                                const std::function<double(const TileKey&)>& cost = {});

}  // namespace rrs::cluster
