#include "cluster/topology.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

namespace rrs::cluster {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
    throw ConfigError{"topology line " + std::to_string(line_no) + ": " + message,
                      {"cluster", "topology"}};
}

bool name_char(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

bool valid_name(std::string_view s) noexcept {
    if (s.empty() || s.size() > 64) {
        return false;
    }
    for (const char c : s) {
        if (!name_char(c)) {
            return false;
        }
    }
    return true;
}

std::string_view trim(std::string_view s) noexcept {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
        s.remove_suffix(1);
    }
    return s;
}

/// Split a trimmed line on runs of spaces/tabs.
std::vector<std::string_view> tokens_of(std::string_view line) {
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
            ++i;
        }
        const std::size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
            ++i;
        }
        if (i > start) {
            out.push_back(line.substr(start, i - start));
        }
    }
    return out;
}

std::uint64_t parse_u64(std::string_view s, std::size_t line_no, const char* what) {
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
        fail(line_no, std::string(what) + " must be a plain base-10 integer (got '" +
                          std::string(s) + "')");
    }
    return value;
}

double parse_weight(std::string_view s, std::size_t line_no) {
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
        fail(line_no, "weight must be a number (got '" + std::string(s) + "')");
    }
    if (!std::isfinite(value) || value <= 0.0) {
        fail(line_no, "weight must be finite and > 0 (got '" + std::string(s) + "')");
    }
    return value;
}

NodeSpec parse_node(const std::vector<std::string_view>& toks, std::size_t line_no) {
    if (toks.size() < 3 || toks.size() > 4) {
        fail(line_no, "expected 'node NAME HOST:PORT [weight=W]'");
    }
    NodeSpec node;
    if (!valid_name(toks[1])) {
        fail(line_no, "node name must be 1-64 chars of [A-Za-z0-9_.-] (got '" +
                          std::string(toks[1]) + "')");
    }
    node.name = std::string(toks[1]);
    const std::string_view endpoint = toks[2];
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == endpoint.size()) {
        fail(line_no, "endpoint must be HOST:PORT (got '" + std::string(endpoint) +
                          "')");
    }
    const std::string_view host = endpoint.substr(0, colon);
    if (!valid_name(host)) {
        fail(line_no, "host must be 1-64 chars of [A-Za-z0-9_.-] (got '" +
                          std::string(host) + "')");
    }
    node.host = std::string(host);
    const std::uint64_t port =
        parse_u64(endpoint.substr(colon + 1), line_no, "port");
    if (port < 1 || port > 65535) {
        fail(line_no, "port must be in [1, 65535] (got " + std::to_string(port) +
                          ")");
    }
    node.port = static_cast<std::uint16_t>(port);
    if (toks.size() == 4) {
        constexpr std::string_view kPrefix = "weight=";
        if (toks[3].substr(0, kPrefix.size()) != kPrefix) {
            fail(line_no, "expected 'weight=W' (got '" + std::string(toks[3]) + "')");
        }
        node.weight = parse_weight(toks[3].substr(kPrefix.size()), line_no);
    }
    return node;
}

}  // namespace

const NodeSpec* Topology::find(std::string_view name) const noexcept {
    for (const NodeSpec& node : nodes) {
        if (node.name == name) {
            return &node;
        }
    }
    return nullptr;
}

Topology parse_topology(std::string_view text) {
    Topology topo;
    bool saw_epoch = false;
    std::size_t line_no = 0;
    while (!text.empty()) {
        ++line_no;
        const std::size_t nl = text.find('\n');
        std::string_view line =
            nl == std::string_view::npos ? text : text.substr(0, nl);
        text = nl == std::string_view::npos ? std::string_view{}
                                            : text.substr(nl + 1);
        if (!line.empty() && line.back() == '\r') {
            line.remove_suffix(1);
        }
        if (const std::size_t hash = line.find('#');
            hash != std::string_view::npos) {
            line = line.substr(0, hash);
        }
        line = trim(line);
        if (line.empty()) {
            continue;
        }
        const std::vector<std::string_view> toks = tokens_of(line);
        if (line.substr(0, 5) == "epoch" &&
            (line.size() == 5 || line[5] == ' ' || line[5] == '\t' ||
             line[5] == '=')) {
            // Accept 'epoch = N' and 'epoch=N' alike: everything after the
            // keyword must be '=' followed by the integer.
            std::string_view rest = trim(line.substr(std::size_t{5}));
            if (rest.empty() || rest.front() != '=') {
                fail(line_no, "expected 'epoch = N'");
            }
            rest = trim(rest.substr(1));
            if (saw_epoch) {
                fail(line_no, "duplicate epoch directive");
            }
            saw_epoch = true;
            topo.epoch = parse_u64(rest, line_no, "epoch");
        } else if (toks[0] == "node") {
            if (topo.nodes.size() >= kMaxNodes) {
                fail(line_no, "more than " + std::to_string(kMaxNodes) + " nodes");
            }
            NodeSpec node = parse_node(toks, line_no);
            for (const NodeSpec& seen : topo.nodes) {
                if (seen.name == node.name) {
                    fail(line_no, "duplicate node name '" + node.name + "'");
                }
                if (seen.host == node.host && seen.port == node.port) {
                    fail(line_no,
                         "duplicate endpoint '" + node.endpoint() + "'");
                }
            }
            topo.nodes.push_back(std::move(node));
        } else {
            fail(line_no, "unknown directive '" + std::string(toks[0]) +
                              "' (expected 'epoch' or 'node')");
        }
    }
    if (topo.nodes.empty()) {
        throw ConfigError{"topology declares no nodes", {"cluster", "topology"}};
    }
    return topo;
}

Topology load_topology(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw IoError{"cannot read topology file '" + path + "'",
                      {"cluster", "topology"}};
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad()) {
        throw IoError{"error reading topology file '" + path + "'",
                      {"cluster", "topology"}};
    }
    try {
        return parse_topology(text.str());
    } catch (const ConfigError& e) {
        throw ConfigError{std::string(e.what()) + " (file '" + path + "')",
                          {"cluster", "topology"}};
    }
}

}  // namespace rrs::cluster
