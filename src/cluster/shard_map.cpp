#include "cluster/shard_map.hpp"

#include <cmath>
#include <utility>

#include "rng/hash.hpp"

namespace rrs::cluster {

namespace {

/// Folds the zoom level into the per-key salt the same way TileAddressHash
/// does, under a cluster-private tag so shard draws are independent of
/// cache bucket draws.
std::uint64_t zoom_salt(std::int32_t z) noexcept {
    return 0xC1A57EADu ^
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(z)) << 16);
}

/// One node's uniform(0,1) draw for a key.  `(h >> 11) | 1` keeps the
/// 53-bit mantissa range and never yields 0, so log(u) is finite and < 0.
double uniform_draw(std::uint64_t salt, std::uint64_t fingerprint,
                    const TileKey& key) noexcept {
    const std::uint64_t h =
        hash_coords(fingerprint ^ salt, key.tx, key.ty, zoom_salt(key.z));
    return static_cast<double>((h >> 11) | 1u) * 0x1.0p-53;
}

}  // namespace

std::uint64_t node_salt(std::string_view name) noexcept {
    // FNV-1a over the name bytes, finalized through mix64 for avalanche.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return mix64(h ^ 0x5A17C0DEULL);
}

ShardMap::ShardMap(Topology topology) : topology_(std::move(topology)) {
    if (topology_.nodes.empty()) {
        throw ConfigError{"ShardMap requires at least one node",
                          {"cluster", "shard_map"}};
    }
    salts_.reserve(topology_.nodes.size());
    for (const NodeSpec& node : topology_.nodes) {
        salts_.push_back(node_salt(node.name));
    }
}

std::size_t ShardMap::owner(std::uint64_t fingerprint,
                            const TileKey& key) const noexcept {
    std::size_t best = 0;
    double best_score = -1.0;
    for (std::size_t i = 0; i < salts_.size(); ++i) {
        const double u = uniform_draw(salts_[i], fingerprint, key);
        // Weighted rendezvous: -w/log(u) is an Exp(1/w) order statistic, so
        // node i wins with probability w_i/Σw — exactly the declared share.
        const double score = -topology_.nodes[i].weight / std::log(u);
        if (score > best_score ||
            (score == best_score &&
             topology_.nodes[i].name < topology_.nodes[best].name)) {
            best = i;
            best_score = score;
        }
    }
    return best;
}

std::size_t ShardMap::index_of(std::string_view name) const noexcept {
    for (std::size_t i = 0; i < topology_.nodes.size(); ++i) {
        if (topology_.nodes[i].name == name) {
            return i;
        }
    }
    return topology_.nodes.size();
}

double tile_work(const TileShape& shape, std::int64_t halo_x, std::int64_t halo_y) {
    check_tile_shape(shape);
    if (halo_x < 0 || halo_y < 0) {
        throw ConfigError{"tile_work requires non-negative halos",
                          {"cluster", "shard_map"}};
    }
    return static_cast<double>(shape.nx + 2 * halo_x) *
           static_cast<double>(shape.ny + 2 * halo_y);
}

std::vector<double> work_shares(const ShardMap& map, std::uint64_t fingerprint,
                                const std::vector<TileKey>& keys,
                                const std::function<double(const TileKey&)>& cost) {
    if (keys.empty()) {
        throw ConfigError{"work_shares requires a non-empty keyspace",
                          {"cluster", "shard_map"}};
    }
    std::vector<double> shares(map.size(), 0.0);
    double total = 0.0;
    for (const TileKey& key : keys) {
        const double c = cost ? cost(key) : 1.0;
        shares[map.owner(fingerprint, key)] += c;
        total += c;
    }
    if (!(total > 0.0)) {
        throw ConfigError{"work_shares requires positive total cost",
                          {"cluster", "shard_map"}};
    }
    for (double& s : shares) {
        s /= total;
    }
    return shares;
}

}  // namespace rrs::cluster
