#pragma once

/// \file proxy.hpp
/// The cluster routing tier: `make_cluster_router` builds the Router an
/// `rrsd --cluster TOPOLOGY` proxy serves (DESIGN.md §17).  The proxy is
/// stateless — it owns no generator, no cache of doubles, no store; it owns
/// a ClusterClient and maps the single-node tile API onto the fleet so
/// existing clients (rrsquery, browsers, tests) need no changes:
///
///   GET /v1/tile     → forwarded verbatim to the tile's owning shard
///                      (rendezvous hashing over (fingerprint, key)); the
///                      response streams back byte-for-byte.  Conditional
///                      GETs are answered 304 locally — the ETag is a pure
///                      function of (fingerprint, key, encoding), so no
///                      shard round-trip is needed.  When the owner is
///                      unavailable (breaker open / transport down) the
///                      proxy degrades per-shard: the last good response
///                      body for that exact (scene, key, encoding) is
///                      replayed with `X-RRS-Stale: 1`, else 503 +
///                      Retry-After — other shards' tiles are unaffected.
///   GET /v1/window   → covering tiles fan out to their owners as q=f64,
///                      the doubles are stitched exactly like
///                      TileService::window, and the result is re-encoded
///                      with the same surface_response framing — the proxy
///                      body is byte-identical to a single node serving the
///                      same scene (the stitching contract,
///                      tests/test_cluster.cpp).
///   GET /v1/pyramid  → forwarded to the top tile's owner (one shard can
///                      always derive a pyramid; splitting levels across
///                      shards would re-ship every child).
///   GET /readyz      → fleet aggregation: 200 iff every node's /readyz is
///                      200, else 503 + per-node detail JSON.
///   GET /            → fleet index: the agreed scene table plus a
///                      `cluster` block (epoch, nodes, weights) — parseable
///                      by parse_scene_index, so a ClusterClient can be
///                      pointed at a proxy.
///   GET /healthz, /metrics  → as on a single node.
///
/// All handlers are thread-safe (ClusterClient is; the stale store is
/// internally locked) and run on HttpServer workers.

#include <cstddef>
#include <memory>

#include "cluster/client.hpp"
#include "net/router.hpp"
#include "obs/metrics.hpp"

namespace rrs::cluster {

/// Limits and degradation knobs of the proxy tier.
struct ProxyOptions {
    /// Maximum nx*ny lattice points one /v1/window may ask for — mirrors
    /// TileRoutesOptions::max_window_points so the proxy admission-checks
    /// before fanning out.
    std::size_t max_window_points = std::size_t{16} << 20;
    /// Byte budget of the raw-response stale store backing per-shard
    /// degradation (0 disables stale replay; unavailable shards then 503).
    std::size_t stale_bytes = std::size_t{32} << 20;
};

/// Build the proxy route table over `client` (shared — handlers run
/// concurrently).  `registry` backs /metrics; nullptr = the global
/// registry.  Throws ConfigError on a null client.
net::Router make_cluster_router(std::shared_ptr<ClusterClient> client,
                                obs::MetricsRegistry* registry = nullptr,
                                ProxyOptions opt = {});

}  // namespace rrs::cluster
