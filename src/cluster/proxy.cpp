#include "cluster/proxy.hpp"

#include <cstdint>
#include <cstdio>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "net/http.hpp"
#include "net/query.hpp"
#include "net/tile_routes.hpp"
#include "service/tile_key.hpp"

namespace rrs::cluster {

namespace {

/// Last-known-good raw responses for per-shard degradation, LRU-evicted
/// under a byte budget.  Keys are exact (scene, tile, encoding) strings —
/// a stale replay must be the same bytes the shard last served, headers
/// included, so the store keeps the whole passthrough response.
class StaleBodyStore {
public:
    struct Entry {
        std::string content_type;
        std::string body;
        std::vector<std::pair<std::string, std::string>> headers;
    };

    explicit StaleBodyStore(std::size_t byte_budget) : budget_(byte_budget) {}

    void put(const std::string& key, Entry entry) {
        if (budget_ == 0) {
            return;
        }
        const std::size_t cost = entry_cost(key, entry);
        if (cost > budget_) {
            return;  // one oversized body must not flush the whole store
        }
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            bytes_ -= entry_cost(key, it->second.first);
            lru_.erase(it->second.second);
            entries_.erase(it);
        }
        lru_.push_front(key);
        entries_.emplace(key, std::make_pair(std::move(entry), lru_.begin()));
        bytes_ += cost;
        while (bytes_ > budget_ && !lru_.empty()) {
            const std::string& victim = lru_.back();
            auto vit = entries_.find(victim);
            bytes_ -= entry_cost(victim, vit->second.first);
            entries_.erase(vit);
            lru_.pop_back();
        }
    }

    bool get(const std::string& key, Entry& out) {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            return false;
        }
        lru_.splice(lru_.begin(), lru_, it->second.second);
        out = it->second.first;
        return true;
    }

private:
    static std::size_t entry_cost(const std::string& key, const Entry& e) {
        std::size_t cost = key.size() + e.content_type.size() + e.body.size() + 64;
        for (const auto& [name, value] : e.headers) {
            cost += name.size() + value.size() + 8;
        }
        return cost;
    }

    std::size_t budget_;
    std::mutex mutex_;
    std::list<std::string> lru_;
    std::unordered_map<std::string,
                       std::pair<Entry, std::list<std::string>::iterator>>
        entries_;
    std::size_t bytes_ = 0;
};

struct ProxyState {
    std::shared_ptr<ClusterClient> client;
    obs::MetricsRegistry* registry = nullptr;
    ProxyOptions opt;
    std::unique_ptr<StaleBodyStore> stale;
    obs::Counter* forwarded = nullptr;      ///< cluster.proxy.forwarded
    obs::Counter* not_modified = nullptr;   ///< cluster.proxy.not_modified
    obs::Counter* stale_served = nullptr;   ///< cluster.proxy.stale_served
    obs::Counter* unavailable = nullptr;    ///< cluster.proxy.unavailable
    obs::Gauge* ready = nullptr;            ///< net.ready (set by HttpServer)
};

std::string stale_key(const std::string& scene, const TileKey& key,
                      net::WireEncoding enc) {
    return scene + '|' + std::to_string(key.tx) + '|' + std::to_string(key.ty) +
           '|' + std::to_string(key.z) + '|' + net::encoding_name(enc);
}

/// Re-frame a shard's response as our own: status and body verbatim,
/// Content-Type into its slot, hop-managed headers (Content-Length,
/// Connection) dropped — the server re-emits them for this hop.
net::HttpResponse passthrough(const net::ClientResponse& upstream) {
    net::HttpResponse resp;
    resp.status = upstream.status;
    resp.body = upstream.body;
    for (const auto& [name, value] : upstream.headers) {
        if (name == "content-length" || name == "connection") {
            continue;
        }
        if (name == "content-type") {
            resp.content_type = value;
            continue;
        }
        resp.extra_headers.emplace_back(name, value);
    }
    return resp;
}

net::HttpResponse unavailable_response(const ProxyState& state,
                                       const NodeUnavailableError& err) {
    if (state.unavailable != nullptr) {
        state.unavailable->add();
    }
    net::HttpResponse resp = net::error_response(
        503, "shard '" + err.node() + "' unavailable: " + err.what());
    const int secs = (err.retry_after_ms() + 999) / 1000;
    resp.extra_headers.emplace_back("Retry-After",
                                    std::to_string(secs > 0 ? secs : 1));
    return resp;
}

/// Discovery failed (no shard answered the index probe): the whole fleet
/// is unreachable, which for a proxy is a 503-and-retry, not a 500.
net::HttpResponse fleet_unreachable(const ProxyState& state, const IoError& err) {
    if (state.unavailable != nullptr) {
        state.unavailable->add();
    }
    net::HttpResponse resp =
        net::error_response(503, std::string("fleet unreachable: ") + err.what());
    resp.extra_headers.emplace_back("Retry-After", "1");
    return resp;
}

net::HttpResponse handle_tile(ProxyState& state, const net::HttpRequest& req) {
    const auto [scene, info] = state.client->resolve_scene(req.query_param("scene"));
    const net::TileQuery query = net::parse_tile_query(req);
    const TileKey& key = query.key;
    // Conditional GET answered here: the ETag is a pure function of the
    // fleet-agreed fingerprint, so a match never needs the shard.
    const std::string etag =
        net::tile_etag(info.fingerprint, key, net::encoding_name(query.encoding));
    if (const std::string* inm = req.header("if-none-match");
        inm != nullptr && net::etag_matches(*inm, etag)) {
        if (state.not_modified != nullptr) {
            state.not_modified->add();
        }
        net::HttpResponse resp;
        resp.status = 304;
        resp.extra_headers.emplace_back("ETag", etag);
        return resp;
    }
    const std::size_t owner = state.client->owner_of(scene, key);
    const std::string cache_key = stale_key(scene, key, query.encoding);
    try {
        const net::ClientResponse upstream =
            state.client->forward(owner, req.target);
        if (state.forwarded != nullptr) {
            state.forwarded->add();
        }
        net::HttpResponse resp = passthrough(upstream);
        if (upstream.ok() && state.stale != nullptr) {
            StaleBodyStore::Entry entry;
            entry.content_type = resp.content_type;
            entry.body = resp.body;
            entry.headers = resp.extra_headers;
            state.stale->put(cache_key, std::move(entry));
        }
        return resp;
    } catch (const NodeUnavailableError& err) {
        StaleBodyStore::Entry entry;
        if (state.stale != nullptr && state.stale->get(cache_key, entry)) {
            // Degrade per-shard: replay the owner's last good bytes.  Tiles
            // are pure, so the body (and its ETag) is still the truth.
            if (state.stale_served != nullptr) {
                state.stale_served->add();
            }
            net::HttpResponse resp;
            resp.status = 200;
            resp.content_type = std::move(entry.content_type);
            resp.body = std::move(entry.body);
            resp.extra_headers = std::move(entry.headers);
            resp.extra_headers.emplace_back("X-RRS-Stale", "1");
            return resp;
        }
        return unavailable_response(state, err);
    }
}

net::HttpResponse handle_window(ProxyState& state, const net::HttpRequest& req) {
    const auto [scene, info] = state.client->resolve_scene(req.query_param("scene"));
    const net::WindowQuery query = net::parse_window_query(req);
    const Rect& region = query.region;
    const auto cap = static_cast<std::uint64_t>(state.opt.max_window_points);
    if (region.nx > 0 && region.ny > 0) {
        const auto nx = static_cast<std::uint64_t>(region.nx);
        const auto ny = static_cast<std::uint64_t>(region.ny);
        if (nx > cap || ny > cap / nx) {
            throw net::HttpError{413, "window of " + std::to_string(region.nx) +
                                          "x" + std::to_string(region.ny) +
                                          " points exceeds the cap of " +
                                          std::to_string(cap) + " points"};
        }
    }
    try {
        const Array2D<double> window = state.client->window(scene, region);
        return net::surface_response(window, region, scene, info.fingerprint,
                                     query.encoding);
    } catch (const NodeUnavailableError& err) {
        // No stale fallback — same rule as the single-node route: windows
        // are arbitrary shapes with no last-known-good body.
        return unavailable_response(state, err);
    }
}

net::HttpResponse handle_pyramid(ProxyState& state, const net::HttpRequest& req) {
    const auto [scene, info] = state.client->resolve_scene(req.query_param("scene"));
    (void)info;
    const net::PyramidQuery query = net::parse_pyramid_query(req);
    // One shard owns the top tile and can derive every level beneath it;
    // splitting levels across shards would re-ship each child tile.
    const std::size_t owner = state.client->owner_of(scene, query.top);
    try {
        const net::ClientResponse upstream =
            state.client->forward(owner, req.target);
        if (state.forwarded != nullptr) {
            state.forwarded->add();
        }
        return passthrough(upstream);
    } catch (const NodeUnavailableError& err) {
        return unavailable_response(state, err);
    }
}

net::HttpResponse handle_index(ProxyState& state) {
    const std::map<std::string, SceneInfo>& scenes = state.client->scenes();
    std::string body = "{\"scenes\":[";
    bool first = true;
    for (const auto& [name, info] : scenes) {
        if (!first) {
            body += ',';
        }
        first = false;
        body += "{\"name\":\"" + net::json_escape(name) +
                "\",\"tile_nx\":" + std::to_string(info.shape.nx) +
                ",\"tile_ny\":" + std::to_string(info.shape.ny) +
                ",\"fingerprint\":" + std::to_string(info.fingerprint) + "}";
    }
    const ShardMap& map = state.client->map();
    body += "],\"cluster\":{\"epoch\":" + std::to_string(map.epoch()) +
            ",\"nodes\":[";
    for (std::size_t i = 0; i < map.size(); ++i) {
        const NodeSpec& spec = map.node(i);
        if (i > 0) {
            body += ',';
        }
        char weight[64];
        std::snprintf(weight, sizeof(weight), "%.17g", spec.weight);
        body += "{\"name\":\"" + net::json_escape(spec.name) +
                "\",\"endpoint\":\"" + net::json_escape(spec.endpoint()) +
                "\",\"weight\":" + weight + "}";
    }
    body +=
        "]},\"endpoints\":[\"/\",\"/healthz\",\"/readyz\",\"/metrics\","
        "\"/v1/tile\",\"/v1/window\",\"/v1/pyramid\"]}";
    return net::HttpResponse::json(200, std::move(body));
}

/// Fleet readiness: this proxy must itself be accepting (net.ready) AND
/// every shard's /readyz must answer 200.  The per-node detail rides in
/// the body so operators see *which* shard is the problem.
net::HttpResponse handle_readyz(ProxyState& state) {
    if (state.ready != nullptr && state.ready->value() != 1) {
        net::HttpResponse resp = net::HttpResponse::json(
            503, "{\"ready\":false,\"reason\":\"draining\"}");
        resp.extra_headers.emplace_back("Retry-After", "1");
        return resp;
    }
    const ClusterClient::FleetReady fleet = state.client->ready();
    std::string body = std::string("{\"ready\":") +
                       (fleet.ready ? "true" : "false") + ",\"nodes\":[";
    bool first = true;
    for (const ClusterClient::NodeHealth& node : fleet.nodes) {
        if (!first) {
            body += ',';
        }
        first = false;
        body += "{\"name\":\"" + net::json_escape(node.name) +
                "\",\"ready\":" + (node.ready ? "true" : "false") +
                ",\"status\":" + std::to_string(node.status) + "}";
    }
    body += "]}";
    net::HttpResponse resp =
        net::HttpResponse::json(fleet.ready ? 200 : 503, std::move(body));
    if (!fleet.ready) {
        resp.extra_headers.emplace_back("Retry-After", "1");
    }
    return resp;
}

}  // namespace

net::Router make_cluster_router(std::shared_ptr<ClusterClient> client,
                                obs::MetricsRegistry* registry, ProxyOptions opt) {
    if (client == nullptr) {
        throw ConfigError{"make_cluster_router requires a non-null client",
                          {"cluster", "proxy"}};
    }
    auto state = std::make_shared<ProxyState>();
    state->client = std::move(client);
    state->registry =
        registry != nullptr ? registry : &obs::MetricsRegistry::global();
    state->opt = opt;
    if (opt.stale_bytes > 0) {
        state->stale = std::make_unique<StaleBodyStore>(opt.stale_bytes);
    }
    state->forwarded = &state->registry->counter("cluster.proxy.forwarded");
    state->not_modified = &state->registry->counter("cluster.proxy.not_modified");
    state->stale_served = &state->registry->counter("cluster.proxy.stale_served");
    state->unavailable = &state->registry->counter("cluster.proxy.unavailable");
    state->ready = &state->registry->gauge("net.ready");

    // Discovery (and therefore shard traffic) is lazy: each handler wraps
    // its first-contact IoError into a 503-and-retry instead of a 500 — a
    // proxy in front of a fleet that is still booting must stay up.
    net::Router router;
    router.add("/healthz", [](const net::HttpRequest&) {
        return net::HttpResponse::text(200, "ok\n");
    });
    router.add("/readyz", [state](const net::HttpRequest&) {
        try {
            return handle_readyz(*state);
        } catch (const IoError& err) {
            return fleet_unreachable(*state, err);
        }
    });
    router.add("/metrics", [state](const net::HttpRequest&) {
        return net::HttpResponse::json(200, state->registry->to_json());
    });
    router.add("/", [state](const net::HttpRequest&) {
        try {
            return handle_index(*state);
        } catch (const IoError& err) {
            return fleet_unreachable(*state, err);
        }
    });
    router.add("/v1/tile", [state](const net::HttpRequest& req) {
        try {
            return handle_tile(*state, req);
        } catch (const NodeUnavailableError& err) {
            return unavailable_response(*state, err);
        } catch (const net::HttpError&) {
            throw;
        } catch (const IoError& err) {
            return fleet_unreachable(*state, err);
        }
    });
    router.add("/v1/window", [state](const net::HttpRequest& req) {
        try {
            return handle_window(*state, req);
        } catch (const NodeUnavailableError& err) {
            return unavailable_response(*state, err);
        } catch (const net::HttpError&) {
            throw;
        } catch (const IoError& err) {
            return fleet_unreachable(*state, err);
        }
    });
    router.add("/v1/pyramid", [state](const net::HttpRequest& req) {
        try {
            return handle_pyramid(*state, req);
        } catch (const NodeUnavailableError& err) {
            return unavailable_response(*state, err);
        } catch (const net::HttpError&) {
            throw;
        } catch (const IoError& err) {
            return fleet_unreachable(*state, err);
        }
    });
    return router;
}

}  // namespace rrs::cluster
