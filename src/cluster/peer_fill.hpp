#pragma once

/// \file peer_fill.hpp
/// Peer cache-fill across topology epochs (DESIGN.md §17).
///
/// When a fleet reshard s (epoch N-1 → N), every key that changed owner is
/// cold on its new node — naively, a reshard triggers a cold-generation
/// storm exactly when the fleet is most fragile.  Peer fill warms from
/// neighbors instead: a node that misses RAM and L2 first asks the key's
/// *previous* owner (computed from the prior epoch's ShardMap) for its
/// copy, and only generates when the peer doesn't have one either.
///
/// Protocol (one GET, reusing the tile wire format end-to-end):
///
///     GET /v1/tile?scene=S&tx=..&ty=..&z=..&q=f64&cached=1
///
///  * `q=f64` — the bit-exact encoding, so a peer-filled tile is
///    byte-identical to local generation (asserted in tests).
///  * `cached=1` — "only-if-cached": the peer answers from its RAM cache
///    or L2 store and 404s otherwise, *never* generates and never
///    peer-fills in turn — the recursion/storm terminator.
///  * The X-RRS-Fingerprint response header must match the local scene
///    fingerprint, or the fill is rejected (a fleet with disagreeing scene
///    files must not cross-pollinate).
///
/// The filler plugs into TileService::Options::remote_fill: it is called
/// on the miss-leader path after the L2 lookup and before generation, must
/// never throw, and returns nullptr to mean "generate locally" (peer miss,
/// peer unreachable, self-owned key, any error).  Peers sit behind
/// circuit breakers, so a decommissioned previous owner degrades into
/// fast local generation instead of per-tile connect timeouts.
///
/// Counters (in the chosen registry): `cluster.peer_fills` (tiles served
/// from a peer — the reshard acceptance counter), `cluster.peer_fill_misses`
/// (peer answered 404), `cluster.peer_fill_errors` (transport/protocol
/// failures, swallowed).

#include <cstdint>
#include <functional>
#include <string>

#include "cluster/topology.hpp"
#include "obs/metrics.hpp"
#include "service/tile_cache.hpp"
#include "service/tile_key.hpp"

namespace rrs::cluster {

struct PeerFillOptions {
    int timeout_ms = 2000;  ///< per-fetch deadline — a fill must stay cheap
    /// Sticky connections per peer (concurrent fills share them).
    std::size_t connections_per_node = 2;
    int breaker_failures = 3;   ///< failures before a peer is written off
    int breaker_open_ms = 2000; ///< how long a written-off peer is skipped
    /// Counter sink; nullptr = the global registry.  A non-global registry
    /// must outlive the returned filler.
    obs::MetricsRegistry* registry = nullptr;
};

/// The TileService remote-fill hook type (mirrors
/// TileService::Options::remote_fill).
using RemoteFill = std::function<TilePtr(const TileKey&)>;

/// Build a peer filler for the node named `self` over the *previous*
/// epoch's topology.  `fingerprint`/`shape` describe the scene the owning
/// TileService serves (`scene` is its wire name).  Keys `self` already
/// owned in the previous epoch return nullptr immediately — nobody else
/// has a better copy.  A `self` absent from `previous` (a brand-new node)
/// peer-fills every key.  Throws ConfigError on an empty scene name, a
/// zero fingerprint, or a non-positive shape.
RemoteFill make_peer_filler(const Topology& previous, std::string self,
                            std::string scene, std::uint64_t fingerprint,
                            TileShape shape, PeerFillOptions opt = {});

}  // namespace rrs::cluster
