#pragma once

/// \file client.hpp
/// ClusterClient — fan-out transport over a sharded rrsd fleet
/// (DESIGN.md §17).
///
/// Wraps one ShardMap plus a per-node connection layer and gives callers
/// the fleet as a single logical tile server:
///
///  * `forward()` — one GET to a chosen node over a bounded keep-alive
///    connection pool (at most `connections_per_node` sticky sockets per
///    node — HttpServer is thread-per-connection, so pooled connections
///    must never exceed a node's worker count; excess borrowers block until
///    a connection frees).  Each node sits behind its own
///    fault::CircuitBreaker: transport failures open it, an open breaker
///    short-circuits into NodeUnavailableError without burning a socket,
///    and the rest of the fleet is untouched — per-shard degradation, not
///    global outage.  Every forward passes the per-node fault-injection
///    site `cluster.forward.<name>` (chaos tier).
///  * Scene discovery — the fleet's `/` index is fetched once (from every
///    reachable node; all responders must agree on names, shapes, and
///    fingerprints) so the client can compute tile ownership locally.
///  * `window()` — fans the covering tiles out to their owners as `q=f64`
///    requests (bit-exact wire encoding), stitches the doubles exactly the
///    way TileService::window does, and so reproduces single-node
///    generation byte-for-byte once re-encoded (the stitching contract,
///    tests/test_cluster.cpp).
///  * `ready()` — probes every node's /readyz with a short deadline and
///    aggregates: the fleet is ready iff every node is.
///
/// Retry/backoff reuses net::RetryPolicy inside each pooled HttpClient;
/// GET-only idempotence is what makes cross-node retries safe.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cluster/shard_map.hpp"
#include "cluster/topology.hpp"
#include "fault/circuit_breaker.hpp"
#include "grid/array2d.hpp"
#include "grid/rect.hpp"
#include "net/client.hpp"
#include "obs/metrics.hpp"
#include "service/tile_cache.hpp"
#include "service/tile_key.hpp"

namespace rrs {
class ThreadPool;
}  // namespace rrs

namespace rrs::cluster {

/// A node could not serve: its circuit breaker is open or the transport
/// failed (connect/send/recv/deadline).  IS-A IoError; `node()` names the
/// shard so callers degrade per-shard instead of failing the fleet.
class NodeUnavailableError : public IoError {
public:
    NodeUnavailableError(std::string node, std::string message,
                         int retry_after_ms = 0)
        : IoError(std::move(message), {"cluster", "client"}),
          node_(std::move(node)),
          retry_after_ms_(retry_after_ms) {}

    const std::string& node() const noexcept { return node_; }
    /// Hint for Retry-After (0 = none; breaker-open carries its remaining
    /// open time).
    int retry_after_ms() const noexcept { return retry_after_ms_; }

private:
    std::string node_;
    int retry_after_ms_;
};

/// One scene as the fleet's `/` index advertises it.
struct SceneInfo {
    TileShape shape;
    std::uint64_t fingerprint = 0;

    friend bool operator==(const SceneInfo&, const SceneInfo&) = default;
};

/// Parse the scene index JSON served at `/` (tile_routes.cpp handle_index)
/// into name → SceneInfo.  Pure parse over untrusted peer bytes: throws
/// ConfigError (context {"cluster", "index"}) on anything malformed.
std::map<std::string, SceneInfo> parse_scene_index(std::string_view body);

/// Decode a `q=f64` tile body (row-major little-endian float64, the
/// bit-exact wire encoding) into an Array2D.  Throws IoError when the body
/// size does not match nx·ny·8.
Array2D<double> decode_tile_f64(std::string_view body, std::int64_t nx,
                                std::int64_t ny);

/// Percent-encode a query value (everything outside [A-Za-z0-9_.~-]).
std::string url_encode(std::string_view s);

struct ClusterOptions {
    int timeout_ms = 5000;       ///< per-request connect/recv/send deadline
    net::RetryPolicy retry;      ///< transport retry inside each connection
    /// Sticky keep-alive connections per node, and therefore the per-node
    /// forward concurrency.  Must not exceed the node's HttpServer worker
    /// count — a thread-per-connection server parks sockets beyond that.
    std::size_t connections_per_node = 8;
    int breaker_failures = 3;    ///< consecutive failures that open a node
    int breaker_open_ms = 1000;
    int breaker_half_open_successes = 1;
    int ready_timeout_ms = 750;  ///< per-node /readyz probe deadline
    std::size_t fanout_threads = 8;  ///< window tile fan-out concurrency
    /// Metrics sink (cluster.* counters); nullptr = the global registry.
    obs::MetricsRegistry* registry = nullptr;
};

/// See file comment.  Thread-safe: all entry points may be called
/// concurrently (the proxy serves them from HttpServer workers).
class ClusterClient {
public:
    explicit ClusterClient(Topology topology, ClusterOptions opt = {});
    ~ClusterClient();

    ClusterClient(const ClusterClient&) = delete;
    ClusterClient& operator=(const ClusterClient&) = delete;

    const ShardMap& map() const noexcept { return map_; }
    const ClusterOptions& options() const noexcept { return opt_; }

    /// Scene table from fleet discovery (first call probes the fleet; all
    /// responding nodes must agree).  Throws IoError when no node responds,
    /// ConfigError on disagreement.
    const std::map<std::string, SceneInfo>& scenes();

    /// Resolve a scene the way the tile routes do: explicit name, or the
    /// sole advertised scene.  HttpError(400/404) otherwise.
    std::pair<std::string, SceneInfo> resolve_scene(const std::string* name);

    /// Owning node index for a tile of `scene` (discovers on first use).
    std::size_t owner_of(const std::string& scene, const TileKey& key);

    /// One GET to node `node`.  Returns whatever the node answered (any
    /// status — a 4xx/5xx response is the node speaking, not a transport
    /// failure).  Throws NodeUnavailableError when the node's breaker is
    /// open or the transport fails.
    net::ClientResponse forward(std::size_t node, const std::string& target,
                                const net::HttpClient::HeaderList& headers = {});

    /// Fetch one tile from `node` as bit-exact f64 and decode it.
    /// `cached_only` adds `cached=1` (the peer-fill protocol: the node may
    /// only answer from RAM/L2, never generate) and returns nullptr on its
    /// 404 miss.  Throws NodeUnavailableError on transport failure,
    /// HttpError on an unexpected status, IoError on a fingerprint or size
    /// mismatch.
    TilePtr fetch_tile_f64(std::size_t node, const std::string& scene,
                           std::uint64_t expected_fingerprint,
                           const TileShape& shape, const TileKey& key,
                           bool cached_only = false);

    /// Assemble a lattice window by fanning covering tiles out to their
    /// owners (f64 wire) and stitching — bit-identical to the doubles a
    /// single-node TileService::window produces.  Throws the first tile
    /// failure after every in-flight tile settles.
    Array2D<double> window(const std::string& scene, const Rect& region);

    struct NodeHealth {
        std::string name;
        bool ready = false;
        int status = 0;       ///< HTTP status, 0 on transport failure
        std::string detail;   ///< response body or failure message
    };
    struct FleetReady {
        bool ready = false;   ///< every node answered /readyz with 200
        std::vector<NodeHealth> nodes;
    };

    /// Probe every node's /readyz (short deadline, fresh connection, in
    /// parallel) and aggregate.  Never throws on node failure — an
    /// unreachable node is simply not ready.
    FleetReady ready();

    /// Breaker state of one node (for tests and the proxy's index page).
    fault::CircuitBreaker::State breaker_state(std::size_t node) const;

private:
    struct NodeState;

    /// RAII'd borrowed connection (returned or dropped exactly once).
    struct Borrowed {
        std::unique_ptr<net::HttpClient> client;
    };

    Borrowed borrow(NodeState& node);
    void give_back(NodeState& node, Borrowed conn) noexcept;
    void drop(NodeState& node) noexcept;
    void discover_locked();

    ShardMap map_;
    ClusterOptions opt_;
    obs::MetricsRegistry* registry_;
    std::vector<std::unique_ptr<NodeState>> nodes_;
    std::unique_ptr<ThreadPool> fanout_;

    std::mutex discovery_mutex_;
    std::atomic<bool> discovered_{false};
    std::map<std::string, SceneInfo> scenes_;

    obs::Counter* forwards_ = nullptr;         ///< cluster.forwards
    obs::Counter* windows_ = nullptr;          ///< cluster.windows
    obs::Counter* short_circuited_ = nullptr;  ///< cluster.short_circuited
};

}  // namespace rrs::cluster
