#pragma once

/// \file trace.hpp
/// Scoped-span tracing with Chrome `trace_event` JSON export.
///
/// Usage at an instrumentation site:
///
///     void build_kernel() {
///         RRS_TRACE_SPAN("kernel.build");
///         ...                      // span covers the enclosing scope
///     }
///
/// Contract (DESIGN.md §9):
///  * Disabled by default.  With tracing disabled the span macro costs one
///    relaxed atomic load and two branches — no clock read, no allocation,
///    no store.  Library code may therefore instrument hot stages
///    unconditionally; benches assert the enabled overhead stays small.
///  * When enabled (`trace_enable()`), each span records {name, t0, t1,
///    thread} into a lock-free per-thread ring buffer: the owning thread is
///    the only writer, so recording is a plain array store plus one
///    release-ordered index publish.  Rings hold the most recent
///    `kRingCapacity` spans per thread; older spans are overwritten and
///    counted in `trace_dropped()`.
///  * Span names must be string literals (or otherwise outlive the trace) —
///    the ring stores the pointer, not a copy.
///  * Export (`write_chrome_trace`) may run concurrently with recording: it
///    snapshots only fully-published spans and discards any slot the writer
///    could have overwritten mid-copy (ring fields are atomic; the reader
///    re-checks the publish cursor after copying), so concurrent export is
///    data-race-free — asserted by the `race` test tier under TSan.  Load
///    the output in chrome://tracing or Perfetto.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rrs::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;

/// Monotonic nanoseconds since the process trace epoch.
std::uint64_t trace_now_ns() noexcept;

/// Record one completed span into the calling thread's ring.
void trace_record(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns) noexcept;
}  // namespace detail

/// Is span recording active?  (Relaxed load — the only cost a disabled
/// span pays.)
inline bool trace_enabled() noexcept {
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

void trace_enable() noexcept;
void trace_disable() noexcept;

/// Forget all recorded spans (ring indices rewind; buffers are retained).
void trace_reset() noexcept;

/// Spans lost to ring wrap-around since the last reset.
std::uint64_t trace_dropped() noexcept;

/// One completed span, times in nanoseconds since the trace epoch.
struct TraceEvent {
    const char* name = nullptr;
    std::uint64_t t0_ns = 0;
    std::uint64_t t1_ns = 0;
    std::uint32_t tid = 0;  ///< dense per-process thread index (not OS tid)
};

/// Snapshot of every retained span across all threads, sorted by t0.
std::vector<TraceEvent> trace_events();

/// Write the retained spans as a Chrome trace_event JSON document
/// ({"traceEvents":[...complete 'X' events...]}, timestamps in µs).
void write_chrome_trace(std::ostream& out);

/// write_chrome_trace into a string (tests / small traces).
std::string chrome_trace_json();

/// RAII span: measures construction → destruction when tracing is enabled,
/// does nothing otherwise.  `name` must outlive the trace (use a literal).
class TraceSpan {
public:
    explicit TraceSpan(const char* name) noexcept {
        if (trace_enabled()) {
            name_ = name;
            t0_ = detail::trace_now_ns();
        }
    }
    ~TraceSpan() {
        if (name_ != nullptr) {
            detail::trace_record(name_, t0_, detail::trace_now_ns());
        }
    }
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

private:
    const char* name_ = nullptr;
    std::uint64_t t0_ = 0;
};

}  // namespace rrs::obs

#define RRS_OBS_CONCAT_IMPL(a, b) a##b
#define RRS_OBS_CONCAT(a, b) RRS_OBS_CONCAT_IMPL(a, b)

/// Trace the enclosing scope as one span named `name` (a string literal).
#define RRS_TRACE_SPAN(name) \
    ::rrs::obs::TraceSpan RRS_OBS_CONCAT(rrs_trace_span_, __LINE__) { name }
