#pragma once

/// \file metrics.hpp
/// Library-wide metrics primitives: relaxed-atomic counters, gauges, and
/// log₂ histograms, plus a named registry that aggregates them for export.
///
/// Design contract (DESIGN.md §9):
///  * Recording is wait-free: one relaxed atomic RMW per event, no mutex on
///    any hot path.  A `Counter&`/`Gauge&`/`Log2Histogram&` obtained from a
///    registry stays valid for the registry's lifetime, so call sites look
///    the metric up once (static local) and then only touch the atomic.
///  * The primitives are also usable standalone — `ServiceMetrics`
///    (service/metrics.hpp) keeps per-service instances without going
///    through any registry, and its JSON shape is unchanged.
///  * Registration (name → metric) is mutex-protected and expected cold.
///
/// Naming convention: dot-separated lowercase paths, `<subsystem>.<what>`
/// with unit suffixes where ambiguous — e.g. `kernel.builds`,
/// `fft.forward`, `conv.points`, `service.tile.hits`.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rrs::obs {

/// Monotone event counter (wait-free, relaxed ordering).
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. cache bytes, queue depth).
class Gauge {
public:
    void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t v) noexcept { value_.fetch_add(v, std::memory_order_relaxed); }
    std::int64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Fixed log₂-bucketed histogram over non-negative integer samples.
/// Bucket b counts samples in [2^b, 2^(b+1)) (bucket 0 is [0, 2)); the last
/// bucket absorbs everything larger.  Also tracks Σ samples for means.
/// With microsecond samples the last bucket starts at ~33.6 s — this is the
/// generalisation of the tile service's latency histogram.
class Log2Histogram {
public:
    static constexpr std::size_t kBuckets = 26;

    void record(std::uint64_t sample) noexcept {
        counts_[bucket_of(sample)].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(sample, std::memory_order_relaxed);
    }

    static std::size_t bucket_of(std::uint64_t sample) noexcept {
        std::size_t b = 0;
        while (sample > 1 && b + 1 < kBuckets) {
            sample >>= 1;
            ++b;
        }
        return b;
    }

    /// Inclusive lower bound of bucket `b`.
    static std::uint64_t bucket_floor(std::size_t b) noexcept {
        return b == 0 ? 0 : (std::uint64_t{1} << b);
    }

    std::uint64_t count(std::size_t b) const noexcept {
        return counts_[b].load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

    void reset() noexcept {
        for (auto& c : counts_) {
            c.store(0, std::memory_order_relaxed);
        }
        sum_.store(0, std::memory_order_relaxed);
    }

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
    std::atomic<std::uint64_t> sum_{0};
};

/// Plain-value copy of one histogram plus derived quantile estimates
/// (upper bound of the bucket holding the quantile — conservative).
struct HistogramSnapshot {
    std::array<std::uint64_t, Log2Histogram::kBuckets> counts{};
    std::uint64_t samples = 0;
    std::uint64_t sum = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
};

/// Read a histogram into a value snapshot (quantiles included).
HistogramSnapshot snapshot_histogram(const Log2Histogram& h);

/// Upper bound of the bucket holding quantile `q` of `counts` — the shared
/// quantile estimator (service/metrics.cpp reuses it for latency p50/p95/p99).
std::uint64_t histogram_quantile(
    const std::array<std::uint64_t, Log2Histogram::kBuckets>& counts,
    std::uint64_t samples, double q);

/// Named metric registry.  Metrics are created on first lookup and live as
/// long as the registry; lookups of an existing name return the same object
/// (same name, same kind — a kind clash throws std::logic_error).
class MetricsRegistry {
public:
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Log2Histogram& histogram(std::string_view name);

    /// Point-in-time copy of every registered metric, name-sorted.
    struct Snapshot {
        std::vector<std::pair<std::string, std::uint64_t>> counters;
        std::vector<std::pair<std::string, std::int64_t>> gauges;
        std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
    };
    Snapshot snapshot() const;

    /// One JSON object, stable (sorted) key order:
    /// {"counters":{...},"gauges":{...},"histograms":{"name":{"samples":..,
    /// "mean":..,"p50":..,"p95":..,"p99":..,"buckets":[[floor,count],...]}}}
    std::string to_json() const;

    /// Zero every metric's value; registrations (and references handed out)
    /// stay valid.  Meant for tests and between benchmark legs.
    void reset_values();

    /// Number of registered metrics of all kinds.
    std::size_t size() const;

    /// The process-wide registry the library's built-in instrumentation
    /// records into (`rrsgen --metrics` exports it).
    static MetricsRegistry& global();

private:
    // std::map: node-based, so metric addresses are stable across inserts.
    mutable std::mutex mutex_;
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, Gauge, std::less<>> gauges_;
    std::map<std::string, Log2Histogram, std::less<>> histograms_;
};

}  // namespace rrs::obs
