#include "obs/metrics.hpp"

#include <sstream>
#include <stdexcept>

#include "core/error.hpp"

namespace rrs::obs {

namespace {

/// Upper bound (exclusive) of bucket `b`; the overflow bucket reports its
/// floor (there is no finite ceiling).
std::uint64_t bucket_ceil(std::size_t b) {
    if (b + 1 >= Log2Histogram::kBuckets) {
        return Log2Histogram::bucket_floor(b);
    }
    return Log2Histogram::bucket_floor(b + 1);
}

}  // namespace

std::uint64_t histogram_quantile(
    const std::array<std::uint64_t, Log2Histogram::kBuckets>& counts,
    std::uint64_t samples, double q) {
    if (samples == 0) {
        return 0;
    }
    const double target = q * static_cast<double>(samples);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        seen += counts[b];
        if (static_cast<double>(seen) >= target) {
            return bucket_ceil(b);
        }
    }
    return bucket_ceil(counts.size() - 1);
}

HistogramSnapshot snapshot_histogram(const Log2Histogram& h) {
    HistogramSnapshot s;
    for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
        s.counts[b] = h.count(b);
        s.samples += s.counts[b];
    }
    s.sum = h.sum();
    s.mean = s.samples == 0
                 ? 0.0
                 : static_cast<double>(s.sum) / static_cast<double>(s.samples);
    s.p50 = histogram_quantile(s.counts, s.samples, 0.50);
    s.p95 = histogram_quantile(s.counts, s.samples, 0.95);
    s.p99 = histogram_quantile(s.counts, s.samples, 0.99);
    return s;
}

Counter& MetricsRegistry::counter(std::string_view name) {
    std::lock_guard lock(mutex_);
    if (gauges_.count(std::string(name)) != 0 ||
        histograms_.count(std::string(name)) != 0) {
        throw StateError{"MetricsRegistry: '" + std::string(name) +
                               "' already registered with a different kind"};
    }
    return counters_[std::string(name)];
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    std::lock_guard lock(mutex_);
    if (counters_.count(std::string(name)) != 0 ||
        histograms_.count(std::string(name)) != 0) {
        throw StateError{"MetricsRegistry: '" + std::string(name) +
                               "' already registered with a different kind"};
    }
    return gauges_[std::string(name)];
}

Log2Histogram& MetricsRegistry::histogram(std::string_view name) {
    std::lock_guard lock(mutex_);
    if (counters_.count(std::string(name)) != 0 ||
        gauges_.count(std::string(name)) != 0) {
        throw StateError{"MetricsRegistry: '" + std::string(name) +
                               "' already registered with a different kind"};
    }
    return histograms_[std::string(name)];
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
    std::lock_guard lock(mutex_);
    Snapshot s;
    s.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
        s.counters.emplace_back(name, c.value());
    }
    s.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
        s.gauges.emplace_back(name, g.value());
    }
    s.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        s.histograms.emplace_back(name, snapshot_histogram(h));
    }
    return s;
}

std::string MetricsRegistry::to_json() const {
    const Snapshot s = snapshot();
    std::ostringstream out;
    out << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : s.counters) {
        if (!first) {
            out << ',';
        }
        first = false;
        out << '"' << name << "\":" << v;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : s.gauges) {
        if (!first) {
            out << ',';
        }
        first = false;
        out << '"' << name << "\":" << v;
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : s.histograms) {
        if (!first) {
            out << ',';
        }
        first = false;
        out << '"' << name << "\":{\"samples\":" << h.samples << ",\"sum\":" << h.sum
            << ",\"mean\":" << h.mean << ",\"p50\":" << h.p50 << ",\"p95\":" << h.p95
            << ",\"p99\":" << h.p99 << ",\"buckets\":[";
        bool first_bucket = true;
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            if (h.counts[b] == 0) {
                continue;
            }
            if (!first_bucket) {
                out << ',';
            }
            first_bucket = false;
            out << '[' << Log2Histogram::bucket_floor(b) << ',' << h.counts[b] << ']';
        }
        out << "]}";
    }
    out << "}}";
    return out.str();
}

void MetricsRegistry::reset_values() {
    std::lock_guard lock(mutex_);
    for (auto& [name, c] : counters_) {
        c.reset();
    }
    for (auto& [name, g] : gauges_) {
        g.reset();
    }
    for (auto& [name, h] : histograms_) {
        h.reset();
    }
}

std::size_t MetricsRegistry::size() const {
    std::lock_guard lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsRegistry& MetricsRegistry::global() {
    // Leaked singleton: instrumentation may run during static destruction
    // (e.g. thread pools draining), so the registry must never be destroyed.
    static auto* instance = new MetricsRegistry();
    return *instance;
}

}  // namespace rrs::obs
