#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

namespace rrs::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

/// Per-thread span storage.  The owning thread is the only writer; readers
/// (export) take a best-effort snapshot of completed slots.
struct ThreadRing {
    static constexpr std::size_t kRingCapacity = std::size_t{1} << 14;  // 16384 spans

    std::vector<TraceEvent> slots{kRingCapacity};
    /// Total spans ever recorded by this thread; the write cursor is
    /// head % capacity.  Published with release so a reader that acquires
    /// `head` sees every slot the count covers.
    std::atomic<std::uint64_t> head{0};
    std::uint32_t tid = 0;
};

struct TraceState {
    std::mutex mutex;
    // shared_ptr: rings must outlive both their thread and any reset() —
    // exiting threads may still hold a cached pointer.
    std::vector<std::shared_ptr<ThreadRing>> rings;
};

TraceState& state() {
    // Leaked: spans may record during static destruction of other objects.
    static auto* s = new TraceState();
    return *s;
}

ThreadRing& thread_ring() {
    thread_local std::shared_ptr<ThreadRing> ring = [] {
        auto r = std::make_shared<ThreadRing>();
        TraceState& s = state();
        std::lock_guard lock(s.mutex);
        r->tid = static_cast<std::uint32_t>(s.rings.size());
        s.rings.push_back(r);
        return r;
    }();
    return *ring;
}

const std::chrono::steady_clock::time_point g_epoch = std::chrono::steady_clock::now();

}  // namespace

namespace detail {

std::uint64_t trace_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - g_epoch)
            .count());
}

void trace_record(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns) noexcept {
    ThreadRing& ring = thread_ring();
    const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    TraceEvent& slot = ring.slots[head % ThreadRing::kRingCapacity];
    slot.name = name;
    slot.t0_ns = t0_ns;
    slot.t1_ns = t1_ns;
    slot.tid = ring.tid;
    ring.head.store(head + 1, std::memory_order_release);
}

}  // namespace detail

void trace_enable() noexcept {
    detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void trace_disable() noexcept {
    detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void trace_reset() noexcept {
    TraceState& s = state();
    std::lock_guard lock(s.mutex);
    for (const auto& ring : s.rings) {
        ring->head.store(0, std::memory_order_relaxed);
    }
}

std::uint64_t trace_dropped() noexcept {
    TraceState& s = state();
    std::lock_guard lock(s.mutex);
    std::uint64_t dropped = 0;
    for (const auto& ring : s.rings) {
        const std::uint64_t head = ring->head.load(std::memory_order_acquire);
        if (head > ThreadRing::kRingCapacity) {
            dropped += head - ThreadRing::kRingCapacity;
        }
    }
    return dropped;
}

std::vector<TraceEvent> trace_events() {
    std::vector<std::shared_ptr<ThreadRing>> rings;
    {
        TraceState& s = state();
        std::lock_guard lock(s.mutex);
        rings = s.rings;
    }
    std::vector<TraceEvent> events;
    for (const auto& ring : rings) {
        const std::uint64_t head = ring->head.load(std::memory_order_acquire);
        const std::uint64_t n = std::min<std::uint64_t>(head, ThreadRing::kRingCapacity);
        const std::uint64_t first = head - n;
        for (std::uint64_t i = first; i < head; ++i) {
            const TraceEvent& e = ring->slots[i % ThreadRing::kRingCapacity];
            if (e.name != nullptr) {
                events.push_back(e);
            }
        }
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) { return a.t0_ns < b.t0_ns; });
    return events;
}

void write_chrome_trace(std::ostream& out) {
    const std::vector<TraceEvent> events = trace_events();
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& e : events) {
        if (!first) {
            out << ',';
        }
        first = false;
        // Complete ('X') events; Chrome wants µs.  Durations keep ns
        // resolution as fractional µs.
        out << "{\"name\":\"" << e.name << "\",\"cat\":\"rrs\",\"ph\":\"X\",\"ts\":"
            << static_cast<double>(e.t0_ns) / 1000.0
            << ",\"dur\":" << static_cast<double>(e.t1_ns - e.t0_ns) / 1000.0
            << ",\"pid\":1,\"tid\":" << e.tid << '}';
    }
    out << "]}\n";
}

std::string chrome_trace_json() {
    std::ostringstream out;
    write_chrome_trace(out);
    return out.str();
}

}  // namespace rrs::obs
