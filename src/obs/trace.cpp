#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

namespace rrs::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

/// One ring slot.  The fields are individually atomic (all accesses
/// relaxed) so a concurrent exporter reading a slot the owner is about to
/// overwrite on wrap-around is well-defined: it may observe a *mixed* slot,
/// never a torn word — and mixed slots are discarded by the wrap guard in
/// trace_events() (it re-reads `head` after copying and drops any slot the
/// writer could have reached mid-copy).
struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> t0_ns{0};
    std::atomic<std::uint64_t> t1_ns{0};
};

/// Per-thread span storage.  The owning thread is the only writer; readers
/// (export) take a snapshot of completed slots.
struct ThreadRing {
    static constexpr std::size_t kRingCapacity = std::size_t{1} << 14;  // 16384 spans

    std::vector<Slot> slots{kRingCapacity};
    /// Total spans ever recorded by this thread; the write cursor is
    /// head % capacity.  Published with release so a reader that acquires
    /// `head` sees every slot the count covers.
    std::atomic<std::uint64_t> head{0};
    std::uint32_t tid = 0;
};

struct TraceState {
    std::mutex mutex;
    // shared_ptr: rings must outlive both their thread and any reset() —
    // exiting threads may still hold a cached pointer.
    std::vector<std::shared_ptr<ThreadRing>> rings;
};

TraceState& state() {
    // Leaked: spans may record during static destruction of other objects.
    static auto* s = new TraceState();
    return *s;
}

ThreadRing& thread_ring() {
    thread_local std::shared_ptr<ThreadRing> ring = [] {
        auto r = std::make_shared<ThreadRing>();
        TraceState& s = state();
        std::lock_guard lock(s.mutex);
        r->tid = static_cast<std::uint32_t>(s.rings.size());
        s.rings.push_back(r);
        return r;
    }();
    return *ring;
}

const std::chrono::steady_clock::time_point g_epoch = std::chrono::steady_clock::now();

}  // namespace

namespace detail {

std::uint64_t trace_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - g_epoch)
            .count());
}

void trace_record(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns) noexcept {
    ThreadRing& ring = thread_ring();
    const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    Slot& slot = ring.slots[head % ThreadRing::kRingCapacity];
    // Relaxed stores: the release store of `head` below publishes them to
    // any reader that acquires `head`.
    slot.name.store(name, std::memory_order_relaxed);
    slot.t0_ns.store(t0_ns, std::memory_order_relaxed);
    slot.t1_ns.store(t1_ns, std::memory_order_relaxed);
    ring.head.store(head + 1, std::memory_order_release);
}

}  // namespace detail

void trace_enable() noexcept {
    detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void trace_disable() noexcept {
    detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void trace_reset() noexcept {
    TraceState& s = state();
    std::lock_guard lock(s.mutex);
    for (const auto& ring : s.rings) {
        ring->head.store(0, std::memory_order_relaxed);
    }
}

std::uint64_t trace_dropped() noexcept {
    TraceState& s = state();
    std::lock_guard lock(s.mutex);
    std::uint64_t dropped = 0;
    for (const auto& ring : s.rings) {
        const std::uint64_t head = ring->head.load(std::memory_order_acquire);
        if (head > ThreadRing::kRingCapacity) {
            dropped += head - ThreadRing::kRingCapacity;
        }
    }
    return dropped;
}

std::vector<TraceEvent> trace_events() {
    std::vector<std::shared_ptr<ThreadRing>> rings;
    {
        TraceState& s = state();
        std::lock_guard lock(s.mutex);
        rings = s.rings;
    }
    std::vector<TraceEvent> events;
    for (const auto& ring : rings) {
        const std::uint64_t head0 = ring->head.load(std::memory_order_acquire);
        const std::uint64_t n = std::min<std::uint64_t>(head0, ThreadRing::kRingCapacity);
        const std::uint64_t first = head0 - n;
        const std::size_t start = events.size();
        std::vector<std::uint64_t> indices;
        indices.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = first; i < head0; ++i) {
            const Slot& slot = ring->slots[i % ThreadRing::kRingCapacity];
            TraceEvent e;
            e.name = slot.name.load(std::memory_order_relaxed);
            e.t0_ns = slot.t0_ns.load(std::memory_order_relaxed);
            e.t1_ns = slot.t1_ns.load(std::memory_order_relaxed);
            e.tid = ring->tid;
            if (e.name != nullptr) {
                events.push_back(e);
                indices.push_back(i);
            }
        }
        // Wrap guard: while we copied, the owning thread may have lapped the
        // ring and overwritten slots we already read — those copies could mix
        // fields of two different spans.  Re-read `head`; every slot index
        // the writer could have reached (i < head1 - capacity) is unreliable
        // and gets dropped.  Spans recorded after head0 are simply not part
        // of this snapshot.
        const std::uint64_t head1 = ring->head.load(std::memory_order_acquire);
        if (head1 > head0 && head1 - ThreadRing::kRingCapacity > first) {
            const std::uint64_t stale_below =
                head1 < ThreadRing::kRingCapacity ? 0 : head1 - ThreadRing::kRingCapacity;
            std::size_t keep = start;
            for (std::size_t k = 0; k < indices.size(); ++k) {
                if (indices[k] >= stale_below) {
                    events[keep++] = events[start + k];
                }
            }
            events.resize(keep);
        }
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) { return a.t0_ns < b.t0_ns; });
    return events;
}

void write_chrome_trace(std::ostream& out) {
    const std::vector<TraceEvent> events = trace_events();
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& e : events) {
        if (!first) {
            out << ',';
        }
        first = false;
        // Complete ('X') events; Chrome wants µs.  Durations keep ns
        // resolution as fractional µs.
        out << "{\"name\":\"" << e.name << "\",\"cat\":\"rrs\",\"ph\":\"X\",\"ts\":"
            << static_cast<double>(e.t0_ns) / 1000.0
            << ",\"dur\":" << static_cast<double>(e.t1_ns - e.t0_ns) / 1000.0
            << ",\"pid\":1,\"tid\":" << e.tid << '}';
    }
    out << "]}\n";
}

std::string chrome_trace_json() {
    std::ostringstream out;
    write_chrome_trace(out);
    return out.str();
}

}  // namespace rrs::obs
