#pragma once

/// \file fft1d.hpp
/// One-dimensional complex FFT, implemented from scratch.
///
/// Conventions match the paper's DFT pair (eqs. 11–12):
///   forward : F_v = Σ_n f_n e^{−j2πnv/N}        (unnormalised)
///   inverse : f_n = (1/N) Σ_v F_v e^{+j2πnv/N}
///
/// Power-of-two lengths use an iterative radix-2 Cooley–Tukey with cached
/// twiddles and bit-reversal table; every other length uses Bluestein's
/// chirp-z algorithm (re-expressing the DFT as a power-of-two cyclic
/// convolution), so any N is supported in O(N log N).

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace rrs {

using cplx = std::complex<double>;

/// Reusable transform plan for a fixed length.  Thread-safe for concurrent
/// `forward`/`inverse` calls (all mutable state lives on the caller's data
/// or in per-call scratch).
class Fft1D {
public:
    explicit Fft1D(std::size_t n);

    std::size_t size() const noexcept { return n_; }

    /// In-place forward DFT of `data` (length must equal size()).
    void forward(std::span<cplx> data) const;

    /// In-place inverse DFT (includes the 1/N factor).
    void inverse(std::span<cplx> data) const;

    static bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

private:
    void pow2_transform(cplx* a, std::size_t n, bool inv) const;
    void bluestein_forward(std::span<cplx> data) const;

    std::size_t n_;
    // Radix-2 machinery (for n_ itself when pow2, and for the Bluestein
    // convolution length m_ otherwise).
    std::vector<cplx> twiddle_;          // exp(−2πik/m), k < m/2
    std::vector<std::uint32_t> bitrev_;  // bit-reversal permutation for m
    // Bluestein machinery (empty when n_ is a power of two).
    std::size_t m_ = 0;               // pow2 convolution length >= 2n−1
    std::vector<cplx> chirp_;         // c_k = exp(−iπ k²/n), k < n
    std::vector<cplx> chirp_fft_;     // forward FFT of zero-padded conj chirp
};

/// Process-wide plan cache; plans are immutable once built.
std::shared_ptr<const Fft1D> fft_plan(std::size_t n);

}  // namespace rrs
