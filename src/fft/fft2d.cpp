#include "fft/fft2d.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"

#include "core/error.hpp"

namespace rrs {

Fft2D::Fft2D(std::size_t nx, std::size_t ny)
    : nx_(nx), ny_(ny), row_plan_(fft_plan(nx)), col_plan_(fft_plan(ny)) {
    if (nx == 0 || ny == 0) {
        throw ConfigError{"Fft2D: dimensions must be positive"};
    }
}

void Fft2D::transform(Array2D<cplx>& a, bool inv) const {
    if (a.nx() != nx_ || a.ny() != ny_) {
        throw ConfigError{"Fft2D: shape mismatch"};
    }
    RRS_TRACE_SPAN("fft.transform");
    static obs::Counter& forwards =
        obs::MetricsRegistry::global().counter("fft.forward");
    static obs::Counter& inverses =
        obs::MetricsRegistry::global().counter("fft.inverse");
    (inv ? inverses : forwards).add();
    // Row pass: rows are contiguous, embarrassingly parallel.
    parallel_for(0, static_cast<std::int64_t>(ny_), [&](std::int64_t iy) {
        auto row = a.row(static_cast<std::size_t>(iy));
        if (inv) {
            row_plan_->inverse(row);
        } else {
            row_plan_->forward(row);
        }
    });
    // Column pass: gather each column into a contiguous scratch buffer.
    // One buffer per chunk (not per column) keeps allocations off the
    // critical path.
    parallel_for_chunks(0, static_cast<std::int64_t>(nx_), [&](std::int64_t lo, std::int64_t hi) {
        std::vector<cplx> col(ny_);
        for (std::int64_t sx = lo; sx < hi; ++sx) {
            const auto ix = static_cast<std::size_t>(sx);
            for (std::size_t iy = 0; iy < ny_; ++iy) {
                col[iy] = a(ix, iy);
            }
            if (inv) {
                col_plan_->inverse(col);
            } else {
                col_plan_->forward(col);
            }
            for (std::size_t iy = 0; iy < ny_; ++iy) {
                a(ix, iy) = col[iy];
            }
        }
    });
}

void Fft2D::forward(Array2D<cplx>& a) const { transform(a, false); }

void Fft2D::inverse(Array2D<cplx>& a) const { transform(a, true); }

Array2D<cplx> fft2d_forward(const Array2D<double>& a) {
    Array2D<cplx> c(a.nx(), a.ny());
    for (std::size_t i = 0; i < a.size(); ++i) {
        c.data()[i] = cplx{a.data()[i], 0.0};
    }
    Fft2D plan(a.nx(), a.ny());
    plan.forward(c);
    return c;
}

Array2D<double> fft2d_inverse_real(Array2D<cplx> a, double* max_imag) {
    Fft2D plan(a.nx(), a.ny());
    plan.inverse(a);
    Array2D<double> out(a.nx(), a.ny());
    double mi = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        out.data()[i] = a.data()[i].real();
        mi = std::max(mi, std::abs(a.data()[i].imag()));
    }
    if (max_imag != nullptr) {
        *max_imag = mi;
    }
    return out;
}

}  // namespace rrs
