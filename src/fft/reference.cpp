#include "fft/reference.hpp"

#include <cmath>

#include "special/constants.hpp"

namespace rrs {

std::vector<cplx> naive_dft(const std::vector<cplx>& x, bool inverse) {
    const std::size_t n = x.size();
    const double sign = inverse ? 1.0 : -1.0;
    std::vector<cplx> out(n);
    for (std::size_t v = 0; v < n; ++v) {
        cplx acc{};
        for (std::size_t k = 0; k < n; ++k) {
            const double ang = sign * kTwoPi * static_cast<double>(v * k % n) /
                               static_cast<double>(n);
            acc += x[k] * cplx{std::cos(ang), std::sin(ang)};
        }
        out[v] = inverse ? acc / static_cast<double>(n) : acc;
    }
    return out;
}

Array2D<cplx> naive_dft2d(const Array2D<cplx>& f, bool inverse) {
    const std::size_t nx = f.nx();
    const std::size_t ny = f.ny();
    const double sign = inverse ? 1.0 : -1.0;
    Array2D<cplx> out(nx, ny);
    for (std::size_t vy = 0; vy < ny; ++vy) {
        for (std::size_t vx = 0; vx < nx; ++vx) {
            cplx acc{};
            for (std::size_t iy = 0; iy < ny; ++iy) {
                for (std::size_t ix = 0; ix < nx; ++ix) {
                    const double ang =
                        sign * kTwoPi *
                        (static_cast<double>(ix * vx % nx) / static_cast<double>(nx) +
                         static_cast<double>(iy * vy % ny) / static_cast<double>(ny));
                    acc += f(ix, iy) * cplx{std::cos(ang), std::sin(ang)};
                }
            }
            out(vx, vy) = inverse ? acc / static_cast<double>(nx * ny) : acc;
        }
    }
    return out;
}

}  // namespace rrs
