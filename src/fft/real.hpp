#pragma once

/// \file real.hpp
/// Real-input FFTs.  Every field in librrs (noise, kernels, surfaces) is
/// real, so the generation path uses the packed real transform: a length-N
/// real DFT computed via one length-N/2 complex FFT plus an O(N) unpack —
/// half the memory traffic and nearly half the flops of the complex path.
///
/// Layout: the forward transform stores the non-redundant half-spectrum,
/// bins 0..N/2 (N/2+1 complex values); the full spectrum follows from
/// Hermitian symmetry X_{N−k} = conj(X_k).

#include <complex>
#include <memory>
#include <span>

#include "fft/fft1d.hpp"
#include "grid/array2d.hpp"

namespace rrs {

/// Plan for a fixed even length N: real forward / inverse pair.
class Rfft1D {
public:
    explicit Rfft1D(std::size_t n);

    std::size_t size() const noexcept { return n_; }
    std::size_t spectrum_size() const noexcept { return n_ / 2 + 1; }

    /// Forward: real `in` (length N) → half-spectrum `out` (length N/2+1),
    /// matching the unnormalised complex forward DFT bin for bin.
    void forward(std::span<const double> in, std::span<cplx> out) const;

    /// Inverse: half-spectrum `in` (length N/2+1, Hermitian endpoints real)
    /// → real `out` (length N); includes the 1/N factor.
    void inverse(std::span<const cplx> in, std::span<double> out) const;

private:
    std::size_t n_;
    std::shared_ptr<const Fft1D> half_plan_;  // complex plan of length N/2
    std::vector<cplx> twiddle_;               // e^{−2πik/N}, k <= N/2
};

/// 2-D real transform: r2c rows (Nx/2+1 bins) then complex columns.
/// Spectrum shape: (Nx/2+1) × Ny.
class Rfft2D {
public:
    Rfft2D(std::size_t nx, std::size_t ny);

    std::size_t nx() const noexcept { return nx_; }
    std::size_t ny() const noexcept { return ny_; }
    std::size_t spectrum_nx() const noexcept { return nx_ / 2 + 1; }

    /// Forward r2c; `spectrum` is resized to (Nx/2+1) × Ny.
    void forward(const Array2D<double>& in, Array2D<cplx>& spectrum) const;

    /// Inverse c2r; `out` is resized to Nx × Ny.  Includes 1/(Nx·Ny).
    void inverse(const Array2D<cplx>& spectrum, Array2D<double>& out) const;

private:
    std::size_t nx_;
    std::size_t ny_;
    Rfft1D row_plan_;
    std::shared_ptr<const Fft1D> col_plan_;
};

/// Shared plan cache (mirrors fft_plan).
std::shared_ptr<const Rfft2D> rfft2d_plan(std::size_t nx, std::size_t ny);

}  // namespace rrs
