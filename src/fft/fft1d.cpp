#include "fft/fft1d.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "special/constants.hpp"

#include "core/error.hpp"

namespace rrs {

namespace {

std::size_t next_pow2(std::size_t n) {
    std::size_t m = 1;
    while (m < n) {
        m <<= 1;
    }
    return m;
}

}  // namespace

Fft1D::Fft1D(std::size_t n) : n_(n) {
    if (n == 0) {
        throw ConfigError{"Fft1D: length must be positive"};
    }
    const std::size_t m = is_pow2(n) ? n : next_pow2(2 * n - 1);
    m_ = is_pow2(n) ? 0 : m;

    // Twiddles and bit-reversal for the radix-2 engine of length m.
    twiddle_.resize(m / 2);
    for (std::size_t k = 0; k < m / 2; ++k) {
        const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(m);
        twiddle_[k] = cplx{std::cos(ang), std::sin(ang)};
    }
    bitrev_.resize(m);
    std::uint32_t bits = 0;
    while ((std::size_t{1} << bits) < m) {
        ++bits;
    }
    for (std::size_t i = 0; i < m; ++i) {
        std::uint32_t r = 0;
        for (std::uint32_t b = 0; b < bits; ++b) {
            r |= ((static_cast<std::uint32_t>(i) >> b) & 1u) << (bits - 1u - b);
        }
        bitrev_[i] = r;
    }

    if (m_ != 0) {
        // Bluestein precomputation.  Chirp phases use k² mod 2n to keep the
        // sine argument small (exp(−iπk²/n) is 2n-periodic in k²).
        chirp_.resize(n);
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t k2 = (k * k) % (2 * n);
            const double ang = -kPi * static_cast<double>(k2) / static_cast<double>(n);
            chirp_[k] = cplx{std::cos(ang), std::sin(ang)};
        }
        // b_j = conj(chirp_|j|) laid out cyclically over length m, then
        // forward-transformed once.
        chirp_fft_.assign(m, cplx{});
        chirp_fft_[0] = std::conj(chirp_[0]);
        for (std::size_t k = 1; k < n; ++k) {
            chirp_fft_[k] = std::conj(chirp_[k]);
            chirp_fft_[m - k] = std::conj(chirp_[k]);
        }
        pow2_transform(chirp_fft_.data(), m, false);
    }
}

void Fft1D::pow2_transform(cplx* a, std::size_t n, bool inv) const {
    // Bit-reversal permutation.  When n is the plan's pow2 engine length the
    // cached table applies directly; Bluestein always calls with n == m.
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = bitrev_[i];
        if (i < j) {
            std::swap(a[i], a[j]);
        }
    }
    const std::size_t full = bitrev_.size();
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        const std::size_t step = full / len;
        for (std::size_t base = 0; base < n; base += len) {
            for (std::size_t k = 0; k < half; ++k) {
                const cplx w = inv ? std::conj(twiddle_[k * step]) : twiddle_[k * step];
                const cplx u = a[base + k];
                const cplx v = a[base + k + half] * w;
                a[base + k] = u + v;
                a[base + k + half] = u - v;
            }
        }
    }
    if (inv) {
        const double s = 1.0 / static_cast<double>(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] *= s;
        }
    }
}

void Fft1D::bluestein_forward(std::span<cplx> data) const {
    // X_v = chirp_v · Σ_n (x_n chirp_n) · conj(chirp)_{v−n}  — a cyclic
    // convolution of length m_ evaluated by the pow2 engine.
    std::vector<cplx> a(m_, cplx{});
    for (std::size_t k = 0; k < n_; ++k) {
        a[k] = data[k] * chirp_[k];
    }
    pow2_transform(a.data(), m_, false);
    for (std::size_t k = 0; k < m_; ++k) {
        a[k] *= chirp_fft_[k];
    }
    pow2_transform(a.data(), m_, true);
    for (std::size_t k = 0; k < n_; ++k) {
        data[k] = a[k] * chirp_[k];
    }
}

void Fft1D::forward(std::span<cplx> data) const {
    if (data.size() != n_) {
        throw ConfigError{"Fft1D::forward: length mismatch"};
    }
    if (m_ == 0) {
        pow2_transform(data.data(), n_, false);
    } else {
        bluestein_forward(data);
    }
}

void Fft1D::inverse(std::span<cplx> data) const {
    if (data.size() != n_) {
        throw ConfigError{"Fft1D::inverse: length mismatch"};
    }
    if (m_ == 0) {
        pow2_transform(data.data(), n_, true);
        return;
    }
    // inverse(x) = conj(forward(conj(x))) / n  — reuses the Bluestein path.
    for (auto& z : data) {
        z = std::conj(z);
    }
    bluestein_forward(data);
    const double s = 1.0 / static_cast<double>(n_);
    for (auto& z : data) {
        z = std::conj(z) * s;
    }
}

std::shared_ptr<const Fft1D> fft_plan(std::size_t n) {
    static std::mutex mutex;
    static std::unordered_map<std::size_t, std::shared_ptr<const Fft1D>> cache;
    std::lock_guard lock(mutex);
    auto it = cache.find(n);
    if (it == cache.end()) {
        it = cache.emplace(n, std::make_shared<const Fft1D>(n)).first;
    }
    return it->second;
}

}  // namespace rrs
