#include "fft/real.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "special/constants.hpp"

#include "core/error.hpp"

namespace rrs {

Rfft1D::Rfft1D(std::size_t n) : n_(n) {
    if (n < 2 || n % 2 != 0) {
        throw ConfigError{"Rfft1D: length must be even and >= 2"};
    }
    half_plan_ = fft_plan(n / 2);
    twiddle_.resize(n / 2 + 1);
    for (std::size_t k = 0; k <= n / 2; ++k) {
        const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
        twiddle_[k] = cplx{std::cos(ang), std::sin(ang)};
    }
}

void Rfft1D::forward(std::span<const double> in, std::span<cplx> out) const {
    if (in.size() != n_ || out.size() != spectrum_size()) {
        throw ConfigError{"Rfft1D::forward: length mismatch"};
    }
    const std::size_t m = n_ / 2;
    // Pack x[2k] + i·x[2k+1] and transform at half length.
    std::vector<cplx> z(m);
    for (std::size_t k = 0; k < m; ++k) {
        z[k] = cplx{in[2 * k], in[2 * k + 1]};
    }
    half_plan_->forward(z);
    // Unpack: X_k = A_k + W_k·B_k with A the even-sample spectrum and B the
    // odd-sample spectrum, both recovered from Z's Hermitian split.
    out[0] = cplx{z[0].real() + z[0].imag(), 0.0};
    out[m] = cplx{z[0].real() - z[0].imag(), 0.0};
    for (std::size_t k = 1; k < m; ++k) {
        const cplx zk = z[k];
        const cplx zc = std::conj(z[m - k]);
        const cplx a = 0.5 * (zk + zc);
        const cplx b = cplx{0.0, -0.5} * (zk - zc);  // (zk − zc)/(2i)
        out[k] = a + twiddle_[k] * b;
    }
}

void Rfft1D::inverse(std::span<const cplx> in, std::span<double> out) const {
    if (in.size() != spectrum_size() || out.size() != n_) {
        throw ConfigError{"Rfft1D::inverse: length mismatch"};
    }
    const std::size_t m = n_ / 2;
    // Re-pack: Z_k = A_k + i·B_k with A_k = (X_k + conj(X_{m−k}))/2 and
    // B_k = (X_k − conj(X_{m−k}))·conj(W_k)/2.
    std::vector<cplx> z(m);
    z[0] = cplx{0.5 * (in[0].real() + in[m].real()),
                0.5 * (in[0].real() - in[m].real())};
    for (std::size_t k = 1; k < m; ++k) {
        const cplx xk = in[k];
        const cplx xc = std::conj(in[m - k]);
        const cplx a = 0.5 * (xk + xc);
        const cplx b = 0.5 * std::conj(twiddle_[k]) * (xk - xc);
        z[k] = a + cplx{0.0, 1.0} * b;
    }
    half_plan_->inverse(z);
    for (std::size_t k = 0; k < m; ++k) {
        out[2 * k] = z[k].real();
        out[2 * k + 1] = z[k].imag();
    }
}

Rfft2D::Rfft2D(std::size_t nx, std::size_t ny)
    : nx_(nx), ny_(ny), row_plan_(nx), col_plan_(fft_plan(ny)) {
    if (ny < 1) {
        throw ConfigError{"Rfft2D: bad shape"};
    }
}

void Rfft2D::forward(const Array2D<double>& in, Array2D<cplx>& spectrum) const {
    if (in.nx() != nx_ || in.ny() != ny_) {
        throw ConfigError{"Rfft2D::forward: shape mismatch"};
    }
    RRS_TRACE_SPAN("fft.forward");
    static obs::Counter& forwards =
        obs::MetricsRegistry::global().counter("fft.forward");
    forwards.add();
    const std::size_t sx = spectrum_nx();
    spectrum.resize(sx, ny_);
    // r2c on rows.
    parallel_for_chunks(0, static_cast<std::int64_t>(ny_),
                        [&](std::int64_t lo, std::int64_t hi) {
                            std::vector<cplx> out(sx);
                            for (std::int64_t sy = lo; sy < hi; ++sy) {
                                const auto iy = static_cast<std::size_t>(sy);
                                row_plan_.forward(in.row(iy), out);
                                for (std::size_t k = 0; k < sx; ++k) {
                                    spectrum(k, iy) = out[k];
                                }
                            }
                        });
    // Complex FFT down each retained column.
    parallel_for_chunks(0, static_cast<std::int64_t>(sx),
                        [&](std::int64_t lo, std::int64_t hi) {
                            std::vector<cplx> col(ny_);
                            for (std::int64_t sxk = lo; sxk < hi; ++sxk) {
                                const auto k = static_cast<std::size_t>(sxk);
                                for (std::size_t iy = 0; iy < ny_; ++iy) {
                                    col[iy] = spectrum(k, iy);
                                }
                                col_plan_->forward(col);
                                for (std::size_t iy = 0; iy < ny_; ++iy) {
                                    spectrum(k, iy) = col[iy];
                                }
                            }
                        });
}

void Rfft2D::inverse(const Array2D<cplx>& spectrum, Array2D<double>& out) const {
    const std::size_t sx = spectrum_nx();
    if (spectrum.nx() != sx || spectrum.ny() != ny_) {
        throw ConfigError{"Rfft2D::inverse: shape mismatch"};
    }
    RRS_TRACE_SPAN("fft.inverse");
    static obs::Counter& inverses =
        obs::MetricsRegistry::global().counter("fft.inverse");
    inverses.add();
    Array2D<cplx> work = spectrum;
    parallel_for_chunks(0, static_cast<std::int64_t>(sx),
                        [&](std::int64_t lo, std::int64_t hi) {
                            std::vector<cplx> col(ny_);
                            for (std::int64_t sxk = lo; sxk < hi; ++sxk) {
                                const auto k = static_cast<std::size_t>(sxk);
                                for (std::size_t iy = 0; iy < ny_; ++iy) {
                                    col[iy] = work(k, iy);
                                }
                                col_plan_->inverse(col);
                                for (std::size_t iy = 0; iy < ny_; ++iy) {
                                    work(k, iy) = col[iy];
                                }
                            }
                        });
    out.resize(nx_, ny_);
    parallel_for_chunks(0, static_cast<std::int64_t>(ny_),
                        [&](std::int64_t lo, std::int64_t hi) {
                            std::vector<cplx> in_row(sx);
                            for (std::int64_t sy = lo; sy < hi; ++sy) {
                                const auto iy = static_cast<std::size_t>(sy);
                                for (std::size_t k = 0; k < sx; ++k) {
                                    in_row[k] = work(k, iy);
                                }
                                row_plan_.inverse(in_row, out.row(iy));
                            }
                        });
}

std::shared_ptr<const Rfft2D> rfft2d_plan(std::size_t nx, std::size_t ny) {
    static std::mutex mutex;
    static std::unordered_map<std::uint64_t, std::shared_ptr<const Rfft2D>> cache;
    const std::uint64_t key = (static_cast<std::uint64_t>(nx) << 32) | ny;
    std::lock_guard lock(mutex);
    auto it = cache.find(key);
    if (it == cache.end()) {
        RRS_TRACE_SPAN("fft.plan");
        static obs::Counter& plans = obs::MetricsRegistry::global().counter("fft.plans");
        plans.add();
        it = cache.emplace(key, std::make_shared<const Rfft2D>(nx, ny)).first;
    }
    return it->second;
}

}  // namespace rrs
