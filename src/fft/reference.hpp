#pragma once

/// \file reference.hpp
/// Naive O(N²) DFTs — the oracle the FFT is validated against, transcribing
/// the paper's eqs. (11)–(12) literally.  Slow by design; used only in tests
/// and accuracy benches.

#include <vector>

#include "fft/fft1d.hpp"
#include "grid/array2d.hpp"

namespace rrs {

/// Literal eq. (11) in one dimension (forward, unnormalised).
std::vector<cplx> naive_dft(const std::vector<cplx>& x, bool inverse = false);

/// Literal eq. (11): F_{vx,vy} = Σ f e^{−j2π(nx·vx/Nx + ny·vy/Ny)}.
Array2D<cplx> naive_dft2d(const Array2D<cplx>& f, bool inverse = false);

}  // namespace rrs
