#pragma once

/// \file fft2d.hpp
/// Two-dimensional complex FFT over Array2D, parallelised across rows and
/// columns.  Same conventions as Fft1D: forward unnormalised, inverse
/// carries 1/(Nx·Ny) — exactly the paper's eqs. (11)–(12).

#include <complex>
#include <memory>

#include "fft/fft1d.hpp"
#include "grid/array2d.hpp"

namespace rrs {

/// Reusable 2-D transform plan for a fixed (nx, ny) shape.
class Fft2D {
public:
    Fft2D(std::size_t nx, std::size_t ny);

    std::size_t nx() const noexcept { return nx_; }
    std::size_t ny() const noexcept { return ny_; }

    /// In-place forward 2-D DFT.
    void forward(Array2D<cplx>& a) const;

    /// In-place inverse 2-D DFT (includes 1/(Nx·Ny)).
    void inverse(Array2D<cplx>& a) const;

private:
    void transform(Array2D<cplx>& a, bool inv) const;

    std::size_t nx_;
    std::size_t ny_;
    std::shared_ptr<const Fft1D> row_plan_;
    std::shared_ptr<const Fft1D> col_plan_;
};

/// Forward 2-D DFT of a real array (convenience; promotes to complex).
Array2D<cplx> fft2d_forward(const Array2D<double>& a);

/// Inverse 2-D DFT returning the real part; `max_imag` (if non-null)
/// receives the largest |imaginary| component — a Hermitian-symmetry check.
Array2D<double> fft2d_inverse_real(Array2D<cplx> a, double* max_imag = nullptr);

}  // namespace rrs
