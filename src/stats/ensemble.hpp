#pragma once

/// \file ensemble.hpp
/// Ensemble averaging over surface realisations.
///
/// The paper's statistics are ensemble expectations (the <> brackets of
/// eqs. 1-2); single realisations estimate them with large variance.  This
/// helper pools moments, axis ACF curves, and (optionally) periodograms
/// over any number of realisations produced by a caller-supplied factory.

#include <cstdint>
#include <functional>
#include <vector>

#include "grid/array2d.hpp"
#include "stats/moments.hpp"

namespace rrs {

/// Pooled ensemble statistics of K realisations.
struct EnsembleStats {
    Moments moments;                 ///< pooled over all samples of all fields
    std::vector<double> acf_x;       ///< ensemble-mean linear ACF along x
    std::vector<double> acf_y;       ///< ensemble-mean linear ACF along y
    double cl_x = -1.0;              ///< 1/e crossing of acf_x
    double cl_y = -1.0;              ///< 1/e crossing of acf_y
    std::size_t realisations = 0;
};

/// Accumulate statistics over `realisations` fields produced by
/// `make_field(k)`, k = 0..realisations-1.  ACF curves use the unbiased
/// linear estimator without mean subtraction (the generators are exactly
/// zero-mean) out to `max_lag`.
EnsembleStats ensemble_stats(
    const std::function<Array2D<double>(std::uint64_t)>& make_field,
    std::size_t realisations, std::size_t max_lag);

}  // namespace rrs
