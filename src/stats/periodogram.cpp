#include "stats/periodogram.hpp"

#include <cmath>
#include <stdexcept>

#include "fft/fft2d.hpp"
#include "special/constants.hpp"

#include "core/error.hpp"

namespace rrs {

namespace {

/// Hann taper value at index i of n samples.
double hann(std::size_t i, std::size_t n) {
    return 0.5 * (1.0 - std::cos(kTwoPi * static_cast<double>(i) /
                                 static_cast<double>(n)));
}

}  // namespace

Array2D<double> periodogram(const Array2D<double>& f, double Lx, double Ly,
                            bool subtract_mean, SpectralWindow window) {
    if (!(Lx > 0.0) || !(Ly > 0.0)) {
        throw ConfigError{"periodogram: domain lengths must be positive"};
    }
    const std::size_t nx = f.nx();
    const std::size_t ny = f.ny();
    const double dx = Lx / static_cast<double>(nx);
    const double dy = Ly / static_cast<double>(ny);

    double mean = 0.0;
    if (subtract_mean) {
        for (std::size_t i = 0; i < f.size(); ++i) {
            mean += f.data()[i];
        }
        mean /= static_cast<double>(f.size());
    }

    Array2D<cplx> c(nx, ny);
    double window_power = 1.0;
    if (window == SpectralWindow::kHann) {
        double power = 0.0;
        for (std::size_t iy = 0; iy < ny; ++iy) {
            const double wy = hann(iy, ny);
            for (std::size_t ix = 0; ix < nx; ++ix) {
                const double w = hann(ix, nx) * wy;
                c(ix, iy) = cplx{(f(ix, iy) - mean) * w, 0.0};
                power += w * w;
            }
        }
        window_power = power / static_cast<double>(f.size());
    } else {
        for (std::size_t i = 0; i < f.size(); ++i) {
            c.data()[i] = cplx{f.data()[i] - mean, 0.0};
        }
    }
    Fft2D plan(nx, ny);
    plan.forward(c);

    // ∫f e^{-jKr} dr ≈ Δx·Δy·F_v at K_v, so
    // Ŵ = (Δx·Δy)² |F|² / (4π² Lx Ly), divided by the window's mean-square
    // to keep the estimate unbiased under tapering.
    const double scale =
        (dx * dy) * (dx * dy) / (4.0 * kPi * kPi * Lx * Ly * window_power);
    Array2D<double> W(nx, ny);
    for (std::size_t i = 0; i < W.size(); ++i) {
        W.data()[i] = scale * std::norm(c.data()[i]);
    }
    return W;
}

SpectrumAverager::SpectrumAverager(std::size_t nx, std::size_t ny, double Lx, double Ly)
    : Lx_(Lx), Ly_(Ly), sum_(nx, ny, 0.0) {}

void SpectrumAverager::accumulate(const Array2D<double>& realisation) {
    if (realisation.nx() != sum_.nx() || realisation.ny() != sum_.ny()) {
        throw ConfigError{"SpectrumAverager: shape mismatch"};
    }
    const Array2D<double> W = periodogram(realisation, Lx_, Ly_);
    for (std::size_t i = 0; i < sum_.size(); ++i) {
        sum_.data()[i] += W.data()[i];
    }
    ++count_;
}

Array2D<double> SpectrumAverager::average() const {
    if (count_ == 0) {
        throw StateError{"SpectrumAverager: no realisations accumulated"};
    }
    Array2D<double> out(sum_.nx(), sum_.ny());
    for (std::size_t i = 0; i < out.size(); ++i) {
        out.data()[i] = sum_.data()[i] / static_cast<double>(count_);
    }
    return out;
}

double spectrum_integral(const Array2D<double>& W, double Lx, double Ly) {
    const double dK = (kTwoPi / Lx) * (kTwoPi / Ly);
    double total = 0.0;
    for (std::size_t i = 0; i < W.size(); ++i) {
        total += W.data()[i];
    }
    return total * dK;
}

}  // namespace rrs
