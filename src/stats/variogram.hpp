#pragma once

/// \file variogram.hpp
/// Structure function (semivariogram) estimation — the geostatistics
/// companion of the autocorrelation: for a stationary field
/// D(lag) = E[(f(x+lag) − f(x))²] = 2(ρ(0) − ρ(lag)), so γ = D/2 rises
/// from 0 to the sill h² over roughly one correlation length.  Preferred
/// over the ACF when slow drifts contaminate long transects.

#include <cstddef>
#include <vector>

#include "grid/array2d.hpp"

namespace rrs {

/// Semivariogram along the x axis: γ(k) for k = 0..max_lag, averaged over
/// all rows and valid (non-wrapped) offsets.
std::vector<double> semivariogram_x(const Array2D<double>& f, std::size_t max_lag);

/// Semivariogram along the y axis.
std::vector<double> semivariogram_y(const Array2D<double>& f, std::size_t max_lag);

/// Semivariogram of a 1-D profile.
std::vector<double> semivariogram(const std::vector<double>& f, std::size_t max_lag);

/// Analytic semivariogram γ(lag) = ρ(0) − ρ(lag) from an autocorrelation
/// curve (curve[0] must be ρ(0)).
std::vector<double> variogram_from_acf(const std::vector<double>& acf);

/// Lag (linear interpolation) at which a semivariogram first reaches
/// `fraction` of its sill (the curve's final plateau value, estimated from
/// its last quarter); a practical range estimator.  Negative if unreached.
double variogram_range(const std::vector<double>& gamma, double fraction = 0.632);

}  // namespace rrs
