#include "stats/gof.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "special/gamma.hpp"
#include "special/normal.hpp"

#include "core/error.hpp"

namespace rrs {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
    if (!(hi > lo) || bins == 0) {
        throw ConfigError{"Histogram: bad range or bin count"};
    }
}

void Histogram::add(double x) noexcept {
    auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

void Histogram::add_range(std::span<const double> xs) noexcept {
    for (const double x : xs) {
        add(x);
    }
}

double Histogram::bin_lo(std::size_t bin) const {
    return lo_ + static_cast<double>(bin) * width_;
}

double Histogram::bin_hi(std::size_t bin) const {
    return lo_ + static_cast<double>(bin + 1) * width_;
}

std::vector<double> Histogram::density() const {
    std::vector<double> d(counts_.size(), 0.0);
    if (total_ == 0) {
        return d;
    }
    const double norm = 1.0 / (static_cast<double>(total_) * width_);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        d[i] = static_cast<double>(counts_[i]) * norm;
    }
    return d;
}

GofResult chi_square_normality(std::span<const double> standardised, std::size_t bins) {
    if (bins < 3 || standardised.size() < 5 * bins) {
        throw ConfigError{"chi_square_normality: need >= 5 samples per bin"};
    }
    // Equal-probability cells: edges at Φ⁻¹(i/bins).
    std::vector<double> edges(bins - 1);
    for (std::size_t i = 1; i < bins; ++i) {
        edges[i - 1] = norm_ppf(static_cast<double>(i) / static_cast<double>(bins));
    }
    std::vector<std::size_t> observed(bins, 0);
    for (const double x : standardised) {
        const auto it = std::upper_bound(edges.begin(), edges.end(), x);
        ++observed[static_cast<std::size_t>(it - edges.begin())];
    }
    const double expected =
        static_cast<double>(standardised.size()) / static_cast<double>(bins);
    double chi2 = 0.0;
    for (const std::size_t o : observed) {
        const double d = static_cast<double>(o) - expected;
        chi2 += d * d / expected;
    }
    // dof = bins − 1 (parameters are fixed by construction, not fitted here).
    const double dof = static_cast<double>(bins - 1);
    return GofResult{chi2, gamma_q(0.5 * dof, 0.5 * chi2)};
}

double kolmogorov_q(double lambda) {
    if (lambda <= 0.0) {
        return 1.0;
    }
    double sum = 0.0;
    double sign = 1.0;
    for (int j = 1; j <= 200; ++j) {
        const double term = std::exp(-2.0 * static_cast<double>(j) * static_cast<double>(j) *
                                     lambda * lambda);
        sum += sign * term;
        if (term < 1e-12 * std::abs(sum) || term < 1e-300) {
            break;
        }
        sign = -sign;
    }
    return std::clamp(2.0 * sum, 0.0, 1.0);
}

GofResult ks_normality(std::span<const double> standardised) {
    if (standardised.size() < 8) {
        throw ConfigError{"ks_normality: too few samples"};
    }
    std::vector<double> x(standardised.begin(), standardised.end());
    std::sort(x.begin(), x.end());
    const double n = static_cast<double>(x.size());
    double d = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double cdf = norm_cdf(x[i]);
        const double lo = static_cast<double>(i) / n;
        const double hi = static_cast<double>(i + 1) / n;
        d = std::max({d, std::abs(cdf - lo), std::abs(hi - cdf)});
    }
    const double sqrtn = std::sqrt(n);
    const double lambda = (sqrtn + 0.12 + 0.11 / sqrtn) * d;
    return GofResult{d, kolmogorov_q(lambda)};
}

}  // namespace rrs
