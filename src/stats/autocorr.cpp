#include "stats/autocorr.hpp"

#include <cmath>
#include <stdexcept>

#include "fft/fft2d.hpp"

#include "core/error.hpp"

namespace rrs {

Array2D<double> circular_autocovariance(const Array2D<double>& f, bool subtract_mean) {
    const std::size_t nx = f.nx();
    const std::size_t ny = f.ny();
    const double n = static_cast<double>(nx * ny);

    double mean = 0.0;
    if (subtract_mean) {
        for (std::size_t i = 0; i < f.size(); ++i) {
            mean += f.data()[i];
        }
        mean /= n;
    }

    Array2D<cplx> c(nx, ny);
    for (std::size_t i = 0; i < f.size(); ++i) {
        c.data()[i] = cplx{f.data()[i] - mean, 0.0};
    }
    Fft2D plan(nx, ny);
    plan.forward(c);
    for (std::size_t i = 0; i < c.size(); ++i) {
        const double mag2 = std::norm(c.data()[i]);
        c.data()[i] = cplx{mag2, 0.0};
    }
    plan.inverse(c);

    Array2D<double> acf(nx, ny);
    for (std::size_t i = 0; i < acf.size(); ++i) {
        acf.data()[i] = c.data()[i].real() / n;
    }
    return acf;
}

Array2D<double> linear_autocovariance(const Array2D<double>& f, bool subtract_mean) {
    const std::size_t nx = f.nx();
    const std::size_t ny = f.ny();

    double mean = 0.0;
    if (subtract_mean) {
        for (std::size_t i = 0; i < f.size(); ++i) {
            mean += f.data()[i];
        }
        mean /= static_cast<double>(f.size());
    }

    // Zero-pad to double size: the circular correlation of the padded
    // image contains the *linear* correlation sums of the original.
    const std::size_t Px = 2 * nx;
    const std::size_t Py = 2 * ny;
    Array2D<cplx> c(Px, Py, cplx{});
    for (std::size_t iy = 0; iy < ny; ++iy) {
        for (std::size_t ix = 0; ix < nx; ++ix) {
            c(ix, iy) = cplx{f(ix, iy) - mean, 0.0};
        }
    }
    Fft2D plan(Px, Py);
    plan.forward(c);
    for (std::size_t i = 0; i < c.size(); ++i) {
        c.data()[i] = cplx{std::norm(c.data()[i]), 0.0};
    }
    plan.inverse(c);

    // Divide each lag by its overlap count (unbiased estimate) and fold
    // back into the input-shaped aliased layout.
    Array2D<double> acf(nx, ny);
    for (std::size_t iy = 0; iy < ny; ++iy) {
        const auto ly = static_cast<double>(
            iy <= ny / 2 ? iy : ny - iy);  // |signed lag| along y
        for (std::size_t ix = 0; ix < nx; ++ix) {
            const auto lx = static_cast<double>(ix <= nx / 2 ? ix : nx - ix);
            const double overlap =
                (static_cast<double>(nx) - lx) * (static_cast<double>(ny) - ly);
            // Padded-array index of the same signed lag.
            const std::size_t px = ix <= nx / 2 ? ix : Px - (nx - ix);
            const std::size_t py = iy <= ny / 2 ? iy : Py - (ny - iy);
            acf(ix, iy) = c(px, py).real() / overlap;
        }
    }
    return acf;
}

std::vector<double> lag_slice_x(const Array2D<double>& acf, std::size_t max_lag) {
    const std::size_t m = std::min(max_lag + 1, acf.nx());
    std::vector<double> out(m);
    for (std::size_t k = 0; k < m; ++k) {
        out[k] = acf(k, 0);
    }
    return out;
}

std::vector<double> lag_slice_y(const Array2D<double>& acf, std::size_t max_lag) {
    const std::size_t m = std::min(max_lag + 1, acf.ny());
    std::vector<double> out(m);
    for (std::size_t k = 0; k < m; ++k) {
        out[k] = acf(0, k);
    }
    return out;
}

std::vector<double> radial_average(const Array2D<double>& acf, std::size_t max_lag) {
    std::vector<double> sum(max_lag + 1, 0.0);
    std::vector<std::size_t> cnt(max_lag + 1, 0);
    const auto hx = static_cast<std::ptrdiff_t>(acf.nx() / 2);
    const auto hy = static_cast<std::ptrdiff_t>(acf.ny() / 2);
    for (std::size_t iy = 0; iy < acf.ny(); ++iy) {
        for (std::size_t ix = 0; ix < acf.nx(); ++ix) {
            // Signed lag: bins above the half-size alias to negative lags.
            auto lx = static_cast<std::ptrdiff_t>(ix);
            auto ly = static_cast<std::ptrdiff_t>(iy);
            if (lx > hx) {
                lx -= static_cast<std::ptrdiff_t>(acf.nx());
            }
            if (ly > hy) {
                ly -= static_cast<std::ptrdiff_t>(acf.ny());
            }
            const double r = std::hypot(static_cast<double>(lx), static_cast<double>(ly));
            const auto bin = static_cast<std::size_t>(std::llround(r));
            if (bin <= max_lag) {
                sum[bin] += acf(ix, iy);
                ++cnt[bin];
            }
        }
    }
    std::vector<double> out(max_lag + 1, 0.0);
    for (std::size_t k = 0; k <= max_lag; ++k) {
        if (cnt[k] > 0) {
            out[k] = sum[k] / static_cast<double>(cnt[k]);
        }
    }
    return out;
}

double first_crossing(const std::vector<double>& curve, double level) {
    if (curve.empty() || curve[0] <= 0.0) {
        throw ConfigError{"first_crossing: curve must start positive"};
    }
    const double target = level * curve[0];
    for (std::size_t k = 1; k < curve.size(); ++k) {
        if (curve[k] <= target) {
            // Linear interpolation between samples k-1 and k.
            const double a = curve[k - 1];
            const double b = curve[k];
            const double frac = (a - target) / (a - b);
            return static_cast<double>(k - 1) + frac;
        }
    }
    return -1.0;
}

double estimate_correlation_length(const std::vector<double>& curve) {
    return first_crossing(curve, std::exp(-1.0));
}

}  // namespace rrs
