#include "stats/moments.hpp"

#include <algorithm>
#include <cmath>

namespace rrs {

void MomentAccumulator::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    const double n1 = static_cast<double>(n_);
    ++n_;
    const double n = static_cast<double>(n_);
    const double delta = x - mean_;
    const double delta_n = delta / n;
    const double delta_n2 = delta_n * delta_n;
    const double term1 = delta * delta_n * n1;
    mean_ += delta_n;
    m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
           4.0 * delta_n * m3_;
    m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
    m2_ += term1;
}

void MomentAccumulator::merge(const MomentAccumulator& o) noexcept {
    if (o.n_ == 0) {
        return;
    }
    if (n_ == 0) {
        *this = o;
        return;
    }
    // Pébay's pairwise update for combined central moments.
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double n = na + nb;
    const double delta = o.mean_ - mean_;
    const double d2 = delta * delta;
    const double d3 = d2 * delta;
    const double d4 = d3 * delta;

    const double m4 = m4_ + o.m4_ +
                      d4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
                      6.0 * d2 * (na * na * o.m2_ + nb * nb * m2_) / (n * n) +
                      4.0 * delta * (na * o.m3_ - nb * m3_) / n;
    const double m3 = m3_ + o.m3_ + d3 * na * nb * (na - nb) / (n * n) +
                      3.0 * delta * (na * o.m2_ - nb * m2_) / n;
    const double m2 = m2_ + o.m2_ + d2 * na * nb / n;

    mean_ = (na * mean_ + nb * o.mean_) / n;
    m2_ = m2;
    m3_ = m3;
    m4_ = m4;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

double MomentAccumulator::variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double MomentAccumulator::stddev() const noexcept { return std::sqrt(variance()); }

double MomentAccumulator::skewness() const noexcept {
    if (n_ < 3 || m2_ <= 0.0) {
        return 0.0;
    }
    const double n = static_cast<double>(n_);
    return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double MomentAccumulator::excess_kurtosis() const noexcept {
    if (n_ < 4 || m2_ <= 0.0) {
        return 0.0;
    }
    const double n = static_cast<double>(n_);
    return n * m4_ / (m2_ * m2_) - 3.0;
}

Moments snapshot(const MomentAccumulator& acc) {
    return Moments{acc.count(),    acc.mean(),     acc.variance(),        acc.stddev(),
                   acc.skewness(), acc.excess_kurtosis(), acc.min(), acc.max()};
}

Moments compute_moments(std::span<const double> data) {
    MomentAccumulator acc;
    for (const double x : data) {
        acc.add(x);
    }
    return snapshot(acc);
}

}  // namespace rrs
