#include "stats/variogram.hpp"

#include <stdexcept>

#include "core/error.hpp"

namespace rrs {

std::vector<double> semivariogram_x(const Array2D<double>& f, std::size_t max_lag) {
    if (f.nx() <= max_lag) {
        throw ConfigError{"semivariogram_x: max_lag exceeds width"};
    }
    std::vector<double> gamma(max_lag + 1, 0.0);
    for (std::size_t lag = 1; lag <= max_lag; ++lag) {
        double acc = 0.0;
        for (std::size_t iy = 0; iy < f.ny(); ++iy) {
            const auto row = f.row(iy);
            for (std::size_t ix = 0; ix + lag < f.nx(); ++ix) {
                const double d = row[ix + lag] - row[ix];
                acc += d * d;
            }
        }
        gamma[lag] =
            0.5 * acc / (static_cast<double>(f.ny()) * static_cast<double>(f.nx() - lag));
    }
    return gamma;
}

std::vector<double> semivariogram_y(const Array2D<double>& f, std::size_t max_lag) {
    if (f.ny() <= max_lag) {
        throw ConfigError{"semivariogram_y: max_lag exceeds height"};
    }
    std::vector<double> gamma(max_lag + 1, 0.0);
    for (std::size_t lag = 1; lag <= max_lag; ++lag) {
        double acc = 0.0;
        for (std::size_t iy = 0; iy + lag < f.ny(); ++iy) {
            for (std::size_t ix = 0; ix < f.nx(); ++ix) {
                const double d = f(ix, iy + lag) - f(ix, iy);
                acc += d * d;
            }
        }
        gamma[lag] =
            0.5 * acc / (static_cast<double>(f.nx()) * static_cast<double>(f.ny() - lag));
    }
    return gamma;
}

std::vector<double> semivariogram(const std::vector<double>& f, std::size_t max_lag) {
    if (f.size() <= max_lag) {
        throw ConfigError{"semivariogram: max_lag exceeds length"};
    }
    std::vector<double> gamma(max_lag + 1, 0.0);
    for (std::size_t lag = 1; lag <= max_lag; ++lag) {
        double acc = 0.0;
        for (std::size_t i = 0; i + lag < f.size(); ++i) {
            const double d = f[i + lag] - f[i];
            acc += d * d;
        }
        gamma[lag] = 0.5 * acc / static_cast<double>(f.size() - lag);
    }
    return gamma;
}

std::vector<double> variogram_from_acf(const std::vector<double>& acf) {
    if (acf.empty()) {
        throw ConfigError{"variogram_from_acf: empty curve"};
    }
    std::vector<double> gamma(acf.size());
    for (std::size_t k = 0; k < acf.size(); ++k) {
        gamma[k] = acf[0] - acf[k];
    }
    return gamma;
}

double variogram_range(const std::vector<double>& gamma, double fraction) {
    if (gamma.size() < 8) {
        throw ConfigError{"variogram_range: curve too short"};
    }
    // Sill: mean of the last quarter of the curve.
    double sill = 0.0;
    const std::size_t tail = gamma.size() / 4;
    for (std::size_t k = gamma.size() - tail; k < gamma.size(); ++k) {
        sill += gamma[k];
    }
    sill /= static_cast<double>(tail);
    if (!(sill > 0.0)) {
        return -1.0;
    }
    const double target = fraction * sill;
    for (std::size_t k = 1; k < gamma.size(); ++k) {
        if (gamma[k] >= target) {
            const double a = gamma[k - 1];
            const double b = gamma[k];
            const double frac = (target - a) / (b - a);
            return static_cast<double>(k - 1) + frac;
        }
    }
    return -1.0;
}

}  // namespace rrs
