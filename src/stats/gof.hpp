#pragma once

/// \file gof.hpp
/// Goodness-of-fit machinery: histograms, χ² and Kolmogorov–Smirnov tests
/// against the standard normal.  Surface heights generated from any of the
/// paper's spectra are Gaussian (linear filtering of Gaussian noise); the
/// test suite asserts that with these.

#include <cstddef>
#include <span>
#include <vector>

namespace rrs {

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// edge bins.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;
    void add_range(std::span<const double> xs) noexcept;

    std::size_t bin_count() const noexcept { return counts_.size(); }
    std::size_t total() const noexcept { return total_; }
    std::size_t count(std::size_t bin) const { return counts_.at(bin); }
    double bin_lo(std::size_t bin) const;
    double bin_hi(std::size_t bin) const;

    /// Empirical density (count / total / width) for plotting.
    std::vector<double> density() const;

private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

struct GofResult {
    double statistic = 0.0;  ///< χ² value or KS D statistic
    double p_value = 0.0;    ///< probability of a statistic at least this extreme
};

/// Pearson χ² test of `standardised` samples (mean 0, sd 1 expected)
/// against N(0,1), using `bins` equal-probability cells.
GofResult chi_square_normality(std::span<const double> standardised, std::size_t bins = 32);

/// One-sample Kolmogorov–Smirnov test of `standardised` samples against the
/// standard normal CDF.  NOTE: sorts a copy of the data — O(n log n).
GofResult ks_normality(std::span<const double> standardised);

/// Kolmogorov's limiting distribution Q(λ) = 2 Σ (−1)^{j−1} e^{−2j²λ²}.
double kolmogorov_q(double lambda);

}  // namespace rrs
