#pragma once

/// \file moments.hpp
/// One-pass descriptive statistics (Welford / Pébay update), used to verify
/// generated surfaces against their target parameters: the paper's h is the
/// standard deviation of height (eq. 1), and surface heights must be
/// Gaussian with zero mean.

#include <cstddef>
#include <span>

namespace rrs {

/// Numerically stable accumulator for mean and 2nd–4th central moments.
class MomentAccumulator {
public:
    void add(double x) noexcept;

    /// Merge another accumulator (parallel reduction support).
    void merge(const MomentAccumulator& o) noexcept;

    std::size_t count() const noexcept { return n_; }
    double mean() const noexcept { return mean_; }

    /// Unbiased sample variance (n−1 denominator); 0 for n < 2.
    double variance() const noexcept;

    /// Population standard deviation estimate sqrt(variance()).
    double stddev() const noexcept;

    /// Sample skewness g1 = √n·M3 / M2^{3/2}; 0 for degenerate inputs.
    double skewness() const noexcept;

    /// Sample excess kurtosis g2 = n·M4/M2² − 3; 0 for degenerate inputs.
    double excess_kurtosis() const noexcept;

    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double m3_ = 0.0;
    double m4_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Plain-value snapshot of the accumulator.
struct Moments {
    std::size_t count = 0;
    double mean = 0.0;
    double variance = 0.0;
    double stddev = 0.0;
    double skewness = 0.0;
    double excess_kurtosis = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/// One-pass moments of a contiguous range.
Moments compute_moments(std::span<const double> data);

Moments snapshot(const MomentAccumulator& acc);

}  // namespace rrs
