#pragma once

/// \file periodogram.hpp
/// Spectral density estimation, normalised to the paper's convention
/// (eq. 2): W(K) = (1/2π)² (1/LxLy) <|∫ f e^{−jK·r} dr|²>, so that
/// ∬ W dK = h² (eq. 1).

#include <cstddef>

#include "grid/array2d.hpp"

namespace rrs {

/// Data taper applied before the transform.
enum class SpectralWindow {
    kRect,  ///< no taper (raw periodogram)
    kHann,  ///< separable 2-D Hann taper — suppresses leakage from the
            ///< non-periodic sample boundary at the cost of resolution
};

/// One-shot periodogram Ŵ(K_m) of a surface sampled on an Lx×Ly domain.
/// Bin (mx, my) corresponds to K = (2π·m̄x/Lx, 2π·m̄y/Ly) with signed
/// aliasing per eq. (16).  Riemann sum of the result times ΔKx·ΔKy
/// approximates h² (Parseval); window power is compensated so the
/// estimate stays asymptotically unbiased with the Hann taper.
Array2D<double> periodogram(const Array2D<double>& f, double Lx, double Ly,
                            bool subtract_mean = true,
                            SpectralWindow window = SpectralWindow::kRect);

/// Welch-style averaging: accumulates periodograms of independent
/// realisations to beat down the estimator's (100%) single-shot variance.
class SpectrumAverager {
public:
    SpectrumAverager(std::size_t nx, std::size_t ny, double Lx, double Ly);

    void accumulate(const Array2D<double>& realisation);

    std::size_t count() const noexcept { return count_; }

    /// Mean periodogram over all accumulated realisations.
    Array2D<double> average() const;

private:
    double Lx_;
    double Ly_;
    Array2D<double> sum_;
    std::size_t count_ = 0;
};

/// Riemann-sum ∬ Ŵ dK over all bins — should equal the sample variance h̃².
double spectrum_integral(const Array2D<double>& W, double Lx, double Ly);

}  // namespace rrs
