#include "stats/ensemble.hpp"

#include <stdexcept>

#include "stats/autocorr.hpp"

#include "core/error.hpp"

namespace rrs {

EnsembleStats ensemble_stats(
    const std::function<Array2D<double>(std::uint64_t)>& make_field,
    std::size_t realisations, std::size_t max_lag) {
    if (realisations == 0) {
        throw ConfigError{"ensemble_stats: need at least one realisation"};
    }
    EnsembleStats out;
    out.realisations = realisations;
    out.acf_x.assign(max_lag + 1, 0.0);
    out.acf_y.assign(max_lag + 1, 0.0);

    MomentAccumulator acc;
    for (std::uint64_t k = 0; k < realisations; ++k) {
        const Array2D<double> f = make_field(k);
        if (f.nx() <= max_lag || f.ny() <= max_lag) {
            throw ConfigError{"ensemble_stats: field smaller than max_lag"};
        }
        for (std::size_t i = 0; i < f.size(); ++i) {
            acc.add(f.data()[i]);
        }
        const Array2D<double> acf = linear_autocovariance(f, /*subtract_mean=*/false);
        const auto sx = lag_slice_x(acf, max_lag);
        const auto sy = lag_slice_y(acf, max_lag);
        for (std::size_t l = 0; l <= max_lag; ++l) {
            out.acf_x[l] += sx[l] / static_cast<double>(realisations);
            out.acf_y[l] += sy[l] / static_cast<double>(realisations);
        }
    }
    out.moments = snapshot(acc);
    out.cl_x = estimate_correlation_length(out.acf_x);
    out.cl_y = estimate_correlation_length(out.acf_y);
    return out;
}

}  // namespace rrs
