#pragma once

/// \file autocorr.hpp
/// Empirical autocorrelation of sampled surfaces.
///
/// The paper defines ρ(r) as the Fourier transform of W(K) (eq. 4) and uses
/// `DFT(w) ≈ ρ` as its accuracy check (§2.2).  These estimators measure ρ̂
/// from realised surfaces so generated fields can be validated against the
/// analytic ρ of their spectrum.

#include <cstddef>
#include <vector>

#include "grid/array2d.hpp"

namespace rrs {

/// Circular (periodic) biased autocovariance estimate via the Wiener–
/// Khinchin route: ρ̂(lag) = IDFT(|DFT(f − mean)|²) / N.  Lag (0,0) is the
/// sample variance.  O(N log N).  Exact for periodic fields (direct-DFT
/// surfaces); biased by the wrap for windowed samples.
Array2D<double> circular_autocovariance(const Array2D<double>& f, bool subtract_mean = true);

/// Unbiased linear autocovariance of a windowed (non-periodic) sample:
/// zero-pads to 2Nx×2Ny so no wrap occurs and divides each lag by its true
/// overlap count (Nx−|lx|)(Ny−|ly|).  E[ρ̂(lag)] = ρ(lag) exactly for a
/// zero-mean stationary field.  Returned array has the input shape with
/// the same aliased-lag layout as circular_autocovariance.
Array2D<double> linear_autocovariance(const Array2D<double>& f, bool subtract_mean = false);

/// Axis slice of a 2-D lag array: values at lags (0..max_lag, 0).
std::vector<double> lag_slice_x(const Array2D<double>& acf, std::size_t max_lag);

/// Axis slice of a 2-D lag array: values at lags (0, 0..max_lag).
std::vector<double> lag_slice_y(const Array2D<double>& acf, std::size_t max_lag);

/// Isotropic radial average of a lag array: bin k collects all lags with
/// round(|r|) == k (up to max_lag).  Returns per-bin means; empty bins hold 0.
std::vector<double> radial_average(const Array2D<double>& acf, std::size_t max_lag);

/// Distance (in lag units) at which a sampled correlation curve first
/// drops below `level` times its lag-0 value, linearly interpolated between
/// samples; returns a negative value if it never crosses.
///
/// For the Gaussian and Exponential families, ρ(cl)/ρ(0) = 1/e exactly, so
/// `estimate_correlation_length(curve)` with the default level recovers cl.
double first_crossing(const std::vector<double>& curve, double level);

/// Convenience: 1/e-crossing of a correlation curve (the paper's cl for the
/// Gaussian and Exponential spectra).
double estimate_correlation_length(const std::vector<double>& curve);

}  // namespace rrs
