#include "service/tile_service.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <utility>

#include "core/validate.hpp"
#include "fault/inject.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rrs {

namespace {

/// Process-wide mirrors of the per-service counters (obs registry view of
/// combined traffic across every TileService in the process).
struct GlobalTileCounters {
    obs::Counter& requests;
    obs::Counter& hits;
    obs::Counter& misses;
    obs::Counter& coalesced;
    obs::Counter& generations;
    obs::Counter& l2_promotions;
    obs::Counter& l2_write_failures;
    obs::Counter& remote_fills;

    static GlobalTileCounters& get() {
        static GlobalTileCounters c{
            obs::MetricsRegistry::global().counter("service.tile.requests"),
            obs::MetricsRegistry::global().counter("service.tile.hits"),
            obs::MetricsRegistry::global().counter("service.tile.misses"),
            obs::MetricsRegistry::global().counter("service.tile.coalesced"),
            obs::MetricsRegistry::global().counter("service.tile.generations"),
            obs::MetricsRegistry::global().counter("store.l2.promotions"),
            obs::MetricsRegistry::global().counter("store.l2.write_failures"),
            obs::MetricsRegistry::global().counter("service.tile.remote_fills")};
        return c;
    }
};

using clock_type = std::chrono::steady_clock;

std::uint64_t micros_since(clock_type::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock_type::now() - t0)
            .count());
}

/// Distinct nonzero stand-in fingerprints for generators that don't expose
/// one: entries from two unfingerprinted generators must never alias inside
/// a shared cache, so each service instance gets a private id.
std::uint64_t next_private_fingerprint() {
    static std::atomic<std::uint64_t> counter{0};
    // Salted away from real fingerprints; mix64 is bijective so ids never
    // collide with each other, and never return the reserved value 0.
    const std::uint64_t id =
        mix64(counter.fetch_add(1, std::memory_order_relaxed) ^ 0x5EB41CEDULL << 32);
    return id == 0 ? 1 : id;
}

}  // namespace

TileService::TileService(std::function<Array2D<double>(const Rect&)> generate,
                         std::uint64_t fingerprint, Options opt,
                         std::shared_ptr<TileCache> cache)
    : generate_(std::move(generate)),
      fingerprint_(fingerprint != 0 ? fingerprint : next_private_fingerprint()),
      opt_(opt),
      cache_(std::move(cache)) {
    check_tile_shape(opt_.shape);
    RRS_CHECK(static_cast<bool>(generate_), "TileService", "generate callable is empty");
    if (!cache_) {
        cache_ = std::make_shared<TileCache>(opt_.cache_bytes, opt_.cache_shards);
    }
}

TilePtr TileService::get(const TileKey& key) {
    check_zoom(key.z);
    if (key.z > 0 && (opt_.shape.nx % 2 != 0 || opt_.shape.ny % 2 != 0)) {
        // Derivation maps parent sample px to child sample 2·px − cx·nx,
        // which tiles exactly only when the shape halves evenly.
        throw ConfigError{"zoomed tiles require an even tile shape",
                          {"service", "TileService"}};
    }
    const auto t0 = clock_type::now();
    metrics_.record_request();
    GlobalTileCounters::get().requests.add();
    const TileAddress address{fingerprint_, key};
    if (TilePtr hit = cache_->find(address)) {
        metrics_.record_hit();
        GlobalTileCounters::get().hits.add();
        metrics_.record_latency_us(micros_since(t0));
        return hit;
    }
    metrics_.record_miss();
    GlobalTileCounters::get().misses.add();
    TilePtr tile = generate_or_join(key);
    metrics_.record_latency_us(micros_since(t0));
    return tile;
}

TilePtr TileService::peek(const TileKey& key) {
    check_zoom(key.z);
    const TileAddress address{fingerprint_, key};
    if (TilePtr hit = cache_->find(address)) {
        return hit;
    }
    if (opt_.store) {
        if (store::TileStore::TilePayload stored = opt_.store->find(address)) {
            TilePtr tile = std::move(stored);
            // Promote like the miss path would — the peek warmed it.
            cache_->insert(address, tile);
            return tile;
        }
    }
    return nullptr;
}

TilePtr TileService::generate_or_join(const TileKey& key) {
    const TileAddress address{fingerprint_, key};
    std::promise<TilePtr> promise;
    std::shared_future<TilePtr> future;
    bool leader = false;
    {
        std::lock_guard lock(inflight_mutex_);
        const auto it = inflight_.find(address);
        if (it != inflight_.end()) {
            future = it->second;
            metrics_.record_coalesced();
            GlobalTileCounters::get().coalesced.add();
        } else {
            future = promise.get_future().share();
            inflight_.emplace(address, future);
            leader = true;
        }
    }
    if (leader) {
        try {
            // L2 first: a promotion serves the stored bytes without a
            // generation (and without counting one).  An L2 miss — or any
            // injected/real read degradation inside find() — falls through
            // to generation.
            TilePtr tile;
            if (opt_.store) {
                if (store::TileStore::TilePayload stored = opt_.store->find(address)) {
                    tile = std::move(stored);
                    metrics_.record_l2_promotion();
                    GlobalTileCounters::get().l2_promotions.add();
                }
            }
            if (!tile && opt_.remote_fill) {
                // Cluster peer fill (never throws; nullptr = generate).  A
                // wrong-shaped payload is discarded — a misconfigured peer
                // must not poison the cache.
                if (TilePtr remote = opt_.remote_fill(key);
                    remote != nullptr &&
                    remote->nx() == static_cast<std::size_t>(opt_.shape.nx) &&
                    remote->ny() == static_cast<std::size_t>(opt_.shape.ny)) {
                    tile = std::move(remote);
                    metrics_.record_remote_fill();
                    GlobalTileCounters::get().remote_fills.add();
                    if (opt_.store) {
                        try {
                            opt_.store->insert(address, *tile);
                        } catch (const Error&) {
                            metrics_.record_l2_write_failure();
                            GlobalTileCounters::get().l2_write_failures.add();
                        }
                    }
                }
            }
            if (!tile) {
                metrics_.record_generation();
                GlobalTileCounters::get().generations.add();
                RRS_TRACE_SPAN("tile.generate");
                if (fault::inject("tile.generate")) {
                    throw NumericError{"injected generation fault",
                                       {"fault", "tile.generate"}};
                }
                tile = std::make_shared<const Array2D<double>>(generate_tile(key));
                if (opt_.store) {
                    // Write-through; persistence failures are swallowed —
                    // the tile is still served, the store stays an
                    // optimisation (counted for observability).
                    try {
                        opt_.store->insert(address, *tile);
                    } catch (const Error&) {
                        metrics_.record_l2_write_failure();
                        GlobalTileCounters::get().l2_write_failures.add();
                    }
                }
            }
            // Publish to the cache BEFORE retiring the in-flight entry, so a
            // request arriving between the two always finds one or the other
            // (never generates a duplicate).  An injected cache_fill fault
            // serves the tile without retaining it (a lossy cache, not an
            // error — the next request regenerates).
            if (!fault::inject("tile.cache_fill")) {
                cache_->insert(address, tile);
            }
            {
                std::lock_guard lock(inflight_mutex_);
                inflight_.erase(address);
            }
            promise.set_value(std::move(tile));
        } catch (...) {
            metrics_.record_generation_failure();
            {
                std::lock_guard lock(inflight_mutex_);
                inflight_.erase(address);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();  // rethrows the leader's exception for every waiter
}

Array2D<double> TileService::generate_tile(const TileKey& key) {
    if (key.z == 0) {
        return generate_(tile_rect(opt_.shape, key));
    }
    // Derive from the four z−1 children (decimation by 2 of the assembled
    // child block).  get() runs on the calling thread — no pool submission —
    // so recursion to the base lattice cannot deadlock a saturated pool, and
    // every intermediate level lands in the cache (and store) on the way up.
    const std::array<TileKey, 4> child_keys = tile_children(key);
    std::array<TilePtr, 4> children;
    for (std::size_t i = 0; i < children.size(); ++i) {
        children[i] = get(child_keys[i]);
    }
    const auto nx = static_cast<std::size_t>(opt_.shape.nx);
    const auto ny = static_cast<std::size_t>(opt_.shape.ny);
    Array2D<double> out(nx, ny);
    for (std::size_t py = 0; py < ny; ++py) {
        const std::size_t cy = py < ny / 2 ? 0 : 1;
        const std::size_t jy = 2 * py - cy * ny;
        for (std::size_t px = 0; px < nx; ++px) {
            const std::size_t cx = px < nx / 2 ? 0 : 1;
            const std::size_t jx = 2 * px - cx * nx;
            // Parent sample (px, py) IS child (cx, cy) sample (2px−cx·nx,
            // 2py−cy·ny): both name base-lattice point ((tx·nx+px)·2^z, ...).
            out(px, py) = (*children[cx + 2 * cy])(jx, jy);
        }
    }
    return out;
}

std::vector<std::pair<TileKey, TilePtr>> TileService::pyramid(const TileKey& top,
                                                              std::int32_t min_z) {
    check_zoom(top.z);
    check_zoom(min_z);
    if (min_z > top.z) {
        throw ConfigError{"pyramid min_z must not exceed the top tile's zoom",
                          {"service", "TileService"}};
    }
    std::vector<std::vector<TileKey>> levels;
    levels.push_back({top});
    for (std::int32_t z = top.z; z > min_z; --z) {
        std::vector<TileKey> next;
        next.reserve(levels.back().size() * 4);
        for (const TileKey& key : levels.back()) {
            for (const TileKey& child : tile_children(key)) {
                next.push_back(child);
            }
        }
        levels.push_back(std::move(next));
    }
    // Fetch finest-first: the base level fans out across the pool (the
    // expensive part), then each coarser level derives from warm children.
    std::vector<std::vector<TilePtr>> tiles(levels.size());
    for (std::size_t lvl = levels.size(); lvl-- > 0;) {
        tiles[lvl] = get_many(levels[lvl]);
    }
    std::vector<std::pair<TileKey, TilePtr>> out;
    std::size_t total = 0;
    for (const auto& level : levels) {
        total += level.size();
    }
    out.reserve(total);
    for (std::size_t lvl = 0; lvl < levels.size(); ++lvl) {
        for (std::size_t i = 0; i < levels[lvl].size(); ++i) {
            out.emplace_back(levels[lvl][i], tiles[lvl][i]);
        }
    }
    return out;
}

std::vector<TilePtr> TileService::get_many(const std::vector<TileKey>& keys) {
    metrics_.record_batch();
    std::vector<TilePtr> out(keys.size());
    if (keys.empty()) {
        return out;
    }
    if (keys.size() == 1) {
        out[0] = get(keys[0]);
        return out;
    }
    ThreadPool& workers = pool();
    std::vector<std::future<TilePtr>> futures;
    futures.reserve(keys.size());
    for (const TileKey& key : keys) {
        futures.push_back(workers.submit([this, key] { return get(key); }));
    }
    // Settle every tile before reporting the first failure: no task is left
    // running against a batch the caller has already abandoned.
    std::exception_ptr first_failure;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
            out[i] = futures[i].get();
        } catch (...) {
            if (!first_failure) {
                first_failure = std::current_exception();
            }
        }
    }
    if (first_failure) {
        std::rethrow_exception(first_failure);
    }
    return out;
}

Array2D<double> TileService::window(const Rect& region) {
    RRS_TRACE_SPAN("tile.window");
    RRS_CHECK(region.nx >= 0, "TileService::window", "region.nx must be non-negative");
    RRS_CHECK(region.ny >= 0, "TileService::window", "region.ny must be non-negative");
    if (region.nx == 0 || region.ny == 0) {
        // Degenerate 0×N / N×0 / 0×0 windows are valid empty requests: no
        // tiles are touched and no metrics recorded — just the (possibly
        // zero-extent-but-shaped) empty array.
        return Array2D<double>(static_cast<std::size_t>(region.nx),
                               static_cast<std::size_t>(region.ny));
    }
    (void)checked_mul(region.nx, region.ny, "region.nx * region.ny",
                      {"TileService", "window"});
    const std::vector<TileKey> keys = covering_tiles(opt_.shape, region);
    const std::vector<TilePtr> tiles = get_many(keys);
    Array2D<double> out(static_cast<std::size_t>(region.nx),
                        static_cast<std::size_t>(region.ny));
    for (std::size_t t = 0; t < keys.size(); ++t) {
        const Rect tile = tile_rect(opt_.shape, keys[t]);
        const Rect overlap = intersect(tile, region);
        const Array2D<double>& data = *tiles[t];
        for (std::int64_t y = overlap.y0; y < overlap.y1(); ++y) {
            for (std::int64_t x = overlap.x0; x < overlap.x1(); ++x) {
                out(static_cast<std::size_t>(x - region.x0),
                    static_cast<std::size_t>(y - region.y0)) =
                    data(static_cast<std::size_t>(x - tile.x0),
                         static_cast<std::size_t>(y - tile.y0));
            }
        }
    }
    return out;
}

MetricsSnapshot TileService::metrics() const {
    MetricsSnapshot out;
    metrics_.fill_snapshot(out);
    const TileCache::Stats cache = cache_->stats();
    out.cache_evictions = cache.evictions;
    out.cache_bytes = cache.bytes;
    out.cache_tiles = cache.tiles;
    out.cache_byte_budget = cache_->byte_budget();
    return out;
}

}  // namespace rrs
