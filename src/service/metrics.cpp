#include "service/metrics.hpp"

#include <sstream>

namespace rrs {

namespace {

void append_field(std::ostringstream& out, const char* key, std::uint64_t value,
                  bool& first) {
    if (!first) {
        out << ',';
    }
    first = false;
    out << '"' << key << "\":" << value;
}

}  // namespace

void ServiceMetrics::fill_snapshot(MetricsSnapshot& out) const {
    out.requests = requests_.value();
    out.cache_hits = hits_.value();
    out.cache_misses = misses_.value();
    out.generations = generations_.value();
    out.generation_failures = generation_failures_.value();
    out.coalesced = coalesced_.value();
    out.batches = batches_.value();
    out.l2_promotions = l2_promotions_.value();
    out.l2_write_failures = l2_write_failures_.value();
    out.remote_fills = remote_fills_.value();

    // The latency block reuses the shared obs quantile estimator (upper
    // bucket bound — conservative, never under-reports).
    const obs::HistogramSnapshot h = obs::snapshot_histogram(latency_);
    LatencySnapshot& lat = out.latency;
    lat.counts = h.counts;
    lat.samples = h.samples;
    lat.total_micros = h.sum;
    lat.mean_us = h.mean;
    lat.p50_us = h.p50;
    lat.p95_us = h.p95;
    lat.p99_us = h.p99;
}

std::string MetricsSnapshot::to_json() const {
    std::ostringstream out;
    out << '{';
    bool first = true;
    append_field(out, "requests", requests, first);
    append_field(out, "cache_hits", cache_hits, first);
    append_field(out, "cache_misses", cache_misses, first);
    append_field(out, "generations", generations, first);
    append_field(out, "coalesced", coalesced, first);
    append_field(out, "batches", batches, first);
    append_field(out, "generation_failures", generation_failures, first);
    append_field(out, "l2_promotions", l2_promotions, first);
    append_field(out, "l2_write_failures", l2_write_failures, first);
    append_field(out, "remote_fills", remote_fills, first);
    append_field(out, "cache_evictions", cache_evictions, first);
    append_field(out, "cache_bytes", cache_bytes, first);
    append_field(out, "cache_tiles", cache_tiles, first);
    append_field(out, "cache_byte_budget", cache_byte_budget, first);
    out << ",\"hit_rate\":" << hit_rate();
    out << ",\"latency\":{\"samples\":" << latency.samples
        << ",\"mean_us\":" << latency.mean_us << ",\"p50_us\":" << latency.p50_us
        << ",\"p95_us\":" << latency.p95_us << ",\"p99_us\":" << latency.p99_us
        << ",\"buckets_us\":[";
    // Emit [floor_us, count] pairs for non-empty buckets only — compact and
    // reconstructible (floors are the full log₂ ladder).
    bool first_bucket = true;
    for (std::size_t b = 0; b < latency.counts.size(); ++b) {
        if (latency.counts[b] == 0) {
            continue;
        }
        if (!first_bucket) {
            out << ',';
        }
        first_bucket = false;
        out << '[' << LatencyHistogram::bucket_floor_us(b) << ',' << latency.counts[b]
            << ']';
    }
    out << "]}}";
    return out.str();
}

}  // namespace rrs
