#include "service/metrics.hpp"

#include <sstream>

namespace rrs {

namespace {

/// Upper bound (exclusive) of histogram bucket `b` in microseconds; the
/// overflow bucket reports its floor (there is no finite ceiling).
std::uint64_t bucket_ceil_us(std::size_t b) {
    if (b + 1 >= LatencyHistogram::kBuckets) {
        return LatencyHistogram::bucket_floor_us(b);
    }
    return LatencyHistogram::bucket_floor_us(b + 1);
}

/// Upper bound of the bucket holding quantile `q` of `counts`.
std::uint64_t quantile_us(const std::array<std::uint64_t, LatencyHistogram::kBuckets>& counts,
                          std::uint64_t samples, double q) {
    if (samples == 0) {
        return 0;
    }
    const double target = q * static_cast<double>(samples);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        seen += counts[b];
        if (static_cast<double>(seen) >= target) {
            return bucket_ceil_us(b);
        }
    }
    return bucket_ceil_us(counts.size() - 1);
}

void append_field(std::ostringstream& out, const char* key, std::uint64_t value,
                  bool& first) {
    if (!first) {
        out << ',';
    }
    first = false;
    out << '"' << key << "\":" << value;
}

}  // namespace

void ServiceMetrics::fill_snapshot(MetricsSnapshot& out) const {
    out.requests = requests_.load(std::memory_order_relaxed);
    out.cache_hits = hits_.load(std::memory_order_relaxed);
    out.cache_misses = misses_.load(std::memory_order_relaxed);
    out.generations = generations_.load(std::memory_order_relaxed);
    out.generation_failures = generation_failures_.load(std::memory_order_relaxed);
    out.coalesced = coalesced_.load(std::memory_order_relaxed);
    out.batches = batches_.load(std::memory_order_relaxed);

    LatencySnapshot& lat = out.latency;
    lat.samples = 0;
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
        lat.counts[b] = latency_.count(b);
        lat.samples += lat.counts[b];
    }
    lat.total_micros = latency_.total_micros();
    lat.mean_us = lat.samples == 0 ? 0.0
                                   : static_cast<double>(lat.total_micros) /
                                         static_cast<double>(lat.samples);
    lat.p50_us = quantile_us(lat.counts, lat.samples, 0.50);
    lat.p95_us = quantile_us(lat.counts, lat.samples, 0.95);
    lat.p99_us = quantile_us(lat.counts, lat.samples, 0.99);
}

std::string MetricsSnapshot::to_json() const {
    std::ostringstream out;
    out << '{';
    bool first = true;
    append_field(out, "requests", requests, first);
    append_field(out, "cache_hits", cache_hits, first);
    append_field(out, "cache_misses", cache_misses, first);
    append_field(out, "generations", generations, first);
    append_field(out, "coalesced", coalesced, first);
    append_field(out, "batches", batches, first);
    append_field(out, "generation_failures", generation_failures, first);
    append_field(out, "cache_evictions", cache_evictions, first);
    append_field(out, "cache_bytes", cache_bytes, first);
    append_field(out, "cache_tiles", cache_tiles, first);
    append_field(out, "cache_byte_budget", cache_byte_budget, first);
    out << ",\"hit_rate\":" << hit_rate();
    out << ",\"latency\":{\"samples\":" << latency.samples
        << ",\"mean_us\":" << latency.mean_us << ",\"p50_us\":" << latency.p50_us
        << ",\"p95_us\":" << latency.p95_us << ",\"p99_us\":" << latency.p99_us
        << ",\"buckets_us\":[";
    // Emit [floor_us, count] pairs for non-empty buckets only — compact and
    // reconstructible (floors are the full log₂ ladder).
    bool first_bucket = true;
    for (std::size_t b = 0; b < latency.counts.size(); ++b) {
        if (latency.counts[b] == 0) {
            continue;
        }
        if (!first_bucket) {
            out << ',';
        }
        first_bucket = false;
        out << '[' << LatencyHistogram::bucket_floor_us(b) << ',' << latency.counts[b]
            << ']';
    }
    out << "]}}";
    return out.str();
}

}  // namespace rrs
