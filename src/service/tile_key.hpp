#pragma once

/// \file tile_key.hpp
/// Map-tile addressing of the unbounded output lattice.
///
/// The paper's convolution method (§2.4) generates "any size of continuous
/// RRSs by successive computations", and the noise lattice is a pure
/// function of (seed, ix, iy) — so the plane splits into fixed-size tiles
/// that can be generated independently, in any order, on any thread, and
/// always agree where they meet.  A TileKey is the integer address (tx, ty)
/// of one such tile; TileShape fixes the tile extent for a whole service.
///
/// Addressing convention: tile (tx, ty) covers the half-open lattice window
/// [tx·nx, (tx+1)·nx) × [ty·ny, (ty+1)·ny).  Tile indices may be negative —
/// the lattice is unbounded in every direction.

#include <cstdint>
#include <vector>

#include "core/validate.hpp"
#include "grid/rect.hpp"
#include "rng/hash.hpp"

namespace rrs {

/// Fixed per-service tile extent (lattice points per tile along each axis).
struct TileShape {
    std::int64_t nx = 256;
    std::int64_t ny = 256;

    friend bool operator==(const TileShape&, const TileShape&) = default;
};

/// Throws ConfigError unless both extents are positive.
inline void check_tile_shape(const TileShape& s) {
    check_positive_count(s.nx, "tile nx", {"TileShape"});
    check_positive_count(s.ny, "tile ny", {"TileShape"});
}

/// Integer address of one tile of the unbounded lattice.
struct TileKey {
    std::int64_t tx = 0;
    std::int64_t ty = 0;

    friend bool operator==(const TileKey&, const TileKey&) = default;
    friend bool operator<(const TileKey& a, const TileKey& b) noexcept {
        return a.ty != b.ty ? a.ty < b.ty : a.tx < b.tx;
    }
};

/// Output window of tile `key`: [tx·nx, (tx+1)·nx) × [ty·ny, (ty+1)·ny).
inline Rect tile_rect(const TileShape& shape, const TileKey& key) noexcept {
    return Rect{key.tx * shape.nx, key.ty * shape.ny, shape.nx, shape.ny};
}

/// Tile window grown by the kernel halo (`dilate`): the noise footprint a
/// convolution generator reads to produce this tile.  Useful for sizing the
/// per-tile working set; generators take the *output* rect from tile_rect()
/// and handle their halo internally.
inline Rect tile_rect_with_halo(const TileShape& shape, const TileKey& key,
                                std::int64_t halo_x, std::int64_t halo_y) noexcept {
    return dilate(tile_rect(shape, key), halo_x, halo_y);
}

/// Floor division (toward −∞) for signed lattice coordinates.
inline std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
    const std::int64_t q = a / b;
    return (a % b != 0 && ((a < 0) != (b < 0))) ? q - 1 : q;
}

/// Address of the tile containing lattice point (x, y).
inline TileKey containing_tile(const TileShape& shape, std::int64_t x,
                               std::int64_t y) noexcept {
    return TileKey{floor_div(x, shape.nx), floor_div(y, shape.ny)};
}

/// All tile addresses intersecting `region`, in row-major (ty, tx) order.
inline std::vector<TileKey> covering_tiles(const TileShape& shape, const Rect& region) {
    std::vector<TileKey> keys;
    if (region.empty()) {
        return keys;
    }
    const TileKey lo = containing_tile(shape, region.x0, region.y0);
    const TileKey hi = containing_tile(shape, region.x1() - 1, region.y1() - 1);
    keys.reserve(static_cast<std::size_t>((hi.tx - lo.tx + 1) * (hi.ty - lo.ty + 1)));
    for (std::int64_t ty = lo.ty; ty <= hi.ty; ++ty) {
        for (std::int64_t tx = lo.tx; tx <= hi.tx; ++tx) {
            keys.push_back(TileKey{tx, ty});
        }
    }
    return keys;
}

/// Cache address of a generated tile: which surface (generator fingerprint,
/// see streaming.hpp / ConvolutionGenerator::fingerprint) and which tile of
/// it.  Two generators with equal fingerprints produce bit-identical tiles,
/// so cached entries are shareable across service instances.
struct TileAddress {
    std::uint64_t fingerprint = 0;
    TileKey key;

    friend bool operator==(const TileAddress&, const TileAddress&) = default;
};

/// Avalanche hash of a TileAddress (reuses the lattice coordinate hash with
/// the fingerprint as the seed — uniform across tx/ty/fingerprint bits).
struct TileAddressHash {
    std::size_t operator()(const TileAddress& a) const noexcept {
        return static_cast<std::size_t>(
            hash_coords(a.fingerprint, a.key.tx, a.key.ty, /*salt=*/0x7115u));
    }
};

}  // namespace rrs
