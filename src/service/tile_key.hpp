#pragma once

/// \file tile_key.hpp
/// Map-tile addressing of the unbounded output lattice.
///
/// The paper's convolution method (§2.4) generates "any size of continuous
/// RRSs by successive computations", and the noise lattice is a pure
/// function of (seed, ix, iy) — so the plane splits into fixed-size tiles
/// that can be generated independently, in any order, on any thread, and
/// always agree where they meet.  A TileKey is the integer address (tx, ty)
/// of one such tile; TileShape fixes the tile extent for a whole service.
///
/// Addressing convention: tile (tx, ty) covers the half-open lattice window
/// [tx·nx, (tx+1)·nx) × [ty·ny, (ty+1)·ny).  Tile indices may be negative —
/// the lattice is unbounded in every direction.
///
/// Zoom pyramid (DESIGN.md §14): every key also carries a zoom level z ≥ 0.
/// Zoom 0 is the base lattice; a zoom-z tile holds the same nx×ny sample
/// count but each sample strides 2^z base-lattice points, so tile (tx,ty,z)
/// covers the base window [tx·nx·2^z, (tx+1)·nx·2^z) × [...·2^z).  Because
/// the surface is already band-limited by its correlation kernel (spectrum
/// ∝ exp(−K²·cl²/4) is negligible beyond the coarse Nyquist whenever
/// cl ≳ a few lattice spacings), plain decimation IS band-limited
/// decimation: a zoom-z tile is statistically indistinguishable from a
/// surface generated directly on a grid with spacing 2^z·dx (tier-2
/// acceptance test), and bit-identical to decimating the base lattice —
/// which is what lets parents be derived from their four children instead
/// of regenerated (tile_service.cpp).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/validate.hpp"
#include "grid/rect.hpp"
#include "rng/hash.hpp"

namespace rrs {

/// Fixed per-service tile extent (lattice points per tile along each axis).
struct TileShape {
    std::int64_t nx = 256;
    std::int64_t ny = 256;

    friend bool operator==(const TileShape&, const TileShape&) = default;
};

/// Throws ConfigError unless both extents are positive.
inline void check_tile_shape(const TileShape& s) {
    check_positive_count(s.nx, "tile nx", {"TileShape"});
    check_positive_count(s.ny, "tile ny", {"TileShape"});
}

/// Zoom levels above this are rejected: a single tile would then stride
/// more than 2^24 base points per sample — far past any plausible viewport
/// and close to where footprint arithmetic could overflow for large keys.
inline constexpr std::int32_t kMaxZoom = 24;

/// Integer address of one tile of the unbounded lattice at zoom level `z`
/// (0 = base lattice; each level up halves the sampling rate).
struct TileKey {
    std::int64_t tx = 0;
    std::int64_t ty = 0;
    std::int32_t z = 0;

    friend bool operator==(const TileKey&, const TileKey&) = default;
    friend bool operator<(const TileKey& a, const TileKey& b) noexcept {
        if (a.z != b.z) {
            return a.z < b.z;
        }
        return a.ty != b.ty ? a.ty < b.ty : a.tx < b.tx;
    }
};

/// Throws ConfigError unless 0 ≤ z ≤ kMaxZoom.
inline void check_zoom(std::int32_t z) {
    if (z < 0 || z > kMaxZoom) {
        throw ConfigError{"zoom must be in [0, " + std::to_string(kMaxZoom) +
                              "] (got " + std::to_string(z) + ")",
                          {"TileKey"}};
    }
}

/// Base-lattice points one zoom-z sample strides (2^z).
inline std::int64_t zoom_stride(std::int32_t z) {
    check_zoom(z);
    return std::int64_t{1} << z;
}

/// Output window of tile `key` on its own zoom lattice:
/// [tx·nx, (tx+1)·nx) × [ty·ny, (ty+1)·ny) — zoom-z lattice units (one unit
/// = 2^z base points).  At z = 0 this is the base-lattice window.
inline Rect tile_rect(const TileShape& shape, const TileKey& key) noexcept {
    return Rect{key.tx * shape.nx, key.ty * shape.ny, shape.nx, shape.ny};
}

/// Base-lattice footprint of a zoom-z tile: origin tx·nx·2^z, extent nx·2^z.
/// Sample (i, j) of the tile is base-lattice point
/// (rect.x0 + i·2^z, rect.y0 + j·2^z).
inline Rect tile_base_rect(const TileShape& shape, const TileKey& key) {
    const std::int64_t s = zoom_stride(key.z);
    return Rect{key.tx * shape.nx * s, key.ty * shape.ny * s, shape.nx * s,
                shape.ny * s};
}

/// The zoom-(z+1) tile whose footprint contains this tile.
inline TileKey tile_parent(const TileKey& key) {
    check_zoom(key.z + 1);
    // floor toward −∞ so negative tile indices nest correctly.
    const auto half = [](std::int64_t t) { return t >= 0 ? t / 2 : (t - 1) / 2; };
    return TileKey{half(key.tx), half(key.ty), key.z + 1};
}

/// The four zoom-(z−1) tiles tiling this tile's footprint, row-major
/// ((0,0), (1,0), (0,1), (1,1) child offsets).  Requires key.z ≥ 1.
inline std::array<TileKey, 4> tile_children(const TileKey& key) {
    if (key.z < 1) {
        throw ConfigError{"zoom-0 tiles have no children", {"TileKey"}};
    }
    return {TileKey{2 * key.tx, 2 * key.ty, key.z - 1},
            TileKey{2 * key.tx + 1, 2 * key.ty, key.z - 1},
            TileKey{2 * key.tx, 2 * key.ty + 1, key.z - 1},
            TileKey{2 * key.tx + 1, 2 * key.ty + 1, key.z - 1}};
}

/// Tile window grown by the kernel halo (`dilate`): the noise footprint a
/// convolution generator reads to produce this tile.  Useful for sizing the
/// per-tile working set; generators take the *output* rect from tile_rect()
/// and handle their halo internally.
inline Rect tile_rect_with_halo(const TileShape& shape, const TileKey& key,
                                std::int64_t halo_x, std::int64_t halo_y) noexcept {
    return dilate(tile_rect(shape, key), halo_x, halo_y);
}

/// Floor division (toward −∞) for signed lattice coordinates.
inline std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
    const std::int64_t q = a / b;
    return (a % b != 0 && ((a < 0) != (b < 0))) ? q - 1 : q;
}

/// Address of the tile containing lattice point (x, y).
inline TileKey containing_tile(const TileShape& shape, std::int64_t x,
                               std::int64_t y) noexcept {
    return TileKey{floor_div(x, shape.nx), floor_div(y, shape.ny)};
}

/// All tile addresses intersecting `region`, in row-major (ty, tx) order.
inline std::vector<TileKey> covering_tiles(const TileShape& shape, const Rect& region) {
    std::vector<TileKey> keys;
    if (region.empty()) {
        return keys;
    }
    const TileKey lo = containing_tile(shape, region.x0, region.y0);
    const TileKey hi = containing_tile(shape, region.x1() - 1, region.y1() - 1);
    keys.reserve(static_cast<std::size_t>((hi.tx - lo.tx + 1) * (hi.ty - lo.ty + 1)));
    for (std::int64_t ty = lo.ty; ty <= hi.ty; ++ty) {
        for (std::int64_t tx = lo.tx; tx <= hi.tx; ++tx) {
            keys.push_back(TileKey{tx, ty});
        }
    }
    return keys;
}

/// Cache address of a generated tile: which surface (generator fingerprint,
/// see streaming.hpp / ConvolutionGenerator::fingerprint) and which tile of
/// it.  Two generators with equal fingerprints produce bit-identical tiles,
/// so cached entries are shareable across service instances.
struct TileAddress {
    std::uint64_t fingerprint = 0;
    TileKey key;

    friend bool operator==(const TileAddress&, const TileAddress&) = default;
};

/// Avalanche hash of a TileAddress (reuses the lattice coordinate hash with
/// the fingerprint as the seed — uniform across tx/ty/z/fingerprint bits;
/// the zoom level rides in the salt so pyramid levels never collide).
struct TileAddressHash {
    std::size_t operator()(const TileAddress& a) const noexcept {
        const auto salt =
            0x7115u ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.key.z))
                       << 16);
        return static_cast<std::size_t>(
            hash_coords(a.fingerprint, a.key.tx, a.key.ty, salt));
    }
};

}  // namespace rrs
