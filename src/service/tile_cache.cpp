#include "service/tile_cache.hpp"

#include "core/validate.hpp"

namespace rrs {

namespace {

/// Smallest power of two ≥ n (n clamped to ≥ 1).
std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) {
        p <<= 1;
    }
    return p;
}

}  // namespace

TileCache::TileCache(std::size_t byte_budget, std::size_t shards)
    : byte_budget_(byte_budget) {
    check_positive_count(static_cast<std::int64_t>(byte_budget), "byte_budget",
                         {"TileCache"});
    check_positive_count(static_cast<std::int64_t>(shards), "shards", {"TileCache"});
    const std::size_t n = round_up_pow2(shards);
    shard_mask_ = n - 1;
    shard_budget_ = byte_budget / n;
    shards_ = std::vector<Shard>(n);
    for (Shard& s : shards_) {
        s.budget.set_budget(shard_budget_);
    }
}

TilePtr TileCache::find(const TileAddress& address) {
    Shard& s = shard_of(address);
    std::lock_guard lock(s.mutex);
    const auto it = s.index.find(address);
    if (it == s.index.end()) {
        ++s.misses;
        return nullptr;
    }
    ++s.hits;
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
    return it->second->tile;
}

void TileCache::insert(const TileAddress& address, TilePtr tile) {
    if (!tile) {
        return;
    }
    const std::size_t bytes = tile_bytes(*tile);
    Shard& s = shard_of(address);
    std::lock_guard lock(s.mutex);
    const auto it = s.index.find(address);
    if (it != s.index.end()) {
        // Replace in place (same address ⇒ bit-identical payload in normal
        // operation, but replacing keeps the cache correct regardless).
        s.budget.release(it->second->bytes);
        it->second->tile = std::move(tile);
        it->second->bytes = bytes;
        s.budget.charge(bytes);
        s.lru.splice(s.lru.begin(), s.lru, it->second);
    } else {
        s.lru.push_front(Entry{address, std::move(tile), bytes});
        s.index.emplace(address, s.lru.begin());
        s.budget.charge(bytes);
        ++s.insertions;
    }
    // Evict from the cold end until this shard fits its budget share.  The
    // just-inserted entry sits at the hot end, but is itself evicted when it
    // alone exceeds the shard budget — the budget is a hard bound.
    s.evictions += s.budget.evict_until_fit([&]() -> std::size_t {
        if (s.lru.empty()) {
            return 0;
        }
        const Entry& victim = s.lru.back();
        const std::size_t freed = victim.bytes;
        s.index.erase(victim.address);
        s.lru.pop_back();
        return freed;
    });
}

void TileCache::clear() {
    for (Shard& s : shards_) {
        std::lock_guard lock(s.mutex);
        s.lru.clear();
        s.index.clear();
        s.budget.reset();
    }
}

TileCache::Stats TileCache::stats() const {
    Stats out;
    for (const Shard& s : shards_) {
        std::lock_guard lock(s.mutex);
        out.hits += s.hits;
        out.misses += s.misses;
        out.insertions += s.insertions;
        out.evictions += s.evictions;
        out.bytes += s.budget.used();
        out.tiles += s.lru.size();
    }
    return out;
}

}  // namespace rrs
