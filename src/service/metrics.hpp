#pragma once

/// \file metrics.hpp
/// Lock-cheap operational counters for the tile service — a client of the
/// library-wide observability primitives (obs/metrics.hpp).
///
/// Hot-path cost is one relaxed atomic increment per event (plus one for the
/// latency bucket); there is no mutex anywhere.  Readers take a
/// `MetricsSnapshot` — a plain value struct — and can export it as a
/// single-line JSON record for scraping.  Counter relationships the service
/// maintains (and tests assert):
///
///     requests  == cache_hits + cache_misses
///     generations + coalesced + l2_promotions + remote_fills == cache_misses
///
/// i.e. every request either hits the in-memory cache, coalesces onto a
/// generation already in flight, promotes the tile from the persistent L2
/// store (tile_store.hpp), fills from a cluster peer (the previous owner
/// after a reshard — cluster/peer_fill.hpp), or starts the one generation
/// for its tile.
///
/// Each service keeps its own ServiceMetrics instance (per-service JSON
/// stays self-consistent); the service additionally mirrors its events into
/// the process-wide `obs::MetricsRegistry::global()` under `service.tile.*`
/// so registry exports (`rrsgen --metrics`, `rrstile --metrics`) see
/// combined traffic.

#include <array>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace rrs {

/// Fixed log₂-bucketed latency histogram over microseconds — the generic
/// obs::Log2Histogram with microsecond-named accessors.
/// Bucket b counts samples in [2^b, 2^(b+1)) µs (bucket 0 is [0, 2) µs);
/// the last bucket absorbs everything slower (≥ ~33.6 s).
class LatencyHistogram : public obs::Log2Histogram {
public:
    /// Inclusive lower bound of bucket `b` in microseconds.
    static std::uint64_t bucket_floor_us(std::size_t b) noexcept {
        return bucket_floor(b);
    }

    std::uint64_t total_micros() const noexcept { return sum(); }
};

/// Plain-value export of the histogram: per-bucket counts plus the quantile
/// estimates most dashboards want (upper bound of the bucket holding the
/// quantile — conservative, never under-reports).
struct LatencySnapshot {
    std::array<std::uint64_t, LatencyHistogram::kBuckets> counts{};
    std::uint64_t samples = 0;
    std::uint64_t total_micros = 0;
    double mean_us = 0.0;
    std::uint64_t p50_us = 0;
    std::uint64_t p95_us = 0;
    std::uint64_t p99_us = 0;
};

/// Point-in-time copy of every service counter.  Cache fields mirror the
/// TileCache the service uses (which may be shared with other services —
/// they then reflect combined traffic).
struct MetricsSnapshot {
    std::uint64_t requests = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t generations = 0;
    std::uint64_t coalesced = 0;  ///< requests that joined an in-flight generation
    std::uint64_t batches = 0;    ///< get_many / window calls
    std::uint64_t generation_failures = 0;
    std::uint64_t l2_promotions = 0;      ///< misses served from the persistent store
    std::uint64_t l2_write_failures = 0;  ///< store writes swallowed (tile still served)
    std::uint64_t remote_fills = 0;       ///< misses served by a cluster peer
    std::uint64_t cache_evictions = 0;
    std::uint64_t cache_bytes = 0;
    std::uint64_t cache_tiles = 0;
    std::uint64_t cache_byte_budget = 0;
    LatencySnapshot latency;

    /// Hit fraction of served requests (0 when no requests were made).
    double hit_rate() const noexcept {
        return requests == 0 ? 0.0
                             : static_cast<double>(cache_hits) /
                                   static_cast<double>(requests);
    }

    /// Single-line JSON object (stable key order) for logs/scrapers.
    std::string to_json() const;
};

/// The service-side counters (cache counters live in TileCache).
class ServiceMetrics {
public:
    void record_hit() noexcept { hits_.add(); }
    void record_miss() noexcept { misses_.add(); }
    void record_request() noexcept { requests_.add(); }
    void record_generation() noexcept { generations_.add(); }
    void record_generation_failure() noexcept { generation_failures_.add(); }
    void record_coalesced() noexcept { coalesced_.add(); }
    void record_batch() noexcept { batches_.add(); }
    void record_l2_promotion() noexcept { l2_promotions_.add(); }
    void record_l2_write_failure() noexcept { l2_write_failures_.add(); }
    void record_remote_fill() noexcept { remote_fills_.add(); }
    void record_latency_us(std::uint64_t micros) noexcept { latency_.record(micros); }

    /// Copy the counters into `out` (cache fields are left untouched — the
    /// service fills those from its TileCache).
    void fill_snapshot(MetricsSnapshot& out) const;

private:
    obs::Counter requests_;
    obs::Counter hits_;
    obs::Counter misses_;
    obs::Counter generations_;
    obs::Counter generation_failures_;
    obs::Counter coalesced_;
    obs::Counter batches_;
    obs::Counter l2_promotions_;
    obs::Counter l2_write_failures_;
    obs::Counter remote_fills_;
    LatencyHistogram latency_;
};

}  // namespace rrs
