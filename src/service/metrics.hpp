#pragma once

/// \file metrics.hpp
/// Lock-cheap operational counters for the tile service.
///
/// Hot-path cost is one relaxed atomic increment per event (plus one for the
/// latency bucket); there is no mutex anywhere.  Readers take a
/// `MetricsSnapshot` — a plain value struct — and can export it as a
/// single-line JSON record for scraping.  Counter relationships the service
/// maintains (and tests assert):
///
///     requests  == cache_hits + cache_misses
///     generations + coalesced == cache_misses
///
/// i.e. every request either hits the cache, starts the one generation for
/// its tile, or coalesces onto a generation already in flight.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace rrs {

/// Fixed log₂-bucketed latency histogram over microseconds.
/// Bucket b counts samples in [2^b, 2^(b+1)) µs (bucket 0 is [0, 2) µs);
/// the last bucket absorbs everything slower.
class LatencyHistogram {
public:
    static constexpr std::size_t kBuckets = 26;  // last bucket: ≥ ~33.6 s

    void record(std::uint64_t micros) noexcept {
        counts_[bucket_of(micros)].fetch_add(1, std::memory_order_relaxed);
        total_micros_.fetch_add(micros, std::memory_order_relaxed);
    }

    static std::size_t bucket_of(std::uint64_t micros) noexcept {
        std::size_t b = 0;
        while (micros > 1 && b + 1 < kBuckets) {
            micros >>= 1;
            ++b;
        }
        return b;
    }

    /// Inclusive lower bound of bucket `b` in microseconds.
    static std::uint64_t bucket_floor_us(std::size_t b) noexcept {
        return b == 0 ? 0 : (std::uint64_t{1} << b);
    }

    std::uint64_t count(std::size_t b) const noexcept {
        return counts_[b].load(std::memory_order_relaxed);
    }
    std::uint64_t total_micros() const noexcept {
        return total_micros_.load(std::memory_order_relaxed);
    }

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
    std::atomic<std::uint64_t> total_micros_{0};
};

/// Plain-value export of the histogram: per-bucket counts plus the quantile
/// estimates most dashboards want (upper bound of the bucket holding the
/// quantile — conservative, never under-reports).
struct LatencySnapshot {
    std::array<std::uint64_t, LatencyHistogram::kBuckets> counts{};
    std::uint64_t samples = 0;
    std::uint64_t total_micros = 0;
    double mean_us = 0.0;
    std::uint64_t p50_us = 0;
    std::uint64_t p95_us = 0;
    std::uint64_t p99_us = 0;
};

/// Point-in-time copy of every service counter.  Cache fields mirror the
/// TileCache the service uses (which may be shared with other services —
/// they then reflect combined traffic).
struct MetricsSnapshot {
    std::uint64_t requests = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t generations = 0;
    std::uint64_t coalesced = 0;  ///< requests that joined an in-flight generation
    std::uint64_t batches = 0;    ///< get_many / window calls
    std::uint64_t generation_failures = 0;
    std::uint64_t cache_evictions = 0;
    std::uint64_t cache_bytes = 0;
    std::uint64_t cache_tiles = 0;
    std::uint64_t cache_byte_budget = 0;
    LatencySnapshot latency;

    /// Hit fraction of served requests (0 when no requests were made).
    double hit_rate() const noexcept {
        return requests == 0 ? 0.0
                             : static_cast<double>(cache_hits) /
                                   static_cast<double>(requests);
    }

    /// Single-line JSON object (stable key order) for logs/scrapers.
    std::string to_json() const;
};

/// The service-side counters (cache counters live in TileCache).
class ServiceMetrics {
public:
    void record_hit() noexcept { hits_.fetch_add(1, std::memory_order_relaxed); }
    void record_miss() noexcept { misses_.fetch_add(1, std::memory_order_relaxed); }
    void record_request() noexcept { requests_.fetch_add(1, std::memory_order_relaxed); }
    void record_generation() noexcept {
        generations_.fetch_add(1, std::memory_order_relaxed);
    }
    void record_generation_failure() noexcept {
        generation_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    void record_coalesced() noexcept {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
    }
    void record_batch() noexcept { batches_.fetch_add(1, std::memory_order_relaxed); }
    void record_latency_us(std::uint64_t micros) noexcept { latency_.record(micros); }

    /// Copy the counters into `out` (cache fields are left untouched — the
    /// service fills those from its TileCache).
    void fill_snapshot(MetricsSnapshot& out) const;

private:
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> generations_{0};
    std::atomic<std::uint64_t> generation_failures_{0};
    std::atomic<std::uint64_t> coalesced_{0};
    std::atomic<std::uint64_t> batches_{0};
    LatencyHistogram latency_;
};

}  // namespace rrs
