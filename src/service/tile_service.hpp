#pragma once

/// \file tile_service.hpp
/// Concurrent random-access front end over any `generate(Rect)` generator.
///
/// Turns "run a generator once" into "serve surface tiles on demand, map-tile
/// style": clients ask for TileKeys (or whole windows) in any order, from
/// any thread, and the service answers from a sharded LRU TileCache, fanning
/// cold batches out across a ThreadPool.  Because librrs noise is a pure
/// function of (seed, lattice coordinate), a tile served through the cache —
/// in any order, on any thread — is bit-identical to the same window cut
/// from a one-shot generation; the random-access extension of the streaming
/// seam guarantee (streaming.hpp), asserted by tests/test_tile_service.cpp.
///
/// Request coalescing: concurrent requests for the same cold tile trigger
/// exactly ONE generation.  The first requester becomes the leader and
/// generates; every other request parks on the leader's shared_future.  If
/// the leader's generation throws, all parked waiters observe the same
/// exception and the tile stays uncached (a later request retries).
///
/// Cache keying: tiles are cached under (generator fingerprint, TileKey) —
/// the same fingerprints checkpoint/resume uses — so one TileCache may back
/// many services; equal fingerprints guarantee interchangeable tiles.  A
/// generator without a fingerprint gets a unique private id, so its entries
/// can never alias another generator's.
///
/// Zoom pyramid (tile_key.hpp, DESIGN.md §14): keys with z > 0 are served by
/// *deriving* the tile from its four z−1 children — decimation by 2 of the
/// assembled child block — recursively down to the base lattice, caching
/// every intermediate level.  Derivation is bit-exact: a zoom-z sample IS
/// base-lattice sample ((tx·nx+i)·2^z, (ty·ny+j)·2^z), so a zoom tile is
/// reproducible from any mix of cached, stored, and fresh children.  Zoomed
/// requests require an even tile shape.
///
/// Tiered store: when Options::store is set, a cache miss consults the
/// persistent L2 TileStore before generating (an L2 hit is *promoted* into
/// the in-memory cache — counted, never regenerated), and every fresh
/// generation is written through to the store.  Store write failures are
/// swallowed (counted): persistence is an optimisation, not a correctness
/// dependency.
///
/// Remote fill (cluster/peer_fill.hpp): when Options::remote_fill is set
/// (or installed via set_remote_fill before serving), the miss-leader path
/// tries it after the L2 lookup and before generating — a cluster node can
/// warm from the tile's previous owner instead of regenerating after a
/// reshard.  The hook must never throw; nullptr means "generate locally".
/// A filled tile is shape-checked, counted (`remote_fills`), and written
/// through to the store like a fresh generation.
///
/// Thread-safety contract: `get`, `get_many`, `window`, and `metrics` may be
/// called concurrently.  The wrapped generator's `generate(Rect) const` must
/// itself be safe for concurrent calls (true for ConvolutionGenerator and
/// InhomogeneousGenerator), and must outlive the service.  Do not call
/// batch entry points from inside the service's own pool workers — a
/// saturated pool would deadlock waiting on itself.

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/error.hpp"
#include "core/streaming.hpp"
#include "grid/array2d.hpp"
#include "grid/rect.hpp"
#include "parallel/thread_pool.hpp"
#include "service/metrics.hpp"
#include "service/tile_cache.hpp"
#include "service/tile_key.hpp"
#include "store/tile_store.hpp"

namespace rrs {

/// Thread-safe tile server over one generator; see file comment.
class TileService {
public:
    struct Options {
        TileShape shape{256, 256};
        /// Cache payload budget when the service builds its own cache
        /// (ignored when a shared cache is injected).
        std::size_t cache_bytes = std::size_t{256} << 20;  // 256 MiB
        std::size_t cache_shards = 16;
        /// Pool for batch fan-out; nullptr = ThreadPool::shared().
        ThreadPool* pool = nullptr;
        /// Persistent L2 tile store under the in-memory cache; may be shared
        /// across services (addresses carry the fingerprint).  nullptr = no
        /// persistence tier.
        std::shared_ptr<store::TileStore> store = nullptr;
        /// Cluster peer-fill hook, tried on the miss-leader path after L2
        /// and before generation (file comment).  Must not throw; returns
        /// nullptr to fall through to local generation.
        std::function<TilePtr(const TileKey&)> remote_fill = nullptr;
    };

    /// Wrap `gen` (any type with `Array2D<double> generate(const Rect&) const`).
    /// `cache` may be shared across services; nullptr builds a private cache
    /// from `opt.cache_bytes` / `opt.cache_shards`.
    template <typename Generator>
    explicit TileService(const Generator& gen, Options opt = {},
                         std::shared_ptr<TileCache> cache = nullptr)
        : TileService([&gen](const Rect& r) { return gen.generate(r); },
                      detail::generator_fingerprint(gen), opt, std::move(cache)) {}

    /// Type-erased core constructor (also usable directly with a lambda;
    /// pass fingerprint 0 for "unfingerprinted").
    TileService(std::function<Array2D<double>(const Rect&)> generate,
                std::uint64_t fingerprint, Options opt,
                std::shared_ptr<TileCache> cache);

    /// Build a service that OWNS its generator (shared ownership captured in
    /// the generation closure), for callers — like the tile server daemon —
    /// that cannot keep a generator alive on the stack for the service's
    /// whole lifetime.  Throws ConfigError on a null generator.
    template <typename Generator>
    static std::unique_ptr<TileService> owning(
        std::shared_ptr<Generator> gen, Options opt = {},
        std::shared_ptr<TileCache> cache = nullptr) {
        if (gen == nullptr) {
            throw ConfigError{"TileService::owning requires a non-null generator",
                              {"service", "TileService"}};
        }
        const std::uint64_t fp = detail::generator_fingerprint(*gen);
        return std::make_unique<TileService>(
            [gen = std::move(gen)](const Rect& r) { return gen->generate(r); },
            fp, opt, std::move(cache));
    }

    TileService(const TileService&) = delete;
    TileService& operator=(const TileService&) = delete;

    /// Serve one tile: cache hit, join of an in-flight generation, an L2
    /// promotion, a remote peer fill, or a fresh generation (zoom tiles
    /// derive from children — file comment).  Never returns null; rethrows
    /// generation failures.
    TilePtr get(const TileKey& key);

    /// Only-if-cached lookup: the RAM cache, then the L2 store (a hit is
    /// promoted into the cache) — never generates, never remote-fills, and
    /// records no service metrics (the cache/store keep their own).  This
    /// is the `cached=1` wire semantic peer fill relies on to terminate:
    /// a peek can never recurse into another peer.  Returns nullptr on a
    /// miss.  Throws on invalid zoom like get().
    TilePtr peek(const TileKey& key);

    /// Install (or replace) the remote-fill hook after construction — the
    /// daemon needs the service's fingerprint to build the filler.  Not
    /// thread-safe against in-flight get() calls: install before serving.
    void set_remote_fill(std::function<TilePtr(const TileKey&)> fill) {
        opt_.remote_fill = std::move(fill);
    }

    /// Serve a batch, fanning cold tiles out across the pool.  Results align
    /// with `keys` (duplicates coalesce onto one generation).  If any tile's
    /// generation fails the first failure is rethrown — after every other
    /// tile of the batch has settled, so no work is left dangling.
    std::vector<TilePtr> get_many(const std::vector<TileKey>& keys);

    /// Assemble an arbitrary lattice window from cached/generated tiles —
    /// bit-identical to `generate(region)` on the wrapped generator.
    /// Degenerate regions (0×N, N×0, 0×0) are valid empty requests and
    /// return an empty array of the requested shape without touching any
    /// tile or metric; negative extents throw ConfigError.
    Array2D<double> window(const Rect& region);

    /// Serve tile `top` plus every descendant down to zoom `min_z`, level
    /// order (top first; within a level, each parent's four children
    /// row-major in the parents' order).  The finest level is fetched first
    /// with batch fan-out, so coarser levels derive from warm children.
    /// Throws ConfigError when min_z > top.z.
    std::vector<std::pair<TileKey, TilePtr>> pyramid(const TileKey& top,
                                                     std::int32_t min_z = 0);

    /// Point-in-time counters (service + its cache view).
    MetricsSnapshot metrics() const;

    const TileShape& shape() const noexcept { return opt_.shape; }
    std::uint64_t fingerprint() const noexcept { return fingerprint_; }
    const std::shared_ptr<TileCache>& cache() const noexcept { return cache_; }
    const std::shared_ptr<store::TileStore>& store() const noexcept {
        return opt_.store;
    }

private:
    /// Miss path: lead a new L2 lookup/generation or park on the in-flight
    /// one.
    TilePtr generate_or_join(const TileKey& key);

    /// Produce the payload for `key`: base tiles call the generator; zoom
    /// tiles recurse through get() on their children and decimate.
    Array2D<double> generate_tile(const TileKey& key);

    ThreadPool& pool() const noexcept {
        return opt_.pool != nullptr ? *opt_.pool : ThreadPool::shared();
    }

    std::function<Array2D<double>(const Rect&)> generate_;
    std::uint64_t fingerprint_ = 0;
    Options opt_;
    std::shared_ptr<TileCache> cache_;
    ServiceMetrics metrics_;

    std::mutex inflight_mutex_;
    std::unordered_map<TileAddress, std::shared_future<TilePtr>, TileAddressHash>
        inflight_;
};

}  // namespace rrs
