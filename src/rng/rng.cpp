/// \file rng.cpp
/// Explicit instantiations of the templated samplers (one home for the
/// emitted code; headers stay cheap for downstream TUs).

#include "rng/engines.hpp"
#include "rng/gaussian.hpp"

namespace rrs {

template class BoxMullerGaussian<SplitMix64>;
template class BoxMullerGaussian<Pcg64>;
template class PolarGaussian<SplitMix64>;
template class PolarGaussian<Pcg64>;

}  // namespace rrs
