/// \file rng.cpp
/// Explicit instantiations of the templated samplers (one home for the
/// emitted code; headers stay cheap for downstream TUs) and the traced
/// bulk lattice fill.

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/engines.hpp"
#include "rng/gaussian.hpp"

namespace rrs {

template class BoxMullerGaussian<SplitMix64>;
template class BoxMullerGaussian<Pcg64>;
template class PolarGaussian<SplitMix64>;
template class PolarGaussian<Pcg64>;

void GaussianLattice::fill(const Rect& window, Array2D<double>& out) const {
    RRS_TRACE_SPAN("noise.fill");
    static obs::Counter& points =
        obs::MetricsRegistry::global().counter("noise.points");
    points.add(static_cast<std::uint64_t>(window.nx * window.ny));
    parallel_for(0, window.ny, [&](std::int64_t ty) {
        for (std::int64_t tx = 0; tx < window.nx; ++tx) {
            out(static_cast<std::size_t>(tx), static_cast<std::size_t>(ty)) =
                (*this)(window.x0 + tx, window.y0 + ty);
        }
    });
}

}  // namespace rrs
