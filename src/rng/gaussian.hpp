#pragma once

/// \file gaussian.hpp
/// Gaussian variate generation: the paper's Box–Muller construction
/// (eq. 18), the polar variant, and the stateless GaussianLattice used by
/// the convolution generator's white-noise field X (eq. 36).

#include <cmath>
#include <cstdint>

#include "grid/array2d.hpp"
#include "grid/rect.hpp"
#include "rng/engines.hpp"
#include "rng/hash.hpp"
#include "special/constants.hpp"

namespace rrs {

/// Paper eq. (18): u1 = rand(2π), u2 = rand(1),
/// X = sqrt(−2 log u2) · cos(u1).  Exact N(0,1) when u1 ~ U[0,2π),
/// u2 ~ U(0,1].
inline double box_muller_paper(double u1_angle, double u2_unit) noexcept {
    return std::sqrt(-2.0 * std::log(u2_unit)) * std::cos(u1_angle);
}

/// Stateful Box–Muller sampler over any 64-bit engine; produces pairs and
/// caches the sine partner, so consecutive draws are independent N(0,1).
template <typename Engine>
class BoxMullerGaussian {
public:
    explicit BoxMullerGaussian(Engine engine) noexcept : engine_(engine) {}

    double operator()() noexcept {
        if (has_spare_) {
            has_spare_ = false;
            return spare_;
        }
        const double u1 = to_unit_open_zero(engine_());
        const double u2 = to_unit_halfopen(engine_());
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double a = kTwoPi * u2;
        spare_ = r * std::sin(a);
        has_spare_ = true;
        return r * std::cos(a);
    }

    Engine& engine() noexcept { return engine_; }

private:
    Engine engine_;
    double spare_ = 0.0;
    bool has_spare_ = false;
};

/// Marsaglia polar method — rejection variant of Box–Muller that avoids the
/// trig calls; kept for the RNG micro-bench comparison.
template <typename Engine>
class PolarGaussian {
public:
    explicit PolarGaussian(Engine engine) noexcept : engine_(engine) {}

    double operator()() noexcept {
        if (has_spare_) {
            has_spare_ = false;
            return spare_;
        }
        double v1 = 0.0;
        double v2 = 0.0;
        double s = 0.0;
        do {
            v1 = 2.0 * to_unit_halfopen(engine_()) - 1.0;
            v2 = 2.0 * to_unit_halfopen(engine_()) - 1.0;
            s = v1 * v1 + v2 * v2;
        } while (s >= 1.0 || s == 0.0);
        const double f = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v2 * f;
        has_spare_ = true;
        return v1 * f;
    }

private:
    Engine engine_;
    double spare_ = 0.0;
    bool has_spare_ = false;
};

/// Unbounded lattice of i.i.d. N(0,1) values, defined as a pure function of
/// (seed, ix, iy).  This realises the array {X_{nx,ny}} of eq. (36) on an
/// infinite index set: streamed tiles and parallel workers read identical
/// noise without coordination.
///
/// Construction: two independent coordinate hashes feed Box–Muller exactly
/// as in eq. (18) — u1 plays rand(2π), u2 plays rand(1).
class GaussianLattice {
public:
    explicit GaussianLattice(std::uint64_t seed = 0) noexcept : seed_(seed) {}

    std::uint64_t seed() const noexcept { return seed_; }

    /// N(0,1) noise at lattice point (ix, iy); thread-safe, O(1), stateless.
    double operator()(std::int64_t ix, std::int64_t iy) const noexcept {
        const double angle = kTwoPi * to_unit_halfopen(hash_coords(seed_, ix, iy, 1));
        const double unit = to_unit_open_zero(hash_coords(seed_, ix, iy, 2));
        return box_muller_paper(angle, unit);
    }

    /// Bulk noise fill — the instrumented lattice-fill primitive every
    /// generator uses.  Writes noise for `window` into the top-left
    /// (window.nx × window.ny) block of `out` (which may be larger, e.g.
    /// zero-padded for an FFT), parallel over rows.  Traced as "noise.fill"
    /// and counted under "noise.points".
    void fill(const Rect& window, Array2D<double>& out) const;

private:
    std::uint64_t seed_;
};

}  // namespace rrs
