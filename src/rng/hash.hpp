#pragma once

/// \file hash.hpp
/// Stateless avalanche hashing of lattice coordinates.
///
/// This is what turns the paper's "successive computations" (§2.4) into a
/// deterministic, order-independent scheme: the white-noise value at lattice
/// point (ix, iy) is a pure function of (seed, ix, iy), so any tile of an
/// unbounded surface can be generated independently — in any order, on any
/// thread — and overlapping tiles agree bit-for-bit.

#include <cstdint>

namespace rrs {

/// Murmur3-style 64-bit finalizer: full avalanche, bijective.
inline std::uint64_t mix64(std::uint64_t z) noexcept {
    z ^= z >> 33;
    z *= 0xFF51AFD7ED558CCDULL;
    z ^= z >> 33;
    z *= 0xC4CEB9FE1A85EC53ULL;
    z ^= z >> 33;
    return z;
}

/// Hash (seed, ix, iy, salt) into a uniform 64-bit word.  `salt`
/// distinguishes independent random fields over the same lattice.
inline std::uint64_t hash_coords(std::uint64_t seed, std::int64_t ix, std::int64_t iy,
                                 std::uint64_t salt = 0) noexcept {
    std::uint64_t h = mix64(seed ^ (salt * 0x9E3779B97F4A7C15ULL + 0x632BE59BD9B4E019ULL));
    h = mix64(h ^ static_cast<std::uint64_t>(ix));
    h = mix64(h ^ (static_cast<std::uint64_t>(iy) * 0xD6E8FEB86659FD93ULL));
    return h;
}

}  // namespace rrs
