#pragma once

/// \file engines.hpp
/// Pseudo-random engines implemented from scratch.
///
/// The paper (§2.3) seeds its surfaces from C's `rand()` pushed through
/// Box–Muller.  We provide: SplitMix64 (seeding / light use), a PCG64-class
/// generator (bulk sequential use), and a small LCG that stands in for the
/// paper's `rand()` in the RNG-quality comparison bench.  All three satisfy
/// std::uniform_random_bit_generator.

#include <cstdint>

namespace rrs {

/// SplitMix64 (Steele, Lea, Flood) — a tiny, statistically solid 64-bit
/// engine; also the canonical seeder for larger-state engines.
class SplitMix64 {
public:
    using result_type = std::uint64_t;

    explicit SplitMix64(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept : state_(seed) {}

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    result_type operator()() noexcept {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// PCG64 (XSL-RR 128/64, O'Neill 2014): 128-bit LCG state with an
/// xor-shift-low / random-rotate output permutation.  Distinct `stream`
/// values give provably distinct sequences.
class Pcg64 {
public:
    using result_type = std::uint64_t;

    explicit Pcg64(std::uint64_t seed = 0xcafef00dd15ea5e5ULL,
                   std::uint64_t stream = 0xa02bdbf7bb3c0a7ULL) noexcept {
        inc_ = (static_cast<u128>(stream) << 1) | 1u;  // must be odd
        state_ = 0;
        (*this)();
        state_ += static_cast<u128>(seed);
        (*this)();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    result_type operator()() noexcept {
        state_ = state_ * kMult + inc_;
        const auto hi = static_cast<std::uint64_t>(state_ >> 64);
        const auto lo = static_cast<std::uint64_t>(state_);
        const auto rot = static_cast<unsigned>(state_ >> 122);
        const std::uint64_t x = hi ^ lo;
        return (x >> rot) | (x << ((64u - rot) & 63u));
    }

private:
    // GCC/Clang extension; silence -Wpedantic locally (the build requires a
    // 128-bit type for the PCG state, available on every supported target).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
    using u128 = unsigned __int128;
#pragma GCC diagnostic pop
    static constexpr u128 kMult =
        (static_cast<u128>(0x2360ED051FC65DA4ULL) << 64) | 0x4385DF649FCCF645ULL;

    u128 state_{};
    u128 inc_{};
};

/// 48-bit linear congruential generator (drand48 constants) returning its
/// high 31 bits — a faithful stand-in for the paper's `rand()` used only to
/// demonstrate that the algorithm does not depend on engine quality.
class Lcg48 {
public:
    using result_type = std::uint32_t;

    explicit Lcg48(std::uint64_t seed = 1) noexcept
        : state_((seed << 16 | 0x330E) & kMask) {}

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return 0x7FFFFFFFu; }

    result_type operator()() noexcept {
        state_ = (state_ * 0x5DEECE66DULL + 0xB) & kMask;
        return static_cast<result_type>(state_ >> 17);
    }

private:
    static constexpr std::uint64_t kMask = (1ULL << 48) - 1;
    std::uint64_t state_;
};

/// Map a 64-bit word to a double in [0, 1) with 53 random bits.
inline double to_unit_halfopen(std::uint64_t u) noexcept {
    return static_cast<double>(u >> 11) * 0x1.0p-53;
}

/// Map a 64-bit word to a double in (0, 1] — safe as a log() argument.
inline double to_unit_open_zero(std::uint64_t u) noexcept {
    return (static_cast<double>(u >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace rrs
