# Render a generated surface (gnuplot-matrix .dat written by the figure
# harnesses or write_gnuplot_surface) as the paper's 3-D views:
#
#   gnuplot -e "datafile='bench_out/fig1/surface.dat'" scenes/plot_surface.gp
#
# Produces surface.png next to the data file.

if (!exists("datafile")) datafile = 'bench_out/fig1/surface.dat'
outfile = datafile[:strlen(datafile)-4].'.png'

set terminal pngcairo size 1200,900
set output outfile
set hidden3d
set pm3d depthorder
set palette defined (0 "#2c4a6e", 0.5 "#8fae8b", 1 "#e8e0c9")
unset key
set xlabel "x"
set ylabel "y"
set zlabel "f(x,y)" rotate
set view 55, 35, 1.0, 1.6
splot datafile using 1:2:3 with pm3d
print "wrote ".outfile
