// rrsd — the rough-surface tile daemon.
//
// Loads one or more scene descriptions (src/io/scene.hpp), wraps each in a
// TileService, and serves them over HTTP (src/net/) until SIGTERM/SIGINT,
// then drains gracefully: stop accepting, finish in-flight requests, print
// the metrics registry as one JSON line, exit 0.
//
//   rrsd SCENE.rrs [NAME=SCENE.rrs ...] [options]
//
// Each positional argument registers one scene: `NAME=FILE` serves FILE as
// scene NAME; a bare FILE is served under its basename without extension.
// Endpoints (see src/net/tile_routes.hpp): /, /healthz, /readyz, /metrics,
// /tracez, /v1/tile, /v1/window.
//
//   --host ADDR        bind address                         (default 127.0.0.1)
//   --port N           bind port; 0 = ephemeral             (default 0)
//   --port-file FILE   write the bound port to FILE (for ephemeral-port
//                      scripting: start, poll FILE, connect)
//   --tile-size N      tile extent in lattice points        (default 256)
//   --cache-mb N       tile cache budget in MiB             (default 256)
//   --gen-threads N    generation fan-out threads           (default hardware)
//   --workers N        HTTP connection workers              (default 4)
//   --connections N    admission cap; 0 = workers           (default 0)
//   --timeout-ms N     per-connection read/write deadline   (default 5000)
//   --seed N           override every scene's seed
//   --trace            enable span recording (serves /tracez)
//   --quiet            suppress startup/shutdown log lines
//   --breaker-failures N  consecutive generation failures that open a
//                      scene's circuit breaker; 0 disables    (default 5)
//   --breaker-open-ms N   open-state duration before a probe  (default 1000)
//   --stale-mb N       stale-tile store budget in MiB; serves the last
//                      known tile with X-RRS-Stale: 1 on generation
//                      failure or open breaker; 0 disables    (default 32)
//   --store DIR        persistent L2 tile store directory (created if
//                      missing); a restarted daemon on the same DIR serves
//                      previously generated tiles from disk instead of
//                      regenerating — bit-identically, the store is keyed
//                      by (fingerprint, key, zoom) and checksummed
//   --store-mb N       L2 store payload budget in MiB        (default 1024)
//   --faults SPEC      arm a fault-injection plan (DESIGN.md §13 grammar,
//                      e.g. 'net.recv=error@p:0.1 seed:7'); without the
//                      flag the RRS_FAULTS environment variable is used
//
// Cluster modes (DESIGN.md §17):
//
//   rrsd --cluster TOPOLOGY [options]
//                      proxy mode: serve the fleet described by the
//                      topology file (src/cluster/topology.hpp grammar) as
//                      one logical tile server — no scene files, no
//                      generator; tiles route to their owning shard by
//                      rendezvous hashing, windows stitch across shards
//                      byte-identically, /readyz aggregates the fleet
//   --cluster-timeout-ms N  per-forward deadline in proxy mode (default 5000)
//   --cluster-prev TOPOLOGY --cluster-node NAME
//                      shard mode peer fill: NAME is this node's name; on a
//                      cache+store miss, ask the key's owner under the
//                      *previous* epoch's topology for its cached copy
//                      (`cached=1` — the peer never generates) before
//                      generating locally.  Both flags come together.

#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "cluster/client.hpp"
#include "cluster/peer_fill.hpp"
#include "cluster/proxy.hpp"
#include "cluster/topology.hpp"
#include "core/error.hpp"
#include "fault/inject.hpp"
#include "io/scene.hpp"
#include "net/server.hpp"
#include "net/tile_routes.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "service/tile_service.hpp"
#include "store/tile_store.hpp"

#include <sys/stat.h>

namespace {

int usage() {
    std::cerr << "usage: rrsd SCENE.rrs [NAME=SCENE.rrs ...] [options]\n"
                 "  --host ADDR      bind address (default 127.0.0.1)\n"
                 "  --port N         bind port; 0 = ephemeral (default 0)\n"
                 "  --port-file FILE write the bound port to FILE\n"
                 "  --tile-size N    tile extent in lattice points (default 256)\n"
                 "  --cache-mb N     tile cache budget in MiB (default 256)\n"
                 "  --gen-threads N  generation fan-out threads (default hardware)\n"
                 "  --workers N      HTTP connection workers (default 4)\n"
                 "  --connections N  admission cap; 0 = workers (default 0)\n"
                 "  --timeout-ms N   read/write deadline in ms (default 5000)\n"
                 "  --seed N         override every scene's seed\n"
                 "  --trace          enable span recording (serves /tracez)\n"
                 "  --quiet          suppress log lines\n"
                 "  --breaker-failures N  failures that open a breaker; 0 = off\n"
                 "  --breaker-open-ms N   open duration before probing\n"
                 "  --stale-mb N     stale-tile store MiB; 0 = off (default 32)\n"
                 "  --store DIR      persistent L2 tile store directory\n"
                 "  --store-mb N     L2 store budget in MiB (default 1024)\n"
                 "  --faults SPEC    arm a fault plan (default: $RRS_FAULTS)\n"
                 "  --cluster TOPOLOGY       proxy mode: route to the fleet\n"
                 "  --cluster-timeout-ms N   proxy forward deadline (default 5000)\n"
                 "  --cluster-prev TOPOLOGY  previous epoch for peer cache-fill\n"
                 "  --cluster-node NAME      this shard's name in the topologies\n";
    return 2;
}

int g_signal_pipe[2] = {-1, -1};

extern "C" void rrsd_on_signal(int /*signum*/) {
    const char byte = 1;
    // Self-pipe: the only async-signal-safe thing to do is poke main.
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// "NAME=FILE" -> {NAME, FILE}; "dir/scene.rrs" -> {"scene", "dir/scene.rrs"}.
std::pair<std::string, std::string> scene_arg(const std::string& arg) {
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos && eq > 0) {
        return {arg.substr(0, eq), arg.substr(eq + 1)};
    }
    const std::size_t slash = arg.find_last_of('/');
    std::string name = slash == std::string::npos ? arg : arg.substr(slash + 1);
    const std::size_t dot = name.find_last_of('.');
    if (dot != std::string::npos && dot > 0) {
        name.resize(dot);
    }
    return {name, arg};
}

}  // namespace

int main(int argc, char** argv) {
    using namespace rrs;
    std::vector<std::pair<std::string, std::string>> scene_files;
    net::HttpServer::Options server_opt;
    std::string port_file;
    std::int64_t tile_size = 256;
    std::size_t cache_mb = 256;
    std::size_t gen_threads = 0;
    bool override_seed = false;
    std::uint64_t seed = 0;
    bool trace = false;
    bool quiet = false;
    net::TileRoutesOptions route_opt;
    std::size_t stale_mb = 32;
    std::string store_dir;
    std::size_t store_mb = 1024;
    std::string faults_spec;
    bool faults_flag = false;
    std::string cluster_file;
    int cluster_timeout_ms = 5000;
    std::string cluster_prev_file;
    std::string cluster_node;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "rrsd: " << flag << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--host") {
            const char* v = next_value("--host");
            if (v == nullptr) {
                return usage();
            }
            server_opt.host = v;
        } else if (arg == "--port") {
            const char* v = next_value("--port");
            if (v == nullptr) {
                return usage();
            }
            server_opt.port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--port-file") {
            const char* v = next_value("--port-file");
            if (v == nullptr) {
                return usage();
            }
            port_file = v;
        } else if (arg == "--tile-size") {
            const char* v = next_value("--tile-size");
            if (v == nullptr) {
                return usage();
            }
            tile_size = std::strtoll(v, nullptr, 10);
        } else if (arg == "--cache-mb") {
            const char* v = next_value("--cache-mb");
            if (v == nullptr) {
                return usage();
            }
            cache_mb = std::strtoull(v, nullptr, 10);
        } else if (arg == "--gen-threads") {
            const char* v = next_value("--gen-threads");
            if (v == nullptr) {
                return usage();
            }
            gen_threads = std::strtoull(v, nullptr, 10);
        } else if (arg == "--workers") {
            const char* v = next_value("--workers");
            if (v == nullptr) {
                return usage();
            }
            server_opt.workers = std::strtoull(v, nullptr, 10);
        } else if (arg == "--connections") {
            const char* v = next_value("--connections");
            if (v == nullptr) {
                return usage();
            }
            server_opt.max_connections = std::strtoull(v, nullptr, 10);
        } else if (arg == "--timeout-ms") {
            const char* v = next_value("--timeout-ms");
            if (v == nullptr) {
                return usage();
            }
            server_opt.read_timeout_ms = std::atoi(v);
            server_opt.write_timeout_ms = server_opt.read_timeout_ms;
        } else if (arg == "--seed") {
            const char* v = next_value("--seed");
            if (v == nullptr) {
                return usage();
            }
            override_seed = true;
            seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--breaker-failures") {
            const char* v = next_value("--breaker-failures");
            if (v == nullptr) {
                return usage();
            }
            route_opt.breaker_failures = std::atoi(v);
        } else if (arg == "--breaker-open-ms") {
            const char* v = next_value("--breaker-open-ms");
            if (v == nullptr) {
                return usage();
            }
            route_opt.breaker_open_ms = std::atoi(v);
        } else if (arg == "--stale-mb") {
            const char* v = next_value("--stale-mb");
            if (v == nullptr) {
                return usage();
            }
            stale_mb = std::strtoull(v, nullptr, 10);
        } else if (arg == "--store") {
            const char* v = next_value("--store");
            if (v == nullptr) {
                return usage();
            }
            store_dir = v;
        } else if (arg == "--store-mb") {
            const char* v = next_value("--store-mb");
            if (v == nullptr) {
                return usage();
            }
            store_mb = std::strtoull(v, nullptr, 10);
        } else if (arg == "--faults") {
            const char* v = next_value("--faults");
            if (v == nullptr) {
                return usage();
            }
            faults_spec = v;
            faults_flag = true;
        } else if (arg == "--cluster") {
            const char* v = next_value("--cluster");
            if (v == nullptr) {
                return usage();
            }
            cluster_file = v;
        } else if (arg == "--cluster-timeout-ms") {
            const char* v = next_value("--cluster-timeout-ms");
            if (v == nullptr) {
                return usage();
            }
            cluster_timeout_ms = std::atoi(v);
        } else if (arg == "--cluster-prev") {
            const char* v = next_value("--cluster-prev");
            if (v == nullptr) {
                return usage();
            }
            cluster_prev_file = v;
        } else if (arg == "--cluster-node") {
            const char* v = next_value("--cluster-node");
            if (v == nullptr) {
                return usage();
            }
            cluster_node = v;
        } else if (!arg.empty() && arg.front() == '-') {
            std::cerr << "rrsd: unrecognised option '" << arg << "'\n";
            return usage();
        } else {
            scene_files.push_back(scene_arg(arg));
        }
    }
    const bool proxy_mode = !cluster_file.empty();
    if (proxy_mode && !scene_files.empty()) {
        std::cerr << "rrsd: --cluster (proxy mode) takes no scene files — "
                     "shards own the scenes\n";
        return usage();
    }
    if (proxy_mode && (!cluster_prev_file.empty() || !cluster_node.empty())) {
        std::cerr << "rrsd: --cluster-prev/--cluster-node are shard-mode "
                     "flags, not proxy-mode\n";
        return usage();
    }
    if (cluster_prev_file.empty() != cluster_node.empty()) {
        std::cerr << "rrsd: --cluster-prev and --cluster-node come together\n";
        return usage();
    }
    if (proxy_mode && cluster_timeout_ms <= 0) {
        std::cerr << "rrsd: --cluster-timeout-ms must be positive\n";
        return usage();
    }
    if (!proxy_mode && scene_files.empty()) {
        std::cerr << "rrsd: at least one scene file is required\n";
        return usage();
    }
    if (tile_size <= 0 || cache_mb == 0) {
        std::cerr << "rrsd: --tile-size and --cache-mb must be positive\n";
        return usage();
    }
    if (!store_dir.empty() && store_mb == 0) {
        std::cerr << "rrsd: --store-mb must be positive\n";
        return usage();
    }

    try {
        std::shared_ptr<store::TileStore> tile_store;
        std::unique_ptr<ThreadPool> gen_pool;
        std::shared_ptr<cluster::ClusterClient> cluster_client;
        net::Router router;
        if (proxy_mode) {
            // Stateless routing tier: no generator, no scene — one
            // ClusterClient over the declared fleet (cluster/proxy.hpp).
            cluster::Topology topo = cluster::load_topology(cluster_file);
            cluster::ClusterOptions copt;
            copt.timeout_ms = cluster_timeout_ms;
            cluster_client = std::make_shared<cluster::ClusterClient>(
                std::move(topo), copt);
            router = cluster::make_cluster_router(cluster_client);
            if (!quiet) {
                std::cerr << "rrsd: proxy over " << cluster_client->map().size()
                          << " shard(s), topology epoch "
                          << cluster_client->map().epoch() << "\n";
            }
        } else {
            // One segment file shared by every scene: addresses carry the
            // generator fingerprint, so scenes can never alias each other.
            if (!store_dir.empty()) {
                if (::mkdir(store_dir.c_str(), 0755) != 0 && errno != EEXIST) {
                    std::cerr << "rrsd: cannot create '" << store_dir
                              << "': " << std::strerror(errno) << "\n";
                    return 1;
                }
                store::TileStoreOptions sopt;
                sopt.byte_budget = store_mb << 20;
                tile_store = std::make_shared<store::TileStore>(
                    store_dir + "/tiles.rrsstore", sopt);
            }
            // One generation pool shared by every scene's TileService; the
            // HTTP server runs its own worker pool, so window fan-out from a
            // server worker cannot deadlock against itself (tile_service.hpp
            // contract).
            gen_pool = std::make_unique<ThreadPool>(gen_threads);
            net::SceneServices scenes;
            for (const auto& [name, file] : scene_files) {
                std::ifstream in(file);
                if (!in) {
                    std::cerr << "rrsd: cannot open '" << file << "'\n";
                    return 1;
                }
                Scene scene = parse_scene(in);
                if (override_seed) {
                    scene.seed = seed;
                }
                auto gen = std::make_shared<InhomogeneousGenerator>(
                    make_scene_generator(scene));
                TileService::Options opt;
                opt.shape = TileShape{tile_size, tile_size};
                opt.cache_bytes = cache_mb << 20;
                opt.pool = gen_pool.get();
                opt.store = tile_store;
                auto [it, inserted] = scenes.emplace(
                    name, TileService::owning(std::move(gen), opt));
                if (!inserted) {
                    std::cerr << "rrsd: scene name '" << name << "' used twice\n";
                    return 1;
                }
                if (!quiet) {
                    std::cerr << "rrsd: scene '" << name << "' <- " << file
                              << " (fingerprint " << it->second->fingerprint()
                              << ")\n";
                }
            }
            if (!cluster_prev_file.empty()) {
                // Reshard warm-up: ask each key's previous-epoch owner
                // before generating (cluster/peer_fill.hpp).  Installed
                // before the router exists, so no request can race it.
                const cluster::Topology prev =
                    cluster::load_topology(cluster_prev_file);
                for (auto& [name, service] : scenes) {
                    service->set_remote_fill(cluster::make_peer_filler(
                        prev, cluster_node, name, service->fingerprint(),
                        service->shape()));
                }
                if (!quiet) {
                    std::cerr << "rrsd: peer cache-fill armed (node '"
                              << cluster_node << "', previous epoch "
                              << prev.epoch << ")\n";
                }
            }
            route_opt.stale_bytes = stale_mb << 20;
            router = net::make_tile_router(std::move(scenes), nullptr, route_opt);
        }

        if (trace) {
            obs::trace_enable();
        }
        if (faults_flag) {
            fault::arm(fault::FaultPlan::parse(faults_spec));
        } else {
            fault::arm_from_env();
        }
        if (!quiet && fault::armed()) {
            std::cerr << "rrsd: fault plan armed\n";
        }
        net::HttpServer server(std::move(router), server_opt);

        if (::pipe(g_signal_pipe) != 0) {
            std::cerr << "rrsd: pipe: " << std::strerror(errno) << "\n";
            return 1;
        }
        struct sigaction sa = {};
        sa.sa_handler = rrsd_on_signal;
        ::sigemptyset(&sa.sa_mask);
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
        ::signal(SIGPIPE, SIG_IGN);

        server.start();
        if (!quiet) {
            std::cerr << "rrsd: listening on " << server_opt.host << ":"
                      << server.port() << " (" << server_opt.workers
                      << " workers, cap "
                      << server.options().max_connections << ")\n";
        }
        if (!port_file.empty()) {
            std::ofstream pf(port_file);
            if (!pf) {
                std::cerr << "rrsd: cannot write '" << port_file << "'\n";
                return 1;
            }
            pf << server.port() << "\n";
        }

        // Park until a signal pokes the self-pipe (EINTR just re-reads).
        char byte = 0;
        while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
        }
        if (!quiet) {
            std::cerr << "rrsd: draining...\n";
        }
        server.stop();
        std::cout << obs::MetricsRegistry::global().to_json() << "\n";
        if (!quiet) {
            std::cerr << "rrsd: bye\n";
        }
    } catch (const Error& e) {
        std::cerr << "rrsd: error: " << e.what() << "\n";
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "rrsd: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
