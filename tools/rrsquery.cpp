// rrsquery — one-shot HTTP client for an rrsd tile server.
//
//   rrsquery HOST:PORT TARGET [options]
//   rrsquery --cluster TOPOLOGY TARGET [options]
//
//   rrsquery 127.0.0.1:8080 /healthz
//   rrsquery 127.0.0.1:8080 "/v1/tile?tx=0&ty=0" --stats
//   rrsquery 127.0.0.1:8080 /metrics
//   rrsquery --cluster fleet.topo "/v1/window?x0=0&y0=0&nx=512&ny=512" --stats
//
// With `--cluster TOPOLOGY` (a src/cluster/topology.hpp file) the client
// routes fleet-side without a proxy: /v1/tile and /v1/pyramid go straight
// to the owning shard (rendezvous hashing, DESIGN.md §17), /v1/window is
// fanned out and stitched client-side (byte-identical to single-node
// serving), /readyz aggregates every shard, and anything else is asked of
// the first node.  An unreachable shard exits 3, like a connect failure.
//
// Prints the response body to stdout (binary surface bodies are summarised
// unless --out or --stats asks otherwise) and exits 0 iff the response
// status is 2xx — which makes it a usable smoke-test probe in shell scripts.
//
//   --out FILE       write the raw response body to FILE
//   --stats          decode a float32 surface body (X-RRS-Nx/Ny headers)
//                    and print one JSON line: {"nx":..,"ny":..,"min":..,
//                    "max":..,"mean":..,"rms":..}
//   --headers        also print status line + response headers to stderr
//   --zoom N         shorthand: append z=N to the request target's query
//                    string (zoom-pyramid level, /v1/tile and /v1/pyramid)
//   --if-none-match ETAG
//                    send an If-None-Match header; a 304 Not Modified
//                    answer prints "not modified" and exits 0 — the cached
//                    copy named by ETAG is still valid
//   --timeout-ms N   connect/read/write deadline (default 5000)
//   --retries N      retry transport failures / 503s up to N extra times
//                    with jittered exponential backoff (default 0)
//   --deadline-ms N  overall budget across all attempts (default: none)
//
// Exit codes: 0 = 2xx response or 304 Not Modified; 1 = HTTP error or
// transport failure; 2 = usage; 3 = could not connect; 4 = retry deadline
// exhausted.

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>

#include "cluster/client.hpp"
#include "cluster/topology.hpp"
#include "core/error.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/query.hpp"
#include "net/tile_routes.hpp"

namespace {

int usage() {
    std::cerr << "usage: rrsquery HOST:PORT TARGET [options]\n"
                 "       rrsquery --cluster TOPOLOGY TARGET [options]\n"
                 "  --out FILE     write the raw response body to FILE\n"
                 "  --stats        decode a float32 surface body, print stats\n"
                 "  --headers      also print status + headers to stderr\n"
                 "  --zoom N       append z=N to the target query string\n"
                 "  --if-none-match ETAG  conditional GET; 304 exits 0\n"
                 "  --timeout-ms N connect/read/write deadline (default 5000)\n"
                 "  --retries N    extra attempts on transport failure / 503\n"
                 "  --deadline-ms N overall retry budget (default: none)\n"
                 "exit codes: 0 = 2xx or 304, 1 = HTTP/transport error,\n"
                 "            2 = usage, 3 = connect failure / shard "
                 "unavailable,\n"
                 "            4 = deadline exhausted\n";
    return 2;
}

/// Little-endian float32 at `p`.
float read_f32(const unsigned char* p) noexcept {
    const std::uint32_t bits =
        static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    float f = 0.0F;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

int print_surface_stats(const rrs::net::ClientResponse& resp) {
    const std::string* nx_h = resp.header("x-rrs-nx");
    const std::string* ny_h = resp.header("x-rrs-ny");
    if (nx_h == nullptr || ny_h == nullptr) {
        std::cerr << "rrsquery: response has no X-RRS-Nx/Ny headers\n";
        return 1;
    }
    const std::uint64_t nx = std::strtoull(nx_h->c_str(), nullptr, 10);
    const std::uint64_t ny = std::strtoull(ny_h->c_str(), nullptr, 10);
    if (resp.body.size() != nx * ny * 4) {
        std::cerr << "rrsquery: body is " << resp.body.size() << " bytes, want "
                  << nx * ny * 4 << " for " << nx << "x" << ny << " float32\n";
        return 1;
    }
    double lo = 0.0;
    double hi = 0.0;
    double sum = 0.0;
    double sum_sq = 0.0;
    const auto* p = reinterpret_cast<const unsigned char*>(resp.body.data());
    const std::uint64_t n = nx * ny;
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto v = static_cast<double>(read_f32(p + i * 4));
        lo = i == 0 ? v : std::min(lo, v);
        hi = i == 0 ? v : std::max(hi, v);
        sum += v;
        sum_sq += v * v;
    }
    const double denom = n == 0 ? 1.0 : static_cast<double>(n);
    std::cout << "{\"nx\":" << nx << ",\"ny\":" << ny << ",\"min\":" << lo
              << ",\"max\":" << hi << ",\"mean\":" << sum / denom
              << ",\"rms\":" << std::sqrt(sum_sq / denom) << "}\n";
    return 0;
}

/// Re-cast a server-side HttpResponse (client-side stitched window,
/// aggregated readyz) as the ClientResponse the shared printing path
/// expects — header names lower-cased, the way parse_response_head does.
rrs::net::ClientResponse synthesize(rrs::net::HttpResponse resp) {
    rrs::net::ClientResponse out;
    out.status = resp.status;
    out.body = std::move(resp.body);
    out.headers.emplace_back("content-type", std::move(resp.content_type));
    for (auto& [name, value] : resp.extra_headers) {
        std::string lower = name;
        for (char& c : lower) {
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        out.headers.emplace_back(std::move(lower), std::move(value));
    }
    return out;
}

/// Fleet-side routing for --cluster (file comment): resolve the target the
/// way the proxy would, but in-process.
rrs::net::ClientResponse cluster_fetch(const std::string& topology_file,
                                       const std::string& target,
                                       const rrs::net::HttpClient::HeaderList& extra,
                                       const rrs::net::HttpClient::Options& copt) {
    using namespace rrs;
    cluster::ClusterOptions opt;
    opt.timeout_ms = copt.timeout_ms;
    opt.retry = copt.retry;
    opt.connections_per_node = 2;  // one-shot tool: stay well under shard workers
    opt.fanout_threads = 4;
    cluster::ClusterClient client(cluster::load_topology(topology_file), opt);
    // Borrow the server's own request parser so the target grammar (path,
    // %XX decoding, query split) is exactly the wire grammar.
    const net::HttpRequest req =
        net::parse_request_head("GET " + target + " HTTP/1.1");
    if (req.path == "/readyz") {
        const cluster::ClusterClient::FleetReady fleet = client.ready();
        std::string body = std::string("{\"ready\":") +
                           (fleet.ready ? "true" : "false") + ",\"nodes\":[";
        bool first = true;
        for (const auto& node : fleet.nodes) {
            if (!first) {
                body += ',';
            }
            first = false;
            body += "{\"name\":\"" + net::json_escape(node.name) +
                    "\",\"ready\":" + (node.ready ? "true" : "false") +
                    ",\"status\":" + std::to_string(node.status) + "}";
        }
        body += "]}";
        return synthesize(
            net::HttpResponse::json(fleet.ready ? 200 : 503, std::move(body)));
    }
    if (req.path == "/v1/tile") {
        const auto [scene, info] = client.resolve_scene(req.query_param("scene"));
        (void)info;
        const net::TileQuery query = net::parse_tile_query(req);
        return client.forward(client.owner_of(scene, query.key), target, extra);
    }
    if (req.path == "/v1/pyramid") {
        const auto [scene, info] = client.resolve_scene(req.query_param("scene"));
        (void)info;
        const net::PyramidQuery query = net::parse_pyramid_query(req);
        return client.forward(client.owner_of(scene, query.top), target, extra);
    }
    if (req.path == "/v1/window") {
        const auto [scene, info] = client.resolve_scene(req.query_param("scene"));
        const net::WindowQuery query = net::parse_window_query(req);
        const Array2D<double> window = client.window(scene, query.region);
        return synthesize(net::surface_response(window, query.region, scene,
                                                info.fingerprint, query.encoding));
    }
    // /, /healthz, /metrics, ...: fleet-global reads — any node will do.
    return client.forward(0, target, extra);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace rrs;
    if (argc < 3) {
        return usage();
    }
    std::string host_port;
    std::string cluster_file;
    int first_option = 3;
    std::string target;
    if (std::string(argv[1]) == "--cluster") {
        if (argc < 4) {
            return usage();
        }
        cluster_file = argv[2];
        target = argv[3];
        first_option = 4;
    } else {
        host_port = argv[1];
        target = argv[2];
    }
    std::string out_file;
    std::string zoom;
    std::string if_none_match;
    bool stats = false;
    bool show_headers = false;
    net::HttpClient::Options copt;

    for (int i = first_option; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "rrsquery: " << flag << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--out") {
            const char* v = next_value("--out");
            if (v == nullptr) {
                return usage();
            }
            out_file = v;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--headers") {
            show_headers = true;
        } else if (arg == "--zoom") {
            const char* v = next_value("--zoom");
            if (v == nullptr) {
                return usage();
            }
            zoom = v;
        } else if (arg == "--if-none-match") {
            const char* v = next_value("--if-none-match");
            if (v == nullptr) {
                return usage();
            }
            if_none_match = v;
        } else if (arg == "--timeout-ms") {
            const char* v = next_value("--timeout-ms");
            if (v == nullptr) {
                return usage();
            }
            copt.timeout_ms = std::atoi(v);
        } else if (arg == "--retries") {
            const char* v = next_value("--retries");
            if (v == nullptr) {
                return usage();
            }
            copt.retry.max_attempts = std::atoi(v) + 1;
        } else if (arg == "--deadline-ms") {
            const char* v = next_value("--deadline-ms");
            if (v == nullptr) {
                return usage();
            }
            copt.retry.deadline_ms = std::atoi(v);
        } else {
            std::cerr << "rrsquery: unrecognised argument '" << arg << "'\n";
            return usage();
        }
    }

    std::string host;
    std::uint16_t port = 0;
    if (cluster_file.empty()) {
        const std::size_t colon = host_port.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= host_port.size()) {
            std::cerr << "rrsquery: first argument must be HOST:PORT\n";
            return usage();
        }
        host = host_port.substr(0, colon);
        port = static_cast<std::uint16_t>(
            std::strtoul(host_port.c_str() + colon + 1, nullptr, 10));
    }

    if (!zoom.empty()) {
        target += (target.find('?') == std::string::npos ? '?' : '&');
        target += "z=" + zoom;
    }

    try {
        net::HttpClient::HeaderList extra;
        if (!if_none_match.empty()) {
            extra.emplace_back("If-None-Match", if_none_match);
        }
        net::ClientResponse resp;
        if (!cluster_file.empty()) {
            resp = cluster_fetch(cluster_file, target, extra, copt);
        } else {
            net::HttpClient client(host, port, copt);
            resp = client.get(target, extra);
        }
        if (show_headers) {
            std::cerr << "HTTP " << resp.status << "\n";
            for (const auto& [name, value] : resp.headers) {
                std::cerr << name << ": " << value << "\n";
            }
        }
        if (!out_file.empty()) {
            std::ofstream out(out_file, std::ios::binary);
            if (!out) {
                std::cerr << "rrsquery: cannot write '" << out_file << "'\n";
                return 1;
            }
            out.write(resp.body.data(),
                      static_cast<std::streamsize>(resp.body.size()));
        }
        if (resp.status == 304) {
            // The conditional GET succeeded: the client's copy is current.
            std::cout << "not modified\n";
            return 0;
        }
        if (stats) {
            const int rc = print_surface_stats(resp);
            if (rc != 0) {
                return rc;
            }
        } else if (out_file.empty()) {
            const std::string* type = resp.header("content-type");
            const bool binary =
                type != nullptr && type->rfind("application/octet-stream", 0) == 0;
            if (binary) {
                std::cout << "(" << resp.body.size()
                          << " bytes of application/octet-stream; use --out or "
                             "--stats)\n";
            } else {
                std::cout << resp.body;
                if (!resp.body.empty() && resp.body.back() != '\n') {
                    std::cout << "\n";
                }
            }
        }
        if (!resp.ok()) {
            std::cerr << "rrsquery: HTTP " << resp.status << " for " << target
                      << "\n";
            return 1;
        }
    } catch (const net::DeadlineError& e) {
        std::cerr << "rrsquery: deadline exhausted: " << e.what() << "\n";
        return 4;
    } catch (const cluster::NodeUnavailableError& e) {
        std::cerr << "rrsquery: shard '" << e.node() << "' unavailable: "
                  << e.what() << "\n";
        return 3;
    } catch (const net::ConnectError& e) {
        std::cerr << "rrsquery: connect failed: " << e.what() << "\n";
        return 3;
    } catch (const Error& e) {
        std::cerr << "rrsquery: error: " << e.what() << "\n";
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "rrsquery: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
