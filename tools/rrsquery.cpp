// rrsquery — one-shot HTTP client for an rrsd tile server.
//
//   rrsquery HOST:PORT TARGET [options]
//
//   rrsquery 127.0.0.1:8080 /healthz
//   rrsquery 127.0.0.1:8080 "/v1/tile?tx=0&ty=0" --stats
//   rrsquery 127.0.0.1:8080 /metrics
//
// Prints the response body to stdout (binary surface bodies are summarised
// unless --out or --stats asks otherwise) and exits 0 iff the response
// status is 2xx — which makes it a usable smoke-test probe in shell scripts.
//
//   --out FILE       write the raw response body to FILE
//   --stats          decode a float32 surface body (X-RRS-Nx/Ny headers)
//                    and print one JSON line: {"nx":..,"ny":..,"min":..,
//                    "max":..,"mean":..,"rms":..}
//   --headers        also print status line + response headers to stderr
//   --zoom N         shorthand: append z=N to the request target's query
//                    string (zoom-pyramid level, /v1/tile and /v1/pyramid)
//   --if-none-match ETAG
//                    send an If-None-Match header; a 304 Not Modified
//                    answer prints "not modified" and exits 0 — the cached
//                    copy named by ETAG is still valid
//   --timeout-ms N   connect/read/write deadline (default 5000)
//   --retries N      retry transport failures / 503s up to N extra times
//                    with jittered exponential backoff (default 0)
//   --deadline-ms N  overall budget across all attempts (default: none)
//
// Exit codes: 0 = 2xx response or 304 Not Modified; 1 = HTTP error or
// transport failure; 2 = usage; 3 = could not connect; 4 = retry deadline
// exhausted.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/error.hpp"
#include "net/client.hpp"

namespace {

int usage() {
    std::cerr << "usage: rrsquery HOST:PORT TARGET [options]\n"
                 "  --out FILE     write the raw response body to FILE\n"
                 "  --stats        decode a float32 surface body, print stats\n"
                 "  --headers      also print status + headers to stderr\n"
                 "  --zoom N       append z=N to the target query string\n"
                 "  --if-none-match ETAG  conditional GET; 304 exits 0\n"
                 "  --timeout-ms N connect/read/write deadline (default 5000)\n"
                 "  --retries N    extra attempts on transport failure / 503\n"
                 "  --deadline-ms N overall retry budget (default: none)\n"
                 "exit codes: 0 = 2xx or 304, 1 = HTTP/transport error,\n"
                 "            2 = usage, 3 = connect failure, 4 = deadline "
                 "exhausted\n";
    return 2;
}

/// Little-endian float32 at `p`.
float read_f32(const unsigned char* p) noexcept {
    const std::uint32_t bits =
        static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    float f = 0.0F;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

int print_surface_stats(const rrs::net::ClientResponse& resp) {
    const std::string* nx_h = resp.header("x-rrs-nx");
    const std::string* ny_h = resp.header("x-rrs-ny");
    if (nx_h == nullptr || ny_h == nullptr) {
        std::cerr << "rrsquery: response has no X-RRS-Nx/Ny headers\n";
        return 1;
    }
    const std::uint64_t nx = std::strtoull(nx_h->c_str(), nullptr, 10);
    const std::uint64_t ny = std::strtoull(ny_h->c_str(), nullptr, 10);
    if (resp.body.size() != nx * ny * 4) {
        std::cerr << "rrsquery: body is " << resp.body.size() << " bytes, want "
                  << nx * ny * 4 << " for " << nx << "x" << ny << " float32\n";
        return 1;
    }
    double lo = 0.0;
    double hi = 0.0;
    double sum = 0.0;
    double sum_sq = 0.0;
    const auto* p = reinterpret_cast<const unsigned char*>(resp.body.data());
    const std::uint64_t n = nx * ny;
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto v = static_cast<double>(read_f32(p + i * 4));
        lo = i == 0 ? v : std::min(lo, v);
        hi = i == 0 ? v : std::max(hi, v);
        sum += v;
        sum_sq += v * v;
    }
    const double denom = n == 0 ? 1.0 : static_cast<double>(n);
    std::cout << "{\"nx\":" << nx << ",\"ny\":" << ny << ",\"min\":" << lo
              << ",\"max\":" << hi << ",\"mean\":" << sum / denom
              << ",\"rms\":" << std::sqrt(sum_sq / denom) << "}\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace rrs;
    if (argc < 3) {
        return usage();
    }
    const std::string host_port = argv[1];
    std::string target = argv[2];
    std::string out_file;
    std::string zoom;
    std::string if_none_match;
    bool stats = false;
    bool show_headers = false;
    net::HttpClient::Options copt;

    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "rrsquery: " << flag << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--out") {
            const char* v = next_value("--out");
            if (v == nullptr) {
                return usage();
            }
            out_file = v;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--headers") {
            show_headers = true;
        } else if (arg == "--zoom") {
            const char* v = next_value("--zoom");
            if (v == nullptr) {
                return usage();
            }
            zoom = v;
        } else if (arg == "--if-none-match") {
            const char* v = next_value("--if-none-match");
            if (v == nullptr) {
                return usage();
            }
            if_none_match = v;
        } else if (arg == "--timeout-ms") {
            const char* v = next_value("--timeout-ms");
            if (v == nullptr) {
                return usage();
            }
            copt.timeout_ms = std::atoi(v);
        } else if (arg == "--retries") {
            const char* v = next_value("--retries");
            if (v == nullptr) {
                return usage();
            }
            copt.retry.max_attempts = std::atoi(v) + 1;
        } else if (arg == "--deadline-ms") {
            const char* v = next_value("--deadline-ms");
            if (v == nullptr) {
                return usage();
            }
            copt.retry.deadline_ms = std::atoi(v);
        } else {
            std::cerr << "rrsquery: unrecognised argument '" << arg << "'\n";
            return usage();
        }
    }

    const std::size_t colon = host_port.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= host_port.size()) {
        std::cerr << "rrsquery: first argument must be HOST:PORT\n";
        return usage();
    }
    const std::string host = host_port.substr(0, colon);
    const auto port = static_cast<std::uint16_t>(
        std::strtoul(host_port.c_str() + colon + 1, nullptr, 10));

    if (!zoom.empty()) {
        target += (target.find('?') == std::string::npos ? '?' : '&');
        target += "z=" + zoom;
    }

    try {
        net::HttpClient client(host, port, copt);
        net::HttpClient::HeaderList extra;
        if (!if_none_match.empty()) {
            extra.emplace_back("If-None-Match", if_none_match);
        }
        const net::ClientResponse resp = client.get(target, extra);
        if (show_headers) {
            std::cerr << "HTTP " << resp.status << "\n";
            for (const auto& [name, value] : resp.headers) {
                std::cerr << name << ": " << value << "\n";
            }
        }
        if (!out_file.empty()) {
            std::ofstream out(out_file, std::ios::binary);
            if (!out) {
                std::cerr << "rrsquery: cannot write '" << out_file << "'\n";
                return 1;
            }
            out.write(resp.body.data(),
                      static_cast<std::streamsize>(resp.body.size()));
        }
        if (resp.status == 304) {
            // The conditional GET succeeded: the client's copy is current.
            std::cout << "not modified\n";
            return 0;
        }
        if (stats) {
            const int rc = print_surface_stats(resp);
            if (rc != 0) {
                return rc;
            }
        } else if (out_file.empty()) {
            const std::string* type = resp.header("content-type");
            const bool binary =
                type != nullptr && type->rfind("application/octet-stream", 0) == 0;
            if (binary) {
                std::cout << "(" << resp.body.size()
                          << " bytes of application/octet-stream; use --out or "
                             "--stats)\n";
            } else {
                std::cout << resp.body;
                if (!resp.body.empty() && resp.body.back() != '\n') {
                    std::cout << "\n";
                }
            }
        }
        if (!resp.ok()) {
            std::cerr << "rrsquery: HTTP " << resp.status << " for " << target
                      << "\n";
            return 1;
        }
    } catch (const net::DeadlineError& e) {
        std::cerr << "rrsquery: deadline exhausted: " << e.what() << "\n";
        return 4;
    } catch (const net::ConnectError& e) {
        std::cerr << "rrsquery: connect failed: " << e.what() << "\n";
        return 3;
    } catch (const Error& e) {
        std::cerr << "rrsquery: error: " << e.what() << "\n";
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "rrsquery: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
