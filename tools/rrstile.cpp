// rrstile — serve surface tiles from a scene, map-tile style.
//
// Reads a scene description (src/io/scene.hpp), wraps its generator in a
// TileService (sharded LRU cache + request coalescing), serves the
// requested tiles, and prints a metrics summary as one JSON line.
//
//   rrstile SCENE.rrs [options] [TX,TY ...]
//   rrstile --example            # print a small ready-to-run scene
//
// Tile requests come from the positional TX,TY arguments; with none given
// (or with `-`), they are read from stdin, one "TX TY" pair per line —
// the shape a request log replays into.  Options:
//
//   --tile-size N     tile extent in lattice points       (default 256)
//   --cache-mb N      tile cache budget in MiB            (default 256)
//   --threads N       batch fan-out worker threads        (default hardware)
//   --repeat N        serve the whole request list N times (default 1)
//   --seed N          override the scene's seed
//   --out-dir DIR     also write each distinct tile as PGM into DIR
//   --quiet           suppress the per-tile log lines
//   --trace FILE      record pipeline spans, write Chrome trace JSON
//   --metrics         also print the global metrics registry JSON line

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "io/scene.hpp"
#include "io/writers.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "service/tile_service.hpp"

namespace {

constexpr const char* kExampleScene = R"(# Small example scene for rrstile (fast enough for smoke tests).
seed = 7
kernel_grid = 128 128
region = 0 0 128 128
tail_eps = 1e-6

[spectrum field]
family = gaussian
h = 1.0
cl = 8

[spectrum pond]
family = exponential
h = 0.3
cl = 8

[map]
type = circle
center = 0 0
radius = 96
transition = 24
inside = pond
outside = field
)";

int usage() {
    std::cerr
        << "usage: rrstile SCENE.rrs [options] [TX,TY ...]\n"
           "       rrstile --example   (print an example scene file)\n"
           "  positional TX,TY pairs name tiles; none (or '-') reads 'TX TY'\n"
           "  lines from stdin\n"
           "  --tile-size N   tile extent in lattice points (default 256)\n"
           "  --cache-mb N    tile cache budget in MiB (default 256)\n"
           "  --threads N     batch fan-out worker threads (default hardware)\n"
           "  --repeat N      serve the request list N times (default 1)\n"
           "  --seed N        override the scene's seed\n"
           "  --out-dir DIR   write each distinct tile as PGM into DIR\n"
           "  --quiet         suppress per-tile log lines\n"
           "  --trace FILE    record pipeline spans, write Chrome trace JSON\n"
           "  --metrics       also print the global metrics registry JSON line\n";
    return 2;
}

bool parse_tile_arg(const std::string& arg, rrs::TileKey& key) {
    const auto comma = arg.find(',');
    if (comma == std::string::npos) {
        return false;
    }
    try {
        key.tx = std::stoll(arg.substr(0, comma));
        key.ty = std::stoll(arg.substr(comma + 1));
    } catch (const std::exception&) {
        return false;
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace rrs;
    if (argc < 2) {
        return usage();
    }
    if (std::strcmp(argv[1], "--example") == 0) {
        std::cout << kExampleScene;
        return 0;
    }

    std::int64_t tile_size = 256;
    std::size_t cache_mb = 256;
    std::size_t threads = 0;
    int repeat = 1;
    bool override_seed = false;
    std::uint64_t seed = 0;
    bool quiet = false;
    bool read_stdin = false;
    bool print_metrics = false;
    std::string trace_path;
    std::string out_dir;
    std::vector<TileKey> requests;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "rrstile: " << flag << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        TileKey key;
        if (arg == "--tile-size") {
            const char* v = next_value("--tile-size");
            if (v == nullptr) {
                return usage();
            }
            tile_size = std::strtoll(v, nullptr, 10);
        } else if (arg == "--cache-mb") {
            const char* v = next_value("--cache-mb");
            if (v == nullptr) {
                return usage();
            }
            cache_mb = std::strtoull(v, nullptr, 10);
        } else if (arg == "--threads") {
            const char* v = next_value("--threads");
            if (v == nullptr) {
                return usage();
            }
            threads = std::strtoull(v, nullptr, 10);
        } else if (arg == "--repeat") {
            const char* v = next_value("--repeat");
            if (v == nullptr) {
                return usage();
            }
            repeat = std::atoi(v);
        } else if (arg == "--seed") {
            const char* v = next_value("--seed");
            if (v == nullptr) {
                return usage();
            }
            override_seed = true;
            seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--out-dir") {
            const char* v = next_value("--out-dir");
            if (v == nullptr) {
                return usage();
            }
            out_dir = v;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--trace") {
            const char* v = next_value("--trace");
            if (v == nullptr) {
                return usage();
            }
            trace_path = v;
        } else if (arg == "--metrics") {
            print_metrics = true;
        } else if (arg == "-") {
            read_stdin = true;
        } else if (parse_tile_arg(arg, key)) {
            requests.push_back(key);
        } else {
            std::cerr << "rrstile: unrecognised argument '" << arg << "'\n";
            return usage();
        }
    }
    if (tile_size <= 0 || cache_mb == 0 || repeat <= 0) {
        std::cerr << "rrstile: --tile-size, --cache-mb, --repeat must be positive\n";
        return usage();
    }
    if (requests.empty() || read_stdin) {
        std::int64_t tx = 0;
        std::int64_t ty = 0;
        while (std::cin >> tx >> ty) {
            requests.push_back(TileKey{tx, ty});
        }
        if (requests.empty()) {
            std::cerr << "rrstile: no tile requests (args or stdin)\n";
            return usage();
        }
    }

    std::ifstream in(argv[1]);
    if (!in) {
        std::cerr << "rrstile: cannot open '" << argv[1] << "'\n";
        return 1;
    }
    try {
        Scene scene = parse_scene(in);
        if (override_seed) {
            scene.seed = seed;
        }
        const InhomogeneousGenerator gen = make_scene_generator(scene);

        ThreadPool pool(threads);
        TileService::Options opt;
        opt.shape = TileShape{tile_size, tile_size};
        opt.cache_bytes = cache_mb << 20;
        opt.pool = &pool;
        TileService service(gen, opt);

        std::cerr << "rrstile: serving " << requests.size() << " request(s) x " << repeat
                  << " over " << tile_size << "x" << tile_size << " tiles ("
                  << pool.thread_count() << " threads, cache " << cache_mb
                  << " MiB, fingerprint " << service.fingerprint() << ")\n";

        if (!trace_path.empty()) {
            obs::trace_enable();
        }
        std::map<TileKey, TilePtr> distinct;
        for (int r = 0; r < repeat; ++r) {
            const std::vector<TilePtr> tiles = service.get_many(requests);
            for (std::size_t i = 0; i < tiles.size(); ++i) {
                distinct.emplace(requests[i], tiles[i]);
                if (!quiet && r == 0) {
                    const Rect rect = tile_rect(service.shape(), requests[i]);
                    std::cerr << "rrstile: tile " << requests[i].tx << ","
                              << requests[i].ty << " -> [" << rect.x0 << ".." << rect.x1()
                              << ")x[" << rect.y0 << ".." << rect.y1() << ")\n";
                }
            }
        }
        if (!trace_path.empty()) {
            obs::trace_disable();
            std::ofstream trace_out(trace_path);
            if (!trace_out) {
                std::cerr << "rrstile: cannot write trace to '" << trace_path << "'\n";
                return 1;
            }
            obs::write_chrome_trace(trace_out);
            std::cerr << "rrstile: wrote trace " << trace_path << " ("
                      << obs::trace_events().size() << " spans";
            if (obs::trace_dropped() != 0) {
                std::cerr << ", " << obs::trace_dropped() << " dropped";
            }
            std::cerr << ")\n";
        }
        if (!out_dir.empty()) {
            ensure_directory(out_dir);
            for (const auto& [key, tile] : distinct) {
                std::ostringstream name;
                name << out_dir << "/tile_" << key.tx << '_' << key.ty << ".pgm";
                write_pgm16(name.str(), *tile);
                if (!quiet) {
                    std::cerr << "rrstile: wrote " << name.str() << "\n";
                }
            }
        }
        std::cout << service.metrics().to_json() << "\n";
        if (print_metrics) {
            std::cout << obs::MetricsRegistry::global().to_json() << "\n";
        }
    } catch (const Error& e) {
        std::cerr << "rrstile: error: " << e.what() << "\n";
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "rrstile: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
