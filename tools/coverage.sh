#!/usr/bin/env bash
# Coverage gate (DESIGN.md §16): build the instrumented preset, run tier 1
# (which includes the fuzz corpus replays) and tier 2 (stats), then merge
# the profiles into per-module line/branch rates and fail below the floors
# committed in tools/coverage_thresholds.json.
#
# Works with whichever toolchain built the tree: gcc's --coverage (gcov)
# today; the RRS_COVERAGE CMake option picks the matching flags per
# compiler.  The merged summary lands in bench_out/coverage.json.
#
# The preset instruments the *Release* configuration: the separable
# engine's bit-exact tile-independence (tests/test_kernel_equivalence.cpp)
# holds only under optimized FP codegen, and gating coverage on the same
# codegen that ships keeps the measured rates honest about inlining.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> [coverage] configure"
cmake --preset coverage
echo "==> [coverage] build"
cmake --build --preset coverage -j "$(nproc)"

# Profiles accumulate across runs; start from a clean slate so the gate
# measures exactly this test run.
find build-coverage -name '*.gcda' -delete

echo "==> [coverage] test (tier 1 + tier 2 + fuzz corpus replay)"
ctest --preset coverage -j "$(nproc)"

echo "==> [coverage] merge + gate"
python3 tools/coverage_report.py build-coverage \
    --thresholds tools/coverage_thresholds.json \
    --out bench_out/coverage.json
