#!/usr/bin/env bash
# CI driver: build + run the full test suite, then repeat the whole suite
# under AddressSanitizer + UndefinedBehaviorSanitizer (the `sanitize` preset
# in CMakePresets.json).  Any sanitizer report is fatal
# (-fno-sanitize-recover=all), so a green run means the suite is clean.
#
#   tools/ci.sh             # release + sanitize
#   tools/ci.sh release     # release only
#   tools/ci.sh sanitize    # sanitize only
set -euo pipefail

cd "$(dirname "$0")/.."

run_preset() {
    local preset=$1
    local dir="build"
    [[ "$preset" == "sanitize" ]] && dir="build-sanitize"
    # The presets use Ninja; a binary dir configured by hand with another
    # generator cannot be reused — start it fresh instead of erroring out.
    if [[ -f "$dir/CMakeCache.txt" ]] &&
        ! grep -q '^CMAKE_GENERATOR:INTERNAL=Ninja$' "$dir/CMakeCache.txt"; then
        echo "==> [$preset] $dir was configured with another generator; wiping it"
        rm -rf "$dir"
    fi
    echo "==> [$preset] configure"
    cmake --preset "$preset"
    echo "==> [$preset] build"
    cmake --build --preset "$preset" -j "$(nproc)"
    echo "==> [$preset] test"
    ctest --preset "$preset" -j "$(nproc)"
    rrstile_smoke "$dir"
}

# Serve a few tiles end-to-end through the tile service (coalescing cache,
# batch fan-out, metrics JSON) — run under both presets so the service layer
# gets ASan+UBSan coverage too.
rrstile_smoke() {
    local dir=$1
    echo "==> [$dir] rrstile smoke"
    local scene
    scene=$(mktemp)
    "$dir/tools/rrstile" --example > "$scene"
    # --repeat 2: the second round must be all cache hits (hit_rate 0.5).
    local metrics
    metrics=$("$dir/tools/rrstile" "$scene" --tile-size 64 --cache-mb 16 \
        --threads 2 --repeat 2 --quiet 0,0 1,0 0,1)
    rm -f "$scene"
    echo "    $metrics"
    case "$metrics" in
        *'"generation_failures":0'*'"hit_rate":0.5'*) ;;
        *) echo "==> rrstile smoke: unexpected metrics" >&2; return 1 ;;
    esac
}

want=${1:-all}
case "$want" in
    release)  run_preset release ;;
    sanitize) run_preset sanitize ;;
    all)      run_preset release; run_preset sanitize ;;
    *)        echo "usage: tools/ci.sh [release|sanitize|all]" >&2; exit 2 ;;
esac
echo "==> ci: all requested suites passed"
