#!/usr/bin/env bash
# CI driver — eleven stages, each runnable on its own:
#
#   tools/ci.sh             # all stages: lint, release, sanitize, fuzz, tsan,
#                           # chaos, tidy, perf, store, cluster, coverage
#   tools/ci.sh lint        # rrslint conventions + lint fixtures (no build)
#   tools/ci.sh release     # build + tier 1 (-LE "stats|race|chaos") + tier 2 (-L stats)
#   tools/ci.sh sanitize    # tier 1 under ASan+UBSan
#   tools/ci.sh fuzz        # fuzz harnesses (DESIGN.md §16): 60 s/harness of
#                           # libFuzzer when clang provides it, corpus replay
#                           # always -> bench_out/BENCH_fuzz.json
#   tools/ci.sh tsan        # tier 3: race tests (-L race) under ThreadSanitizer
#   tools/ci.sh chaos       # tier 3: fault-injection tests (-L chaos), release
#                           # + ASan/UBSan, plus the resilience bench gates
#   tools/ci.sh tidy        # clang-tidy over src/ (skips cleanly if not installed)
#   tools/ci.sh perf        # quick net load bench -> bench_out/BENCH_net.json
#   tools/ci.sh store       # warm-restart rrsd smoke (persistent L2 tile store)
#                           # + the store bench -> bench_out/BENCH_store.json
#   tools/ci.sh cluster     # 3-shard fleet + routing proxy smoke (byte-identity,
#                           # traffic spread, SIGSTOP degradation) + the capacity
#                           # bench gate -> bench_out/BENCH_cluster.json
#   tools/ci.sh coverage    # instrumented tier 1+2 run, merged per-module
#                           # rates gated against tools/coverage_thresholds.json
#
# Sanitizer reports are fatal (-fno-sanitize-recover=all, TSan
# halt_on_error=1), so a green run means the suite is clean.  The `race` and
# `chaos` labels are excluded from the release/sanitize tiers (tier-1 wall
# time is unchanged by them); the tsan/chaos stages run ONLY their label.
set -euo pipefail

cd "$(dirname "$0")/.."

build_preset() {
    local preset=$1 dir=$2
    # The presets use Ninja; a binary dir configured by hand with another
    # generator cannot be reused — start it fresh instead of erroring out.
    if [[ -f "$dir/CMakeCache.txt" ]] &&
        ! grep -q '^CMAKE_GENERATOR:INTERNAL=Ninja$' "$dir/CMakeCache.txt"; then
        echo "==> [$preset] $dir was configured with another generator; wiping it"
        rm -rf "$dir"
    fi
    echo "==> [$preset] configure"
    cmake --preset "$preset"
    echo "==> [$preset] build"
    cmake --build --preset "$preset" -j "$(nproc)"
}

run_release() {
    build_preset release build
    # Tier 1 (fast unit/property tests) first for quick failure, then
    # tier 2: the statistical acceptance suite (ctest label "stats").  The
    # "race" and "chaos" labels are tier 3 — tsan/chaos stages only.
    echo "==> [release] test (tier 1)"
    ctest --preset release -j "$(nproc)" -LE 'stats|race|chaos'
    echo "==> [release] test (tier 2: stats)"
    ctest --preset release -j "$(nproc)" -L stats
    rrstile_smoke build
    rrsgen_trace_smoke build
    rrsd_smoke build
}

run_sanitize() {
    # The sanitize testPreset excludes "stats" (ensemble statistics under
    # ASan cost minutes and check nothing ASan can see) and "race" (that
    # contention pattern belongs to the tsan stage).
    build_preset sanitize build-sanitize
    echo "==> [sanitize] test"
    ctest --preset sanitize -j "$(nproc)"
    rrstile_smoke build-sanitize
    rrsgen_trace_smoke build-sanitize
}

run_tsan() {
    # Tier 3: high-contention race suite (tests/test_race.cpp) under
    # ThreadSanitizer.  The preset turns OpenMP off (libgomp is not
    # TSan-instrumented) and runs only the "race" label with halt_on_error.
    build_preset tsan build-tsan
    echo "==> [tsan] test (tier 3: race)"
    ctest --preset tsan -j "$(nproc)"
}

run_chaos() {
    # Tier 3: the chaos suite (tests/test_chaos.cpp) — live client/server
    # traffic under armed fault plans — in release and again under
    # ASan+UBSan (injected faults exercise exactly the error paths a
    # sanitizer wants to see).  Then the resilience bench, which exits
    # non-zero if the disarmed probe is not zero-cost, if retries fail to
    # absorb a 20% fault rate, or if any tile is not byte-identical after
    # disarm.
    build_preset release build
    echo "==> [chaos] test (tier 3: chaos, release)"
    ctest --preset chaos -j "$(nproc)"
    build_preset sanitize build-sanitize
    echo "==> [chaos] test (tier 3: chaos, ASan+UBSan)"
    ctest --preset chaos-sanitize -j "$(nproc)"
    echo "==> [chaos] resilience --quick"
    build/bench/resilience --quick --out-dir bench_out
    echo "==> [chaos] wrote bench_out/BENCH_resilience.json"
}

run_fuzz() {
    # Fuzz tier (DESIGN.md §16): build the fuzz preset (ASan+UBSan).  When
    # the compiler provides libFuzzer (clang), each harness explores for
    # 60 s seeded from its checked-in corpus; under gcc the preset degrades
    # to replay drivers only.  Either way every corpus must replay clean,
    # and the replay throughput is recorded to bench_out/BENCH_fuzz.json.
    build_preset fuzz build-fuzz
    local harnesses=(http_head scene fault_plan segment_scan checkpoint query
                     topology)
    local h line newdir
    local stats=()
    mkdir -p bench_out
    for h in "${harnesses[@]}"; do
        if [[ -x "build-fuzz/fuzz/fuzz_$h" ]]; then
            echo "==> [fuzz] libFuzzer: $h (60 s)"
            newdir=$(mktemp -d)
            "build-fuzz/fuzz/fuzz_$h" -max_total_time=60 -print_final_stats=1 \
                "$newdir" "fuzz/corpus/$h"
            rm -rf "$newdir"
        fi
        echo "==> [fuzz] replay: $h"
        line=$("build-fuzz/fuzz/fuzz_${h}_replay" --repeat 20 "fuzz/corpus/$h")
        echo "    $line"
        stats+=("$line")
    done
    python3 - "${stats[@]}" <<'EOF'
import json, pathlib, re, sys
records = []
for line in sys.argv[1:]:
    m = re.match(r"fuzz-replay: name=(\S+) files=(\d+) execs=(\d+)"
                 r" wall_ms=([\d.]+) execs_per_s=([\d.]+)", line.strip())
    assert m, f"unparseable replay stats line: {line!r}"
    records.append({"name": m.group(1), "n": int(m.group(2)),
                    "wall_ms": float(m.group(4)),
                    "throughput": float(m.group(5))})
out = pathlib.Path("bench_out/BENCH_fuzz.json")
out.write_text(json.dumps({"schema": 1, "bench": "fuzz",
                           "records": records}, indent=1) + "\n")
print(f"==> [fuzz] wrote {out} ({len(records)} harnesses)")
EOF
}

run_coverage() {
    tools/coverage.sh
}

run_lint() {
    echo "==> [lint] rrslint src"
    tools/rrslint src
    echo "==> [lint] rrslint fixtures"
    tools/rrslint --check-fixtures tests/lint_fixtures
}

run_tidy() {
    # run_tidy.sh fails on ANY diagnostic; it skips (exit 0) when no
    # clang-tidy binary exists in the environment.
    tools/run_tidy.sh build
}

run_perf() {
    # Quick closed-loop load bench against the in-process tile server.
    # Produces bench_out/BENCH_net.json (p50/p99 per concurrency level) and
    # fails if the admission-control storm sheds nothing — the perf record
    # must always demonstrate the 503 path.
    build_preset release build
    echo "==> [perf] net_load --quick"
    build/bench/net_load --quick --out-dir bench_out
    echo "==> [perf] wrote bench_out/BENCH_net.json"
    # Engine roofline sweep; --assert-speedup fails the stage unless the
    # separable fast path holds its >= 2x-over-dense-FFT claim on the
    # default Gaussian scene (DESIGN.md §15).
    echo "==> [perf] kernel_roofline --assert-speedup"
    build/bench/kernel_roofline --assert-speedup --out-dir bench_out
    echo "==> [perf] wrote bench_out/BENCH_kernel_roofline.json"
}

run_store() {
    # Persistent L2 tile store, end to end: boot rrsd with --store, pull a
    # few tiles (base zoom and zoom 1), restart the daemon on the SAME
    # store directory, pull the same tiles again, and require (a) every
    # body byte-identical across the restart and (b) store.l2.hits > 0 in
    # the restarted daemon's /metrics — i.e. the warm tiles really came
    # from the segment file, not from regeneration.  Then the store bench,
    # which exits non-zero unless every tile of a warm restart promotes.
    build_preset release build
    echo "==> [store] warm-restart smoke"
    local scene store_dir fetch_dir
    scene=$(mktemp)
    store_dir=$(mktemp -d)
    fetch_dir=$(mktemp -d)
    build/tools/rrstile --example > "$scene"

    local -a tiles=('tx=0&ty=0' 'tx=1&ty=0' 'tx=0&ty=0&z=1')
    store_boot_and_fetch "$scene" "$store_dir" "$fetch_dir/cold" cold tiles
    store_boot_and_fetch "$scene" "$store_dir" "$fetch_dir/warm" warm tiles

    local i
    for i in "${!tiles[@]}"; do
        if ! cmp -s "$fetch_dir/cold.$i" "$fetch_dir/warm.$i"; then
            echo "==> store smoke: tile '${tiles[$i]}' changed across restart" >&2
            return 1
        fi
    done
    echo "    store ok: ${#tiles[@]} tiles byte-identical across restart"
    rm -rf "$scene" "$fetch_dir" "$store_dir"

    echo "==> [store] bench store"
    build/bench/store > /dev/null ||
        { echo "==> store bench failed" >&2; return 1; }
    echo "==> [store] wrote bench_out/BENCH_store.json"
}

# Boot rrsd on an ephemeral port with a persistent store, fetch each tile
# query in the named array to "<prefix>.<index>", then drain the daemon.
# Phase "warm" additionally asserts the /metrics counter store.l2.hits > 0.
store_boot_and_fetch() {
    local scene=$1 store_dir=$2 prefix=$3 phase=$4
    local -n queries=$5
    local port_file pid port
    port_file=$(mktemp -u)
    build/tools/rrsd "$scene" --port 0 --port-file "$port_file" \
        --tile-size 64 --cache-mb 16 --store "$store_dir" --quiet \
        > /dev/null &
    pid=$!
    for _ in $(seq 1 100); do
        [[ -s "$port_file" ]] && break
        sleep 0.1
    done
    if [[ ! -s "$port_file" ]]; then
        echo "==> store smoke ($phase): daemon never published its port" >&2
        kill -9 "$pid" 2>/dev/null || true
        return 1
    fi
    port=$(cat "$port_file")
    local i
    for i in "${!queries[@]}"; do
        build/tools/rrsquery "127.0.0.1:$port" "/v1/tile?${queries[$i]}" \
            --out "$prefix.$i" > /dev/null
    done
    if [[ $phase == warm ]]; then
        build/tools/rrsquery "127.0.0.1:$port" /metrics > "$prefix.metrics"
        python3 - "$prefix.metrics" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))["counters"]
hits = c.get("store.l2.hits", 0)
assert hits > 0, f"store.l2.hits == {hits} after warm restart"
print(f"    warm restart ok: store.l2.hits == {hits}")
EOF
    fi
    kill -TERM "$pid"
    local rc=0
    wait "$pid" || rc=$?
    rm -f "$port_file"
    if [[ $rc -ne 0 ]]; then
        echo "==> store smoke ($phase): daemon exited $rc after SIGTERM" >&2
        return 1
    fi
}

run_cluster() {
    # Cluster tier (DESIGN.md §17): a 3-shard rrsd fleet behind an
    # `rrsd --cluster` routing proxy, exercised end to end:
    #   * a stitched /v1/window through the proxy is byte-identical to the
    #     same window rendered by one shard directly, and to
    #     `rrsquery --cluster`'s in-process routing;
    #   * /v1/tile traffic really spreads: >= 2 shards show forwarded
    #     requests in the proxy's /metrics;
    #   * SIGSTOP of one shard flips the fleet /readyz to 503 (naming the
    #     stalled shard) and `rrsquery --cluster` exits 3 for tiles it
    #     owns while other shards keep serving; SIGCONT heals both;
    #   * the capacity bench: 3 shards must clear 2.5x one shard on a
    #     cold owner-balanced sweep -> bench_out/BENCH_cluster.json.
    build_preset release build
    echo "==> [cluster] 3-shard fleet smoke"
    local scene work topo
    scene=$(mktemp)
    work=$(mktemp -d)
    topo="$work/fleet.topo"
    build/tools/rrstile --example > "$scene"

    local -a pids=() ports=()
    local i
    for i in 1 2 3; do
        build/tools/rrsd "$scene" --port 0 --port-file "$work/port.$i" \
            --tile-size 64 --cache-mb 16 --quiet > /dev/null &
        pids+=($!)
    done
    for i in 1 2 3; do
        if ! wait_for_port_file "$work/port.$i"; then
            echo "==> cluster smoke: shard n$i never published its port" >&2
            return 1
        fi
        ports+=("$(cat "$work/port.$i")")
    done
    {
        echo "epoch = 1"
        for i in 0 1 2; do
            echo "node n$((i + 1)) 127.0.0.1:${ports[$i]} weight=1"
        done
    } > "$topo"

    local proxy_pid proxy
    build/tools/rrsd --cluster "$topo" --cluster-timeout-ms 2000 \
        --port 0 --port-file "$work/port.proxy" --quiet > /dev/null &
    proxy_pid=$!
    if ! wait_for_port_file "$work/port.proxy"; then
        echo "==> cluster smoke: proxy never published its port" >&2
        return 1
    fi
    proxy=$(cat "$work/port.proxy")

    # Stitched window: proxy == direct shard == rrsquery --cluster.  Any
    # single shard can render the whole window itself (it owns the full
    # generator), which is exactly what makes the comparison meaningful.
    local win='/v1/window?x0=-48&y0=-48&nx=96&ny=96'
    build/tools/rrsquery "127.0.0.1:$proxy" "$win" --out "$work/w.proxy" > /dev/null
    build/tools/rrsquery "127.0.0.1:${ports[0]}" "$win" --out "$work/w.direct" > /dev/null
    build/tools/rrsquery --cluster "$topo" "$win" --out "$work/w.fleet" > /dev/null
    if ! cmp -s "$work/w.proxy" "$work/w.direct"; then
        echo "==> cluster smoke: proxied window differs from single-shard" >&2
        return 1
    fi
    if ! cmp -s "$work/w.fleet" "$work/w.direct"; then
        echo "==> cluster smoke: rrsquery --cluster window differs" >&2
        return 1
    fi
    echo "    window ok: proxy and --cluster byte-identical to a single shard"

    # Tiles through the proxy: byte-identical to a direct render, and the
    # per-node forwarded counters prove >= 2 shards actually served.
    local tx
    for tx in 0 1 2 3 4 5; do
        build/tools/rrsquery "127.0.0.1:$proxy" "/v1/tile?tx=$tx&ty=0" \
            --out "$work/t.proxy.$tx" > /dev/null
        build/tools/rrsquery "127.0.0.1:${ports[1]}" "/v1/tile?tx=$tx&ty=0" \
            --out "$work/t.direct.$tx" > /dev/null
        if ! cmp -s "$work/t.proxy.$tx" "$work/t.direct.$tx"; then
            echo "==> cluster smoke: tile tx=$tx differs via proxy" >&2
            return 1
        fi
    done
    build/tools/rrsquery "127.0.0.1:$proxy" /metrics > "$work/metrics.json"
    python3 - "$work/metrics.json" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))["counters"]
spread = {n: c.get(f"cluster.node.{n}.requests", 0) for n in ("n1", "n2", "n3")}
served = [n for n, v in spread.items() if v > 0]
assert len(served) >= 2, f"traffic did not spread: {spread}"
print(f"    spread ok: forwarded requests {spread}")
EOF

    # SIGSTOP one shard: the fleet readyz flips to 503 and names the
    # stalled shard; its keyspace exits 3 via --cluster while the other
    # shards keep serving; SIGCONT heals.
    if ! build/tools/rrsquery "127.0.0.1:$proxy" /readyz > /dev/null; then
        echo "==> cluster smoke: fleet not ready while healthy" >&2
        return 1
    fi
    kill -STOP "${pids[1]}"
    local rc=0 body
    body=$(build/tools/rrsquery "127.0.0.1:$proxy" /readyz) || rc=$?
    if [[ $rc -ne 1 || "$body" != *'"n2"'* ]]; then
        echo "==> cluster smoke: readyz with a stalled shard: rc=$rc body=$body" >&2
        return 1
    fi
    local dead=0 live=0
    for tx in $(seq 0 11); do
        rc=0
        build/tools/rrsquery --cluster "$topo" "/v1/tile?tx=$tx&ty=1" \
            --timeout-ms 500 --out /dev/null > /dev/null 2>&1 || rc=$?
        case $rc in
            0) live=$((live + 1)) ;;
            3) dead=$((dead + 1)) ;;
            *) echo "==> cluster smoke: tile tx=$tx ty=1 exited $rc" >&2
               return 1 ;;
        esac
    done
    if [[ $dead -eq 0 || $live -eq 0 ]]; then
        echo "==> cluster smoke: degradation not shard-local ($dead dead, $live live)" >&2
        return 1
    fi
    echo "    degradation ok: $dead keys exit 3, $live keys still served"
    kill -CONT "${pids[1]}"
    local healed=""
    for _ in $(seq 1 40); do
        if build/tools/rrsquery "127.0.0.1:$proxy" /readyz > /dev/null 2>&1; then
            healed=1
            break
        fi
        sleep 0.5
    done
    if [[ -z $healed ]]; then
        echo "==> cluster smoke: fleet never recovered after SIGCONT" >&2
        return 1
    fi
    echo "    readyz ok: 503 while stalled, recovered after SIGCONT"

    local pid
    for pid in "$proxy_pid" "${pids[@]}"; do
        kill -TERM "$pid"
    done
    for pid in "$proxy_pid" "${pids[@]}"; do
        rc=0
        wait "$pid" || rc=$?
        if [[ $rc -ne 0 ]]; then
            echo "==> cluster smoke: pid $pid exited $rc after SIGTERM" >&2
            return 1
        fi
    done
    rm -rf "$scene" "$work"

    echo "==> [cluster] bench cluster --quick"
    build/bench/cluster --quick --out-dir bench_out
    echo "==> [cluster] wrote bench_out/BENCH_cluster.json"
}

# Poll a --port-file path until the daemon publishes its ephemeral port
# (100 x 0.1 s); non-zero when it never appears.
wait_for_port_file() {
    local port_file=$1
    for _ in $(seq 1 100); do
        [[ -s "$port_file" ]] && return 0
        sleep 0.1
    done
    return 1
}

# Serve a few tiles end-to-end through the tile service (coalescing cache,
# batch fan-out, metrics JSON) — run under both presets so the service layer
# gets ASan+UBSan coverage too.
rrstile_smoke() {
    local dir=$1
    echo "==> [$dir] rrstile smoke"
    local scene
    scene=$(mktemp)
    "$dir/tools/rrstile" --example > "$scene"
    # --repeat 2: the second round must be all cache hits (hit_rate 0.5).
    local metrics
    metrics=$("$dir/tools/rrstile" "$scene" --tile-size 64 --cache-mb 16 \
        --threads 2 --repeat 2 --quiet 0,0 1,0 0,1)
    rm -f "$scene"
    echo "    $metrics"
    case "$metrics" in
        *'"generation_failures":0'*'"hit_rate":0.5'*) ;;
        *) echo "==> rrstile smoke: unexpected metrics" >&2; return 1 ;;
    esac
}

# Render a tiny scene with tracing on and validate the emitted Chrome
# trace_event JSON: parseable, all complete ('X') events, and at least six
# distinct pipeline span names (the observability contract of DESIGN.md §9).
rrsgen_trace_smoke() {
    local dir=$1
    echo "==> [$dir] rrsgen trace smoke"
    local scene trace
    scene=$(mktemp)
    trace=$(mktemp)
    cat > "$scene" <<'EOF'
seed = 11
kernel_grid = 64 64
region = -32 -32 64 64
tail_eps = 1e-6

[spectrum field]
family = gaussian
h = 1.0
cl = 6

[spectrum pond]
family = exponential
h = 0.3
cl = 6

[map]
type = circle
center = 0 0
radius = 20
transition = 6
inside = pond
outside = field
EOF
    "$dir/tools/rrsgen" "$scene" --trace "$trace" --metrics > /dev/null
    python3 - "$trace" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
names = {e["name"] for e in events}
assert events, "trace has no events"
assert all(e["ph"] == "X" for e in events), "expected only complete events"
assert len(names) >= 6, f"only {len(names)} span names: {sorted(names)}"
print(f"    trace ok: {len(events)} spans, {len(names)} distinct names")
EOF
    rm -f "$scene" "$trace"
}

# Full server smoke: boot rrsd on an ephemeral port, probe it with
# rrsquery (health, one tile, the metrics document), then SIGTERM and
# assert the graceful-drain exit: code 0 and a final metrics JSON line on
# stdout whose net.requests covers the probes.
rrsd_smoke() {
    local dir=$1
    echo "==> [$dir] rrsd smoke"
    local scene port_file out pid port
    scene=$(mktemp)
    port_file=$(mktemp -u)
    out=$(mktemp)
    "$dir/tools/rrstile" --example > "$scene"
    "$dir/tools/rrsd" "$scene" --port 0 --port-file "$port_file" \
        --tile-size 64 --cache-mb 16 --quiet > "$out" &
    pid=$!
    for _ in $(seq 1 100); do
        [[ -s "$port_file" ]] && break
        sleep 0.1
    done
    if [[ ! -s "$port_file" ]]; then
        echo "==> rrsd smoke: daemon never published its port" >&2
        kill -9 "$pid" 2>/dev/null || true
        return 1
    fi
    port=$(cat "$port_file")
    "$dir/tools/rrsquery" "127.0.0.1:$port" /healthz > /dev/null
    "$dir/tools/rrsquery" "127.0.0.1:$port" '/v1/tile?tx=0&ty=0' --stats
    "$dir/tools/rrsquery" "127.0.0.1:$port" /metrics > /dev/null
    kill -TERM "$pid"
    local rc=0
    wait "$pid" || rc=$?
    if [[ $rc -ne 0 ]]; then
        echo "==> rrsd smoke: daemon exited $rc after SIGTERM" >&2
        return 1
    fi
    # The drain prints one final metrics line; the three probes must be in it.
    python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
c = doc["counters"]
requests = c["net.requests"]
assert requests >= 3, f"net.requests == {requests}, expected >= 3"
identity = c["net.status_2xx"] + c["net.status_4xx"] + c["net.status_5xx"] + c["net.shed"]
assert requests == identity, f"{requests} != 2xx+4xx+5xx+shed == {identity}"
assert doc["gauges"]["net.active"] == 0, "connections survived the drain"
print(f"    rrsd ok: {requests} requests, accounting identity holds")
EOF
    rm -f "$scene" "$port_file" "$out"
}

want=${1:-all}
case "$want" in
    lint)     run_lint ;;
    release)  run_release ;;
    sanitize) run_sanitize ;;
    fuzz)     run_fuzz ;;
    tsan)     run_tsan ;;
    chaos)    run_chaos ;;
    tidy)     run_tidy ;;
    perf)     run_perf ;;
    store)    run_store ;;
    cluster)  run_cluster ;;
    coverage) run_coverage ;;
    all)      run_lint; run_release; run_sanitize; run_fuzz; run_tsan
              run_chaos; run_tidy; run_perf; run_store; run_cluster
              run_coverage ;;
    *)  echo "usage: tools/ci.sh [lint|release|sanitize|fuzz|tsan|chaos|tidy|perf|store|cluster|coverage|all]" >&2
        exit 2 ;;
esac
echo "==> ci: all requested stages passed"
