#!/usr/bin/env bash
# CI driver — five stages, each runnable on its own:
#
#   tools/ci.sh             # all stages: lint, release, sanitize, tsan, tidy
#   tools/ci.sh lint        # rrslint conventions + lint fixtures (no build)
#   tools/ci.sh release     # build + tier 1 (-LE "stats|race") + tier 2 (-L stats)
#   tools/ci.sh sanitize    # tier 1 under ASan+UBSan
#   tools/ci.sh tsan        # tier 3: race tests (-L race) under ThreadSanitizer
#   tools/ci.sh tidy        # clang-tidy over src/ (skips cleanly if not installed)
#
# Sanitizer reports are fatal (-fno-sanitize-recover=all, TSan
# halt_on_error=1), so a green run means the suite is clean.  The `race`
# label is excluded from the release/sanitize tiers (tier-1 wall time is
# unchanged by the race suite); the tsan preset runs ONLY that label.
set -euo pipefail

cd "$(dirname "$0")/.."

build_preset() {
    local preset=$1 dir=$2
    # The presets use Ninja; a binary dir configured by hand with another
    # generator cannot be reused — start it fresh instead of erroring out.
    if [[ -f "$dir/CMakeCache.txt" ]] &&
        ! grep -q '^CMAKE_GENERATOR:INTERNAL=Ninja$' "$dir/CMakeCache.txt"; then
        echo "==> [$preset] $dir was configured with another generator; wiping it"
        rm -rf "$dir"
    fi
    echo "==> [$preset] configure"
    cmake --preset "$preset"
    echo "==> [$preset] build"
    cmake --build --preset "$preset" -j "$(nproc)"
}

run_release() {
    build_preset release build
    # Tier 1 (fast unit/property tests) first for quick failure, then
    # tier 2: the statistical acceptance suite (ctest label "stats").  The
    # "race" label is tier 3 — tsan stage only.
    echo "==> [release] test (tier 1)"
    ctest --preset release -j "$(nproc)" -LE 'stats|race'
    echo "==> [release] test (tier 2: stats)"
    ctest --preset release -j "$(nproc)" -L stats
    rrstile_smoke build
    rrsgen_trace_smoke build
}

run_sanitize() {
    # The sanitize testPreset excludes "stats" (ensemble statistics under
    # ASan cost minutes and check nothing ASan can see) and "race" (that
    # contention pattern belongs to the tsan stage).
    build_preset sanitize build-sanitize
    echo "==> [sanitize] test"
    ctest --preset sanitize -j "$(nproc)"
    rrstile_smoke build-sanitize
    rrsgen_trace_smoke build-sanitize
}

run_tsan() {
    # Tier 3: high-contention race suite (tests/test_race.cpp) under
    # ThreadSanitizer.  The preset turns OpenMP off (libgomp is not
    # TSan-instrumented) and runs only the "race" label with halt_on_error.
    build_preset tsan build-tsan
    echo "==> [tsan] test (tier 3: race)"
    ctest --preset tsan -j "$(nproc)"
}

run_lint() {
    echo "==> [lint] rrslint src"
    tools/rrslint src
    echo "==> [lint] rrslint fixtures"
    tools/rrslint --check-fixtures tests/lint_fixtures
}

run_tidy() {
    # run_tidy.sh fails on ANY diagnostic; it skips (exit 0) when no
    # clang-tidy binary exists in the environment.
    tools/run_tidy.sh build
}

# Serve a few tiles end-to-end through the tile service (coalescing cache,
# batch fan-out, metrics JSON) — run under both presets so the service layer
# gets ASan+UBSan coverage too.
rrstile_smoke() {
    local dir=$1
    echo "==> [$dir] rrstile smoke"
    local scene
    scene=$(mktemp)
    "$dir/tools/rrstile" --example > "$scene"
    # --repeat 2: the second round must be all cache hits (hit_rate 0.5).
    local metrics
    metrics=$("$dir/tools/rrstile" "$scene" --tile-size 64 --cache-mb 16 \
        --threads 2 --repeat 2 --quiet 0,0 1,0 0,1)
    rm -f "$scene"
    echo "    $metrics"
    case "$metrics" in
        *'"generation_failures":0'*'"hit_rate":0.5'*) ;;
        *) echo "==> rrstile smoke: unexpected metrics" >&2; return 1 ;;
    esac
}

# Render a tiny scene with tracing on and validate the emitted Chrome
# trace_event JSON: parseable, all complete ('X') events, and at least six
# distinct pipeline span names (the observability contract of DESIGN.md §9).
rrsgen_trace_smoke() {
    local dir=$1
    echo "==> [$dir] rrsgen trace smoke"
    local scene trace
    scene=$(mktemp)
    trace=$(mktemp)
    cat > "$scene" <<'EOF'
seed = 11
kernel_grid = 64 64
region = -32 -32 64 64
tail_eps = 1e-6

[spectrum field]
family = gaussian
h = 1.0
cl = 6

[spectrum pond]
family = exponential
h = 0.3
cl = 6

[map]
type = circle
center = 0 0
radius = 20
transition = 6
inside = pond
outside = field
EOF
    "$dir/tools/rrsgen" "$scene" --trace "$trace" --metrics > /dev/null
    python3 - "$trace" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
names = {e["name"] for e in events}
assert events, "trace has no events"
assert all(e["ph"] == "X" for e in events), "expected only complete events"
assert len(names) >= 6, f"only {len(names)} span names: {sorted(names)}"
print(f"    trace ok: {len(events)} spans, {len(names)} distinct names")
EOF
    rm -f "$scene" "$trace"
}

want=${1:-all}
case "$want" in
    lint)     run_lint ;;
    release)  run_release ;;
    sanitize) run_sanitize ;;
    tsan)     run_tsan ;;
    tidy)     run_tidy ;;
    all)      run_lint; run_release; run_sanitize; run_tsan; run_tidy ;;
    *)  echo "usage: tools/ci.sh [lint|release|sanitize|tsan|tidy|all]" >&2
        exit 2 ;;
esac
echo "==> ci: all requested stages passed"
