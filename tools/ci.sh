#!/usr/bin/env bash
# CI driver: build + run the full test suite, then repeat the whole suite
# under AddressSanitizer + UndefinedBehaviorSanitizer (the `sanitize` preset
# in CMakePresets.json).  Any sanitizer report is fatal
# (-fno-sanitize-recover=all), so a green run means the suite is clean.
#
#   tools/ci.sh             # release + sanitize
#   tools/ci.sh release     # release only
#   tools/ci.sh sanitize    # sanitize only
set -euo pipefail

cd "$(dirname "$0")/.."

run_preset() {
    local preset=$1
    local dir="build"
    [[ "$preset" == "sanitize" ]] && dir="build-sanitize"
    # The presets use Ninja; a binary dir configured by hand with another
    # generator cannot be reused — start it fresh instead of erroring out.
    if [[ -f "$dir/CMakeCache.txt" ]] &&
        ! grep -q '^CMAKE_GENERATOR:INTERNAL=Ninja$' "$dir/CMakeCache.txt"; then
        echo "==> [$preset] $dir was configured with another generator; wiping it"
        rm -rf "$dir"
    fi
    echo "==> [$preset] configure"
    cmake --preset "$preset"
    echo "==> [$preset] build"
    cmake --build --preset "$preset" -j "$(nproc)"
    if [[ "$preset" == "release" ]]; then
        # Tier 1 (fast unit/property tests) first for quick failure, then
        # tier 2: the statistical acceptance suite (ctest label "stats").
        # The sanitize preset excludes "stats" via its testPreset filter —
        # ensemble runs under ASan are slow and the assertions are about
        # statistics, not memory.
        echo "==> [$preset] test (tier 1)"
        ctest --preset "$preset" -j "$(nproc)" -LE stats
        echo "==> [$preset] test (tier 2: stats)"
        ctest --preset "$preset" -j "$(nproc)" -L stats
    else
        echo "==> [$preset] test"
        ctest --preset "$preset" -j "$(nproc)"
    fi
    rrstile_smoke "$dir"
    rrsgen_trace_smoke "$dir"
}

# Serve a few tiles end-to-end through the tile service (coalescing cache,
# batch fan-out, metrics JSON) — run under both presets so the service layer
# gets ASan+UBSan coverage too.
rrstile_smoke() {
    local dir=$1
    echo "==> [$dir] rrstile smoke"
    local scene
    scene=$(mktemp)
    "$dir/tools/rrstile" --example > "$scene"
    # --repeat 2: the second round must be all cache hits (hit_rate 0.5).
    local metrics
    metrics=$("$dir/tools/rrstile" "$scene" --tile-size 64 --cache-mb 16 \
        --threads 2 --repeat 2 --quiet 0,0 1,0 0,1)
    rm -f "$scene"
    echo "    $metrics"
    case "$metrics" in
        *'"generation_failures":0'*'"hit_rate":0.5'*) ;;
        *) echo "==> rrstile smoke: unexpected metrics" >&2; return 1 ;;
    esac
}

# Render a tiny scene with tracing on and validate the emitted Chrome
# trace_event JSON: parseable, all complete ('X') events, and at least six
# distinct pipeline span names (the observability contract of DESIGN.md §9).
rrsgen_trace_smoke() {
    local dir=$1
    echo "==> [$dir] rrsgen trace smoke"
    local scene trace
    scene=$(mktemp)
    trace=$(mktemp)
    cat > "$scene" <<'EOF'
seed = 11
kernel_grid = 64 64
region = -32 -32 64 64
tail_eps = 1e-6

[spectrum field]
family = gaussian
h = 1.0
cl = 6

[spectrum pond]
family = exponential
h = 0.3
cl = 6

[map]
type = circle
center = 0 0
radius = 20
transition = 6
inside = pond
outside = field
EOF
    "$dir/tools/rrsgen" "$scene" --trace "$trace" --metrics > /dev/null
    python3 - "$trace" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
names = {e["name"] for e in events}
assert events, "trace has no events"
assert all(e["ph"] == "X" for e in events), "expected only complete events"
assert len(names) >= 6, f"only {len(names)} span names: {sorted(names)}"
print(f"    trace ok: {len(events)} spans, {len(names)} distinct names")
EOF
    rm -f "$scene" "$trace"
}

want=${1:-all}
case "$want" in
    release)  run_preset release ;;
    sanitize) run_preset sanitize ;;
    all)      run_preset release; run_preset sanitize ;;
    *)        echo "usage: tools/ci.sh [release|sanitize|all]" >&2; exit 2 ;;
esac
echo "==> ci: all requested suites passed"
