#!/usr/bin/env bash
# clang-tidy driver for librrs (project config: .clang-tidy).
#
#   tools/run_tidy.sh [BUILD_DIR]     # default build dir: build/
#
# Runs clang-tidy over every src/ translation unit against the compilation
# database (CMAKE_EXPORT_COMPILE_COMMANDS is on by default), with
# --warnings-as-errors='*': ANY diagnostic fails the run, so the tree is
# kept tidy-clean — suppressions happen in code via NOLINT(check) with an
# inline justification, never by loosening this driver.
#
# Environment:
#   CLANG_TIDY   override the clang-tidy binary to use.
#
# When no clang-tidy is installed the stage is skipped with exit 0 (the
# container for CI tiers 1-3 ships only gcc; the tidy stage runs where a
# clang toolchain exists).
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY=${CLANG_TIDY:-}
if [[ -z "$TIDY" ]]; then
    for candidate in clang-tidy clang-tidy-2{0,1} clang-tidy-1{9,8,7,6,5,4}; do
        if command -v "$candidate" > /dev/null 2>&1; then
            TIDY=$candidate
            break
        fi
    done
fi
if [[ -z "$TIDY" ]]; then
    echo "==> run_tidy: no clang-tidy binary found (set CLANG_TIDY to override) — SKIPPED"
    exit 0
fi

BUILD_DIR=${1:-build}
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "==> run_tidy: $BUILD_DIR/compile_commands.json missing; configuring release preset"
    cmake --preset release > /dev/null
fi

# Translation units only: headers are covered through HeaderFilterRegex.
mapfile -t files < <(find src -name '*.cpp' | sort)
echo "==> run_tidy: $TIDY over ${#files[@]} translation units (db: $BUILD_DIR)"
"$TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='*' "${files[@]}"
echo "==> run_tidy: clean"
