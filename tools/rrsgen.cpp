// rrsgen — command-line rough-surface generator.
//
// Reads a scene description (see src/io/scene.hpp for the format), renders
// the surface with the inhomogeneous convolution method, prints summary
// statistics, and writes the declared outputs.
//
//   rrsgen SCENE.rrs [--seed N] [--print-stats] [--health MODE]
//                    [--engine NAME] [--trace FILE] [--metrics]
//   rrsgen --example            # print a ready-to-run example scene
//
// --health MODE (throw | report | ignore) overrides the scene's numeric
// health policy: `throw` aborts on NaN/Inf or implausible statistics,
// `report` prints a diagnostic and keeps going, `ignore` skips the guards.
// --engine NAME (auto | direct | fft | separable) overrides the scene's
// kernel engine (engine.hpp); RRS_KERNEL_ENGINE overrides both.
// --trace FILE enables span tracing for the render and writes a Chrome
// trace_event JSON file (load in chrome://tracing or Perfetto);
// --metrics prints the library metrics registry as one JSON line.

#include <cstring>
#include <fstream>
#include <iostream>

#include "core/error.hpp"
#include "io/scene.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/moments.hpp"

namespace {

constexpr const char* kExampleScene = R"(# Example scene: an exponential pond inside a gaussian field (paper Fig. 3).
seed = 42
kernel_grid = 512 512
region = -512 -512 1024 1024
tail_eps = 1e-6
output = pond.pgm pond.npy

[spectrum field]
family = gaussian
h = 1.0
cl = 50

[spectrum pond]
family = exponential
h = 0.2
cl = 50

[map]
type = circle
center = 0 0
radius = 300
transition = 60
inside = pond
outside = field
)";

int usage() {
    std::cerr << "usage: rrsgen SCENE.rrs [--seed N] [--print-stats] [--health MODE]\n"
                 "                        [--engine NAME] [--trace FILE] [--metrics]\n"
                 "       rrsgen --example   (print an example scene file)\n"
                 "  --health MODE   numeric health policy: throw | report | ignore\n"
                 "                  (default: the scene's 'health =' key, else report)\n"
                 "  --engine NAME   kernel engine: auto | direct | fft | separable\n"
                 "                  (default: the scene's 'engine =' key, else auto)\n"
                 "  --trace FILE    record pipeline spans, write Chrome trace JSON\n"
                 "  --metrics       print the metrics registry as one JSON line\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace rrs;
    if (argc < 2) {
        return usage();
    }
    if (std::strcmp(argv[1], "--example") == 0) {
        std::cout << kExampleScene;
        return 0;
    }

    bool print_stats = false;
    bool print_metrics = false;
    bool override_seed = false;
    bool override_health = false;
    bool override_engine = false;
    HealthPolicy health = HealthPolicy::kReport;
    KernelEngine engine = KernelEngine::kAuto;
    std::uint64_t seed = 0;
    std::string trace_path;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--print-stats") == 0) {
            print_stats = true;
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            print_metrics = true;
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            override_seed = true;
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--health") == 0 && i + 1 < argc) {
            override_health = true;
            try {
                health = parse_health_policy(argv[++i]);
            } catch (const std::exception& e) {
                std::cerr << "rrsgen: " << e.what() << "\n";
                return usage();
            }
        } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
            override_engine = true;
            try {
                engine = parse_kernel_engine(argv[++i]);
            } catch (const std::exception& e) {
                std::cerr << "rrsgen: " << e.what() << "\n";
                return usage();
            }
        } else {
            return usage();
        }
    }

    std::ifstream in(argv[1]);
    if (!in) {
        std::cerr << "rrsgen: cannot open '" << argv[1] << "'\n";
        return 1;
    }
    try {
        Scene scene = parse_scene(in);
        if (override_seed) {
            scene.seed = seed;
        }
        if (override_health) {
            scene.health = health;
        }
        if (override_engine) {
            scene.engine = engine;
        }
        std::cerr << "rrsgen: rendering " << scene.region.nx << "x" << scene.region.ny
                  << " surface (" << scene.map->region_count() << " region(s), seed "
                  << scene.seed << ", health " << health_policy_name(scene.health)
                  << ", engine " << kernel_engine_name(scene.engine) << ")\n";
        if (!trace_path.empty()) {
            obs::trace_enable();
        }
        const Array2D<double> f = render_scene(scene);
        if (!trace_path.empty()) {
            obs::trace_disable();
            std::ofstream trace_out(trace_path);
            if (!trace_out) {
                std::cerr << "rrsgen: cannot write trace to '" << trace_path << "'\n";
                return 1;
            }
            obs::write_chrome_trace(trace_out);
            std::cerr << "rrsgen: wrote trace " << trace_path << " ("
                      << obs::trace_events().size() << " spans";
            if (obs::trace_dropped() != 0) {
                std::cerr << ", " << obs::trace_dropped() << " dropped";
            }
            std::cerr << ")\n";
        }
        write_scene_outputs(scene, f);
        for (const auto& path : scene.outputs) {
            std::cerr << "rrsgen: wrote " << path << "\n";
        }
        if (print_stats || (scene.outputs.empty() && !print_metrics)) {
            const Moments m = compute_moments({f.data(), f.size()});
            std::cout << "points " << m.count << "\nmean " << m.mean << "\nstddev "
                      << m.stddev << "\nmin " << m.min << "\nmax " << m.max << "\n";
        }
        if (print_metrics) {
            std::cout << obs::MetricsRegistry::global().to_json() << "\n";
        }
    } catch (const Error& e) {
        // Taxonomy errors already render their context chain in what().
        std::cerr << "rrsgen: error: " << e.what() << "\n";
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "rrsgen: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
