#!/usr/bin/env python3
"""coverage_report.py — merge gcov data into per-module rates and gate them.

Part of the fuzzing + coverage tier (DESIGN.md §16).  Reads every .gcda
profile a test run left in a --coverage build tree, asks `gcov
--json-format` for per-line execution counts, merges them across
translation units (header-inline code is compiled into many TUs; a line is
covered when ANY TU executed it), and aggregates:

  * per file    — line and branch rates for every file under src/
  * per module  — src/<dir> roll-ups (src/net, src/io, ...)
  * overall     — the whole library

Then compares against tools/coverage_thresholds.json and exits non-zero on
any shortfall, printing exactly which file/module fell below its floor.
The thresholds are hard CI gates: parser modules named by the fuzz tier
carry a 90% line floor; module floors are set just under their measured
rates so a regression trips the gate without flaking on noise.

Usage:
  coverage_report.py BUILD_DIR [--thresholds FILE] [--out FILE]

Self-contained: python3 stdlib + the `gcov` that matches the compiler.
"""

import argparse
import json
import os
import subprocess
import sys
from collections import defaultdict
from pathlib import Path


def find_gcda(build_dir):
    return sorted(Path(build_dir).rglob("*.gcda"))


def gcov_json(gcda, build_dir):
    """Run gcov on one .gcda and yield its parsed JSON document(s)."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--branch-probabilities", "--stdout",
         str(Path(gcda).resolve())],
        cwd=build_dir, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"coverage: gcov failed on {gcda}: {proc.stderr.strip()}",
              file=sys.stderr)
        return
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError as e:
            print(f"coverage: bad gcov JSON from {gcda}: {e}", file=sys.stderr)


def normalize(path, gcov_cwd, repo_root):
    """gcov reports source paths relative to its cwd (or absolute); map them
    to repo-relative 'src/...' form, or None for out-of-tree sources."""
    p = Path(path)
    if not p.is_absolute():
        p = Path(gcov_cwd) / p
    try:
        rel = p.resolve().relative_to(Path(repo_root).resolve())
    except ValueError:
        return None
    rel = rel.as_posix()
    return rel if rel.startswith("src/") else None


def collect(build_dir, repo_root):
    """Merge all profiles: {file: {line: count}} and
    {file: {(line, branch_idx): taken}}."""
    line_hits = defaultdict(lambda: defaultdict(int))
    branch_taken = defaultdict(dict)
    gcdas = find_gcda(build_dir)
    if not gcdas:
        print(f"coverage: no .gcda files under {build_dir} — "
              "did the instrumented tests run?", file=sys.stderr)
        sys.exit(2)
    for gcda in gcdas:
        for doc in gcov_json(gcda, build_dir):
            cwd = doc.get("current_working_directory", build_dir)
            for f in doc.get("files", []):
                rel = normalize(f["file"], cwd, repo_root)
                if rel is None:
                    continue
                for ln in f.get("lines", []):
                    n = ln["line_number"]
                    line_hits[rel][n] += ln.get("count", 0)
                    for i, br in enumerate(ln.get("branches", [])):
                        key = (n, i)
                        prev = branch_taken[rel].get(key, False)
                        branch_taken[rel][key] = prev or br.get("count", 0) > 0
    return line_hits, branch_taken


def pct(hit, total):
    return 100.0 if total == 0 else 100.0 * hit / total


def summarize(line_hits, branch_taken):
    files = {}
    for rel in sorted(line_hits):
        lines = line_hits[rel]
        branches = branch_taken.get(rel, {})
        lt, lh = len(lines), sum(1 for c in lines.values() if c > 0)
        bt, bh = len(branches), sum(1 for t in branches.values() if t)
        files[rel] = {
            "lines_total": lt, "lines_hit": lh, "line_pct": round(pct(lh, lt), 2),
            "branches_total": bt, "branches_hit": bh,
            "branch_pct": round(pct(bh, bt), 2),
        }
    modules = defaultdict(lambda: [0, 0, 0, 0])  # lt, lh, bt, bh
    for rel, s in files.items():
        mod = "/".join(rel.split("/")[:2])  # src/<dir>
        m = modules[mod]
        m[0] += s["lines_total"]
        m[1] += s["lines_hit"]
        m[2] += s["branches_total"]
        m[3] += s["branches_hit"]
    module_rates = {
        mod: {
            "lines_total": lt, "lines_hit": lh, "line_pct": round(pct(lh, lt), 2),
            "branches_total": bt, "branches_hit": bh,
            "branch_pct": round(pct(bh, bt), 2),
        }
        for mod, (lt, lh, bt, bh) in sorted(modules.items())
    }
    lt = sum(s["lines_total"] for s in files.values())
    lh = sum(s["lines_hit"] for s in files.values())
    overall = {"lines_total": lt, "lines_hit": lh,
               "line_pct": round(pct(lh, lt), 2)}
    return {"files": files, "modules": module_rates, "overall": overall}


def gate(summary, thresholds):
    failures = []
    for rel, floor in sorted(thresholds.get("files", {}).items()):
        got = summary["files"].get(rel)
        if got is None:
            failures.append(f"{rel}: no coverage data (floor {floor}%)")
        elif got["line_pct"] < floor:
            failures.append(
                f"{rel}: line coverage {got['line_pct']}% < floor {floor}%")
    for mod, floor in sorted(thresholds.get("modules", {}).items()):
        got = summary["modules"].get(mod)
        if got is None:
            failures.append(f"{mod}: no coverage data (floor {floor}%)")
        elif got["line_pct"] < floor:
            failures.append(
                f"{mod}: line coverage {got['line_pct']}% < floor {floor}%")
    return failures


def main():
    ap = argparse.ArgumentParser(prog="coverage_report.py")
    ap.add_argument("build_dir", help="--coverage build tree with .gcda files")
    ap.add_argument("--thresholds", metavar="FILE",
                    help="JSON floors: {files: {path: pct}, modules: {mod: pct}}")
    ap.add_argument("--out", metavar="FILE", help="write the full summary JSON")
    args = ap.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    line_hits, branch_taken = collect(args.build_dir, repo_root)
    summary = summarize(line_hits, branch_taken)

    print(f"{'module':<24} {'line%':>7} {'lines':>12} {'branch%':>8}")
    for mod, s in summary["modules"].items():
        print(f"{mod:<24} {s['line_pct']:>6.2f}% "
              f"{s['lines_hit']:>5}/{s['lines_total']:<6} {s['branch_pct']:>7.2f}%")
    o = summary["overall"]
    print(f"{'overall':<24} {o['line_pct']:>6.2f}% "
          f"{o['lines_hit']:>5}/{o['lines_total']:<6}")

    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(json.dumps(summary, indent=1) + "\n")
        print(f"coverage: wrote {args.out}")

    if args.thresholds:
        thresholds = json.loads(Path(args.thresholds).read_text())
        failures = gate(summary, thresholds)
        if failures:
            print("coverage: FAILED gates:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        nfiles = len(thresholds.get("files", {}))
        nmods = len(thresholds.get("modules", {}))
        print(f"coverage: all gates passed ({nfiles} file floors, "
              f"{nmods} module floors)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
