// Example: sea surface along a ship track — a swell + ripple mixture with
// wind-rotated anisotropy, generated as an unbounded streamed strip
// (the paper's "sea surface" environment, §1, and its "arbitrarily long
// ... RRSs by successive computations", §2.4).
//
//   ./sea_surface_streaming [out_dir]

#include <iostream>
#include <string>

#include "rrs.hpp"

int main(int argc, char** argv) {
    using namespace rrs;
    const std::string out_dir = argc > 1 ? argv[1] : "sea_out";
    ensure_directory(out_dir);

    // Swell: long-crested gaussian waves, 2 m rms, 120 m along-crest /
    // 40 m across, rotated 30 degrees off the track.  Ripple: short
    // exponential chop, 0.3 m rms, 4 m.
    const auto swell = rotate_spectrum(make_gaussian({2.0, 120.0, 40.0}), kPi / 6.0);
    const auto ripple = make_exponential({0.3, 4.0, 4.0});
    const auto sea = mix_spectra({swell, ripple});
    std::cout << "spectrum: " << sea->name() << "  (combined h = "
              << Table::num(sea->params().h, 3) << " m)\n";

    const ConvolutionGenerator gen(
        ConvolutionKernel::build_truncated(*sea, GridSpec::unit_spacing(1024, 1024), 1e-6),
        /*seed=*/808);
    std::cout << "kernel: " << gen.kernel().nx() << " x " << gen.kernel().ny()
              << " taps\n\n";

    // Stream a 512-m-wide track in 128-row tiles; a real consumer would
    // process each tile (e.g. a radar-scattering sim) and discard it.
    StripStreamer streamer(gen, -256, 512, 0, 128);
    MomentAccumulator acc;
    std::cout << "tile      mean     stddev\n";
    for (int t = 0; t < 8; ++t) {
        const Array2D<double> tile = streamer.next();
        const Moments m = compute_moments({tile.data(), tile.size()});
        acc.add(m.stddev);
        std::cout << "[" << t * 128 << "," << (t + 1) * 128 << ")   "
                  << Table::num(m.mean, 3) << "   " << Table::num(m.stddev, 3) << "\n";
        if (t == 0) {
            write_pgm16(out_dir + "/first_tile.pgm", tile);
        }
    }
    std::cout << "\nmean tile stddev " << Table::num(acc.mean(), 3) << " m (target "
              << Table::num(sea->params().h, 3) << ")\n";

    // Significant wave height estimate (Hs ≈ 4·rms for a Gaussian sea).
    std::cout << "significant wave height Hs ~ " << Table::num(4.0 * acc.mean(), 2)
              << " m\n";

    // One wave-elevation time series for the plot: the centreline profile
    // of a long strip.
    const Array2D<double> strip = gen.generate(Rect{0, 0, 1, 4096});
    std::vector<double> ys(4096), zs(4096);
    for (std::size_t i = 0; i < 4096; ++i) {
        ys[i] = static_cast<double>(i);
        zs[i] = strip(0, i);
    }
    write_curve_csv(out_dir + "/centerline.csv", ys, zs);
    std::cout << "wrote " << out_dir << "/{first_tile.pgm,centerline.csv}\n";
    return 0;
}
