// Example: one-dimensional rough profiles — the transect machinery used by
// the paper's propagation studies (its refs. [8]-[12] analyse EM waves
// along 1-D rough profiles).
//
// Generates profiles from all three 1-D families, verifies their
// statistics, and streams an arbitrarily long profile in chunks.
//
//   ./transect_profiles [out_dir]

#include <cmath>
#include <iostream>
#include <string>

#include "rrs.hpp"

int main(int argc, char** argv) {
    using namespace rrs;
    const std::string out_dir = argc > 1 ? argv[1] : "transect_out";
    ensure_directory(out_dir);

    struct Case {
        const char* file;
        Spectrum1DPtr s;
    };
    const Case cases[] = {
        {"gaussian.csv", make_gaussian_1d({1.0, 25.0})},
        {"powerlaw.csv", make_power_law_1d({1.0, 25.0}, 2.0)},
        {"exponential.csv", make_exponential_1d({1.0, 25.0})},
    };

    Table table({"family", "kernel taps", "meas stddev", "meas 1/e dist", "analytic"});
    for (const Case& c : cases) {
        const ProfileGenerator gen(
            ProfileKernel::build_truncated(*c.s, LineSpec::unit_spacing(1024), 1e-8),
            /*seed=*/55);
        const auto f = gen.generate(0, 100000);
        const Moments m = compute_moments(f);

        // Empirical ACF out to 4 cl and its 1/e crossing.
        const std::size_t max_lag = 100;
        std::vector<double> acf(max_lag + 1, 0.0);
        for (std::size_t lag = 0; lag <= max_lag; ++lag) {
            double acc = 0.0;
            for (std::size_t i = 0; i + lag < f.size(); ++i) {
                acc += f[i] * f[i + lag];
            }
            acf[lag] = acc / static_cast<double>(f.size() - lag);
        }
        table.add_row({c.s->name(), std::to_string(gen.kernel().size()),
                       Table::num(m.stddev, 3),
                       Table::num(estimate_correlation_length(acf), 1),
                       Table::num(correlation_distance_1d(*c.s, std::exp(-1.0)), 1)});

        // First 2000 samples for plotting.
        std::vector<double> xs(2000), zs(2000);
        for (std::size_t i = 0; i < 2000; ++i) {
            xs[i] = static_cast<double>(i);
            zs[i] = f[i];
        }
        write_curve_csv(out_dir + "/" + c.file, xs, zs);
    }
    table.print(std::cout);

    // Streaming: march a profile indefinitely in chunks; overlapping
    // requests agree exactly (coordinate-hashed noise).
    const ProfileGenerator gen(
        ProfileKernel::build_truncated(*cases[0].s, LineSpec::unit_spacing(512), 1e-8), 9);
    const auto chunk_a = gen.generate(999900, 200);
    const auto chunk_b = gen.generate(1000000, 100);
    double seam = 0.0;
    for (std::size_t i = 0; i < 100; ++i) {
        seam = std::max(seam, std::abs(chunk_a[100 + i] - chunk_b[i]));
    }
    std::cout << "\nstreaming seam check at x = 1e6: max |diff| = " << seam
              << " (expect 0)\n"
              << "wrote " << out_dir << "/{gaussian,powerlaw,exponential}.csv\n";
    return 0;
}
