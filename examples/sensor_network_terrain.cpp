// Example: wireless sensor network over inhomogeneous terrain — the
// application the paper's introduction motivates ("sensors are usually
// distributed randomly on terrestrial surfaces ... considered to be RRSs").
//
// Builds a point-oriented terrain (Fig. 4 style), scatters sensor nodes on
// it, and evaluates which node pairs can communicate under a path-loss
// budget using the knife-edge propagation model.
//
//   ./sensor_network_terrain [out_dir]

#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "rrs.hpp"

int main(int argc, char** argv) {
    using namespace rrs;
    const std::string out_dir = argc > 1 ? argv[1] : "sensor_out";
    ensure_directory(out_dir);

    // Terrain: three zones by the point-oriented method — smooth plain,
    // rolling field, rough scrub.
    std::vector<RepresentativePoint> zones{
        {-300.0, 0.0, make_gaussian({0.3, 30.0, 30.0})},   // plain
        {300.0, 300.0, make_gaussian({1.0, 40.0, 40.0})},  // field
        {300.0, -300.0, make_exponential({2.0, 25.0, 25.0})},  // scrub
    };
    const auto map = std::make_shared<const PointMap>(std::move(zones), 80.0);
    const InhomogeneousGenerator gen(map, GridSpec::unit_spacing(512, 512), 99, {});
    const std::int64_t N = 1024;
    const Array2D<double> terrain = gen.generate(Rect{-N / 2, -N / 2, N, N});
    write_pgm16(out_dir + "/terrain.pgm", terrain);

    // Scatter 24 sensor nodes uniformly (deterministic seed).
    struct Node {
        double x, y;  // lattice coordinates in [0, N)
    };
    std::vector<Node> nodes;
    SplitMix64 rng{7};
    for (int i = 0; i < 24; ++i) {
        nodes.push_back(Node{32.0 + to_unit_halfopen(rng()) * (static_cast<double>(N) - 64.0),
                             32.0 + to_unit_halfopen(rng()) * (static_cast<double>(N) - 64.0)});
    }

    // Link model: 900 MHz, 1.5 m masts, 105 dB budget.
    const LinkGeometry link{1.5, 1.5, 0.333};
    const double budget_db = 105.0;

    std::size_t links = 0, clear = 0, pairs = 0;
    double shortest_fail = 1e300, longest_ok = 0.0;
    for (std::size_t a = 0; a < nodes.size(); ++a) {
        for (std::size_t b = a + 1; b < nodes.size(); ++b) {
            const double dist = std::hypot(nodes[a].x - nodes[b].x, nodes[a].y - nodes[b].y);
            if (dist < 10.0) {
                continue;  // co-located; profile too short to analyse
            }
            ++pairs;
            const auto samples = static_cast<std::size_t>(std::max(65.0, dist / 2.0)) | 1u;
            const TerrainProfile p = extract_profile(terrain, nodes[a].x, nodes[a].y,
                                                     nodes[b].x, nodes[b].y, samples, 1.0);
            const double loss = path_loss_db(p, link);
            if (line_of_sight_clear(p, link)) {
                ++clear;
            }
            if (loss <= budget_db) {
                ++links;
                longest_ok = std::max(longest_ok, dist);
            } else {
                shortest_fail = std::min(shortest_fail, dist);
            }
        }
    }
    std::cout << "nodes: " << nodes.size() << ", pairs analysed: " << pairs << "\n"
              << "links within " << budget_db << " dB budget: " << links << " ("
              << Table::num(100.0 * static_cast<double>(links) / static_cast<double>(pairs), 1)
              << "%)\n"
              << "paths with clear 0.6-Fresnel zone: " << clear << "\n"
              << "longest closed link: " << Table::num(longest_ok, 0) << " m; "
              << "shortest failed link: " << Table::num(shortest_fail, 0) << " m\n";

    // Ensemble view: the per-zone communication range (the paper's channel-
    // modelling use case).
    std::cout << "\nper-zone 90%-reliability range (m):\n";
    RangeStudyConfig cfg;
    cfg.link = link;
    cfg.budget_db = budget_db;
    cfg.paths_per_distance = 32;
    cfg.profile_samples = 129;
    const std::vector<double> distances{50.0, 100.0, 150.0, 200.0, 300.0};
    struct ZonePatch {
        const char* name;
        std::size_t x0, y0;
    };
    for (const auto& z : {ZonePatch{"plain", 64, 384}, ZonePatch{"field", 640, 640},
                          ZonePatch{"scrub", 640, 64}}) {
        Array2D<double> patch(320, 320);
        for (std::size_t iy = 0; iy < 320; ++iy) {
            for (std::size_t ix = 0; ix < 320; ++ix) {
                patch(ix, iy) = terrain(z.x0 + ix, z.y0 + iy);
            }
        }
        const auto samples = communication_range_study(patch, 1.0, distances, cfg);
        std::cout << "  " << z.name << ": " << Table::num(estimated_range(samples, 0.9), 0)
                  << "\n";
    }
    std::cout << "wrote " << out_dir << "/terrain.pgm\n";
    return 0;
}
