// Quickstart: generate one homogeneous rough surface with the convolution
// method, verify its statistics against the requested parameters, and dump
// plot-ready files.
//
//   ./quickstart [out_dir]
//
// This is the 60-second tour of the library: pick a spectrum, build a
// kernel, convolve with lattice noise, measure.

#include <cstdio>
#include <iostream>
#include <string>

#include "rrs.hpp"

int main(int argc, char** argv) {
    using namespace rrs;
    const std::string out_dir = argc > 1 ? argv[1] : "quickstart_out";
    ensure_directory(out_dir);

    // A Gaussian-spectrum surface: height stddev h = 1, correlation
    // length 20 lattice units in both directions (paper §2.1, eqs. 5-6).
    const SurfaceParams params{1.0, 20.0, 20.0};
    const SpectrumPtr spectrum = make_gaussian(params);

    // Build the convolution kernel (paper eqs. 34-35) on a 256x256 unit
    // grid, truncated to drop 1e-6 of its energy (small kernels = fast
    // generation; paper §2.4).
    const GridSpec kernel_grid = GridSpec::unit_spacing(256, 256);
    const ConvolutionKernel kernel =
        ConvolutionKernel::build_truncated(*spectrum, kernel_grid, 1e-6);
    std::cout << "kernel: " << kernel.nx() << " x " << kernel.ny()
              << " taps, energy " << kernel.energy() << " (target h^2 = "
              << kernel.target_variance() << ")\n";

    // Generate a 512x512 patch anywhere on the unbounded lattice
    // (paper eq. 36: f = kernel (*) white noise).
    const ConvolutionGenerator gen(kernel, /*seed=*/42);
    const Array2D<double> f = gen.generate(Rect{0, 0, 512, 512});

    // Measure what we produced.
    const Moments m = compute_moments({f.data(), f.size()});
    const Array2D<double> acf = circular_autocovariance(f);
    const double cl_est = estimate_correlation_length(lag_slice_x(acf, 200));

    std::printf("surface : mean % .4f   stddev %.4f (target %.1f)\n", m.mean, m.stddev,
                params.h);
    std::printf("          skew % .4f   excess kurtosis % .4f\n", m.skewness,
                m.excess_kurtosis);
    std::printf("corr len: %.2f lattice units (target %.1f)\n", cl_est, params.clx);

    // Plot-ready output.
    write_pgm16(out_dir + "/surface.pgm", f);
    write_gnuplot_surface(out_dir + "/surface.dat", f);
    write_npy(out_dir + "/surface.npy", f);
    std::cout << "wrote " << out_dir << "/surface.{pgm,dat,npy}\n"
              << "view: gnuplot -e \"splot '" << out_dir << "/surface.dat' w pm3d\"\n";
    return 0;
}
