// Example: a vegetable field containing a pond — the paper's Fig. 3
// scenario ("the parameters used are chosen as the values applicable to
// vegetable fields including a pond", §4).
//
// Demonstrates: CircleMap, InhomogeneousGenerator, per-region statistics,
// profile extraction across the pond, and plot-ready output.
//
//   ./vegetable_field_pond [out_dir]

#include <cmath>
#include <iostream>
#include <memory>
#include <string>

#include "rrs.hpp"

int main(int argc, char** argv) {
    using namespace rrs;
    const std::string out_dir = argc > 1 ? argv[1] : "pond_out";
    ensure_directory(out_dir);

    // Field: gaussian roughness h = 1.0 m, cl = 50 m.
    // Pond: exponential, nearly flat water, h = 0.2 m, same cl.
    // Pond radius 300 m, shoreline transition half-width 60 m.
    const auto field = make_gaussian({1.0, 50.0, 50.0});
    const auto pond = make_exponential({0.2, 50.0, 50.0});
    const auto map = std::make_shared<const CircleMap>(0.0, 0.0, 300.0, pond, field, 60.0);

    const InhomogeneousGenerator gen(map, GridSpec::unit_spacing(512, 512), /*seed=*/2026,
                                     {});
    const std::int64_t N = 1024;
    const Array2D<double> f = gen.generate(Rect{-N / 2, -N / 2, N, N});

    // Region statistics: pond centre vs open field.
    MomentAccumulator pond_acc, field_acc;
    for (std::int64_t iy = -N / 2; iy < N / 2; ++iy) {
        for (std::int64_t ix = -N / 2; ix < N / 2; ++ix) {
            const double r = std::hypot(static_cast<double>(ix), static_cast<double>(iy));
            const double v = f(static_cast<std::size_t>(ix + N / 2),
                               static_cast<std::size_t>(iy + N / 2));
            if (r < 220.0) {
                pond_acc.add(v);
            } else if (r > 400.0) {
                field_acc.add(v);
            }
        }
    }
    std::cout << "pond  (r < 220):  stddev " << Table::num(pond_acc.stddev(), 3)
              << " m (target 0.2)\n"
              << "field (r > 400):  stddev " << Table::num(field_acc.stddev(), 3)
              << " m (target 1.0)\n";

    // A west-east transect through the pond centre: the calm water shows
    // up as a flat stretch in the height profile.
    const TerrainProfile transect =
        extract_profile(f, 0.0, static_cast<double>(N / 2), static_cast<double>(N - 1),
                        static_cast<double>(N / 2), 513, 1.0);
    std::vector<double> xs(transect.height.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        xs[i] = static_cast<double>(i) * transect.step - static_cast<double>(N / 2);
    }
    write_curve_csv(out_dir + "/transect.csv", xs, transect.height);

    // RMS slope comparison confirms the texture contrast.
    Array2D<double> pond_patch(128, 128), field_patch(128, 128);
    for (std::size_t iy = 0; iy < 128; ++iy) {
        for (std::size_t ix = 0; ix < 128; ++ix) {
            pond_patch(ix, iy) = f(448 + ix, 448 + iy);   // centre
            field_patch(ix, iy) = f(16 + ix, 16 + iy);    // far corner
        }
    }
    std::cout << "rms slope pond   " << Table::num(rms_slope_x(pond_patch, 1.0), 4)
              << "\nrms slope field  " << Table::num(rms_slope_x(field_patch, 1.0), 4)
              << "\n";

    write_pgm16(out_dir + "/pond.pgm", f);
    write_npy(out_dir + "/pond.npy", f);
    std::cout << "wrote " << out_dir << "/{pond.pgm,pond.npy,transect.csv}\n";
    return 0;
}
