// Experiment (paper §2.4 / §4 ¶1): "The computation time of the present
// algorithm depends strongly on the correlation length, because it is
// proportional to the size of the weighting array" — and truncating the
// kernel trades a controlled RMS error for that time.
//
// Sweeps (a) correlation length at fixed tail_eps: kernel size and direct
// convolution time; (b) tail_eps at fixed cl: size, time, and RMS error
// against the near-full kernel on identical noise.

#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

namespace {
using clock_type = std::chrono::steady_clock;
double time_direct(const rrs::ConvolutionGenerator& gen, std::int64_t n) {
    const auto t0 = clock_type::now();
    const auto f = gen.generate_direct(rrs::Rect{0, 0, n, n});
    (void)f;
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}
}  // namespace

int main() {
    using namespace rrs;
    std::cout << "=== Kernel truncation: size, cost, accuracy (paper sec 2.4) ===\n\n";
    const GridSpec g = GridSpec::unit_spacing(512, 512);
    const std::int64_t out = 96;  // output tile for the direct-engine timing

    std::cout << "--- (a) cost vs correlation length (tail_eps = 1e-6) ---\n";
    Table ta({"cl", "kernel", "taps", "direct conv s/" + std::to_string(out) + "^2",
              "taps ratio", "time ratio"});
    double base_taps = 0.0;
    double base_time = 0.0;
    for (const double cl : {10.0, 20.0, 40.0, 80.0}) {
        const auto s = make_gaussian({1.0, cl, cl});
        const ConvolutionGenerator gen(ConvolutionKernel::build_truncated(*s, g, 1e-6), 1);
        const auto& k = gen.kernel();
        const double taps = static_cast<double>(k.nx() * k.ny());
        const double t = time_direct(gen, out);
        if (base_taps == 0.0) {
            base_taps = taps;
            base_time = t;
        }
        ta.add_row({Table::num(cl, 0), std::to_string(k.nx()) + "x" + std::to_string(k.ny()),
                    Table::num(taps, 0), Table::num(t, 3), Table::num(taps / base_taps, 1),
                    Table::num(t / base_time, 1)});
    }
    ta.print(std::cout);
    std::cout << "Expected shape: taps grow ~cl^2 and direct-engine time tracks the\n"
                 "tap count (the paper's cost-vs-correlation-length claim).\n\n";

    std::cout << "--- (b) accuracy vs tail_eps (cl = 20) ---\n";
    const auto s = make_gaussian({1.0, 20.0, 20.0});
    const ConvolutionGenerator full(ConvolutionKernel::build_truncated(*s, g, 1e-14), 7);
    const Rect r{0, 0, 256, 256};
    const auto f_full = full.generate(r);
    Table tb({"tail_eps", "kernel", "kept energy frac", "rms error vs full", "rms/h"});
    for (const double eps : {1e-2, 1e-3, 1e-4, 1e-6, 1e-8}) {
        const ConvolutionGenerator trunc(ConvolutionKernel::build_truncated(*s, g, eps), 7);
        const auto f_t = trunc.generate(r);
        double rms = 0.0;
        for (std::size_t i = 0; i < f_t.size(); ++i) {
            const double d = f_t.data()[i] - f_full.data()[i];
            rms += d * d;
        }
        rms = std::sqrt(rms / static_cast<double>(f_t.size()));
        const auto& k = trunc.kernel();
        tb.add_row({Table::num(eps, 8),
                    std::to_string(k.nx()) + "x" + std::to_string(k.ny()),
                    Table::num(k.energy() / full.kernel().energy(), 6), Table::num(rms, 5),
                    Table::num(rms / 1.0, 5)});
    }
    tb.print(std::cout);
    std::cout << "Expected shape: rms error ~ sqrt(tail_eps)·h, kernel support\n"
                 "shrinking as eps grows — pick eps by the error budget.\n";
    return 0;
}
