// Roofline sweep of the three convolution engines (DESIGN.md §15): for each
// engine × kernel support × tile size, time surface generation, estimate the
// arithmetic per output point from the kernel geometry, and report effective
// throughput.  The point of the table is the *shape* of the costs:
//
//   * direct    — O(Kx·Ky) multiply-adds per point; the reference engine.
//   * fft       — O(P² log P) per tile (P = padded transform), amortised
//                 per point; flat in kernel support once padded.
//   * separable — O(Kx + Ky) per point via the two SIMD 1-D passes; only
//                 the Gaussian family factors, but then it must beat the
//                 dense engines decisively.
//
// Writes BENCH_kernel_roofline.json (bench_util schema 1; throughput =
// output points per second).  `--assert-speedup` turns the headline claim
// into a CI gate (tools/ci.sh perf): on the default Gaussian scene the
// separable engine must generate at >= 2x the dense-FFT rate, else exit 1.

#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/convolution.hpp"
#include "grid/simd.hpp"
#include "io/table.hpp"
#include "parallel/parallel_for.hpp"

namespace {
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}

struct EngineCase {
    rrs::KernelEngine engine;
    const char* label;
};

/// Time `reps` generations of an n×n tile (distinct regions, so nothing can
/// ride the kernel-FFT cache unfairly) and return seconds per tile.
double time_engine(const rrs::ConvolutionKernel& kernel, rrs::KernelEngine engine,
                   std::int64_t n, int reps) {
    const rrs::ConvolutionGenerator gen(kernel, /*seed=*/42,
                                        rrs::HealthPolicy::kIgnore, engine);
    double acc = 0.0;  // defeat dead-code elimination
    const auto t0 = clock_type::now();
    for (int r = 0; r < reps; ++r) {
        const auto f = gen.generate(rrs::Rect{2 * n * r, 0, n, n});
        acc += f(0, 0);
    }
    const double dt = seconds_since(t0) / reps;
    if (std::isnan(acc)) {
        std::cerr << "unexpected NaN surface\n";
    }
    return dt;
}

/// Estimated floating-point ops per output lattice point for one engine on
/// one kernel (2 ops per multiply-add; FFT engine ~5 ops per butterfly
/// point, amortised over the tile).
double flops_per_point(const rrs::ConvolutionKernel& kernel, rrs::KernelEngine engine,
                       std::int64_t tile) {
    const auto kx = static_cast<double>(kernel.nx());
    const auto ky = static_cast<double>(kernel.ny());
    switch (engine) {
        case rrs::KernelEngine::kDirect:
            return 2.0 * kx * ky;
        case rrs::KernelEngine::kSeparable:
            return 2.0 * (kx + ky);
        default: {
            const auto n = static_cast<std::size_t>(tile);
            const double px =
                static_cast<double>(std::bit_ceil(n + kernel.nx()));
            const double py =
                static_cast<double>(std::bit_ceil(n + kernel.ny()));
            const double p2 = px * py;
            const double fft = 2.0 * 5.0 * p2 * std::log2(p2);
            const double mul = 6.0 * p2;
            return (fft + mul) / (static_cast<double>(tile) * static_cast<double>(tile));
        }
    }
}
}  // namespace

int main(int argc, char** argv) {
    using namespace rrs;
    bool assert_speedup = false;
    std::string out_dir = "bench_out";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--assert-speedup") == 0) {
            assert_speedup = true;
        } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
            out_dir = argv[++i];
        } else {
            std::cerr << "usage: kernel_roofline [--assert-speedup] [--out-dir DIR]\n";
            return 2;
        }
    }
    const bench::TraceFromEnv trace_guard;  // RRS_TRACE=file.json records spans

    std::cout << "=== Convolution engine roofline (SIMD backend: " << simd::backend()
              << ", threads: " << max_threads() << ") ===\n\n";

    // Default Gaussian scene: unit height, cl = 8 lattice units — the same
    // family/shape the acceptance tier certifies.
    const auto spectrum = make_gaussian({1.0, 8.0, 8.0});
    const EngineCase engines[] = {
        {KernelEngine::kDirect, "direct"},
        {KernelEngine::kFft, "fft"},
        {KernelEngine::kSeparable, "separable"},
    };

    std::vector<bench::BenchRecord> records;
    double fft_default = 0.0, sep_default = 0.0;

    Table table({"engine", "kernel", "taps", "tile", "ms/tile", "Mpts/s", "flops/pt",
                 "GFLOP/s"});
    for (const std::size_t kgrid : {64u, 128u}) {
        const ConvolutionKernel kernel = ConvolutionKernel::build_truncated(
            *spectrum, GridSpec::unit_spacing(kgrid, kgrid), 1e-6);
        for (const std::int64_t tile : {64, 128, 256}) {
            const double points = static_cast<double>(tile) * static_cast<double>(tile);
            for (const EngineCase& e : engines) {
                // The direct engine is the O(K²) baseline — one rep is
                // plenty and keeps the sweep snappy.
                const int reps = e.engine == KernelEngine::kDirect ? 1 : 3;
                const double dt = time_engine(kernel, e.engine, tile, reps);
                const double fpp = flops_per_point(kernel, e.engine, tile);
                const double pts_per_s = points / dt;
                table.add_row({e.label, std::to_string(kgrid),
                               std::to_string(kernel.taps().size()),
                               std::to_string(tile), Table::num(dt * 1e3),
                               Table::num(pts_per_s / 1e6), Table::num(fpp, 1),
                               Table::num(fpp * pts_per_s / 1e9, 2)});
                records.push_back({std::string(e.label) + "/k" + std::to_string(kgrid) +
                                       "/t" + std::to_string(tile),
                                   static_cast<std::int64_t>(points), dt * 1e3,
                                   pts_per_s});
                if (kgrid == 128 && tile == 256) {
                    if (e.engine == KernelEngine::kFft) {
                        fft_default = dt;
                    } else if (e.engine == KernelEngine::kSeparable) {
                        sep_default = dt;
                    }
                }
            }
        }
    }
    table.print(std::cout);

    bench::write_bench_json(out_dir, "kernel_roofline", records);
    std::cout << "\nwrote " << out_dir << "/BENCH_kernel_roofline.json ("
              << records.size() << " records)\n";

    const double speedup = sep_default > 0.0 ? fft_default / sep_default : 0.0;
    std::cout << "default scene (kernel 128, tile 256): separable is "
              << Table::num(speedup, 2) << "x the dense-FFT engine\n";
    if (assert_speedup && speedup < 2.0) {
        std::cerr << "FAIL: separable engine must be >= 2x dense FFT on the default "
                     "Gaussian scene (got "
                  << speedup << "x)\n";
        return 1;
    }
    return 0;
}
