// Micro-benchmarks for the RNG substrate (google-benchmark): raw engines,
// Gaussian samplers (Box-Muller of paper eq. 18, polar), and the
// coordinate-hashed Gaussian lattice that feeds the convolution method.

#include <benchmark/benchmark.h>

#include "rng/engines.hpp"
#include "rng/gaussian.hpp"
#include "rng/hash.hpp"

namespace {

using namespace rrs;

void BM_SplitMix64(benchmark::State& state) {
    SplitMix64 e{1};
    for (auto _ : state) {
        benchmark::DoNotOptimize(e());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SplitMix64);

void BM_Pcg64(benchmark::State& state) {
    Pcg64 e{1};
    for (auto _ : state) {
        benchmark::DoNotOptimize(e());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Pcg64);

void BM_Lcg48_PaperRand(benchmark::State& state) {
    Lcg48 e{1};
    for (auto _ : state) {
        benchmark::DoNotOptimize(e());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Lcg48_PaperRand);

void BM_BoxMuller(benchmark::State& state) {
    BoxMullerGaussian<Pcg64> g{Pcg64{1}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(g());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BoxMuller);

void BM_PolarGaussian(benchmark::State& state) {
    PolarGaussian<Pcg64> g{Pcg64{1}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(g());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PolarGaussian);

void BM_CoordHash(benchmark::State& state) {
    std::int64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hash_coords(42, i, -i));
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoordHash);

void BM_GaussianLattice(benchmark::State& state) {
    const GaussianLattice lat{42};
    std::int64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lat(i, -2 * i));
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GaussianLattice);

void BM_NoiseTileRow(benchmark::State& state) {
    // A full 1024-point lattice row — the unit of work in tile generation.
    const GaussianLattice lat{7};
    std::int64_t row = 0;
    for (auto _ : state) {
        double sum = 0.0;
        for (std::int64_t ix = 0; ix < 1024; ++ix) {
            sum += lat(ix, row);
        }
        benchmark::DoNotOptimize(sum);
        ++row;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_NoiseTileRow);

}  // namespace

BENCHMARK_MAIN();
