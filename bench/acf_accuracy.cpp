// Experiment: the paper's §2.2 accuracy check — "the DFT of this weighting
// array corresponds to the autocorrelation function as DFT(w) ≈ ρ(r)".
//
// For each spectrum family and parameter set, builds the discrete weight
// array w (eq. 15), transforms it, and reports the error against the
// analytic ρ, plus the Riemann-sum Σw against h² (eq. 1).

#include <cmath>
#include <iostream>

#include "rrs.hpp"

int main() {
    using namespace rrs;
    std::cout << "=== ACF accuracy check: DFT(w) vs analytic rho (paper sec 2.2) ===\n\n";

    struct Case {
        const char* label;
        SpectrumPtr s;
    };
    const SurfaceParams p1{1.0, 40.0, 40.0};
    const SurfaceParams p2{2.0, 80.0, 80.0};
    const SurfaceParams p3{0.5, 60.0, 30.0};  // anisotropic
    const Case cases[] = {
        {"gaussian  h=1.0 cl=40", make_gaussian(p1)},
        {"gaussian  h=2.0 cl=80", make_gaussian(p2)},
        {"gaussian  h=0.5 cl=60/30", make_gaussian(p3)},
        {"power-law N=2 h=1.0 cl=40", make_power_law(p1, 2.0)},
        {"power-law N=3 h=2.0 cl=80", make_power_law(p2, 3.0)},
        {"power-law N=1.5 h=1.0 cl=40", make_power_law(p1, 1.5)},
        {"exponential h=1.0 cl=40", make_exponential(p1)},
        {"exponential h=2.0 cl=80", make_exponential(p2)},
    };

    const GridSpec g = GridSpec::unit_spacing(1024, 1024);
    Table table({"spectrum", "sum(w)", "h^2", "max|DFT(w)-rho|", "rel@0", "max|Im|"});

    for (const Case& c : cases) {
        const Array2D<double> w = weight_array(*c.s, g);
        double max_imag = 0.0;
        const Array2D<double> rho_hat = weight_autocorr_check(w, &max_imag);
        const Array2D<double> rho = analytic_autocorr_grid(*c.s, g);

        const double h2 = c.s->params().h * c.s->params().h;
        double max_err = 0.0;
        for (std::size_t i = 0; i < rho.size(); ++i) {
            max_err = std::max(max_err, std::abs(rho_hat.data()[i] - rho.data()[i]));
        }
        const double rel0 = std::abs(rho_hat(0, 0) - h2) / h2;

        table.add_row({c.label, Table::num(weight_sum(w), 6), Table::num(h2, 4),
                       Table::num(max_err, 8), Table::num(rel0, 8),
                       Table::num(max_imag, 10)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: sum(w) ~ h^2 and max errors ~0 for cl << L;\n"
                 "power-law tails alias slightly more than gaussian (slow K-decay).\n";
    return 0;
}
