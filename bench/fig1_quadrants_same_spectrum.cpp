// Figure 1 reproduction: "Inhomogeneous 2D RRS with same spectrum and
// three different parameters" (paper §4).
//
// Four quadrants, all Gaussian spectrum, plate-oriented method:
//   1st: h = 1.0, cl = 40    2nd: h = 0.5, cl = 60
//   3rd: h = 2.0, cl = 80    4th: h = 1.5, cl = 60
// (the paper's OCR drops decimal points: "0", "5", "20", "5" are
// 1.0 / 0.5 / 2.0 / 1.5 — see DESIGN.md §6).
//
// Output: per-quadrant target-vs-measured h and correlation length, and
// surface dumps under bench_out/fig1/.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
    using namespace rrs;
    using namespace rrs::bench;
    const std::int64_t N = argc > 1 ? std::atoll(argv[1]) : 2048;  // domain side
    const std::int64_t half = N / 2;
    const int reps = 6;

    std::cout << "=== Fig. 1: quadrants, same (Gaussian) spectrum, different parameters ===\n"
              << "domain " << N << "^2, plate-oriented, transition half-width 20\n\n";

    struct Q {
        const char* name;
        double h, cl;
        double wx, wy;  // interior window centre (fractions of the domain)
    };
    const Q quads[] = {
        {"1st (+x,+y)", 1.0, 40.0, 0.75, 0.75},
        {"2nd (-x,+y)", 0.5, 60.0, 0.25, 0.75},
        {"3rd (-x,-y)", 2.0, 80.0, 0.25, 0.25},
        {"4th (+x,-y)", 1.5, 60.0, 0.75, 0.25},
    };

    const auto map = make_quadrant_map(
        0.0, 0.0, static_cast<double>(half),
        make_gaussian({quads[0].h, quads[0].cl, quads[0].cl}),
        make_gaussian({quads[1].h, quads[1].cl, quads[1].cl}),
        make_gaussian({quads[2].h, quads[2].cl, quads[2].cl}),
        make_gaussian({quads[3].h, quads[3].cl, quads[3].cl}), 20.0);
    const GridSpec kernel_grid = GridSpec::unit_spacing(1024, 1024);

    // Interior windows: as large as fits while staying ~2.5·cl_max clear of
    // every transition (the cl estimate needs all the cells it can get).
    const std::size_t win = static_cast<std::size_t>(3 * N / 10);
    Table table({"quadrant", "target h", "meas h", "target cl", "meas cl_x", "meas cl_y"});

    for (const Q& q : quads) {
        const auto stats = averaged_window_stats(
            [&](std::uint64_t seed) {
                const InhomogeneousGenerator gen(map, kernel_grid, seed, {});
                const auto f = gen.generate(Rect{-half, -half, N, N});
                return crop(f, static_cast<std::size_t>(q.wx * static_cast<double>(N)) - win / 2,
                            static_cast<std::size_t>(q.wy * static_cast<double>(N)) - win / 2,
                            win, win);
            },
            reps, static_cast<std::size_t>(3.0 * q.cl));
        table.add_row({q.name, Table::num(q.h, 2), Table::num(stats.moments.stddev, 3),
                       Table::num(q.cl, 0), Table::num(stats.cl_x, 1),
                       Table::num(stats.cl_y, 1)});
    }
    table.print(std::cout);

    // One representative surface for the plot.
    const InhomogeneousGenerator gen(map, kernel_grid, 42, {});
    const auto f = gen.generate(Rect{-half, -half, N, N});
    dump_surface("bench_out/fig1", "surface", f, static_cast<double>(-half),
                 static_cast<double>(-half));
    std::cout << "\nwrote bench_out/fig1/surface.{pgm,dat,npy}\n"
              << "Expected shape (paper Fig. 1): four visibly distinct quadrant\n"
              << "textures, roughness ordering q3 > q4 ~ q2(smoother) with h ratios\n"
              << "2.0 : 1.5 : 1.0 : 0.5, seamless at the quadrant boundaries.\n";
    return 0;
}
