// Micro-benchmarks for the FFT substrate (google-benchmark): 1-D radix-2
// vs Bluestein, 2-D transforms, and the generation-path FFT sizes.

#include <benchmark/benchmark.h>

#include <vector>

#include "fft/fft1d.hpp"
#include "fft/fft2d.hpp"
#include "rng/engines.hpp"

namespace {

using namespace rrs;

std::vector<cplx> signal(std::size_t n) {
    SplitMix64 e{n};
    std::vector<cplx> x(n);
    for (auto& v : x) {
        v = cplx{to_unit_halfopen(e()), to_unit_halfopen(e())};
    }
    return x;
}

void BM_Fft1D_Pow2(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const Fft1D plan(n);
    auto x = signal(n);
    for (auto _ : state) {
        plan.forward(x);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft1D_Pow2)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Fft1D_Bluestein(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const Fft1D plan(n);
    auto x = signal(n);
    for (auto _ : state) {
        plan.forward(x);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft1D_Bluestein)->Arg(257)->Arg(1000)->Arg(4097);

void BM_Fft2D(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const Fft2D plan(n, n);
    Array2D<cplx> a(n, n);
    SplitMix64 e{9};
    for (auto& v : a) {
        v = cplx{to_unit_halfopen(e()), 0.0};
    }
    for (auto _ : state) {
        plan.forward(a);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Fft2D)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_Fft2D_RoundTrip(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const Fft2D plan(n, n);
    Array2D<cplx> a(n, n, cplx{1.0, 0.0});
    for (auto _ : state) {
        plan.forward(a);
        plan.inverse(a);
        benchmark::DoNotOptimize(a.data());
    }
}
BENCHMARK(BM_Fft2D_RoundTrip)->Arg(256)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
