// net_load — closed-loop load generator for the HTTP tile server.
//
// Two legs, both against an in-process HttpServer (loopback TCP, so the
// numbers measure the transport + service stack, not a NIC):
//
//  1. Latency sweep: C keep-alive clients request cached tiles as fast as
//     they can; reports throughput and p50/p99 request latency per
//     concurrency level ("c4", "c4.p50_ms", "c4.p99_ms" records).
//  2. Admission control: a connection storm against a deliberately slow
//     handler behind a cap of 2.  Demonstrates load shedding: excess
//     connections get their 503 at the door — far faster than the handler's
//     service time — while admitted requests still finish.  Records the
//     shed rate and the p99 time-to-503; exits non-zero if the storm
//     produced no sheds or no successes (the bench then proves nothing).
//
//   net_load [--quick] [--out-dir DIR]
//
// Writes bench_out/BENCH_net.json via bench_util.hpp like every harness.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "io/scene.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "net/tile_routes.hpp"
#include "obs/metrics.hpp"
#include "service/tile_service.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double percentile(std::vector<double>& sorted_ms, double p) {
    if (sorted_ms.empty()) {
        return 0.0;
    }
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted_ms.size() - 1) / 100.0);
    return sorted_ms[idx];
}

constexpr const char* kBenchScene = R"(seed = 5
kernel_grid = 64 64
region = 0 0 64 64
tail_eps = 1e-6

[spectrum field]
family = gaussian
h = 1.0
cl = 6

[spectrum pond]
family = exponential
h = 0.3
cl = 6

[map]
type = circle
center = 32 32
radius = 48
transition = 12
inside = pond
outside = field
)";

}  // namespace

int main(int argc, char** argv) {
    using namespace rrs;
    bench::TraceFromEnv trace;

    bool quick = false;
    std::string out_dir = "bench_out";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out-dir" && i + 1 < argc) {
            out_dir = argv[++i];
        } else {
            std::cerr << "usage: net_load [--quick] [--out-dir DIR]\n";
            return 2;
        }
    }

    std::vector<bench::BenchRecord> records;

    // ---- Leg 1: keep-alive latency sweep over cached tiles ------------------
    const Scene scene = parse_scene_text(kBenchScene);
    auto gen = std::make_shared<InhomogeneousGenerator>(make_scene_generator(scene));
    TileService::Options sopt;
    sopt.shape = TileShape{32, 32};
    net::SceneServices scenes;
    scenes.emplace("bench", TileService::owning(std::move(gen), sopt));

    obs::MetricsRegistry registry;
    net::HttpServer::Options opt;
    opt.workers = 8;
    opt.max_connections = 64;  // this leg measures latency, not shedding
    opt.registry = &registry;
    net::HttpServer server(net::make_tile_router(std::move(scenes), &registry), opt);
    server.start();

    constexpr int kTiles = 4;  // 4x4 working set, warmed below
    {
        net::HttpClient warm("127.0.0.1", server.port());
        for (int ty = 0; ty < kTiles; ++ty) {
            for (int tx = 0; tx < kTiles; ++tx) {
                const auto resp = warm.get("/v1/tile?tx=" + std::to_string(tx) +
                                           "&ty=" + std::to_string(ty));
                if (resp.status != 200) {
                    std::cerr << "net_load: warmup got HTTP " << resp.status << "\n";
                    return 1;
                }
            }
        }
    }

    const std::vector<int> sweep = quick ? std::vector<int>{1, 4}
                                         : std::vector<int>{1, 2, 4, 8};
    const int per_client = quick ? 200 : 2000;
    for (const int concurrency : sweep) {
        std::vector<std::vector<double>> lat_ms(
            static_cast<std::size_t>(concurrency));
        std::vector<std::thread> clients;
        clients.reserve(static_cast<std::size_t>(concurrency));
        const Clock::time_point leg0 = Clock::now();
        for (int c = 0; c < concurrency; ++c) {
            clients.emplace_back([&, c] {
                auto& lat = lat_ms[static_cast<std::size_t>(c)];
                lat.reserve(static_cast<std::size_t>(per_client));
                net::HttpClient client("127.0.0.1", server.port());
                for (int i = 0; i < per_client; ++i) {
                    const int tx = (c + i) % kTiles;
                    const int ty = i % kTiles;
                    const Clock::time_point t0 = Clock::now();
                    const auto resp =
                        client.get("/v1/tile?tx=" + std::to_string(tx) +
                                   "&ty=" + std::to_string(ty));
                    lat.push_back(ms_since(t0));
                    if (resp.status != 200) {
                        std::cerr << "net_load: sweep got HTTP " << resp.status
                                  << "\n";
                        std::exit(1);
                    }
                }
            });
        }
        for (auto& th : clients) {
            th.join();
        }
        const double wall = ms_since(leg0);
        std::vector<double> all;
        for (const auto& lat : lat_ms) {
            all.insert(all.end(), lat.begin(), lat.end());
        }
        std::sort(all.begin(), all.end());
        const auto n = static_cast<std::int64_t>(all.size());
        const std::string tag = "c" + std::to_string(concurrency);
        records.push_back({tag, n, wall,
                           static_cast<double>(n) / (wall / 1000.0)});
        records.push_back({tag + ".p50_ms", n, percentile(all, 50.0), 0.0});
        records.push_back({tag + ".p99_ms", n, percentile(all, 99.0), 0.0});
        std::cout << "net_load: " << tag << "  " << n << " req in " << wall
                  << " ms  (" << records[records.size() - 3].throughput
                  << " req/s, p50 " << percentile(all, 50.0) << " ms, p99 "
                  << percentile(all, 99.0) << " ms)\n";
    }
    server.stop();

    // ---- Leg 2: admission control under a connection storm ------------------
    const auto handler_ms = std::chrono::milliseconds(quick ? 20 : 50);
    net::Router slow_router;
    slow_router.add("/slow", [handler_ms](const net::HttpRequest&) {
        std::this_thread::sleep_for(handler_ms);
        return net::HttpResponse::text(200, "done");
    });
    obs::MetricsRegistry shed_registry;
    net::HttpServer::Options shed_opt;
    shed_opt.workers = 2;
    shed_opt.max_connections = 2;
    shed_opt.registry = &shed_registry;
    net::HttpServer shed_server(std::move(slow_router), shed_opt);
    shed_server.start();

    constexpr int kStormThreads = 8;
    const int storm_rounds = quick ? 10 : 40;
    std::atomic<std::uint64_t> storm_ok{0};
    std::atomic<std::uint64_t> storm_shed{0};
    std::vector<std::vector<double>> t503(kStormThreads);
    {
        std::vector<std::thread> storm;
        storm.reserve(kStormThreads);
        for (int t = 0; t < kStormThreads; ++t) {
            storm.emplace_back([&, t] {
                for (int i = 0; i < storm_rounds; ++i) {
                    try {
                        // Fresh connection per request: every request faces
                        // the admission gate.
                        net::HttpClient::Options copt;
                        copt.timeout_ms = 2000;
                        net::HttpClient client("127.0.0.1", shed_server.port(),
                                               copt);
                        const Clock::time_point t0 = Clock::now();
                        const auto resp = client.get("/slow");
                        const double ms = ms_since(t0);
                        if (resp.status == 200) {
                            storm_ok.fetch_add(1, std::memory_order_relaxed);
                        } else if (resp.status == 503) {
                            storm_shed.fetch_add(1, std::memory_order_relaxed);
                            t503[static_cast<std::size_t>(t)].push_back(ms);
                        }
                    } catch (const Error&) {
                        // connect refused under the storm: not counted
                    }
                }
            });
        }
        for (auto& th : storm) {
            th.join();
        }
    }
    shed_server.stop();

    std::vector<double> shed_ms;
    for (const auto& v : t503) {
        shed_ms.insert(shed_ms.end(), v.begin(), v.end());
    }
    std::sort(shed_ms.begin(), shed_ms.end());
    const std::uint64_t ok = storm_ok.load(std::memory_order_relaxed);
    const std::uint64_t shed = storm_shed.load(std::memory_order_relaxed);
    const double shed_p99 = percentile(shed_ms, 99.0);
    std::cout << "net_load: storm  " << ok << " served, " << shed
              << " shed (503 p99 " << shed_p99 << " ms vs handler "
              << static_cast<double>(handler_ms.count()) << " ms)\n";
    records.push_back({"shed.count", static_cast<std::int64_t>(shed),
                       0.0, 0.0});
    records.push_back({"shed.t503_p99_ms", static_cast<std::int64_t>(shed),
                       shed_p99, 0.0});
    records.push_back({"shed.served", static_cast<std::int64_t>(ok), 0.0, 0.0});

    bench::write_bench_json(out_dir, "net", records);
    std::cout << "net_load: wrote " << out_dir << "/BENCH_net.json\n";

    if (ok == 0 || shed == 0) {
        std::cerr << "net_load: storm produced no "
                  << (ok == 0 ? "successes" : "sheds")
                  << " — admission control not demonstrated\n";
        return 1;
    }
    // A shed 503 must be answered at the door: well under one handler
    // service time even at p99.
    if (shed_p99 >= static_cast<double>(handler_ms.count())) {
        std::cerr << "net_load: 503 p99 " << shed_p99
                  << " ms is not faster than the handler — shedding queued?\n";
        return 1;
    }
    return 0;
}
