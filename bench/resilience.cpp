// resilience — the fault-injection and retry stack under measurement.
//
// Four legs, all loopback like net_load so the numbers measure the stack,
// not a NIC:
//
//  1. Dormant overhead: ns/op of a disarmed fault::inject() site.  The
//     zero-cost contract of DESIGN.md §13 — one relaxed atomic load — is
//     enforced: the harness exits non-zero if a disarmed probe costs more
//     than 100 ns even on a loaded CI box.
//  2. Fault-free baseline: p50/p99 request latency over warmed tiles, and
//     the reference bodies every later leg is diffed against.
//  3. Fault sweep: the same workload with `net.recv=error@p:R` armed for
//     R in {0.05, 0.1, 0.2} and a retrying client (6 attempts, decorrelated
//     jitter).  Reports availability (eventually-200 rate), p99 latency,
//     and the retry count.  Availability below 99% fails the harness —
//     retries must absorb a 20% per-recv fault rate.
//  4. Disarm: every tile re-fetched fault-free must be byte-identical to
//     the baseline bodies AND to encode_tile_f32 over the direct
//     TileService — injected faults may cost latency, never integrity.
//
//   resilience [--quick] [--out-dir DIR]
//
// Writes bench_out/BENCH_resilience.json via bench_util.hpp.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/inject.hpp"
#include "io/scene.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "net/tile_routes.hpp"
#include "obs/metrics.hpp"
#include "service/tile_service.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double percentile(std::vector<double>& sorted_ms, double p) {
    if (sorted_ms.empty()) {
        return 0.0;
    }
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted_ms.size() - 1) / 100.0);
    return sorted_ms[idx];
}

constexpr const char* kBenchScene = R"(seed = 5
kernel_grid = 64 64
region = 0 0 64 64
tail_eps = 1e-6

[spectrum field]
family = gaussian
h = 1.0
cl = 6

[spectrum pond]
family = exponential
h = 0.3
cl = 6

[map]
type = circle
center = 32 32
radius = 48
transition = 12
inside = pond
outside = field
)";

}  // namespace

int main(int argc, char** argv) {
    using namespace rrs;
    bench::TraceFromEnv trace;

    bool quick = false;
    std::string out_dir = "bench_out";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out-dir" && i + 1 < argc) {
            out_dir = argv[++i];
        } else {
            std::cerr << "usage: resilience [--quick] [--out-dir DIR]\n";
            return 2;
        }
    }

    std::vector<bench::BenchRecord> records;
    fault::disarm();

    // ---- Leg 1: dormant probe overhead --------------------------------------
    // The sink keeps the loop honest; with no plan armed every call is one
    // acquire load of a null pointer.
    const std::int64_t probes = quick ? 5'000'000 : 50'000'000;
    std::int64_t fired = 0;
    const Clock::time_point probe0 = Clock::now();
    for (std::int64_t i = 0; i < probes; ++i) {
        fired += fault::inject("bench.dormant") ? 1 : 0;
    }
    const double probe_ms = ms_since(probe0);
    const double dormant_ns =
        probe_ms * 1e6 / static_cast<double>(probes);
    std::cout << "resilience: dormant inject " << dormant_ns << " ns/op ("
              << fired << " fired)\n";
    records.push_back({"dormant.inject_ns", probes, dormant_ns, 0.0});
    if (fired != 0) {
        std::cerr << "resilience: disarmed probe fired — not dormant\n";
        return 1;
    }

    // ---- Server under test --------------------------------------------------
    const Scene scene = parse_scene_text(kBenchScene);
    auto gen = std::make_shared<InhomogeneousGenerator>(make_scene_generator(scene));
    TileService::Options sopt;
    sopt.shape = TileShape{32, 32};
    auto service = TileService::owning(std::move(gen), sopt);
    const TileService& direct = *service;
    net::SceneServices scenes;
    scenes.emplace("bench", std::move(service));

    obs::MetricsRegistry registry;
    net::HttpServer::Options opt;
    opt.workers = 4;
    opt.registry = &registry;
    net::HttpServer server(net::make_tile_router(std::move(scenes), &registry),
                           opt);
    server.start();

    constexpr int kTiles = 4;  // 4x4 working set
    const auto path = [](int tx, int ty) {
        return "/v1/tile?tx=" + std::to_string(tx) + "&ty=" + std::to_string(ty);
    };

    // ---- Leg 2: fault-free baseline and reference bodies --------------------
    std::vector<std::string> baseline(kTiles * kTiles);
    {
        net::HttpClient warm("127.0.0.1", server.port());
        for (int ty = 0; ty < kTiles; ++ty) {
            for (int tx = 0; tx < kTiles; ++tx) {
                const auto resp = warm.get(path(tx, ty));
                if (resp.status != 200) {
                    std::cerr << "resilience: warmup got HTTP " << resp.status
                              << "\n";
                    return 1;
                }
                baseline[static_cast<std::size_t>(ty * kTiles + tx)] = resp.body;
            }
        }
    }
    const int requests = quick ? 200 : 2000;
    {
        net::HttpClient client("127.0.0.1", server.port());
        std::vector<double> lat;
        lat.reserve(static_cast<std::size_t>(requests));
        const Clock::time_point leg0 = Clock::now();
        for (int i = 0; i < requests; ++i) {
            const Clock::time_point t0 = Clock::now();
            const auto resp = client.get(path(i % kTiles, (i / kTiles) % kTiles));
            lat.push_back(ms_since(t0));
            if (resp.status != 200) {
                std::cerr << "resilience: baseline got HTTP " << resp.status
                          << "\n";
                return 1;
            }
        }
        const double wall = ms_since(leg0);
        std::sort(lat.begin(), lat.end());
        records.push_back({"nofault.p50_ms", requests, percentile(lat, 50.0), 0.0});
        records.push_back({"nofault.p99_ms", requests, percentile(lat, 99.0), 0.0});
        std::cout << "resilience: nofault  " << requests << " req in " << wall
                  << " ms (p50 " << percentile(lat, 50.0) << " ms, p99 "
                  << percentile(lat, 99.0) << " ms)\n";
    }

    // ---- Leg 3: fault sweep with a retrying client --------------------------
    bool availability_ok = true;
    for (const double rate : {0.05, 0.1, 0.2}) {
        fault::FaultPlan plan = fault::FaultPlan::parse(
            "seed:11 net.recv=error@p:" + std::to_string(rate));
        fault::arm(plan);

        net::HttpClient::Options copt;
        copt.retry.max_attempts = 8;
        copt.retry.base_backoff_ms = 1;
        copt.retry.max_backoff_ms = 20;
        copt.registry = &registry;
        const std::uint64_t retries_before =
            registry.counter("net.client.retries").value();

        std::vector<double> lat;
        lat.reserve(static_cast<std::size_t>(requests));
        std::int64_t served = 0;
        net::HttpClient client("127.0.0.1", server.port(), copt);
        for (int i = 0; i < requests; ++i) {
            const Clock::time_point t0 = Clock::now();
            try {
                const auto resp =
                    client.get(path(i % kTiles, (i / kTiles) % kTiles));
                if (resp.status == 200) {
                    ++served;
                }
            } catch (const Error&) {
                // all attempts lost to the schedule: an availability miss
            }
            lat.push_back(ms_since(t0));
        }
        fault::disarm();

        const std::uint64_t retries =
            registry.counter("net.client.retries").value() - retries_before;
        const double availability =
            100.0 * static_cast<double>(served) / static_cast<double>(requests);
        std::sort(lat.begin(), lat.end());
        const int pct = static_cast<int>(rate * 100.0 + 0.5);
        const std::string tag = "fault_p" + std::to_string(pct);
        records.push_back({tag + ".availability_pct", served, availability, 0.0});
        records.push_back({tag + ".p99_ms", requests, percentile(lat, 99.0), 0.0});
        records.push_back({tag + ".retries", static_cast<std::int64_t>(retries),
                           0.0, 0.0});
        std::cout << "resilience: " << tag << "  availability " << availability
                  << "% (" << retries << " retries, p99 "
                  << percentile(lat, 99.0) << " ms)\n";
        if (availability < 99.0) {
            availability_ok = false;
        }
    }

    // ---- Leg 4: disarm — integrity must be untouched ------------------------
    bool identical = true;
    {
        net::HttpClient client("127.0.0.1", server.port());
        for (int ty = 0; ty < kTiles; ++ty) {
            for (int tx = 0; tx < kTiles; ++tx) {
                const auto resp = client.get(path(tx, ty));
                const std::string& ref =
                    baseline[static_cast<std::size_t>(ty * kTiles + tx)];
                const TilePtr tile = direct.cache()->find(
                    TileAddress{direct.fingerprint(), TileKey{tx, ty}});
                if (resp.status != 200 || resp.body != ref ||
                    tile == nullptr || resp.body != net::encode_tile_f32(*tile)) {
                    std::cerr << "resilience: tile (" << tx << "," << ty
                              << ") not byte-identical after disarm\n";
                    identical = false;
                }
            }
        }
    }
    server.stop();
    records.push_back({"disarm.byte_identical", identical ? 1 : 0, 0.0, 0.0});

    bench::write_bench_json(out_dir, "resilience", records);
    std::cout << "resilience: wrote " << out_dir << "/BENCH_resilience.json\n";

    if (dormant_ns > 100.0) {
        std::cerr << "resilience: disarmed probe costs " << dormant_ns
                  << " ns — the zero-cost contract is broken\n";
        return 1;
    }
    if (!availability_ok) {
        std::cerr << "resilience: availability dropped below 99% — retries "
                     "did not absorb the fault schedule\n";
        return 1;
    }
    if (!identical) {
        return 1;
    }
    return 0;
}
