// Persistent L2 tile store (src/store/): what does a disk promotion cost
// relative to cold generation and to a RAM cache hit, and what does the
// conditional-GET wire path save over shipping the full tile body?
//
// Measures (a) cold tiles — every request generates (and write-throughs to
// the store); (b) RAM hits — the sharded LRU answers; (c) L2 hits — a
// fresh service over the warm segment file promotes every tile from disk
// (the warm-restart path of `rrsd --store`); (d) full-body HTTP tile
// fetches vs If-None-Match 304 answers for the same addresses.  Emits
// bench_out/BENCH_store.json for the perf trajectory.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/tile_routes.hpp"
#include "store/tile_store.hpp"

namespace {
using clock_type = std::chrono::steady_clock;
double seconds_since(clock_type::time_point t0) {
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}
}  // namespace

int main() {
    using namespace rrs;
    const bench::TraceFromEnv trace_guard;  // RRS_TRACE=file.json records spans
    std::cout << "=== L2 tile store: cold vs RAM hit vs disk promotion ===\n\n";

    const auto spectrum = make_gaussian({1.0, 10.0, 10.0});
    const ConvolutionGenerator gen(
        ConvolutionKernel::build_truncated(*spectrum,
                                           GridSpec::unit_spacing(128, 128), 1e-8),
        424242);

    constexpr std::int64_t kTileSize = 128;
    constexpr std::int64_t kTiles = 64;
    std::vector<TileKey> keys;
    for (std::int64_t t = 0; t < kTiles; ++t) {
        keys.push_back(TileKey{t % 8, t / 8});
    }

    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "rrs_bench_store";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string segment = (dir / "tiles.rrsstore").string();

    std::vector<bench::BenchRecord> records;
    auto record = [&](const std::string& name, std::int64_t n, double secs) {
        records.push_back({name, n, secs * 1e3, static_cast<double>(n) / secs});
    };

    TileService::Options opt;
    opt.shape = TileShape{kTileSize, kTileSize};
    opt.cache_bytes = std::size_t{512} << 20;

    // (a) cold generation, write-through to the store.
    {
        opt.store = std::make_shared<store::TileStore>(segment);
        TileService service(gen, opt);
        auto t0 = clock_type::now();
        for (const TileKey& key : keys) {
            (void)service.get(key);
        }
        record("cold_generate", kTiles, seconds_since(t0));

        // (b) RAM hits on the same service.
        t0 = clock_type::now();
        for (const TileKey& key : keys) {
            (void)service.get(key);
        }
        record("ram_hit", kTiles, seconds_since(t0));
        opt.store.reset();  // drop the segment's writer before reopening
    }

    // (c) warm restart: fresh service, cold RAM cache, warm segment file.
    {
        opt.store = std::make_shared<store::TileStore>(segment);
        TileService service(gen, opt);
        auto t0 = clock_type::now();
        for (const TileKey& key : keys) {
            (void)service.get(key);
        }
        record("l2_promotion", kTiles, seconds_since(t0));
        if (service.metrics().l2_promotions != static_cast<std::uint64_t>(kTiles)) {
            std::cerr << "store: expected every tile to promote from L2\n";
            return 1;
        }
        opt.store.reset();
    }

    // (d) the wire: full f32 bodies vs If-None-Match 304 answers.
    {
        opt.store = nullptr;
        net::SceneServices scenes;
        scenes.emplace("bench", std::make_shared<TileService>(gen, opt));
        net::HttpServer::Options sopt;
        sopt.workers = 2;
        net::HttpServer server(net::make_tile_router(std::move(scenes), nullptr),
                               sopt);
        server.start();
        net::HttpClient client("127.0.0.1", server.port());

        constexpr int kRequests = 256;
        std::string etag;
        auto t0 = clock_type::now();
        for (int i = 0; i < kRequests; ++i) {
            const net::ClientResponse resp =
                client.get("/v1/tile?tx=" + std::to_string(i % 8) + "&ty=0");
            if (resp.status != 200) {
                std::cerr << "store: tile fetch failed: " << resp.status << "\n";
                return 1;
            }
            if (const std::string* e = resp.header("etag")) {
                etag = *e;
            }
        }
        record("http_full_body", kRequests, seconds_since(t0));

        t0 = clock_type::now();
        for (int i = 0; i < kRequests; ++i) {
            const net::ClientResponse resp =
                client.get("/v1/tile?tx=7&ty=0", {{"If-None-Match", etag}});
            if (resp.status != 304) {
                std::cerr << "store: expected 304, got " << resp.status << "\n";
                return 1;
            }
        }
        record("http_not_modified", kRequests, seconds_since(t0));
        server.stop();
    }

    Table table({"mode", "n", "wall ms", "n/s"});
    for (const auto& r : records) {
        table.add_row({r.name, std::to_string(r.n), Table::num(r.wall_ms, 2),
                       Table::num(r.throughput, 1)});
    }
    table.print(std::cout);
    std::cout << "\nl2/cold speedup:  "
              << Table::num(records[2].throughput / records[0].throughput, 1)
              << "x  (a promotion is a checksummed memcpy from the mmap)\n"
              << "304/full speedup: "
              << Table::num(records[4].throughput / records[3].throughput, 1)
              << "x  (no body, no generation, no cache touch)\n";

    bench::write_bench_json("bench_out", "store", records);
    std::cout << "\nwrote bench_out/BENCH_store.json\n";

    std::error_code ec;
    fs::remove_all(dir, ec);
    return 0;
}
