// Experiment: the 1-D profile subsystem's statistical fidelity and
// streaming throughput (the transect counterpart of acf_accuracy —
// profiles feed the propagation studies of the paper's refs. [8]-[12]).

#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

int main() {
    using namespace rrs;
    using clock_type = std::chrono::steady_clock;
    std::cout << "=== 1-D profile generation: accuracy and throughput ===\n\n";

    struct Case {
        const char* label;
        Spectrum1DPtr s;
    };
    const Case cases[] = {
        {"gaussian-1d    h=1.0 cl=20", make_gaussian_1d({1.0, 20.0})},
        {"power-law-1d N=1.5 h=1.0 cl=20", make_power_law_1d({1.0, 20.0}, 1.5)},
        {"exponential-1d h=2.0 cl=40", make_exponential_1d({2.0, 40.0})},
    };

    Table table({"spectrum", "kernel taps", "target h", "meas h", "rho(cl)/h^2 target",
                 "measured", "Mpts/s"});
    for (const Case& c : cases) {
        const auto kernel =
            ProfileKernel::build_truncated(*c.s, LineSpec::unit_spacing(1024), 1e-8);
        const ProfileGenerator gen(kernel, 17);

        const std::int64_t n = 2'000'000;
        const auto t0 = clock_type::now();
        const auto f = gen.generate(0, n);
        const double dt = std::chrono::duration<double>(clock_type::now() - t0).count();

        const Moments m = compute_moments(f);
        const auto cl = static_cast<std::size_t>(c.s->params().cl);
        double acf_cl = 0.0;
        for (std::size_t i = 0; i + cl < f.size(); ++i) {
            acf_cl += f[i] * f[i + cl];
        }
        acf_cl /= static_cast<double>(f.size() - cl);
        const double h2 = c.s->params().h * c.s->params().h;
        table.add_row({c.label, std::to_string(kernel.size()),
                       Table::num(c.s->params().h, 2), Table::num(m.stddev, 4),
                       Table::num(c.s->autocorrelation(c.s->params().cl) / h2, 4),
                       Table::num(acf_cl / h2, 4),
                       Table::num(static_cast<double>(n) / dt / 1e6, 1)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: measured h and normalised rho(cl) match the\n"
                 "targets (1/e = 0.3679 for gaussian/exponential families).\n";
    return 0;
}
