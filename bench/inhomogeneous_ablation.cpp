// Ablation (DESIGN.md): the inhomogeneous generator's fast path blends
// per-region FFT-convolved fields (valid because the blending weights do
// not depend on the kernel tap), while the reference path evaluates the
// literal per-point blended kernel of eq. (46).
//
// Verifies the two agree to rounding and measures the speedup.

#include <chrono>
#include <iostream>

#include "bench_util.hpp"

int main() {
    using namespace rrs;
    using clock_type = std::chrono::steady_clock;
    std::cout << "=== Ablation: field-blend fast path vs per-point-kernel reference ===\n\n";

    const auto map = make_quadrant_map(
        0.0, 0.0, 512.0, make_gaussian({1.0, 10.0, 10.0}), make_gaussian({0.5, 15.0, 15.0}),
        make_exponential({2.0, 20.0, 20.0}), make_power_law({1.5, 15.0, 15.0}, 2.0), 8.0);
    const GridSpec kernel_grid = GridSpec::unit_spacing(256, 256);
    const InhomogeneousGenerator gen(map, kernel_grid, 5, {});

    Table table({"region", "max |fast - reference|", "fast s", "reference s", "speedup"});
    for (const std::int64_t n : {32, 64, 128}) {
        // Straddle the quadrant cross so all four kernels participate.
        const Rect r{-n / 2, -n / 2, n, n};
        auto t0 = clock_type::now();
        const auto fast = gen.generate(r);
        const double t_fast = std::chrono::duration<double>(clock_type::now() - t0).count();
        t0 = clock_type::now();
        const auto ref = gen.generate_reference(r);
        const double t_ref = std::chrono::duration<double>(clock_type::now() - t0).count();
        table.add_row({std::to_string(n) + "^2", Table::num(max_abs_diff(fast, ref), 14),
                       Table::num(t_fast, 3), Table::num(t_ref, 3),
                       Table::num(t_ref / t_fast, 1) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: differences at rounding level (~1e-12) and a\n"
                 "speedup that grows with the region size (the reference path is\n"
                 "O(points x taps x regions); the fast path is FFT-bound).\n";
    return 0;
}
