// Extension experiment (paper §5 / its ref. [12]): estimate the radio
// communication distance along random rough surfaces — the channel-model
// use the paper builds its generator for.
//
// Sweeps surface roughness h and correlation length cl, runs the
// ensemble range study on generated surfaces at 900 MHz sensor heights,
// and compares with the Hata open-area baseline the paper cites (ref. [7])
// as unsuitable for sensor networks.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"

int main() {
    using namespace rrs;
    std::cout << "=== Communication distance along rough surfaces (extension: ref.[12]) ===\n\n";

    const GridSpec g = GridSpec::unit_spacing(512, 512);
    RangeStudyConfig cfg;
    cfg.link = LinkGeometry{1.5, 1.5, 0.333};  // 900 MHz, sensors 1.5 m up
    cfg.budget_db = 112.0;
    cfg.paths_per_distance = 48;
    cfg.profile_samples = 257;
    const std::vector<double> distances{25.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0, 400.0, 500.0};

    std::cout << "--- (a) range vs roughness h (gaussian spectrum, cl = 15 m) ---\n";
    Table ta({"h (m)", "p_los@200m", "mean loss@200m (dB)", "est. range (m, 80% rel.)"});
    for (const double h : {0.1, 0.5, 1.0, 2.0, 4.0}) {
        const auto s = make_gaussian({h, 15.0, 15.0});
        const ConvolutionGenerator gen(ConvolutionKernel::build_truncated(*s, g, 1e-6), 7);
        const auto f = gen.generate(Rect{0, 0, 640, 640});
        const auto samples = communication_range_study(f, 1.0, distances, cfg);
        const auto& at200 = samples[5];
        ta.add_row({Table::num(h, 1), Table::num(at200.p_los, 2),
                    Table::num(at200.mean_loss_db, 1),
                    Table::num(estimated_range(samples, 0.8), 0)});
    }
    ta.print(std::cout);
    std::cout << "Expected shape (companion paper [12]): range shrinks\n"
                 "monotonically as the surface gets rougher.\n\n";

    std::cout << "--- (b) range vs correlation length (h = 1 m) ---\n";
    Table tb({"cl (m)", "p_los@200m", "mean loss@200m (dB)", "est. range (m, 80% rel.)"});
    for (const double cl : {5.0, 10.0, 20.0, 40.0, 80.0}) {
        const auto s = make_gaussian({1.0, cl, cl});
        const ConvolutionGenerator gen(ConvolutionKernel::build_truncated(*s, g, 1e-6), 7);
        const auto f = gen.generate(Rect{0, 0, 640, 640});
        const auto samples = communication_range_study(f, 1.0, distances, cfg);
        const auto& at200 = samples[5];
        tb.add_row({Table::num(cl, 0), Table::num(at200.p_los, 2),
                    Table::num(at200.mean_loss_db, 1),
                    Table::num(estimated_range(samples, 0.8), 0)});
    }
    tb.print(std::cout);
    std::cout << "Expected shape: long-cl terrain undulates gently (fewer, broader\n"
                 "obstructions per path) while short-cl terrain at the same h packs\n"
                 "many independent knife edges into a path, raising diffraction loss.\n\n";

    std::cout << "--- (c) baseline: Hata empirical model (paper ref. [7]) ---\n";
    Table tc({"environment", "loss@1km (dB)", "range @ 95 dB budget (km)"});
    for (const auto& [name, env] :
         {std::pair<const char*, HataEnvironment>{"urban", HataEnvironment::kUrbanMedium},
          {"suburban", HataEnvironment::kSuburban},
          {"open", HataEnvironment::kOpen}}) {
        const HataParams hp{900.0, 30.0, 1.5, env};
        tc.add_row({name, Table::num(hata_loss_db(hp, 1.0), 1),
                    Table::num(hata_range_km(hp, 95.0), 2)});
    }
    tc.print(std::cout);
    std::cout << "\nNote (paper §1): Hata needs a 30+ m base station and km-scale\n"
                 "distances — it cannot express ground-level sensor links over rough\n"
                 "terrain, which is exactly what the surface-based study above does.\n";
    return 0;
}
