// Tile service throughput (src/service/): what does map-tile-style serving
// cost on top of raw generation, and what do the cache and the batch
// fan-out buy?
//
// Measures (a) cold tiles — every request generates; (b) cached tiles —
// every request hits the sharded LRU (expected ≥ 10x cold); (c) a cold
// batch served single-threaded vs through the thread pool.  Emits
// bench_out/BENCH_tile_service.json for the perf trajectory.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hpp"

namespace {
using clock_type = std::chrono::steady_clock;
double seconds_since(clock_type::time_point t0) {
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}
}  // namespace

int main() {
    using namespace rrs;
    const bench::TraceFromEnv trace_guard;  // RRS_TRACE=file.json records spans
    std::cout << "=== Tile service: cold vs cached vs batched serving ===\n\n";

    const auto spectrum = make_gaussian({1.0, 10.0, 10.0});
    const ConvolutionGenerator gen(
        ConvolutionKernel::build_truncated(*spectrum, GridSpec::unit_spacing(128, 128),
                                           1e-8),
        424242);

    constexpr std::int64_t kTileSize = 128;
    constexpr std::int64_t kTiles = 64;
    std::vector<TileKey> keys;
    for (std::int64_t t = 0; t < kTiles; ++t) {
        keys.push_back(TileKey{t % 8, t / 8});
    }

    TileService::Options opt;
    opt.shape = TileShape{kTileSize, kTileSize};
    opt.cache_bytes = std::size_t{512} << 20;

    std::vector<bench::BenchRecord> records;
    auto record = [&](const std::string& name, double secs) {
        const double throughput = static_cast<double>(kTiles) / secs;
        records.push_back({name, kTiles, secs * 1e3, throughput});
        return throughput;
    };

    // (a)+(b) cold then cached, same service, serial requests.
    ThreadPool serial(1);
    opt.pool = &serial;
    TileService service(gen, opt);
    auto t0 = clock_type::now();
    for (const TileKey& key : keys) {
        (void)service.get(key);
    }
    const double cold_s = seconds_since(t0);
    const double cold_tps = record("cold_serve", cold_s);

    t0 = clock_type::now();
    for (const TileKey& key : keys) {
        (void)service.get(key);
    }
    const double cached_s = seconds_since(t0);
    const double cached_tps = record("cached_serve", cached_s);

    // (c) cold batch: 1 worker vs hardware workers (fresh service each so
    // every batch starts cold).
    TileService single(gen, opt);
    t0 = clock_type::now();
    (void)single.get_many(keys);
    const double batch1_s = seconds_since(t0);
    record("batch_1_thread", batch1_s);

    // At least 4 workers even on small machines, so the record names stay
    // comparable across hosts; on a single core the speedup honestly reads
    // ~1x (generation is CPU-bound).
    ThreadPool many(std::max<std::size_t>(4, std::thread::hardware_concurrency()));
    opt.pool = &many;
    TileService pooled(gen, opt);
    t0 = clock_type::now();
    (void)pooled.get_many(keys);
    const double batchN_s = seconds_since(t0);
    record("batch_" + std::to_string(many.thread_count()) + "_threads", batchN_s);

    Table table({"mode", "tiles", "wall ms", "tiles/s"});
    for (const auto& r : records) {
        table.add_row({r.name, std::to_string(r.n), Table::num(r.wall_ms, 2),
                       Table::num(r.throughput, 1)});
    }
    table.print(std::cout);

    std::cout << "\ncached/cold speedup:  " << Table::num(cached_tps / cold_tps, 1)
              << "x  (expect >= 10x — a hit is a shared_ptr copy)\n"
              << "batch pool speedup:   " << Table::num(batch1_s / batchN_s, 2) << "x over "
              << many.thread_count() << " workers\n"
              << "service metrics:      " << service.metrics().to_json() << "\n";

    bench::write_bench_json("bench_out", "tile_service", records);
    std::cout << "\nwrote bench_out/BENCH_tile_service.json\n";
    return 0;
}
