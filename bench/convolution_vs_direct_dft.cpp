// Experiment (paper §2.4): the convolution method produces surfaces with
// the same statistics as the direct DFT method — and is the flexible one.
//
// Prints (a) the exact eq. (30)↔(36) identity residual for a shared noise
// array, (b) statistical agreement over an ensemble, (c) wall-clock of
// both methods across grid sizes.

#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/hermitian_noise.hpp"
#include "fft/fft2d.hpp"

namespace {
using clock_type = std::chrono::steady_clock;
double seconds_since(clock_type::time_point t0) {
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}
}  // namespace

int main() {
    using namespace rrs;
    const bench::TraceFromEnv trace_guard;  // RRS_TRACE=file.json records spans
    std::cout << "=== Convolution method vs direct DFT method (paper sec 2.4) ===\n\n";

    const SurfaceParams p{1.0, 20.0, 20.0};
    const auto s = make_gaussian(p);

    // (a) identity: Z = DFT(v u) == circular conv of kernel with DFT(u)/sqrt(N²).
    {
        const std::size_t N = 256;
        const GridSpec g = GridSpec::unit_spacing(N, N);
        BoxMullerGaussian<Pcg64> gauss{Pcg64{1}};
        const auto u = hermitian_gaussian_array(N, N, [&gauss]() { return gauss(); });
        const auto v = sqrt_weight_array(*s, g);
        Array2D<cplx> z(N, N);
        for (std::size_t i = 0; i < z.size(); ++i) {
            z.data()[i] = u.data()[i] * v.data()[i];
        }
        Fft2D plan(N, N);
        plan.forward(z);

        // The white array of eq. (33): X = DFT(u)/√(N²), in space domain.
        Array2D<cplx> X = u;
        plan.forward(X);
        const double scale = 1.0 / std::sqrt(static_cast<double>(N * N));
        for (std::size_t i = 0; i < X.size(); ++i) {
            X.data()[i] *= scale;
        }
        // Circular convolution kernel ⊛ X via the frequency domain.
        const auto img = ConvolutionKernel::build(*s, g).wrapped_image(N, N);
        Array2D<cplx> K(N, N);
        for (std::size_t i = 0; i < K.size(); ++i) {
            K.data()[i] = cplx{img.data()[i], 0.0};
        }
        plan.forward(K);
        plan.forward(X);
        for (std::size_t i = 0; i < X.size(); ++i) {
            X.data()[i] *= K.data()[i];
        }
        plan.inverse(X);
        double md = 0.0;
        for (std::size_t i = 0; i < X.size(); ++i) {
            md = std::max(md, std::abs(X.data()[i].real() - z.data()[i].real()));
        }
        std::cout << "eq.(30) vs eq.(36) chain on shared noise, max |diff| = " << md
                  << "  (identity: expect ~1e-12)\n\n";
    }

    // (b) statistical agreement + (c) timing across sizes.
    Table table({"grid", "direct-DFT sd", "convolution sd", "direct-DFT s/surface",
                 "convolution s/surface"});
    std::vector<bench::BenchRecord> records;
    for (const std::size_t N : {256u, 512u, 1024u}) {
        const GridSpec g = GridSpec::unit_spacing(N, N);
        DirectDftGenerator dgen(s, g);
        const ConvolutionGenerator cgen(ConvolutionKernel::build_truncated(*s, g, 1e-8),
                                        99);
        const int reps = 3;
        MomentAccumulator dacc, cacc;
        auto t0 = clock_type::now();
        for (int r = 0; r < reps; ++r) {
            const auto f = dgen.generate(static_cast<std::uint64_t>(r));
            for (std::size_t i = 0; i < f.size(); ++i) {
                dacc.add(f.data()[i]);
            }
        }
        const double td = seconds_since(t0) / reps;
        t0 = clock_type::now();
        for (int r = 0; r < reps; ++r) {
            const auto f = cgen.generate(Rect{static_cast<std::int64_t>(N) * r * 2, 0,
                                              static_cast<std::int64_t>(N),
                                              static_cast<std::int64_t>(N)});
            for (std::size_t i = 0; i < f.size(); ++i) {
                cacc.add(f.data()[i]);
            }
        }
        const double tc = seconds_since(t0) / reps;
        table.add_row({std::to_string(N) + "^2", Table::num(dacc.stddev(), 4),
                       Table::num(cacc.stddev(), 4), Table::num(td, 3),
                       Table::num(tc, 3)});
        const auto points = static_cast<std::int64_t>(N * N);
        records.push_back({"direct_dft_" + std::to_string(N), points, td * 1e3,
                           static_cast<double>(points) / td});
        records.push_back({"convolution_" + std::to_string(N), points, tc * 1e3,
                           static_cast<double>(points) / tc});
    }
    table.print(std::cout);
    bench::write_bench_json("bench_out", "convolution_vs_direct_dft", records);
    std::cout << "\nwrote bench_out/BENCH_convolution_vs_direct_dft.json\n";
    std::cout << "\nExpected shape: both methods deliver sd ~ h = " << p.h
              << "; comparable cost per surface (both FFT-bound), with the\n"
              << "convolution method additionally supporting unbounded/streamed\n"
              << "and inhomogeneous generation (figs. 1-4, streaming bench).\n";
    return 0;
}
