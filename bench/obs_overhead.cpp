// Observability overhead guard: span tracing must be free when disabled
// and cheap when enabled.
//
// Times the convolution pipeline (the most densely instrumented path:
// noise fill, FFT forward/inverse, kernel cache, per-tile counters) in
// three modes — tracing disabled, tracing enabled, and enabled with the
// ring pre-saturated (drop path) — and fails the run if the enabled
// overhead exceeds the guard bound.  The disabled mode is the contract
// the library ships with: a relaxed atomic load per span site.
//
// Emits bench_out/BENCH_obs_overhead.json for the perf trajectory.

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"

namespace {
using clock_type = std::chrono::steady_clock;
double seconds_since(clock_type::time_point t0) {
    return std::chrono::duration<double>(clock_type::now() - t0).count();
}
}  // namespace

int main() {
    using namespace rrs;
    std::cout << "=== Observability overhead: tracing disabled vs enabled ===\n\n";

    // Small tiles (many spans per unit work) make this a worst-ish case:
    // the span-site cost is amortised over less generation work.
    const auto spectrum = make_gaussian({1.0, 8.0, 8.0});
    const ConvolutionGenerator gen(
        ConvolutionKernel::build_truncated(*spectrum, GridSpec::unit_spacing(64, 64),
                                           1e-6),
        1234);
    constexpr std::int64_t kTile = 64;
    constexpr int kReps = 64;
    constexpr int kRounds = 5;  // best-of to shed scheduler noise

    auto run_once = [&]() {
        const auto t0 = clock_type::now();
        for (int r = 0; r < kReps; ++r) {
            (void)gen.generate(
                Rect{static_cast<std::int64_t>(r) * kTile * 2, 0, kTile, kTile});
        }
        return seconds_since(t0);
    };

    // Interleave disabled/enabled rounds and take best-of each mode, so
    // CPU frequency ramp-up and scheduler noise hit both modes alike
    // instead of biasing whichever mode runs last.
    obs::trace_disable();
    (void)run_once();  // warm the kernel-FFT cache and the page cache
    (void)run_once();
    double disabled_s = 1e30;
    double enabled_s = 1e30;
    std::size_t spans = 0;
    for (int i = 0; i < kRounds; ++i) {
        obs::trace_disable();
        disabled_s = std::min(disabled_s, run_once());
        obs::trace_reset();  // empty ring each round: measure record, not drop
        obs::trace_enable();
        enabled_s = std::min(enabled_s, run_once());
        spans = obs::trace_events().size();
    }
    obs::trace_disable();

    const double overhead = enabled_s / disabled_s - 1.0;

    Table table({"mode", "tiles", "wall ms", "tiles/s"});
    std::vector<bench::BenchRecord> records;
    auto record = [&](const std::string& name, double secs) {
        records.push_back({name, kReps, secs * 1e3, kReps / secs});
        table.add_row({name, std::to_string(kReps), Table::num(secs * 1e3, 2),
                       Table::num(kReps / secs, 1)});
    };
    record("trace_disabled", disabled_s);
    record("trace_enabled", enabled_s);
    table.print(std::cout);

    std::cout << "\nenabled spans recorded: " << spans
              << "\nenabled overhead:       " << Table::num(overhead * 100.0, 2)
              << "% of best disabled run\n";

    bench::write_bench_json("bench_out", "obs_overhead", records);
    std::cout << "\nwrote bench_out/BENCH_obs_overhead.json\n";

    // Guard: the design target is <= 2% enabled overhead; the assert bound
    // is looser (10%) so shared-runner timing noise does not flake CI, while
    // still catching an accidental lock or allocation on the span path.
    constexpr double kGuard = 0.10;
    if (overhead > kGuard) {
        std::cerr << "obs_overhead: FAIL — enabled tracing costs "
                  << Table::num(overhead * 100.0, 2) << "% (> "
                  << Table::num(kGuard * 100.0, 0) << "% guard)\n";
        return 1;
    }
    std::cout << "\nguard ok: enabled overhead within "
              << Table::num(kGuard * 100.0, 0) << "%\n";
    return 0;
}
