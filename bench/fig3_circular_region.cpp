// Figure 3 reproduction: "Inhomogeneous 2D RRS with a circular region"
// (paper §4) — a pond in a field.
//
//   inside the circle of radius 500: Exponential, h = 0.2, cl = 50
//   outside:                          Gaussian,   h = 1.0, cl = 50
//   transition half-width T = 100.

#include <cmath>
#include <iostream>
#include <memory>

#include "bench_util.hpp"

int main(int argc, char** argv) {
    using namespace rrs;
    using namespace rrs::bench;
    const std::int64_t N = argc > 1 ? std::atoll(argv[1]) : 2048;
    const std::int64_t half = N / 2;
    const double R = 500.0;
    const double T = 100.0;

    std::cout << "=== Fig. 3: circular region (exponential pond in gaussian field) ===\n"
              << "domain " << N << "^2, R = " << R << ", T = " << T << "\n\n";

    const auto inside = make_exponential({0.2, 50.0, 50.0});
    const auto outside = make_gaussian({1.0, 50.0, 50.0});
    const auto map = std::make_shared<const CircleMap>(0.0, 0.0, R, inside, outside, T);
    const GridSpec kernel_grid = GridSpec::unit_spacing(1024, 1024);

    const InhomogeneousGenerator gen(map, kernel_grid, 7, {});
    const auto f = gen.generate(Rect{-half, -half, N, N});

    // Radial profile of the measured height stddev: annular bins.
    Table table({"radius band", "blend g_in", "expected sd", "measured sd"});
    const double bands[][2] = {{0, 250}, {250, 400}, {400, 500}, {500, 600}, {600, 800},
                               {800, 1000}};
    for (const auto& band : bands) {
        MomentAccumulator acc;
        for (std::int64_t iy = -half; iy < half; ++iy) {
            for (std::int64_t ix = -half; ix < half; ++ix) {
                const double r = std::hypot(static_cast<double>(ix), static_cast<double>(iy));
                if (r >= band[0] && r < band[1]) {
                    acc.add(f(static_cast<std::size_t>(ix + half),
                              static_cast<std::size_t>(iy + half)));
                }
            }
        }
        const double mid = 0.5 * (band[0] + band[1]);
        std::vector<double> g(2);
        map->weights_at(mid, 0.0, g);
        const double expect_sd = std::sqrt(gen.expected_variance(mid, 0.0));
        table.add_row({Table::num(band[0], 0) + "-" + Table::num(band[1], 0),
                       Table::num(g[0], 2), Table::num(expect_sd, 3),
                       Table::num(acc.stddev(), 3)});
    }
    table.print(std::cout);

    dump_surface("bench_out/fig3", "surface", f, static_cast<double>(-half),
                 static_cast<double>(-half));
    // Also dump the blend weight field for the transition plot.
    const auto g_in = gen.blend_weights(Rect{-half, -half, N, N}, 0);
    dump_surface("bench_out/fig3", "blend_inside", g_in, static_cast<double>(-half),
                 static_cast<double>(-half));

    std::cout << "\nwrote bench_out/fig3/{surface,blend_inside}.{pgm,dat,npy}\n"
              << "Expected shape (paper Fig. 3): a visibly calm circular pond\n"
              << "(sd 0.2) inside rough terrain (sd 1.0), sd ramping linearly\n"
              << "across the annulus [R-T, R+T] = [400, 600].\n";
    return 0;
}
