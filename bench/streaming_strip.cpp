// Experiment (paper §2.4): "once the weighting array is computed, we can
// generate any size of continuous RRSs ... by successive computations".
//
// Streams a long strip tile by tile, then verifies: (a) exact agreement
// with a one-shot generation of the same rows; (b) no statistical seam
// artifacts; (c) throughput as the strip grows (constant per-tile cost).

#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

int main() {
    using namespace rrs;
    using clock_type = std::chrono::steady_clock;
    std::cout << "=== Streaming: arbitrarily long RRS by successive computation ===\n\n";

    const auto s = make_gaussian({1.0, 15.0, 15.0});
    const GridSpec g = GridSpec::unit_spacing(256, 256);
    const ConvolutionGenerator gen(ConvolutionKernel::build_truncated(*s, g, 1e-8), 2024);

    const std::int64_t width = 512;
    const std::int64_t rows = 128;

    // (a) exactness of the seams.
    StripStreamer streamer(gen, 0, width, 0, rows);
    const auto streamed = streamer.take(4);
    const auto oneshot = gen.generate(Rect{0, 0, width, 4 * rows});
    std::cout << "streamed (4 tiles of " << width << "x" << rows
              << ") vs one-shot: max |diff| = " << max_abs_diff(streamed, oneshot)
              << "  (expect 0: coordinate-hashed noise)\n\n";

    // (b) per-tile statistics along a long march.
    Table table({"tile rows", "mean", "stddev", "cl_x", "s/tile"});
    StripStreamer long_stream(gen, 0, width, 0, rows);
    for (int t = 0; t < 8; ++t) {
        const auto t0 = clock_type::now();
        const auto tile = long_stream.next();
        const double dt = std::chrono::duration<double>(clock_type::now() - t0).count();
        const Moments m = compute_moments({tile.data(), tile.size()});
        const auto acf = circular_autocovariance(tile, true);
        const double clx = estimate_correlation_length(lag_slice_x(acf, 60));
        std::string band = "[";
        band += std::to_string(t * rows);
        band += ",";
        band += std::to_string((t + 1) * rows);
        band += ")";
        table.add_row({std::move(band), Table::num(m.mean, 3), Table::num(m.stddev, 3),
                       Table::num(clx, 1), Table::num(dt, 3)});
    }
    table.print(std::cout);

    // (c) cross-seam correlation equals interior correlation.
    const auto two = StripStreamer(gen, 0, width, 0, rows).take(2);
    auto row_corr = [&](std::size_t iy) {
        double c = 0.0, v = 0.0;
        for (std::size_t ix = 0; ix < two.nx(); ++ix) {
            c += two(ix, iy) * two(ix, iy + 1);
            v += two(ix, iy) * two(ix, iy);
        }
        return c / v;
    };
    std::cout << "\nrow-to-row correlation across the seam: " << Table::num(row_corr(127), 4)
              << "   inside a tile: " << Table::num(row_corr(64), 4)
              << "  (expect equal: no seam)\n"
              << "\nExpected shape: stationary per-tile statistics (sd ~ 1, cl ~ 15),\n"
                 "constant per-tile cost, zero seam error at any strip length.\n";
    return 0;
}
