// Figure 4 reproduction: "Inhomogeneous 2D RRS with a circular region and
// three sectors" (paper §4) — the point-oriented method.
//
// Nine representative points at n(i) = 1000·(cos 2πi/9, sin 2πi/9) plus a
// tenth at the origin:
//   i = 1..3: Gaussian    h = 1.0, cl = 50
//   i = 4..6: Gaussian    h = 1.5, cl = 75
//   i = 7..9: Gaussian    h = 2.0, cl = 100
//   i = 10  : Exponential h = 0.5, cl = 100  (origin)
// (paper coordinates "cos(2πi/9)" with unit-less magnitudes; we scale the
// ring to radius 1000 so the sectors are resolved on the lattice.)

#include <cmath>
#include <iostream>
#include <memory>

#include "bench_util.hpp"

int main(int argc, char** argv) {
    using namespace rrs;
    using namespace rrs::bench;
    const std::int64_t N = argc > 1 ? std::atoll(argv[1]) : 2048;
    const std::int64_t half = N / 2;
    const double ring = 1000.0;
    const double T = 100.0;

    std::cout << "=== Fig. 4: point-oriented method, 9 ring points + origin ===\n"
              << "domain " << N << "^2, ring radius " << ring << ", T = " << T << "\n\n";

    std::vector<RepresentativePoint> pts;
    std::vector<double> target_h;
    for (int i = 1; i <= 9; ++i) {
        const double ang = kTwoPi * i / 9.0;
        SpectrumPtr s;
        if (i <= 3) {
            s = make_gaussian({1.0, 50.0, 50.0});
            target_h.push_back(1.0);
        } else if (i <= 6) {
            s = make_gaussian({1.5, 75.0, 75.0});
            target_h.push_back(1.5);
        } else {
            s = make_gaussian({2.0, 100.0, 100.0});
            target_h.push_back(2.0);
        }
        pts.push_back({ring * std::cos(ang), ring * std::sin(ang), std::move(s)});
    }
    pts.push_back({0.0, 0.0, make_exponential({0.5, 100.0, 100.0})});
    target_h.push_back(0.5);

    const auto map = std::make_shared<const PointMap>(pts, T);
    const GridSpec kernel_grid = GridSpec::unit_spacing(1024, 1024);

    // The figure's statistical content is four zones: three ring sectors of
    // increasing roughness plus the central pond.  Pool heights over each
    // zone's pure-ownership region (blend weight >= 0.99) across seeds.
    struct Zone {
        const char* name;
        double target_h;
        MomentAccumulator acc;
    };
    Zone zones[] = {{"sector i=1..3 (gaussian h=1.0 cl=50)", 1.0, {}},
                    {"sector i=4..6 (gaussian h=1.5 cl=75)", 1.5, {}},
                    {"sector i=7..9 (gaussian h=2.0 cl=100)", 2.0, {}},
                    {"centre i=10  (exponential h=0.5 cl=100)", 0.5, {}}};
    auto zone_of = [](std::size_t m) { return m < 9 ? m / 3 : 3u; };

    Array2D<double> f;
    const int reps = 3;
    for (int rep = 0; rep < reps; ++rep) {
        const InhomogeneousGenerator gen(map, kernel_grid,
                                         11 + static_cast<std::uint64_t>(rep), {});
        f = gen.generate(Rect{-half, -half, N, N});
        std::vector<double> g(pts.size());
        for (std::int64_t iy = -half; iy < half; ++iy) {
            for (std::int64_t ix = -half; ix < half; ++ix) {
                map->weights_at(static_cast<double>(ix), static_cast<double>(iy), g);
                for (std::size_t m = 0; m < g.size(); ++m) {
                    if (g[m] >= 0.99) {
                        zones[zone_of(m)].acc.add(f(static_cast<std::size_t>(ix + half),
                                                    static_cast<std::size_t>(iy + half)));
                        break;
                    }
                }
            }
        }
    }
    Table table({"zone", "target h", "measured h", "samples"});
    for (auto& z : zones) {
        table.add_row({z.name, Table::num(z.target_h, 2), Table::num(z.acc.stddev(), 3),
                       std::to_string(z.acc.count())});
    }
    table.print(std::cout);

    dump_surface("bench_out/fig4", "surface", f, static_cast<double>(-half),
                 static_cast<double>(-half));
    // Ownership map for the sector plot: index of the dominant region.
    Array2D<double> owner(static_cast<std::size_t>(N / 4), static_cast<std::size_t>(N / 4));
    std::vector<double> g(pts.size());
    for (std::size_t iy = 0; iy < owner.ny(); ++iy) {
        for (std::size_t ix = 0; ix < owner.nx(); ++ix) {
            map->weights_at(static_cast<double>(4 * static_cast<std::int64_t>(ix) - half),
                            static_cast<double>(4 * static_cast<std::int64_t>(iy) - half), g);
            std::size_t best = 0;
            for (std::size_t k = 1; k < g.size(); ++k) {
                if (g[k] > g[best]) {
                    best = k;
                }
            }
            owner(ix, iy) = static_cast<double>(best);
        }
    }
    ensure_directory("bench_out/fig4");
    write_pgm16("bench_out/fig4/ownership.pgm", owner);

    std::cout << "\nwrote bench_out/fig4/{surface.pgm,dat,npy, ownership.pgm}\n"
              << "Expected shape (paper Fig. 4): a smooth exponential disc at the\n"
              << "origin surrounded by three 120-degree sectors of increasing\n"
              << "roughness (h = 1.0 -> 1.5 -> 2.0), blended across sector borders.\n";
    return 0;
}
