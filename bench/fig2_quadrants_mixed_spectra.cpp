// Figure 2 reproduction: "Inhomogeneous 2D RRS with four different spectra
// and parameters" (paper §4).
//
// Plate-oriented quadrants with different spectral families:
//   1st: Gaussian        h = 1.0, cl = 40
//   2nd: Power-Law N=2   h = 0.5, cl = 60
//   3rd: Exponential     h = 2.0, cl = 80
//   4th: Power-Law N=3   h = 1.5, cl = 60

#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
    using namespace rrs;
    using namespace rrs::bench;
    const std::int64_t N = argc > 1 ? std::atoll(argv[1]) : 2048;
    const std::int64_t half = N / 2;
    const int reps = 6;

    std::cout << "=== Fig. 2: quadrants with four different spectra ===\n"
              << "domain " << N << "^2, plate-oriented, transition half-width 20\n\n";

    struct Q {
        const char* name;
        SpectrumPtr s;
        double wx, wy;
    };
    const Q quads[] = {
        {"1st gaussian    h=1.0 cl=40", make_gaussian({1.0, 40.0, 40.0}), 0.75, 0.75},
        {"2nd power-law2  h=0.5 cl=60", make_power_law({0.5, 60.0, 60.0}, 2.0), 0.25, 0.75},
        {"3rd exponential h=2.0 cl=80", make_exponential({2.0, 80.0, 80.0}), 0.25, 0.25},
        {"4th power-law3  h=1.5 cl=60", make_power_law({1.5, 60.0, 60.0}, 3.0), 0.75, 0.25},
    };

    const auto map =
        make_quadrant_map(0.0, 0.0, static_cast<double>(half), quads[0].s, quads[1].s,
                          quads[2].s, quads[3].s, 20.0);
    const GridSpec kernel_grid = GridSpec::unit_spacing(1024, 1024);

    const std::size_t win = static_cast<std::size_t>(3 * N / 10);
    Table table({"quadrant", "target h", "meas h", "analytic 1/e dist", "discrete 1/e dist",
                 "meas cl_x"});

    for (const Q& q : quads) {
        const double h = q.s->params().h;
        // For power-law spectra the 1/e crossing of ρ is NOT cl; compare
        // against the analytic crossing instead (library helper).  The
        // band-limited discrete expectation (1/e crossing of DFT(w)) is the
        // honest target for slow-decaying spectra such as the exponential,
        // whose sub-lattice roughness cannot be represented.
        const double expect_cl = correlation_distance(*q.s, std::exp(-1.0));
        const auto rho_hat = weight_autocorr_check(weight_array(*q.s, kernel_grid));
        const double discrete_cl = estimate_correlation_length(
            lag_slice_x(rho_hat, static_cast<std::size_t>(5.0 * expect_cl)));
        const auto stats = averaged_window_stats(
            [&](std::uint64_t seed) {
                const InhomogeneousGenerator gen(map, kernel_grid, seed, {});
                const auto f = gen.generate(Rect{-half, -half, N, N});
                return crop(f, static_cast<std::size_t>(q.wx * static_cast<double>(N)) - win / 2,
                            static_cast<std::size_t>(q.wy * static_cast<double>(N)) - win / 2,
                            win, win);
            },
            reps, static_cast<std::size_t>(4.0 * expect_cl));
        table.add_row({q.name, Table::num(h, 2), Table::num(stats.moments.stddev, 3),
                       Table::num(expect_cl, 1), Table::num(discrete_cl, 1),
                       Table::num(stats.cl_x, 1)});
    }
    table.print(std::cout);

    const InhomogeneousGenerator gen(map, kernel_grid, 42, {});
    const auto f = gen.generate(Rect{-half, -half, N, N});
    dump_surface("bench_out/fig2", "surface", f, static_cast<double>(-half),
                 static_cast<double>(-half));
    std::cout << "\nwrote bench_out/fig2/surface.{pgm,dat,npy}\n"
              << "Expected shape (paper Fig. 2): the exponential quadrant shows\n"
              << "fine-scale jaggedness on top of its large-h swell (slow spectral\n"
              << "decay), the gaussian quadrant is smooth, power-law in between.\n";
    return 0;
}
