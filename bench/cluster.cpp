// cluster — horizontal-scaling capacity of the sharded tile fleet
// (DESIGN.md §17), measured end to end through the routing proxy.
//
// A single container core cannot demonstrate CPU-bound speedup, so the
// harness models per-node generation capacity the same way the chaos tier
// models failures: the process-global `tile.generate=latency:L` fault site
// stalls every cold generation for L ms.  Sleeps overlap freely across
// threads, so a node's capacity is (workers / L) tiles per second — exactly
// the shape of a fleet whose nodes are CPU-bound on real kernels — and the
// measured speedup is the routing/stitching stack's, not the scheduler's.
//
// Legs, all loopback:
//
//  1. single_node: one rrsd-shaped shard (HttpServer, workers=W) swept cold
//     over T tiles by W concurrent clients.  The bodies are kept as the
//     reference.
//  2. cluster_3node: three cold shards of the same scene behind a
//     make_cluster_router proxy, swept over the SAME T tiles by 3·W
//     concurrent clients.  Every proxied body must be byte-identical to
//     leg 1's — the stitching contract — and the per-shard traffic spread
//     is checked via the proxy's cluster.node.<name>.requests counters.
//
// The sweep is owner-balanced (equal tile counts per shard, chosen by
// scanning a uniform grid with the ShardMap): the harness measures capacity
// scaling at matched load, not rendezvous-hash variance — balance itself is
// chi-square-tested in tests/test_cluster.cpp.
//
// Exits non-zero unless the 3-node fleet sustains >= 2.5x the single-node
// throughput (ideal 3.0x) with all bodies byte-identical.
//
//   cluster [--quick] [--out-dir DIR]
//
// Writes bench_out/BENCH_cluster.json via bench_util.hpp.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "cluster/client.hpp"
#include "cluster/proxy.hpp"
#include "cluster/shard_map.hpp"
#include "cluster/topology.hpp"
#include "fault/inject.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/tile_routes.hpp"
#include "obs/metrics.hpp"
#include "service/tile_service.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using rrs::Array2D;
using rrs::Rect;
using rrs::TileKey;
using rrs::TileService;
using rrs::TileShape;

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

constexpr std::uint64_t kFingerprint = 77;
constexpr std::size_t kWorkers = 8;  // per shard == client concurrency per node

/// Deterministic coordinate-stamped payload: generation cost is the
/// injected latency, and a mis-routed tile is detectable by value.
Array2D<double> stamp_tile(const Rect& r) {
    Array2D<double> out(static_cast<std::size_t>(r.nx),
                        static_cast<std::size_t>(r.ny));
    for (std::size_t iy = 0; iy < out.ny(); ++iy) {
        for (std::size_t ix = 0; ix < out.nx(); ++ix) {
            out(ix, iy) =
                static_cast<double>(r.x0 + static_cast<std::int64_t>(ix)) +
                1000.0 * static_cast<double>(r.y0 + static_cast<std::int64_t>(iy));
        }
    }
    return out;
}

struct Shard {
    std::shared_ptr<TileService> service;
    std::unique_ptr<rrs::obs::MetricsRegistry> registry;
    std::unique_ptr<rrs::net::HttpServer> server;
};

Shard boot_shard() {
    Shard shard;
    TileService::Options sopt;
    sopt.shape = TileShape{32, 32};
    sopt.cache_bytes = std::size_t{64} << 20;
    shard.service =
        std::make_shared<TileService>(stamp_tile, kFingerprint, sopt, nullptr);
    rrs::net::SceneServices scenes;
    scenes.emplace("bench", shard.service);
    shard.registry = std::make_unique<rrs::obs::MetricsRegistry>();
    rrs::net::HttpServer::Options opt;
    opt.workers = kWorkers;
    opt.registry = shard.registry.get();
    shard.server = std::make_unique<rrs::net::HttpServer>(
        rrs::net::make_tile_router(std::move(scenes), shard.registry.get()), opt);
    shard.server->start();
    return shard;
}

std::string tile_target(const TileKey& key) {
    return "/v1/tile?tx=" + std::to_string(key.tx) +
           "&ty=" + std::to_string(key.ty);
}

/// Sweep `keys` against `port` with `concurrency` keep-alive clients pulling
/// from a shared queue; bodies land in `bodies` aligned with `keys`.
/// Each driver first drains `warm_keys` (untimed): on a single core, thread
/// spawn plus 2·concurrency lazy TCP connects (driver→proxy, proxy→shard
/// pool) cost the same order as one generation round, so the clock starts
/// only once every connection on the path is established.  Returns wall ms
/// of the timed phase; any non-200 aborts the harness.
double sweep(std::uint16_t port, const std::vector<TileKey>& warm_keys,
             const std::vector<TileKey>& keys, std::size_t concurrency,
             std::vector<std::string>& bodies) {
    bodies.assign(keys.size(), {});
    std::atomic<std::size_t> warm_next{0};
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> ready{0};
    std::atomic<bool> go{false};
    std::atomic<bool> failed{false};
    std::vector<std::thread> drivers;
    drivers.reserve(concurrency);
    for (std::size_t t = 0; t < concurrency; ++t) {
        drivers.emplace_back([&] {
            rrs::net::HttpClient client("127.0.0.1", port);
            const auto fetch = [&](const TileKey& key,
                                   std::string* out) -> bool {
                try {
                    rrs::net::ClientResponse resp = client.get(tile_target(key));
                    if (resp.status != 200) {
                        std::cerr << "cluster bench: tile (" << key.tx << ","
                                  << key.ty << ") -> " << resp.status << "\n";
                        failed.store(true);
                        return false;
                    }
                    if (out != nullptr) {
                        *out = std::move(resp.body);
                    }
                    return true;
                } catch (const rrs::Error& e) {
                    std::cerr << "cluster bench: tile (" << key.tx << ","
                              << key.ty << "): " << e.what() << "\n";
                    failed.store(true);
                    return false;
                }
            };
            while (true) {
                const std::size_t i = warm_next.fetch_add(1);
                if (i >= warm_keys.size() || failed.load()) {
                    break;
                }
                if (!fetch(warm_keys[i], nullptr)) {
                    break;
                }
            }
            ready.fetch_add(1);
            while (!go.load(std::memory_order_acquire)) {
                std::this_thread::yield();
            }
            while (true) {
                const std::size_t i = next.fetch_add(1);
                if (i >= keys.size() || failed.load()) {
                    return;
                }
                if (!fetch(keys[i], &bodies[i])) {
                    return;
                }
            }
        });
    }
    while (ready.load() < concurrency && !failed.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const Clock::time_point t0 = Clock::now();
    go.store(true, std::memory_order_release);
    for (std::thread& d : drivers) {
        d.join();
    }
    if (failed.load()) {
        std::exit(1);
    }
    return ms_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace rrs;
    bench::TraceFromEnv trace;

    bool quick = false;
    std::string out_dir = "bench_out";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out-dir" && i + 1 < argc) {
            out_dir = argv[++i];
        } else {
            std::cerr << "usage: cluster [--quick] [--out-dir DIR]\n";
            return 2;
        }
    }

    const int latency_ms = 15;
    const std::size_t per_shard = quick ? 32 : 80;  // tiles owned per node

    // Build the fleet first: the sweep set is owner-balanced, so the keys
    // depend on the live topology's ports (names salt the hash, but the
    // harness only needs the owner buckets).
    fault::disarm();
    std::vector<Shard> fleet;
    for (int i = 0; i < 3; ++i) {
        fleet.push_back(boot_shard());
    }
    cluster::Topology topo;
    topo.epoch = 1;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        cluster::NodeSpec spec;
        // (+= sidesteps a gcc-12 -Wrestrict false positive on operator+)
        spec.name = "n";
        spec.name += std::to_string(i + 1);
        spec.host = "127.0.0.1";
        spec.port = fleet[i].server->port();
        topo.nodes.push_back(std::move(spec));
    }
    const cluster::ShardMap map(topo);
    std::vector<std::vector<TileKey>> buckets(3);
    for (std::int64_t ty = 0; ty < 64; ++ty) {
        for (std::int64_t tx = 0; tx < 64; ++tx) {
            const TileKey key{tx, ty, 0};
            std::vector<TileKey>& bucket = buckets[map.owner(kFingerprint, key)];
            if (bucket.size() < per_shard + kWorkers) {
                bucket.push_back(key);
            }
        }
    }
    // First per_shard of each bucket are measured; the kWorkers extras are
    // sacrificial warm-up keys (establish every connection, never timed).
    std::vector<TileKey> keys;
    std::vector<TileKey> warm;
    for (std::size_t i = 0; i < per_shard + kWorkers; ++i) {
        for (const auto& bucket : buckets) {
            if (bucket.size() != per_shard + kWorkers) {
                std::cerr << "cluster bench: owner bucket underfilled\n";
                return 1;
            }
            (i < per_shard ? keys : warm).push_back(bucket[i]);
        }
    }

    // Every cold generation — on any shard — stalls latency_ms: the
    // capacity model (file comment).
    fault::arm(fault::FaultPlan::parse(
        "seed:1 tile.generate=latency:" + std::to_string(latency_ms) +
        "@every:1"));

    // ---- Leg 1: single node -------------------------------------------------
    Shard single = boot_shard();
    std::vector<std::string> reference;
    const std::vector<TileKey> warm_single(warm.begin(),
                                           warm.begin() + kWorkers);
    const double single_ms = sweep(single.server->port(), warm_single, keys,
                                   kWorkers, reference);
    single.server->stop();
    const double single_tps = 1000.0 * static_cast<double>(keys.size()) / single_ms;
    std::cout << "cluster: single_node " << keys.size() << " cold tiles in "
              << single_ms << " ms (" << single_tps << " tiles/s, latency "
              << latency_ms << " ms, workers " << kWorkers << ")\n";

    // ---- Leg 2: 3-node fleet through the proxy ------------------------------
    obs::MetricsRegistry proxy_registry;
    cluster::ClusterOptions copt;
    copt.connections_per_node = kWorkers;
    copt.fanout_threads = 3 * kWorkers;
    copt.registry = &proxy_registry;
    auto client = std::make_shared<cluster::ClusterClient>(topo, copt);
    net::HttpServer::Options popt;
    popt.workers = 4 * kWorkers;  // never the bottleneck: forwards block
    popt.registry = &proxy_registry;
    net::HttpServer proxy(cluster::make_cluster_router(client, &proxy_registry),
                          popt);
    proxy.start();

    std::vector<std::string> proxied;
    const double fleet_ms =
        sweep(proxy.port(), warm, keys, 3 * kWorkers, proxied);
    const double fleet_tps = 1000.0 * static_cast<double>(keys.size()) / fleet_ms;
    const double speedup = fleet_tps / single_tps;
    std::cout << "cluster: cluster_3node " << keys.size() << " cold tiles in "
              << fleet_ms << " ms (" << fleet_tps << " tiles/s) -> speedup "
              << speedup << "x\n";

    fault::disarm();

    // Byte-identity: every proxied body equals the single-node body.
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (proxied[i] != reference[i]) {
            std::cerr << "cluster bench: tile (" << keys[i].tx << ","
                      << keys[i].ty << ") proxied body differs from single-node\n";
            return 1;
        }
    }
    // Traffic really spread: each shard served its third.
    for (const char* name : {"n1", "n2", "n3"}) {
        const std::uint64_t forwarded =
            proxy_registry.counter(std::string("cluster.node.") + name +
                                   ".requests")
                .value();
        if (forwarded < per_shard) {
            std::cerr << "cluster bench: shard " << name << " saw only "
                      << forwarded << " requests\n";
            return 1;
        }
    }

    proxy.stop();
    for (Shard& shard : fleet) {
        shard.server->stop();
    }

    std::vector<bench::BenchRecord> records;
    records.push_back({"single_node", static_cast<std::int64_t>(keys.size()),
                       single_ms, single_tps});
    records.push_back({"cluster_3node", static_cast<std::int64_t>(keys.size()),
                       fleet_ms, fleet_tps});
    records.push_back({"speedup_x", 3, 0.0, speedup});
    bench::write_bench_json(out_dir, "cluster", records);

    if (speedup < 2.5) {
        std::cerr << "cluster bench: speedup " << speedup
                  << "x below the 2.5x floor (ideal 3.0x)\n";
        return 1;
    }
    std::cout << "cluster: ok — " << speedup
              << "x over single node, all bodies byte-identical\n";
    return 0;
}
