// Corpus replay driver: the degrade path of the fuzz tier (DESIGN.md §16).
//
// Links against the same LLVMFuzzerTestOneInput a libFuzzer build would use
// and feeds it every corpus file named on the command line (files or
// directories, sorted for determinism), plus the empty input.  Used two
// ways: as the tier-1 `fuzz-regress` ctest entry under any compiler, and by
// `tools/ci.sh fuzz` (with --repeat) to measure execs/s for BENCH_fuzz.json.
//
// Exit code 0 means every input honored the harness contract; a contract
// violation aborts (SIGABRT) inside the harness guard.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

#ifndef RRS_FUZZ_HARNESS_NAME
#define RRS_FUZZ_HARNESS_NAME "unknown"
#endif

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "fuzz-replay: cannot read '%s'\n",
                     path.string().c_str());
        std::exit(2);
    }
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void run_one(const std::vector<std::uint8_t>& bytes) {
    // Never hand the harness a null pointer: an empty corpus file still
    // exercises the size == 0 path with a valid (unread) address.
    static const std::uint8_t kDummy = 0;
    LLVMFuzzerTestOneInput(bytes.empty() ? &kDummy : bytes.data(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
    long repeat = 1;
    std::vector<std::filesystem::path> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
            repeat = std::atol(argv[++i]);
            if (repeat < 1) {
                repeat = 1;
            }
            continue;
        }
        const std::filesystem::path arg = argv[i];
        std::error_code ec;
        if (std::filesystem::is_directory(arg, ec)) {
            for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
                if (entry.is_regular_file()) {
                    files.push_back(entry.path());
                }
            }
        } else {
            files.push_back(arg);
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<std::vector<std::uint8_t>> corpus;
    corpus.reserve(files.size());
    for (const auto& path : files) {
        corpus.push_back(read_file(path));
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t execs = 0;
    for (long r = 0; r < repeat; ++r) {
        run_one({});  // the empty input is always part of the contract
        ++execs;
        for (const auto& bytes : corpus) {
            run_one(bytes);
            ++execs;
        }
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  t0)
            .count();
    const double execs_per_s =
        wall_ms > 0.0 ? static_cast<double>(execs) * 1000.0 / wall_ms : 0.0;
    std::printf("fuzz-replay: name=%s files=%zu execs=%llu wall_ms=%.3f "
                "execs_per_s=%.0f\n",
                RRS_FUZZ_HARNESS_NAME, files.size(),
                static_cast<unsigned long long>(execs), wall_ms, execs_per_s);
    return 0;
}
