// Harness: net::parse_request_head / net::parse_response_head — the bytes a
// peer controls before the blank line.  Inputs starting "HTTP/" exercise the
// client's response parser; everything else the server's request parser.
// Contract: parse or throw HttpError/IoError (both rrs::Error).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "harness_util.hpp"
#include "net/client.hpp"
#include "net/http.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string_view head(reinterpret_cast<const char*>(data), size);
    if (head.substr(0, 5) == "HTTP/") {
        rrs::fuzz::guard("http_head", [&] {
            const rrs::net::ClientResponse resp = rrs::net::parse_response_head(head);
            (void)resp.header("content-length");
            (void)resp.header("connection");
            (void)resp.ok();
        });
        return 0;
    }
    rrs::fuzz::guard("http_head", [&] {
        const rrs::net::HttpRequest req = rrs::net::parse_request_head(head);
        // Walk the derived accessors too: they parse header/query values
        // the request parser only stored.
        (void)req.content_length();
        (void)req.header("if-none-match");
        (void)req.query_param("tx");
        (void)req.keep_alive;
    });
    return 0;
}
