// Harness: the /v1/* query parsers (net/query.hpp).  The input is treated
// as a raw query string, wrapped into a minimal GET head; each route parser
// then runs against the decoded parameter map.  Contract: parse or throw
// HttpError — parameters are attacker-typed by definition.

#include <cstddef>
#include <cstdint>
#include <string>

#include "harness_util.hpp"
#include "net/http.hpp"
#include "net/query.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string raw(reinterpret_cast<const char*>(data), size);
    const std::string head = "GET /v1/tile?" + raw + " HTTP/1.1\r\n\r\n";
    rrs::net::HttpRequest req;
    bool parsed = false;
    rrs::fuzz::guard("query", [&] {
        req = rrs::net::parse_request_head(head);
        parsed = true;
    });
    if (!parsed) {
        return 0;  // the head itself was malformed — already exercised
    }
    rrs::fuzz::guard("query", [&] { (void)rrs::net::parse_tile_query(req); });
    rrs::fuzz::guard("query", [&] { (void)rrs::net::parse_window_query(req); });
    rrs::fuzz::guard("query", [&] { (void)rrs::net::parse_pyramid_query(req); });
    // etag_matches is noexcept-shaped (pure scan): feed it the raw bytes as
    // an If-None-Match value against a representative strong ETag.
    (void)rrs::net::etag_matches(raw, "\"0123456789abcdef\"");
    return 0;
}
