// Harness: fault::parse_plan — the RRS_FAULTS environment grammar (an
// attacker who controls the environment controls this string).  Contract:
// parse or throw ConfigError; parsing never arms anything.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fault/inject.hpp"
#include "harness_util.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string_view spec(reinterpret_cast<const char*>(data), size);
    rrs::fuzz::guard("fault_plan", [&] { (void)rrs::fault::parse_plan(spec); });
    return 0;
}
