// Harness: StreamCheckpoint::deserialize — checkpoint files are read back
// from disk across restarts.  Contract: parse or throw IoError; and any
// accepted checkpoint must round-trip bit-exactly through serialize().

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/streaming.hpp"
#include "harness_util.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string text(reinterpret_cast<const char*>(data), size);
    rrs::fuzz::guard("checkpoint", [&] {
        const rrs::StreamCheckpoint c = rrs::StreamCheckpoint::deserialize(text);
        const rrs::StreamCheckpoint back =
            rrs::StreamCheckpoint::deserialize(c.serialize());
        rrs::fuzz::expect(back == c, "checkpoint",
                          "serialize/deserialize round-trip changed the state");
    });
    return 0;
}
