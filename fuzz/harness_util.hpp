#pragma once

/// \file harness_util.hpp
/// Shared contract enforcement for the fuzz harnesses (DESIGN.md §16).
///
/// Every harness drives one pure untrusted-input parser under one rule:
/// an arbitrary input either parses successfully or is rejected with an
/// exception from the `rrs::Error` taxonomy.  Anything else — a crash, a
/// sanitizer report, or a non-taxonomy exception (std::out_of_range from a
/// raw stoull, std::bad_alloc from an attacker-controlled resize, ...) —
/// is a finding, so the guard aborts and both libFuzzer and the corpus
/// replay driver record the input as a crash.

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "core/error.hpp"

namespace rrs::fuzz {

/// Run one parse attempt under the harness contract.  Returns normally on
/// success and on a taxonomy rejection; aborts on any other escape.
template <typename Fn>
void guard(const char* harness, Fn&& fn) {
    try {
        fn();
    } catch (const rrs::Error&) {
        // Expected: malformed input rejected through the taxonomy.
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fuzz[%s]: non-taxonomy exception escaped: %s\n",
                     harness, e.what());
        std::abort();
    } catch (...) {
        std::fprintf(stderr, "fuzz[%s]: non-exception throw escaped\n", harness);
        std::abort();
    }
}

/// Abort with a message when a harness-checked invariant fails.
inline void expect(bool ok, const char* harness, const char* what) {
    if (!ok) {
        std::fprintf(stderr, "fuzz[%s]: invariant failed: %s\n", harness, what);
        std::abort();
    }
}

}  // namespace rrs::fuzz
