// Harness: io::parse_scene_text — scene files arrive from disk and the
// command line (rrsgen/rrsd --scene).  Contract: parse or throw SceneError
// (line-numbered ConfigError); no raw cast UB on nan/huge numeric settings.

#include <cstddef>
#include <cstdint>
#include <string>

#include "harness_util.hpp"
#include "io/scene.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string text(reinterpret_cast<const char*>(data), size);
    rrs::fuzz::guard("scene", [&] { (void)rrs::parse_scene_text(text); });
    return 0;
}
