// Harness: cluster::parse_topology — topology files arrive from disk via
// rrsd --cluster / --cluster-prev and rrsquery --cluster.  Contract: parse
// or throw ConfigError ("topology line N: ..."); no integer overflow on
// port/epoch, no UB on weight parsing (inf/nan/huge), bounded node count.

#include <cstddef>
#include <cstdint>
#include <string>

#include "cluster/topology.hpp"
#include "harness_util.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string text(reinterpret_cast<const char*>(data), size);
    rrs::fuzz::guard("topology", [&] { (void)rrs::cluster::parse_topology(text); });
    return 0;
}
