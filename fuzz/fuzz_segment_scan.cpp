// Harness: store::scan_segment — the recovery scan over a segment file
// image (torn writes, bit flips, foreign files).  scan_segment is noexcept
// by contract, so beyond "no crash/sanitizer report" the harness asserts
// the bounds invariants TileStore relies on when it trusts the result.

#include <cstddef>
#include <cstdint>

#include "harness_util.hpp"
#include "store/segment_scan.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    using namespace rrs::store;
    const SegmentScan scan = scan_segment(data, size);
    const char* h = "segment_scan";
    rrs::fuzz::expect(scan.end <= size, h, "end <= size");
    rrs::fuzz::expect(scan.end + scan.truncated_bytes == size ||
                          (!scan.header_ok && scan.truncated_bytes == size),
                      h, "end + truncated_bytes == size");
    if (!scan.header_ok) {
        rrs::fuzz::expect(scan.records.empty(), h,
                          "no records from an unreadable header");
        return 0;
    }
    rrs::fuzz::expect(scan.end >= kSegmentFileHeaderSize, h,
                      "end >= file header size");
    std::uint64_t prev_end = kSegmentFileHeaderSize;
    for (const SegmentRecord& r : scan.records) {
        rrs::fuzz::expect(r.offset == prev_end, h, "records are contiguous");
        rrs::fuzz::expect(r.payload_bytes ==
                              std::uint64_t{r.nx} * std::uint64_t{r.ny} *
                                  sizeof(double),
                          h, "payload_bytes matches the record shape");
        prev_end = r.offset + kSegmentRecordHeaderSize + r.payload_bytes;
        rrs::fuzz::expect(prev_end <= scan.end, h, "record fits below end");
    }
    rrs::fuzz::expect(prev_end == scan.end, h, "end is the last record's end");
    return 0;
}
