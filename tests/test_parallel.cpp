// Tests for the parallel substrate: loop helpers and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace rrs {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(0, 1000, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
    std::atomic<int> count{0};
    parallel_for(5, 5, [&](std::int64_t) { ++count; });
    parallel_for(5, 3, [&](std::int64_t) { ++count; });
    EXPECT_EQ(count.load(), 0);
}

TEST(ParallelFor, NegativeRangeWorks) {
    std::atomic<std::int64_t> sum{0};
    parallel_for(-10, 10, [&](std::int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), -10);
}

TEST(ParallelForChunks, ChunksPartitionTheRange) {
    std::vector<std::atomic<int>> hits(777);
    parallel_for_chunks(0, 777, [&](std::int64_t lo, std::int64_t hi) {
        EXPECT_LE(lo, hi);
        for (std::int64_t i = lo; i < hi; ++i) {
            ++hits[static_cast<std::size_t>(i)];
        }
    });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelForChunks, EmptyRangeIsNoop) {
    std::atomic<int> calls{0};
    parallel_for_chunks(0, 0, [&](std::int64_t, std::int64_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelReduce, SumsMatchSerial) {
    const double got = parallel_reduce_sum(1, 1001, [](std::int64_t i) {
        return static_cast<double>(i);
    });
    EXPECT_DOUBLE_EQ(got, 500500.0);
}

TEST(ParallelReduce, EmptyRangeIsZero) {
    EXPECT_EQ(parallel_reduce_sum(3, 3, [](std::int64_t) { return 1.0; }), 0.0);
}

TEST(MaxThreads, IsPositive) { EXPECT_GE(max_threads(), 1); }

TEST(ThreadPool, RunsSubmittedTasks) {
    ThreadPool pool{4};
    EXPECT_EQ(pool.thread_count(), 4u);
    auto f1 = pool.submit([] { return 6 * 7; });
    auto f2 = pool.submit([] { return std::string{"ok"}; });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
    ThreadPool pool{2};
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&done] { ++done; });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ManyTasksAllComplete) {
    ThreadPool pool;  // hardware default
    std::vector<std::future<int>> futures;
    futures.reserve(200);
    for (int i = 0; i < 200; ++i) {
        futures.push_back(pool.submit([i] { return i * i; }));
    }
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
    }
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
    ThreadPool pool{1};
    auto f = pool.submit([]() -> int { throw std::runtime_error{"boom"}; });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
    std::atomic<int> done{0};
    {
        ThreadPool pool{3};
        for (int i = 0; i < 32; ++i) {
            pool.submit([&done] { ++done; });
        }
        pool.wait_idle();
    }  // destructor joins
    EXPECT_EQ(done.load(), 32);
}

}  // namespace
}  // namespace rrs
