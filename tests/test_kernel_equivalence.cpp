// Differential-equivalence suite for the kernel engines (DESIGN.md §15).
//
// `generate_direct()` — the literal eq. (36) tap sum — is the reference;
// every fast engine is bounded against it:
//
//   * separable (two SIMD 1-D passes)  : ≤ 1e-12 on every point,
//   * fft (padded r2c circular conv)   : ≤ 1e-10 on every point,
//
// across odd/even tile shapes, truncated and full kernels, anisotropic
// correlation lengths, and RRS_THREADS ∈ {1, 2, 5}.  Bit-exactness is
// asserted where claimed: one engine at different thread counts, and
// overlapping rectangles through the separable engine (randomized rect
// pairs, seeded via RRS_EQ_SEED and logged for replay).
//
// The suite also pins the engine-selection contract: kAuto resolution,
// the RRS_KERNEL_ENGINE escape hatch (malformed values must throw, not
// silently fall back), the scene `engine =` key, and the SIMD primitives
// against scalar references.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/convolution.hpp"
#include "core/engine.hpp"
#include "grid/simd.hpp"
#include "io/scene.hpp"

namespace rrs {
namespace {

ConvolutionGenerator make_gen(const SpectrumPtr& s, std::uint64_t seed,
                              double eps = 1e-8, std::size_t n = 64) {
    ConvolutionKernel k =
        eps > 0.0 ? ConvolutionKernel::build_truncated(*s, GridSpec::unit_spacing(n, n), eps)
                  : ConvolutionKernel::build(*s, GridSpec::unit_spacing(n, n));
    return ConvolutionGenerator(std::move(k), seed);
}

/// RAII env-var override (copied idiom from test_convolution.cpp).
class EnvGuard {
public:
    EnvGuard(const char* name, const std::string& value) : name_(name) {
        const char* prev = std::getenv(name_);
        had_prev_ = prev != nullptr;
        if (had_prev_) {
            prev_ = prev;
        }
        ::setenv(name_, value.c_str(), 1);
    }
    ~EnvGuard() {
        if (had_prev_) {
            ::setenv(name_, prev_.c_str(), 1);
        } else {
            ::unsetenv(name_);
        }
    }
    EnvGuard(const EnvGuard&) = delete;
    EnvGuard& operator=(const EnvGuard&) = delete;

private:
    const char* name_;
    bool had_prev_ = false;
    std::string prev_;
};

class ThreadCountGuard : public EnvGuard {
public:
    explicit ThreadCountGuard(int threads)
        : EnvGuard("RRS_THREADS", std::to_string(threads)) {}
};

/// SplitMix64 for the randomized-rect property tests: tiny, seedable, and
/// independent of library RNG so replays are stable across refactors.
std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::int64_t rand_range(std::uint64_t& state, std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(splitmix64(state) %
                                          static_cast<std::uint64_t>(hi - lo + 1));
}

TEST(KernelEquivalence, GaussianFactorsRankOneOthersDoNot) {
    const GridSpec g = GridSpec::unit_spacing(64, 64);
    // Gaussian: exact outer product up to FFT rounding — isotropic,
    // anisotropic, truncated, and full even-dimension kernels all factor.
    for (const auto& k :
         {ConvolutionKernel::build(*make_gaussian({1.0, 6.0, 6.0}), g),
          ConvolutionKernel::build(*make_gaussian({0.5, 9.0, 3.0}), g),
          ConvolutionKernel::build_truncated(*make_gaussian({1.0, 6.0, 6.0}), g, 1e-8),
          ConvolutionKernel::build_truncated(*make_gaussian({2.0, 9.0, 3.0}), g, 1e-4)}) {
        const auto f = k.separable();
        ASSERT_TRUE(f.has_value());
        EXPECT_LT(f->residual, 1e-13);
        EXPECT_EQ(f->fx.size(), k.nx());
        EXPECT_EQ(f->fy.size(), k.ny());
    }
    // Exponential and power-law kernels are genuinely rank > 1.
    EXPECT_FALSE(ConvolutionKernel::build(*make_exponential({1.0, 6.0, 6.0}), g)
                     .separable()
                     .has_value());
    EXPECT_FALSE(ConvolutionKernel::build(*make_power_law({1.0, 6.0, 6.0}, 2.0), g)
                     .separable()
                     .has_value());
}

TEST(KernelEquivalence, SeparableMatchesDirectToTolerance) {
    // Engine × odd/even shapes × truncation × anisotropic cl.  The 1e-12
    // bound is the suite's headline contract.
    struct Case {
        SpectrumPtr s;
        double eps;
    };
    const Case cases[] = {{make_gaussian({1.0, 6.0, 6.0}), 1e-8},
                          {make_gaussian({0.7, 9.0, 3.0}), 1e-6},   // anisotropic
                          {make_gaussian({1.0, 6.0, 6.0}), 1e-4},   // loose truncation
                          {make_gaussian({1.5, 5.0, 11.0}), 0.0}};  // full even kernel
    std::uint64_t seed = 100;
    for (const Case& c : cases) {
        const auto gen = make_gen(c.s, seed++, c.eps);
        ASSERT_TRUE(gen.separable_available());
        for (const Rect r : {Rect{0, 0, 40, 40}, Rect{-17, 23, 31, 19},
                             Rect{5, -60, 64, 8}, Rect{-3, -3, 33, 17}}) {
            const auto sep = gen.generate_separable(r);
            const auto ref = gen.generate_direct(r);
            EXPECT_LT(max_abs_diff(sep, ref), 1e-12)
                << c.s->name() << " eps=" << c.eps << " rect " << r.x0 << "," << r.y0
                << " " << r.nx << "x" << r.ny;
        }
    }
}

TEST(KernelEquivalence, FftMatchesDirectToTolerance) {
    // The r2c + SIMD pointwise-multiply FFT engine against the reference
    // (both separable and non-separable kernels travel this path).
    for (const auto& s : {make_gaussian({1.0, 6.0, 6.0}), make_exponential({1.0, 6.0, 6.0}),
                          make_power_law({1.2, 8.0, 4.0}, 2.0)}) {
        const auto gen = make_gen(s, 42);
        for (const Rect r : {Rect{0, 0, 40, 40}, Rect{-17, 23, 31, 19}}) {
            EXPECT_LT(max_abs_diff(gen.generate_fft(r), gen.generate_direct(r)), 1e-10)
                << s->name();
        }
    }
}

TEST(KernelEquivalence, SeparableBitIdenticalAcrossThreadCounts) {
    // Each engine is individually bit-deterministic: both passes use a
    // fixed accumulation order per output row, so RRS_THREADS must never
    // leak into the surface.
    const auto gen = make_gen(make_gaussian({1.0, 6.0, 6.0}), 77, 1e-6);
    for (const Rect r : {Rect{-5, 3, 33, 17}, Rect{0, 0, 32, 32}}) {
        Array2D<double> base;
        {
            const ThreadCountGuard one(1);
            base = gen.generate_separable(r);
        }
        for (const int threads : {2, 5}) {
            const ThreadCountGuard guard(threads);
            EXPECT_EQ(gen.generate_separable(r), base)
                << "threads=" << threads << " rect " << r.x0 << "," << r.y0;
        }
    }
}

TEST(KernelEquivalence, SeparableOverlappingRectsBitExactRandomized) {
    // Property test: any two overlapping rectangles agree bit-exactly on
    // the overlap (the separable passes see different halos, but every
    // output point's accumulation order is rect-independent).  Seeded via
    // RRS_EQ_SEED and recorded for replay.
    std::uint64_t seed = 0xC0FFEE;
    if (const char* env = std::getenv("RRS_EQ_SEED")) {
        seed = std::strtoull(env, nullptr, 0);
    }
    ::testing::Test::RecordProperty("RRS_EQ_SEED", std::to_string(seed));
    SCOPED_TRACE("RRS_EQ_SEED=" + std::to_string(seed) +
                 " (set this env var to replay)");
    std::uint64_t state = seed;

    const auto gen = make_gen(make_gaussian({1.0, 6.0, 6.0}), 31, 1e-8);
    int checked = 0;
    for (int trial = 0; trial < 40 && checked < 20; ++trial) {
        const Rect a{rand_range(state, -80, 40), rand_range(state, -80, 40),
                     rand_range(state, 1, 48), rand_range(state, 1, 48)};
        const Rect b{rand_range(state, a.x0 - 20, a.x0 + 20),
                     rand_range(state, a.y0 - 20, a.y0 + 20),
                     rand_range(state, 1, 48), rand_range(state, 1, 48)};
        const std::int64_t x0 = std::max(a.x0, b.x0);
        const std::int64_t y0 = std::max(a.y0, b.y0);
        const std::int64_t x1 = std::min(a.x0 + a.nx, b.x0 + b.nx);
        const std::int64_t y1 = std::min(a.y0 + a.ny, b.y0 + b.ny);
        if (x0 >= x1 || y0 >= y1) {
            continue;  // disjoint draw; try again
        }
        ++checked;
        const auto fa = gen.generate_separable(a);
        const auto fb = gen.generate_separable(b);
        for (std::int64_t y = y0; y < y1; ++y) {
            for (std::int64_t x = x0; x < x1; ++x) {
                const double va = fa(static_cast<std::size_t>(x - a.x0),
                                     static_cast<std::size_t>(y - a.y0));
                const double vb = fb(static_cast<std::size_t>(x - b.x0),
                                     static_cast<std::size_t>(y - b.y0));
                ASSERT_EQ(va, vb) << "trial " << trial << " point (" << x << "," << y
                                  << ") rects (" << a.x0 << "," << a.y0 << " " << a.nx
                                  << "x" << a.ny << ") vs (" << b.x0 << "," << b.y0
                                  << " " << b.nx << "x" << b.ny << ")";
            }
        }
    }
    ASSERT_GE(checked, 10) << "rect sampler produced too few overlapping pairs";
}

TEST(KernelEquivalence, AutoResolvesSeparableForGaussianFftOtherwise) {
    const auto gauss = make_gen(make_gaussian({1.0, 6.0, 6.0}), 1);
    EXPECT_EQ(gauss.resolved_engine(), KernelEngine::kSeparable);
    const auto expo = make_gen(make_exponential({1.0, 6.0, 6.0}), 1);
    EXPECT_FALSE(expo.separable_available());
    EXPECT_EQ(expo.resolved_engine(), KernelEngine::kFft);
}

TEST(KernelEquivalence, ConfiguredEngineIsHonoured) {
    auto gen = make_gen(make_gaussian({1.0, 6.0, 6.0}), 5);
    const Rect r{-4, 7, 19, 23};
    gen.set_engine(KernelEngine::kDirect);
    EXPECT_EQ(gen.resolved_engine(), KernelEngine::kDirect);
    EXPECT_EQ(gen.generate(r), gen.generate_direct(r));  // bit-exact dispatch
    gen.set_engine(KernelEngine::kFft);
    EXPECT_EQ(gen.generate(r), gen.generate_fft(r));
    gen.set_engine(KernelEngine::kSeparable);
    EXPECT_EQ(gen.generate(r), gen.generate_separable(r));
}

TEST(KernelEquivalence, EnvOverrideBeatsConfiguredEngine) {
    // The escape hatch: one env var turns any run into a reference run.
    auto gen = make_gen(make_gaussian({1.0, 6.0, 6.0}), 9);
    gen.set_engine(KernelEngine::kSeparable);
    const Rect r{0, 0, 24, 24};
    const EnvGuard env("RRS_KERNEL_ENGINE", "direct");
    EXPECT_EQ(gen.resolved_engine(), KernelEngine::kDirect);
    EXPECT_EQ(gen.generate(r), gen.generate_direct(r));
}

TEST(KernelEquivalence, MalformedEnvOverrideThrowsInsteadOfFallingBack) {
    const auto gen = make_gen(make_gaussian({1.0, 6.0, 6.0}), 9);
    const EnvGuard env("RRS_KERNEL_ENGINE", "sperable");  // typo
    EXPECT_THROW(gen.resolved_engine(), ConfigError);
    EXPECT_THROW(gen.generate(Rect{0, 0, 8, 8}), ConfigError);
}

TEST(KernelEquivalence, SeparableEngineRejectsNonSeparableKernel) {
    const auto gen = make_gen(make_exponential({1.0, 6.0, 6.0}), 3);
    EXPECT_THROW(gen.generate_separable(Rect{0, 0, 8, 8}), ConfigError);
    const EnvGuard env("RRS_KERNEL_ENGINE", "separable");
    EXPECT_THROW(gen.generate(Rect{0, 0, 8, 8}), ConfigError);
}

TEST(KernelEquivalence, EngineNamesRoundTripAndRejectUnknown) {
    for (const KernelEngine e : {KernelEngine::kAuto, KernelEngine::kDirect,
                                 KernelEngine::kFft, KernelEngine::kSeparable}) {
        EXPECT_EQ(parse_kernel_engine(kernel_engine_name(e)), e);
    }
    EXPECT_THROW(parse_kernel_engine("dense"), ConfigError);
    EXPECT_THROW(parse_kernel_engine(""), ConfigError);
}

TEST(KernelEquivalence, SimdPrimitivesMatchScalarReference) {
    EXPECT_NE(simd::backend(), nullptr);
    std::uint64_t state = 0x51D5EED5;
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                std::size_t{4}, std::size_t{7}, std::size_t{8},
                                std::size_t{9}, std::size_t{17}, std::size_t{64},
                                std::size_t{1000}}) {
        std::vector<double> a(n);
        std::vector<double> b(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = static_cast<double>(static_cast<std::int64_t>(
                       splitmix64(state) % 2001) - 1000) / 997.0;
            b[i] = static_cast<double>(static_cast<std::int64_t>(
                       splitmix64(state) % 2001) - 1000) / 1009.0;
        }
        // dot
        double ref = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            ref += a[i] * b[i];
        }
        EXPECT_NEAR(simd::dot(a.data(), b.data(), n), ref, 1e-12) << "dot n=" << n;
        // axpy
        std::vector<double> y = b;
        simd::axpy(y.data(), a.data(), 1.75, n);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(y[i], b[i] + 1.75 * a[i], 1e-13) << "axpy n=" << n << " i=" << i;
        }
        // cmul
        std::vector<std::complex<double>> ca(n);
        std::vector<std::complex<double>> cb(n);
        for (std::size_t i = 0; i < n; ++i) {
            ca[i] = {a[i], b[i]};
            cb[i] = {b[i], a[i]};
        }
        std::vector<std::complex<double>> expect = ca;
        for (std::size_t i = 0; i < n; ++i) {
            expect[i] *= cb[i];
        }
        simd::cmul(ca.data(), cb.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(std::abs(ca[i] - expect[i]), 0.0, 1e-13)
                << "cmul n=" << n << " i=" << i;
        }
    }
}

TEST(KernelEquivalence, SceneEngineKeySelectsEngineAndRejectsUnknown) {
    const std::string base = R"(seed = 3
kernel_grid = 64 64
region = 0 0 48 48
tail_eps = 1e-6
{ENGINE}
[spectrum field]
family = gaussian
h = 1.0
cl = 6

[map]
type = homogeneous
spectrum = field
)";
    auto with_engine = [&](const std::string& line) {
        std::string text = base;
        text.replace(text.find("{ENGINE}"), 8, line);
        return text;
    };
    const Scene def = parse_scene_text(with_engine(""));
    EXPECT_EQ(def.engine, KernelEngine::kAuto);
    const Scene sep = parse_scene_text(with_engine("engine = separable"));
    EXPECT_EQ(sep.engine, KernelEngine::kSeparable);
    const Scene dir = parse_scene_text(with_engine("engine = direct"));
    EXPECT_EQ(dir.engine, KernelEngine::kDirect);

    // All engines render the same scene to within the differential bound.
    const auto f_sep = render_scene(sep);
    const auto f_dir = render_scene(dir);
    EXPECT_LT(max_abs_diff(f_sep, f_dir), 1e-10);

    // Unknown engine name → SceneError (IS-A ConfigError) with the line.
    try {
        parse_scene_text(with_engine("engine = dense"));
        FAIL() << "expected SceneError";
    } catch (const SceneError& e) {
        EXPECT_EQ(e.line(), 5u);
        EXPECT_NE(std::string(e.what()).find("dense"), std::string::npos);
    }
}

TEST(KernelEquivalence, InhomogeneousEngineOptionReachesRegionGenerators) {
    // A gaussian-only map under engine=separable must render, and match
    // the per-point reference blend to the usual inhomogeneous bound.
    const std::string text = R"(seed = 11
kernel_grid = 64 64
region = -16 -16 40 40
tail_eps = 1e-6
engine = separable

[spectrum a]
family = gaussian
h = 1.0
cl = 6

[spectrum b]
family = gaussian
h = 0.4
cl = 10

[map]
type = circle
center = 0 0
radius = 12
transition = 6
inside = b
outside = a
)";
    const Scene scene = parse_scene_text(text);
    const InhomogeneousGenerator gen = make_scene_generator(scene);
    const auto fast = gen.generate(scene.region);
    const auto ref = gen.generate_reference(scene.region);
    EXPECT_LT(max_abs_diff(fast, ref), 1e-9);
}

}  // namespace
}  // namespace rrs
