// Direct statistical coverage of rng/hash.hpp — the primitive every
// deterministic-tile guarantee in the library rests on (tile service cache
// keys, lattice noise, checkpoint fingerprints).  test_rng.cpp has smoke
// checks; this suite quantifies avalanche, uniformity, and cross-salt
// independence of hash_coords.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "rng/hash.hpp"

namespace rrs {
namespace {

double to_unit(std::uint64_t h) {
    // Top 53 bits → [0, 1), the same mapping the engines use.
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// --- avalanche ---------------------------------------------------------------

// Flipping ANY single bit of any input word must flip each output bit with
// probability ~1/2 (full avalanche).  We measure the mean flip count per
// input bit and require it close to 32 of 64.
void expect_avalanche(std::uint64_t (*hash_flipped)(std::uint64_t base, int bit,
                                                    std::uint64_t trial),
                      std::uint64_t (*hash_base)(std::uint64_t trial)) {
    constexpr int kTrials = 64;
    for (int bit = 0; bit < 64; ++bit) {
        std::int64_t flips = 0;
        for (std::uint64_t t = 0; t < kTrials; ++t) {
            const std::uint64_t a = hash_base(t);
            const std::uint64_t b = hash_flipped(0, bit, t);
            flips += __builtin_popcountll(a ^ b);
        }
        const double mean = static_cast<double>(flips) / kTrials;
        // Binomial(64, 1/2) has σ ≈ 4; a ±10 window is ~2.5σ on the mean of
        // 64 trials — loose enough to be non-flaky, tight enough to catch a
        // weak mixer.
        EXPECT_GT(mean, 22.0) << "weak avalanche on input bit " << bit;
        EXPECT_LT(mean, 42.0) << "weak avalanche on input bit " << bit;
    }
}

TEST(HashQuality, AvalancheOverSeedBits) {
    expect_avalanche(
        [](std::uint64_t, int bit, std::uint64_t t) {
            return hash_coords(0x12345 ^ (std::uint64_t{1} << bit), 7 + static_cast<std::int64_t>(t), -3);
        },
        [](std::uint64_t t) {
            return hash_coords(0x12345, 7 + static_cast<std::int64_t>(t), -3);
        });
}

TEST(HashQuality, AvalancheOverXCoordinateBits) {
    expect_avalanche(
        [](std::uint64_t, int bit, std::uint64_t t) {
            const auto x = static_cast<std::int64_t>(
                (0x9E37ULL + t) ^ (std::uint64_t{1} << bit));
            return hash_coords(42, x, 5);
        },
        [](std::uint64_t t) {
            return hash_coords(42, static_cast<std::int64_t>(0x9E37ULL + t), 5);
        });
}

TEST(HashQuality, AvalancheOverYCoordinateBits) {
    expect_avalanche(
        [](std::uint64_t, int bit, std::uint64_t t) {
            const auto y = static_cast<std::int64_t>(
                (0x51EDULL + t) ^ (std::uint64_t{1} << bit));
            return hash_coords(42, -9, y);
        },
        [](std::uint64_t t) {
            return hash_coords(42, -9, static_cast<std::int64_t>(0x51EDULL + t));
        });
}

// --- uniformity --------------------------------------------------------------

TEST(HashQuality, CoordinateScanIsUniformAcrossBuckets) {
    // Hash a structured (worst-case-adjacent) coordinate scan into 256
    // buckets and chi-square the counts.  For k=256 d.o.f. the statistic has
    // mean ≈ 255, σ ≈ 22.6; 400 is ~+6σ — fails only on real structure.
    constexpr std::size_t kBuckets = 256;
    constexpr std::int64_t kSide = 128;  // 16384 samples → 64 per bucket
    std::array<std::int64_t, kBuckets> counts{};
    for (std::int64_t iy = -kSide / 2; iy < kSide / 2; ++iy) {
        for (std::int64_t ix = -kSide / 2; ix < kSide / 2; ++ix) {
            counts[hash_coords(2024, ix, iy) % kBuckets]++;
        }
    }
    const double expected =
        static_cast<double>(kSide * kSide) / static_cast<double>(kBuckets);
    double chi2 = 0.0;
    for (const std::int64_t c : counts) {
        const double d = static_cast<double>(c) - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 400.0) << "bucket counts too lumpy (chi2 vs 255 expected)";
    EXPECT_GT(chi2, 150.0) << "bucket counts suspiciously even";
}

TEST(HashQuality, UnitMappingMomentsMatchUniform) {
    // Mean 1/2, variance 1/12 for the [0,1) mapping of a coordinate scan.
    double sum = 0.0;
    double sumsq = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
        const double u = to_unit(hash_coords(7, i, -i * 3));
        sum += u;
        sumsq += u * u;
    }
    const double mean = sum / kN;
    const double var = sumsq / kN - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.01);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

// --- cross-salt independence -------------------------------------------------

TEST(HashQuality, SaltsProduceUncorrelatedFields) {
    // The salt separates independent random fields over one lattice (e.g.
    // different noise channels).  Sample correlation between the salted and
    // unsalted field over n=8192 points has σ ≈ 1/√n ≈ 0.011; |r| < 0.05 is
    // ~4.5σ.
    for (const std::uint64_t salt : {1ULL, 2ULL, 0xDEADBEEFULL}) {
        double sxy = 0.0;
        double sx = 0.0;
        double sy = 0.0;
        double sxx = 0.0;
        double syy = 0.0;
        constexpr std::int64_t kN = 8192;
        for (std::int64_t i = 0; i < kN; ++i) {
            const std::int64_t ix = i % 128;
            const std::int64_t iy = i / 128;
            const double a = to_unit(hash_coords(5, ix, iy, 0));
            const double b = to_unit(hash_coords(5, ix, iy, salt));
            sx += a;
            sy += b;
            sxx += a * a;
            syy += b * b;
            sxy += a * b;
        }
        const double n = static_cast<double>(kN);
        const double cov = sxy / n - (sx / n) * (sy / n);
        const double va = sxx / n - (sx / n) * (sx / n);
        const double vb = syy / n - (sy / n) * (sy / n);
        const double r = cov / std::sqrt(va * vb);
        EXPECT_LT(std::abs(r), 0.05) << "salt " << salt << " correlates with salt 0";
    }
}

TEST(HashQuality, SaltChangesRoughlyHalfTheBits) {
    std::int64_t flips = 0;
    constexpr int kTrials = 512;
    for (int t = 0; t < kTrials; ++t) {
        flips += __builtin_popcountll(hash_coords(9, t, -t, 0) ^ hash_coords(9, t, -t, 1));
    }
    const double mean = static_cast<double>(flips) / kTrials;
    EXPECT_GT(mean, 28.0);
    EXPECT_LT(mean, 36.0);
}

TEST(HashQuality, SeedAndSaltAreNotInterchangeable) {
    // Regression guard for the salt-mixing formula: (seed, salt) pairs must
    // not collide along the diagonal the xor-only mixing would alias.
    EXPECT_NE(hash_coords(1, 10, 20, 2), hash_coords(2, 10, 20, 1));
    EXPECT_NE(hash_coords(0, 10, 20, 1), hash_coords(1, 10, 20, 0));
}

}  // namespace
}  // namespace rrs
